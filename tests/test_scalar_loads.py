"""Tests for scalar (uniform-address) load handling end to end."""

import numpy as np
import pytest

from repro.compiler import analyze_uniformity, compile_kernel
from repro.ir import DType, KernelBuilder
from repro.runtime import Session


def _broadcast_kernel():
    """Each work-item adds a table value indexed by a uniform counter."""
    b = KernelBuilder("k")
    table = b.buffer_param("table", DType.U32)
    out = b.buffer_param("out", DType.U32)
    gid = b.global_id(0)
    acc = b.var(DType.U32, 0)
    with b.for_range(0, 8) as i:
        acc_val = b.load(table, i)          # uniform address -> scalar load
        b.set(acc, b.add(acc, acc_val))
    b.store(out, gid, acc)
    k = b.finish()
    k.metadata["local_size"] = (64, 1, 1)
    return k


class TestScalarLoads:
    def test_uniform_loop_load_marked_scalar(self):
        k = _broadcast_kernel()
        info = analyze_uniformity(k)
        from repro.ir import LoadGlobal, walk_instrs

        loads = [i for i in walk_instrs(k.body) if isinstance(i, LoadGlobal)]
        assert len(loads) == 1
        assert info.is_scalar(loads[0])

    def test_functional_result_correct(self):
        ck = compile_kernel(_broadcast_kernel(), "original")
        s = Session()
        table = np.arange(8, dtype=np.uint32)
        tb = s.upload("table", table)
        ob = s.zeros("out", 128, np.uint32)
        s.launch(ck, 128, 64, {"table": tb, "out": ob})
        assert (s.download(ob) == table.sum()).all()

    def test_scalar_loads_bypass_vector_memory_unit(self):
        ck = compile_kernel(_broadcast_kernel(), "original")
        s = Session()
        tb = s.upload("table", np.arange(8, dtype=np.uint32))
        ob = s.zeros("out", 4096, np.uint32)
        res = s.launch(ck, 4096, 64, {"table": tb, "out": ob})
        c = res.counters
        # The broadcast loads run on the SU: SALU gets traffic, and the
        # only vector-memory transactions left are the output stores.
        assert c.salu_instructions > 0
        assert c.global_load_bytes == 0 or c.mem_transactions <= 2 * (4096 // 16)

    def test_scalar_loads_cheaper_than_vector(self):
        """The same kernel with a vector-indexed table costs more."""
        def kernel(vector_index: bool):
            b = KernelBuilder("k")
            table = b.buffer_param("table", DType.U32)
            out = b.buffer_param("out", DType.U32)
            gid = b.global_id(0)
            acc = b.var(DType.U32, 0)
            with b.for_range(0, 8) as i:
                idx = b.add(i, b.and_(gid, 0)) if vector_index else i
                b.set(acc, b.add(acc, b.load(table, idx)))
            b.store(out, gid, acc)
            k = b.finish()
            k.metadata["local_size"] = (64, 1, 1)
            return k

        def run(vector_index):
            ck = compile_kernel(kernel(vector_index), "original")
            s = Session()
            tb = s.upload("table", np.arange(8, dtype=np.uint32))
            ob = s.zeros("out", 8192, np.uint32)
            res = s.launch(ck, 8192, 64, {"table": tb, "out": ob})
            return res

        # `gid & 0` is zero but not *provably uniform* to the analysis,
        # so the vector version occupies the vector memory unit while the
        # scalar version leaves it to the stores alone.
        scalar = run(False).counters
        vector = run(True).counters
        assert vector.global_load_bytes > scalar.global_load_bytes
        assert vector.mem.total > scalar.mem.total

    def test_inter_rmt_keeps_results_with_scalar_loads(self):
        ck = compile_kernel(_broadcast_kernel(), "inter")
        s = Session()
        table = np.arange(8, dtype=np.uint32)
        tb = s.upload("table", table)
        ob = s.zeros("out", 256, np.uint32)
        res = s.launch(ck, 256, 64, {"table": tb, "out": ob})
        assert (s.download(ob) == table.sum()).all()
        assert not res.detections
