"""Tests for counter accounting and merging."""

import numpy as np
import pytest

from repro.gpu import Device
from repro.gpu.counters import BusyTracker, KernelCounters, merge_counters
from repro.ir import DType, KernelBuilder


class TestBusyTracker:
    def test_total_accumulates(self):
        t = BusyTracker(window_cycles=100)
        t.add(0, 10)
        t.add(20, 25)
        assert t.total == 15

    def test_empty_interval_ignored(self):
        t = BusyTracker()
        t.add(10, 10)
        t.add(10, 5)
        assert t.total == 0

    def test_window_split(self):
        t = BusyTracker(window_cycles=100)
        t.add(90, 230)
        assert t.windows[0] == pytest.approx(10)
        assert t.windows[1] == pytest.approx(100)
        assert t.windows[2] == pytest.approx(30)

    def test_windows_sum_to_total(self):
        t = BusyTracker(window_cycles=64)
        rng = np.random.default_rng(3)
        for _ in range(100):
            s = rng.uniform(0, 1000)
            t.add(s, s + rng.uniform(0, 200))
        assert sum(t.windows.values()) == pytest.approx(t.total)

    def test_window_fraction(self):
        t = BusyTracker(window_cycles=100)
        t.add(0, 50)
        assert t.window_fraction(0) == pytest.approx(0.5)
        assert t.window_fraction(9) == 0.0


class TestKernelCounters:
    def _run(self, n=1024):
        b = KernelBuilder("k")
        a = b.buffer_param("a", DType.F32)
        out = b.buffer_param("out", DType.F32)
        lds = b.local_alloc("t", DType.F32, 64)
        gid = b.global_id(0)
        lid = b.local_id(0)
        x = b.load(a, gid)
        b.store_local(lds, lid, x)
        b.barrier()
        b.store(out, gid, b.mul(b.load_local(lds, lid), 2.0))
        k = b.finish()
        dev = Device()
        ab = dev.alloc("a", np.ones(n, dtype=np.float32))
        ob = dev.alloc_zeros("out", n, np.float32)
        res = dev.launch(k, n, 64, {"a": ab, "out": ob})
        return res

    def test_report_fractions_in_unit_range(self):
        res = self._run()
        rep = res.counters.report(res.cycles, 12, 4)
        for value in rep.as_dict().values():
            assert 0.0 <= value or value == rep.kernel_cycles
        assert 0.0 <= rep.valu_busy <= 1.0
        assert 0.0 <= rep.mem_unit_busy <= 1.0

    def test_instruction_tallies(self):
        res = self._run(n=1024)
        c = res.counters
        assert c.valu_instructions > 0
        assert c.lds_accesses == 2 * (1024 // 64)   # one store + one load per wave
        assert c.global_load_bytes == 1024 * 4
        assert c.global_store_bytes == 1024 * 4

    def test_merge_counters(self):
        r1 = self._run()
        r2 = self._run()
        merged = merge_counters([r1.counters, r2.counters], window_cycles=1_000_000)
        assert merged.valu_instructions == (
            r1.counters.valu_instructions + r2.counters.valu_instructions
        )
        assert merged.valu.total == pytest.approx(
            r1.counters.valu.total + r2.counters.valu.total
        )

    def test_report_hit_rates(self):
        res = self._run()
        rep = res.counters.report(res.cycles, 12, 4)
        assert 0.0 <= rep.l1_hit_rate <= 1.0
        assert 0.0 <= rep.l2_hit_rate <= 1.0
