"""Tests for global memory, caches, and coalescing."""

import numpy as np
import pytest

from repro.gpu.memory import CacheModel, DeviceBuffer, GlobalMemory, coalesce_lines


class TestGlobalMemory:
    def test_alloc_copies_data(self):
        gm = GlobalMemory()
        host = np.arange(8, dtype=np.float32)
        buf = gm.alloc("a", host)
        host[0] = 99
        assert buf.data[0] == 0

    def test_disjoint_base_addresses(self):
        gm = GlobalMemory()
        a = gm.alloc("a", np.zeros(100, dtype=np.float32))
        b = gm.alloc("b", np.zeros(100, dtype=np.float32))
        a_end = a.base_addr + a.nbytes
        assert b.base_addr >= a_end

    def test_read_write(self):
        gm = GlobalMemory()
        buf = gm.alloc("a", np.zeros(16, dtype=np.uint32))
        gm.write(buf, np.array([3, 5]), np.array([30, 50], dtype=np.uint32))
        out = gm.read(buf, np.array([5, 3]))
        np.testing.assert_array_equal(out, [50, 30])

    def test_out_of_bounds_raises(self):
        gm = GlobalMemory()
        buf = gm.alloc("a", np.zeros(4, dtype=np.uint32))
        with pytest.raises(IndexError, match="out-of-bounds"):
            gm.read(buf, np.array([4]))
        with pytest.raises(IndexError):
            gm.write(buf, np.array([-1]), np.array([0], dtype=np.uint32))

    def test_atomic_add_returns_old(self):
        gm = GlobalMemory()
        buf = gm.alloc("a", np.zeros(2, dtype=np.uint32))
        old = gm.atomic("add", buf, np.array([0, 0, 1]),
                        np.array([1, 1, 5], dtype=np.uint32))
        np.testing.assert_array_equal(old, [0, 1, 0])
        assert buf.data[0] == 2
        assert buf.data[1] == 5

    def test_atomic_xchg(self):
        gm = GlobalMemory()
        buf = gm.alloc("a", np.array([7], dtype=np.uint32))
        old = gm.atomic("xchg", buf, np.array([0]), np.array([9], dtype=np.uint32))
        assert old[0] == 7 and buf.data[0] == 9

    def test_atomic_cmpxchg(self):
        gm = GlobalMemory()
        buf = gm.alloc("a", np.array([5], dtype=np.uint32))
        old = gm.atomic(
            "cmpxchg", buf, np.array([0, 0]),
            np.array([8, 9], dtype=np.uint32),
            compares=np.array([5, 5], dtype=np.uint32),
        )
        # First lane swaps (5->8); second lane's compare fails against 8.
        np.testing.assert_array_equal(old, [5, 8])
        assert buf.data[0] == 8

    def test_atomic_max_and_or(self):
        gm = GlobalMemory()
        buf = gm.alloc("a", np.array([4, 1], dtype=np.uint32))
        gm.atomic("max", buf, np.array([0]), np.array([9], dtype=np.uint32))
        gm.atomic("or", buf, np.array([1]), np.array([6], dtype=np.uint32))
        assert buf.data[0] == 9
        assert buf.data[1] == 7

    def test_addresses(self):
        buf = DeviceBuffer("x", np.zeros(8, dtype=np.float32), base_addr=0x1000)
        np.testing.assert_array_equal(
            buf.addresses(np.array([0, 2])), [0x1000, 0x1008]
        )


class TestCoalescing:
    def test_consecutive_lanes_few_lines(self):
        addrs = 0x1000 + 4 * np.arange(64)
        assert len(coalesce_lines(addrs, 64)) == 4

    def test_scattered_lanes_many_lines(self):
        addrs = 0x1000 + 256 * np.arange(64)
        assert len(coalesce_lines(addrs, 64)) == 64

    def test_broadcast_single_line(self):
        addrs = np.full(64, 0x1000)
        assert len(coalesce_lines(addrs, 64)) == 1


class TestCacheModel:
    def test_miss_then_hit(self):
        c = CacheModel(1024, 64, ways=2)
        hit, _ = c.access(10)
        assert not hit
        hit, _ = c.access(10)
        assert hit

    def test_lru_eviction(self):
        c = CacheModel(2 * 64, 64, ways=2)  # one set, 2 ways
        c.access(0)
        c.access(1)
        c.access(0)       # 0 is now MRU
        c.access(2)       # evicts 1
        hit, _ = c.access(0)
        assert hit
        hit, _ = c.access(1)
        assert not hit

    def test_dirty_eviction_reports_writeback(self):
        c = CacheModel(2 * 64, 64, ways=2)
        c.access(0, write=True)
        c.access(1)
        _, wb = c.access(2)   # evicts dirty line 0
        assert wb == 0
        assert c.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = CacheModel(2 * 64, 64, ways=2)
        c.access(0)
        c.access(1)
        _, wb = c.access(2)
        assert wb is None

    def test_write_hit_marks_dirty(self):
        c = CacheModel(2 * 64, 64, ways=2)
        c.access(0)               # clean
        c.access(0, write=True)   # now dirty
        c.access(1)
        _, wb = c.access(2)
        assert wb == 0

    def test_no_allocate_probe(self):
        c = CacheModel(1024, 64, ways=2)
        c.access(5, allocate=False)
        hit, _ = c.access(5)
        assert not hit

    def test_hit_rate(self):
        c = CacheModel(1024, 64, ways=4)
        c.access(1)
        c.access(1)
        c.access(1)
        assert c.hit_rate == pytest.approx(2 / 3)

    def test_reset_stats(self):
        c = CacheModel(1024, 64, ways=4)
        c.access(1)
        c.reset_stats()
        assert c.hits == 0 and c.misses == 0

    def test_sets_isolated(self):
        c = CacheModel(4 * 64, 64, ways=1)  # 4 sets, direct-mapped
        c.access(0)
        c.access(1)  # different set
        hit, _ = c.access(0)
        assert hit
