"""Fault-window execution (DESIGN.md §15) pinning tests.

The contract under test: with fault-window execution enabled, a fault
campaign's per-trial records are **bit-identical** to the reference
interpreter fault path — same outcomes, same descriptions, same cycle
counts, same error codes — while the engine actually runs the fused
fast path (dropping to per-instruction stepping only inside the victim
wave's trigger window) and synthesizes records for trials that provably
cannot fire.  A seeded sweep crosses benchmarks (including multi-launch
FWT, whose victim ordinals live in later launches), RMT variants
(including a selective partial-SoR build), and all three fault targets.
"""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_kernel
from repro.faults.campaign import (
    FaultEnvelope,
    classify_trial,
    draw_plans,
    execute_trial,
)
from repro.faults.injector import FaultHook, FaultPlan, random_plan
from repro.gpu import fused, vectorized
from repro.gpu.schedule import ReorderScheduler
from repro.kernels.suite import make_benchmark
from repro.runtime.api import Session


def _compile(bench, variant):
    if variant == "selective":
        from repro.compiler.passes.rmt_selective import (
            SelectiveOptions,
            SelectiveRmtPass,
        )

        return compile_kernel(
            bench.build(), "selective",
            rmt_pass=SelectiveRmtPass(
                SelectiveOptions(source="priority", threshold=0.5)))
    return bench.compile(variant)


#: FWT (small) performs 12 launches of 64 waves each; drawing victim
#: ordinals up to 96 puts some trials in the *second* launch, pinning
#: the device's running ordinal base.  The small single-dispatch
#: benchmarks keep the campaign default (8), which already overshoots
#: their 4 waves enough to exercise no-fire elision.
_MAX_WAVE = {"FWT": 96}


def _campaign(abbrev, variant, target, trials, seed, window):
    """One serial trial loop, returning (records, envelope)."""
    probe = make_benchmark(abbrev, "small")
    compiled = _compile(probe, variant)
    with fused.fault_window(window):
        golden_session = Session()
        golden = probe.run(golden_session, compiled)
        reference = probe.reference()
        budget = 25.0 * max(golden.cycles, 1.0) + 2_000_000
        envelope = FaultEnvelope(
            wave_instrs=[
                n for r in golden_session.device.stats.launch_results
                for n in r.wave_instrs
            ],
            outcome=classify_trial(probe, golden, reference),
            cycles=golden.cycles)
        plans = draw_plans(seed, trials, target, max_instr=25,
                           max_wave=_MAX_WAVE.get(abbrev, 8))
        records = []
        for i, plan in enumerate(plans):
            bench = make_benchmark(abbrev, "small")
            records.append(execute_trial(
                bench, compiled, plan, budget, index=i,
                reference=reference,
                envelope=envelope if window else None))
    return records, envelope


def _fields(rec):
    """Every record field that must not depend on the execution path.

    ``engine`` is deliberately excluded: it names which path produced
    the record (path metadata, not an outcome).
    """
    return (rec.index, rec.outcome, rec.fired, rec.description,
            rec.cycles, rec.error, rec.bucket, rec.plan)


# ---------------------------------------------------------------------------
# Seeded identity sweep: window path vs interpreter path
# ---------------------------------------------------------------------------


#: benchmark x variant x target corpus.  FWT is multi-launch (12
#: launches x 32 waves), so victim ordinals land in later launches and
#: pin the cross-launch ordinal-base continuity; DWT is the bench/
#: campaign workhorse; NB is a tiny single-group dispatch.
SWEEP = [
    ("FWT", "original", "vgpr"),
    ("FWT", "intra-lds", "vgpr"),
    ("FWT", "intra+lds", "vgpr"),
    ("FWT", "intra+lds", "sgpr"),
    ("FWT", "intra+lds", "lds"),
    ("FWT", "inter", "vgpr"),
    ("FWT", "selective", "vgpr"),
    ("DWT", "original", "lds"),
    ("DWT", "intra+lds", "vgpr"),
    ("DWT", "intra+lds", "sgpr"),
    ("DWT", "inter", "lds"),
    ("DWT", "selective", "sgpr"),
    ("NB", "intra+lds", "vgpr"),
    ("NB", "intra-lds", "lds"),
    ("NB", "selective", "lds"),
]


@pytest.mark.parametrize("abbrev,variant,target", SWEEP,
                         ids=[f"{a}-{v}-{t}" for a, v, t in SWEEP])
def test_window_records_bit_identical_to_interpreter(abbrev, variant, target):
    ref, _ = _campaign(abbrev, variant, target, trials=6, seed=11,
                       window=False)
    win, env = _campaign(abbrev, variant, target, trials=6, seed=11,
                         window=True)
    assert [_fields(r) for r in ref] == [_fields(r) for r in win]
    # Elision must agree exactly with the envelope's reachability bound,
    # and a trial the envelope admits must really have fired.
    for r_ref, r_win in zip(ref, win):
        if r_win.engine == "elided":
            assert not env.can_fire(r_win.plan)
            assert not r_ref.fired
        else:
            assert env.can_fire(r_win.plan) or not r_win.fired


def test_sweep_covers_cross_launch_ordinals():
    """FWT's plan stream must include victims beyond the first launch —
    otherwise the sweep would never exercise the device's running
    ordinal base."""
    probe = make_benchmark("FWT", "small")
    compiled = probe.compile("intra+lds")
    session = Session()
    probe.run(session, compiled)
    launches = session.device.stats.launch_results
    assert len(launches) > 1
    first = launches[0].waves_launched
    plans = draw_plans(11, 6, "vgpr", max_instr=25,
                       max_wave=_MAX_WAVE["FWT"])
    total = sum(r.waves_launched for r in launches)
    assert any(first <= p.wave_ordinal < total for p in plans), (
        "seed 11 no longer reaches a later-launch ordinal; pick another")


# ---------------------------------------------------------------------------
# Engine routing
# ---------------------------------------------------------------------------


def test_reorder_scheduler_with_hook_forces_standard_engine():
    bench = make_benchmark("FWT", "small")
    compiled = bench.compile("intra+lds")
    plan = FaultPlan("vgpr", 0, 3, 12, 9, 0)
    hook = FaultHook(plan, scalar_reg_ids=compiled.uniformity.uniform_regs)
    with vectorized.vector(True):
        res = bench.run(Session(scheduler=ReorderScheduler("reverse")),
                        compiled, fault_hook=hook)
    assert all(l.engine_kind == "standard" for l in res.launches)


def test_controlled_scheduler_with_hook_forces_standard_engine():
    from repro.mc.controlled import ControlledScheduler

    bench = make_benchmark("NB", "small")
    compiled = bench.compile("original")
    plan = FaultPlan("vgpr", 0, 3, 12, 9, 0)
    hook = FaultHook(plan, scalar_reg_ids=compiled.uniformity.uniform_regs)
    with vectorized.vector(True):
        res = bench.run(Session(scheduler=ControlledScheduler()),
                        compiled, fault_hook=hook)
    assert all(l.engine_kind == "standard" for l in res.launches)


def test_plain_callable_hook_keeps_reference_interpreter():
    """A hook without ``supports_window`` observes every instruction, so
    it must see exactly ``sum(wave_instrs)`` calls."""
    bench = make_benchmark("NB", "small")
    compiled = bench.compile("original")
    calls = []
    session = Session()
    res = bench.run(session, compiled,
                    fault_hook=lambda wave, instr: calls.append(1))
    total = sum(n for l in session.device.stats.launch_results
                for n in l.wave_instrs)
    assert len(calls) == total > 0
    assert all(l.engine_kind == "standard" for l in res.launches)


def test_window_disabled_records_standard_engine():
    recs, _ = _campaign("NB", "intra+lds", "vgpr", trials=4, seed=3,
                        window=False)
    assert all(r.engine == "standard" for r in recs)


# ---------------------------------------------------------------------------
# FaultHook memory regression (satellite: unbounded per-wave state)
# ---------------------------------------------------------------------------


def test_hook_state_does_not_grow_with_waves():
    """The hook used to key private state by wave identity, which grew
    without bound across a campaign's thousands of launches.  Ordinal
    stamping moved wave identity into the engine; the hook must now hold
    no collection that grows as more waves run through it."""
    bench = make_benchmark("FWT", "small")
    compiled = bench.compile("intra+lds")
    # Victim ordinal far beyond the dispatch: the hook stays armed (and
    # observing) for the whole run, the worst case for retained state.
    plan = FaultPlan("vgpr", 10_000, 3, 12, 9, 0)
    hook = FaultHook(plan, scalar_reg_ids=compiled.uniformity.uniform_regs)

    def sizes():
        return {k: len(v) for k, v in vars(hook).items()
                if isinstance(v, (dict, list, set))}

    with fused.fault_window(False):
        bench.run(Session(), compiled, fault_hook=hook)
        first = sizes()
        for _ in range(3):
            bench.run(Session(), compiled, fault_hook=hook)
        assert sizes() == first


# ---------------------------------------------------------------------------
# Batched plan generation (satellite: vectorized SeedSequence draws)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("target", ["vgpr", "sgpr", "lds"])
def test_draw_plan_batch_matches_per_trial_streams(target):
    from repro.faults.planner import draw_plan_batch
    from repro.orchestrator.seeding import trial_rng

    for seed, trials, mw, mi in [(11, 40, 8, 20), (1234, 17, 16, 120),
                                 (0, 1, 4, 10)]:
        got = draw_plan_batch(seed, trials, target, max_wave=mw,
                              max_instr=mi)
        want = [random_plan(trial_rng(seed, i), target, max_wave=mw,
                            max_instr=mi) for i in range(trials)]
        assert got == want, (seed, trials, target)


def test_draw_plans_prefix_stability():
    """Plan *i* depends only on (seed, i): a longer draw is a superset."""
    assert draw_plans(11, 8, "vgpr") == draw_plans(11, 32, "vgpr")[:8]


# ---------------------------------------------------------------------------
# Toggle plumbing
# ---------------------------------------------------------------------------


def test_fault_window_toggle_default_on_and_context():
    assert fused.fault_window_enabled()
    with fused.fault_window(False):
        assert not fused.fault_window_enabled()
        with fused.fault_window(True):
            assert fused.fault_window_enabled()
        assert not fused.fault_window_enabled()
    assert fused.fault_window_enabled()
