"""End-to-end daemon tests: concurrency, dedup, cancellation, drain.

The daemon runs in-process (`start_background`) for most tests — real
Unix sockets, real threads, private event loop — and as a genuine
subprocess for the SIGTERM drain test.  Socket paths live under a short
``/tmp`` tempdir because ``AF_UNIX`` paths are limited to ~108 bytes
(pytest's ``tmp_path`` can exceed that).
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time

import pytest

from repro.faults import campaign_report, run_campaign
from repro.kernels import SMALL_SUITE
from repro.orchestrator import read_journal
from repro.serve import ServeClient, ServeConfig, ServeError, start_background
from repro.serve.jobs import campaign_journal_stem
from repro.serve.protocol import parse_job
from repro.tv import certify_matrix

#: One fast campaign spec shared by the dedup/bit-identity tests.
CAMPAIGN_JOB = {"kind": "campaign", "benchmark": "FWT", "trials": 6,
                "seed": 7, "max_wave": 2, "max_instr": 12}
#: A campaign long enough to cancel/drain mid-flight.
LONG_CAMPAIGN = {"kind": "campaign", "benchmark": "FWT", "trials": 40,
                 "seed": 11, "max_wave": 2, "max_instr": 12}

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                   "src")


@pytest.fixture()
def served():
    """A background daemon on a fresh short-path socket; drains on exit."""
    root = tempfile.mkdtemp(dir="/tmp", prefix="rsrv-")
    sock = os.path.join(root, "d.sock")
    handle = start_background(ServeConfig(
        socket=sock, max_jobs=2, job_workers=1,
        journal_dir=os.path.join(root, "journals"),
        drain_grace_s=30.0,
    ))
    try:
        yield handle, sock, root
    finally:
        handle.drain()
        handle.join(30)
        shutil.rmtree(root, ignore_errors=True)


def strip_telemetry(doc):
    return {k: v for k, v in doc.items() if k != "telemetry"}


class TestBasics:
    def test_ping_status_and_bad_ops(self, served):
        _, sock, _ = served
        with ServeClient(sock, timeout=30) as c:
            assert c.ping()["event"] == "pong"
            status = c.status()
            assert status["event"] == "status" and not status["draining"]
            c._send({"op": "frobnicate"})
            assert "unknown op" in c._recv()["error"]
            c._send({"op": "submit", "id": "x", "job": {"kind": "compile"}})
            ev = c._recv()
            assert ev["event"] == "error" and ev["status"] == "rejected"

    def test_compile_job(self, served):
        _, sock, _ = served
        with ServeClient(sock, timeout=60) as c:
            r = c.compile("FWT", variant="intra+lds")
            assert r["event"] == "result" and not r["cached"]
            res = r["result"]
            assert res["certified"] and res["variant"] == "intra+lds"
            assert res["fingerprint"] and res["resources"]["vgprs_per_workitem"] > 0

    def test_compile_failure_reports_error(self, served):
        _, sock, _ = served
        with ServeClient(sock, timeout=60) as c:
            with pytest.raises(ServeError):
                c.submit({"kind": "campaign", "benchmark": "FWT",
                          "trials": -1})

    def test_bad_priority_and_deadline_rejected_not_fatal(self, served):
        """Malformed submit envelopes get an error event; the connection
        survives (a ValueError escaping _dispatch used to tear it down)."""
        _, sock, _ = served
        job = {"kind": "compile", "benchmark": "FWT"}
        with ServeClient(sock, timeout=30) as c:
            c._send({"op": "submit", "id": "p", "job": job,
                     "priority": "high"})
            ev = c._recv()
            assert ev["event"] == "error" and ev["status"] == "rejected"
            assert "priority" in ev["error"]
            # bool is an int subclass; deadline_s=true must not become a
            # 1-second deadline.
            c._send({"op": "submit", "id": "d", "job": job,
                     "deadline_s": True})
            ev = c._recv()
            assert ev["event"] == "error" and ev["status"] == "rejected"
            assert "deadline_s" in ev["error"]
            assert c.ping()["event"] == "pong"

    def test_campaign_journal_stem_carries_full_identity(self):
        """Jobs differing in scale (or fault-plan bounds) must never map
        to the same resumable journal file."""
        base = parse_job({"kind": "campaign", "benchmark": "FWT"}).as_dict()
        stems = {campaign_journal_stem(base),
                 campaign_journal_stem({**base, "scale": "paper"}),
                 campaign_journal_stem({**base, "max_wave": 4}),
                 campaign_journal_stem({**base, "max_instr": 50})}
        assert len(stems) == 4


class TestDedup:
    def test_duplicate_fingerprint_compiled_exactly_once(self, served):
        """Two tenants, same structural kernel: one compile, two answers."""
        handle, sock, _ = served
        job = {"kind": "compile", "benchmark": "FWT",
               "variant": "intra+lds", "opt": 1}
        with ServeClient(sock, timeout=60) as a:
            first = a.submit(job)
        with ServeClient(sock, timeout=60) as b:
            second = b.submit(job)
        assert not first["cached"] and second["cached"]
        assert first["key"] == second["key"]
        assert first["result"] == second["result"]
        daemon = handle.daemon
        assert daemon.executed == 1                 # one job ran, ever
        stats = daemon.store.stats()
        assert stats["stores"] == 1 and stats["hits"] == 1

    def test_inflight_duplicates_coalesce(self, served):
        """Same key submitted while running: single-flight, both answered."""
        handle, sock, _ = served
        results = {}

        def submit(name):
            with ServeClient(sock, timeout=120) as c:
                events = list(c.iter_submit(dict(CAMPAIGN_JOB)))
                results[name] = events

        threads = [threading.Thread(target=submit, args=(n,))
                   for n in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120)
        terminals = {n: evs[-1] for n, evs in results.items()}
        assert all(t["event"] == "result" for t in terminals.values())
        assert (strip_telemetry(terminals["a"]["result"]["campaign"]) ==
                strip_telemetry(terminals["b"]["result"]["campaign"]))
        daemon = handle.daemon
        # One submission ran the campaign; the other either coalesced
        # onto it or (if it lost the race entirely) hit the store.
        assert daemon.executed == 1
        assert daemon.coalesced + daemon.store.hits == 1


class TestBatchParity:
    def test_campaign_matches_batch_run_bit_for_bit(self, served):
        _, sock, _ = served
        with ServeClient(sock, timeout=120) as c:
            daemon_doc = c.submit(dict(CAMPAIGN_JOB))["result"]["campaign"]
        batch = run_campaign(
            SMALL_SUITE["FWT"], "intra+lds", "vgpr",
            trials=CAMPAIGN_JOB["trials"], seed=CAMPAIGN_JOB["seed"],
            max_wave=CAMPAIGN_JOB["max_wave"],
            max_instr=CAMPAIGN_JOB["max_instr"], workers=1)
        batch_doc = campaign_report(batch)
        assert strip_telemetry(daemon_doc) == batch_doc

    def test_certify_matches_tv_cli_engine(self, served):
        _, sock, _ = served
        with ServeClient(sock, timeout=120) as c:
            daemon_doc = c.submit({"kind": "certify", "benchmark": "FWT",
                                   "variants": ["intra+lds"],
                                   "opt_levels": [0]})["result"]
        rows, summary = certify_matrix(["FWT"], ["intra+lds"], [0])
        assert daemon_doc["results"] == rows
        assert daemon_doc["summary"] == summary
        assert daemon_doc["ok"]


class TestMixedWorkload:
    def test_n_concurrent_clients(self, served):
        """Four clients, three job kinds, all answered correctly."""
        _, sock, _ = served
        jobs = [
            {"kind": "compile", "benchmark": "FWT", "variant": "intra+lds"},
            {"kind": "compile", "benchmark": "DCT", "variant": "inter"},
            {"kind": "certify", "benchmark": "FWT",
             "variants": ["intra-lds"], "opt_levels": [1]},
            dict(CAMPAIGN_JOB),
        ]
        outcome = {}

        def drive(i, job):
            with ServeClient(sock, timeout=180) as c:
                outcome[i] = c.submit(job)

        threads = [threading.Thread(target=drive, args=(i, j))
                   for i, j in enumerate(jobs)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(180)
        assert sorted(outcome) == [0, 1, 2, 3]
        assert all(o["event"] == "result" for o in outcome.values())
        assert outcome[0]["result"]["kernel"] != outcome[1]["result"]["kernel"]
        assert outcome[2]["result"]["ok"]
        assert outcome[3]["result"]["complete"]


class TestCancellation:
    def test_cancel_mid_campaign_leaves_resumable_journal(self, served):
        _, sock, root = served
        events = []
        with ServeClient(sock, timeout=120) as c:
            for ev in c.iter_submit(dict(LONG_CAMPAIGN), cid="kill-me"):
                events.append(ev)
                if ev["event"] == "journal" and len(events) > 3:
                    c.cancel(cid="kill-me")
        terminal = events[-1]
        assert terminal["event"] == "cancelled"
        partial = terminal["result"]
        assert partial["complete"] is False
        journal_path = partial["journal"]
        header, entries = read_journal(journal_path)
        assert header["meta"]["scale"] == "small"   # part of journal identity
        done = [e for e in entries if e["kind"] == "trial"]
        assert 0 < len(done) < LONG_CAMPAIGN["trials"]

        # Resubmitting the same job resumes the journal to completion.
        with ServeClient(sock, timeout=600) as c:
            finished = c.submit(dict(LONG_CAMPAIGN))
        assert finished["result"]["complete"]
        assert finished["result"]["campaign"]["trials"] == LONG_CAMPAIGN["trials"]
        _, entries = read_journal(journal_path)
        trials = [e for e in entries if e["kind"] == "trial"]
        assert len(trials) == LONG_CAMPAIGN["trials"]
        assert len({e["index"] for e in trials}) == LONG_CAMPAIGN["trials"]

    def test_deadline_stops_a_running_campaign(self, served):
        _, sock, _ = served
        with ServeClient(sock, timeout=120) as c:
            with pytest.raises(ServeError) as exc:
                c.submit(dict(LONG_CAMPAIGN, seed=12), deadline_s=1.0)
        assert exc.value.payload["status"] == "deadline"


class TestDrain:
    def test_drain_checkpoints_running_campaign(self, served):
        handle, sock, root = served
        events = []
        with ServeClient(sock, timeout=120) as c:
            for ev in c.iter_submit(dict(LONG_CAMPAIGN, seed=13)):
                events.append(ev)
                if ev["event"] == "journal" and len(events) > 3:
                    handle.drain()
        terminal = events[-1]
        assert terminal["event"] == "checkpointed"
        assert terminal["result"]["complete"] is False
        handle.join(30)
        assert not handle.alive

        # A fresh daemon over the same journal dir completes the job.
        sock2 = os.path.join(root, "d2.sock")
        handle2 = start_background(ServeConfig(
            socket=sock2, journal_dir=os.path.join(root, "journals")))
        try:
            with ServeClient(sock2, timeout=600) as c:
                finished = c.submit(dict(LONG_CAMPAIGN, seed=13))
            assert finished["result"]["complete"]
            assert (finished["result"]["campaign"]["trials"]
                    == LONG_CAMPAIGN["trials"])
        finally:
            handle2.drain()
            handle2.join(30)

    def test_submissions_rejected_while_draining(self, served):
        """Drain holds for the running campaign but rejects new work."""
        handle, sock, _ = served
        with ServeClient(sock, timeout=120) as c:
            c._send({"op": "submit", "id": "bg",
                     "job": dict(LONG_CAMPAIGN, seed=19)})
            saw_rejection = saw_checkpoint = False
            while not (saw_rejection and saw_checkpoint):
                ev = c._recv()
                if ev.get("id") == "bg" and ev["event"] == "journal" \
                        and not handle.daemon.draining:
                    handle.drain()
                    c._send({"op": "submit", "id": "late",
                             "job": {"kind": "compile", "benchmark": "FWT"}})
                elif ev.get("id") == "late":
                    assert ev["event"] == "error"
                    assert "draining" in ev["error"]
                    saw_rejection = True
                elif ev.get("id") == "bg" and ev["event"] == "checkpointed":
                    saw_checkpoint = True


@pytest.mark.slow
class TestSigterm:
    def test_sigterm_drains_and_journal_resumes(self):
        """Real daemon process, real SIGTERM, journal survives, resumes."""
        root = tempfile.mkdtemp(dir="/tmp", prefix="rsig-")
        sock = os.path.join(root, "d.sock")
        journals = os.path.join(root, "journals")
        env = {**os.environ, "PYTHONPATH": SRC}
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "--socket", sock,
             "--journal-dir", journals, "--drain-grace", "60"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        try:
            deadline = time.monotonic() + 30
            while not os.path.exists(sock):
                assert proc.poll() is None, proc.stderr.read().decode()
                assert time.monotonic() < deadline, "daemon never bound"
                time.sleep(0.1)

            events = []
            with ServeClient(sock, timeout=120) as c:
                for ev in c.iter_submit(dict(LONG_CAMPAIGN, seed=17)):
                    events.append(ev)
                    if ev["event"] == "journal" and len(events) > 3:
                        proc.send_signal(signal.SIGTERM)
            assert events[-1]["event"] == "checkpointed"
            assert proc.wait(timeout=60) == 0

            journal_path = events[-1]["result"]["journal"]
            _, entries = read_journal(journal_path)
            partial = [e for e in entries if e["kind"] == "trial"]
            assert 0 < len(partial) < LONG_CAMPAIGN["trials"]

            # The checkpointed journal resumes to completion in batch
            # mode — daemon and CLI share one journal format.
            result = run_campaign(
                SMALL_SUITE["FWT"], "intra+lds", "vgpr",
                trials=LONG_CAMPAIGN["trials"], seed=17,
                max_wave=LONG_CAMPAIGN["max_wave"],
                max_instr=LONG_CAMPAIGN["max_instr"],
                journal=journal_path, resume=True)
            assert result.trials == LONG_CAMPAIGN["trials"]
            _, entries = read_journal(journal_path)
            assert [e["kind"] for e in entries][-1] == "campaign"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(10)
            shutil.rmtree(root, ignore_errors=True)
