"""Tests for the host runtime Session and RMT launch adaptation."""

import numpy as np
import pytest

from repro.compiler import compile_kernel
from repro.compiler.passes.rmt_common import INTER_COUNTER, INTER_FLAG
from repro.ir import DType, KernelBuilder
from repro.runtime import Session


def _kernel():
    b = KernelBuilder("k")
    a = b.buffer_param("a", DType.F32)
    out = b.buffer_param("out", DType.F32)
    gid = b.global_id(0)
    b.store(out, gid, b.mul(b.load(a, gid), 2.0))
    k = b.finish()
    k.metadata["local_size"] = (64, 1, 1)
    return k


class TestBuffers:
    def test_upload_download_roundtrip(self):
        s = Session()
        data = np.arange(16, dtype=np.float32)
        buf = s.upload("x", data)
        np.testing.assert_array_equal(s.download(buf), data)

    def test_zeros(self):
        s = Session()
        buf = s.zeros("z", 8, np.uint32)
        assert (s.download(buf) == 0).all()

    def test_download_reflects_device_writes(self):
        s = Session()
        compiled = compile_kernel(_kernel(), "original")
        ab = s.upload("a", np.ones(128, dtype=np.float32))
        ob = s.zeros("out", 128, np.float32)
        s.launch(compiled, 128, 64, {"a": ab, "out": ob})
        assert (s.download(ob) == 2.0).all()


class TestRmtAdaptation:
    def test_original_ndrange_unchanged(self):
        s = Session()
        compiled = compile_kernel(_kernel(), "original")
        ab = s.upload("a", np.zeros(128, dtype=np.float32))
        ob = s.zeros("out", 128, np.float32)
        res = s.launch(compiled, 128, 64, {"a": ab, "out": ob})
        assert res.groups_launched == 2

    def test_intra_doubles_local_and_global(self):
        s = Session()
        compiled = compile_kernel(_kernel(), "intra+lds")
        ab = s.upload("a", np.zeros(128, dtype=np.float32))
        ob = s.zeros("out", 128, np.float32)
        res = s.launch(compiled, 128, 64, {"a": ab, "out": ob})
        assert res.groups_launched == 2          # same group count
        assert res.waves_launched == 4           # doubled work-items

    def test_inter_doubles_groups_and_binds_hidden_buffers(self):
        s = Session()
        compiled = compile_kernel(_kernel(), "inter")
        ab = s.upload("a", np.zeros(128, dtype=np.float32))
        ob = s.zeros("out", 128, np.float32)
        res = s.launch(compiled, 128, 64, {"a": ab, "out": ob})
        assert res.groups_launched == 4
        hidden = [n for n in s.device.memory.buffers if n.startswith("__rmt_")]
        assert any(n.startswith(INTER_COUNTER) for n in hidden)
        assert any(n.startswith(INTER_FLAG) for n in hidden)

    def test_inter_hidden_buffers_fresh_per_launch(self):
        s = Session()
        compiled = compile_kernel(_kernel(), "inter")
        ab = s.upload("a", np.zeros(128, dtype=np.float32))
        ob = s.zeros("out", 128, np.float32)
        s.launch(compiled, 128, 64, {"a": ab, "out": ob})
        s.launch(compiled, 128, 64, {"a": ab, "out": ob})
        counters = [n for n in s.device.memory.buffers
                    if n.startswith(INTER_COUNTER)]
        assert len(counters) == 2

    def test_elapsed_cycles_accumulate(self):
        s = Session()
        compiled = compile_kernel(_kernel(), "original")
        ab = s.upload("a", np.zeros(128, dtype=np.float32))
        ob = s.zeros("out", 128, np.float32)
        s.launch(compiled, 128, 64, {"a": ab, "out": ob})
        first = s.elapsed_cycles
        s.launch(compiled, 128, 64, {"a": ab, "out": ob})
        assert s.elapsed_cycles > first

    def test_detections_aggregated(self):
        b = KernelBuilder("err")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        with b.if_(b.eq(gid, 0)):
            b.report_error()
        b.store(out, gid, gid)
        k = b.finish()
        k.metadata["local_size"] = (64, 1, 1)
        s = Session()
        compiled = compile_kernel(k, "original")
        ob = s.zeros("out", 64, np.uint32)
        s.launch(compiled, 64, 64, {"out": ob})
        s.launch(compiled, 64, 64, {"out": ob})
        assert len(s.detections()) == 2

    def test_power_report_available(self):
        s = Session()
        compiled = compile_kernel(_kernel(), "original")
        ab = s.upload("a", np.zeros(4096, dtype=np.float32))
        ob = s.zeros("out", 4096, np.float32)
        s.launch(compiled, 4096, 64, {"a": ab, "out": ob})
        rep = s.power_report()
        assert rep.average_w > 0
        assert rep.peak_w >= rep.average_w
