"""Correctness of the content-addressed compile cache (PR 5).

The cache must be a pure memoisation: a hit is exactly the compile that
would have run.  These tests pin the fingerprint's equivalence class
(stable across processes, invariant under register renaming, sensitive
to every semantic input) and the disk tier's failure behaviour
(corruption degrades to a clean recompile).
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.compiler import cache as cc
from repro.compiler.cache import (
    CompileCache,
    Uncacheable,
    compile_key,
    kernel_fingerprint,
    pass_fingerprint,
)
from repro.compiler.pipeline import compile_kernel, rmt_pass_for
from repro.ir.builder import KernelBuilder
from repro.ir.types import DType
from repro.kernels.suite import make_benchmark
from repro.runtime.api import Session

REPO_SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def _build_kernel(reg_hint="t", buf_name="out", const=3):
    kb = KernelBuilder("fp_probe")
    out = kb.buffer_param(buf_name, DType.U32)
    gid = kb.global_id(0)
    x = kb.var(DType.U32, kb.add(gid, kb.const(const, DType.U32)),
               hint=reg_hint)
    kb.store(out, gid, x)
    kernel = kb.finish()
    kernel.metadata.update({
        "local_size": (64, 1, 1), "global_size": (64, 1, 1),
        "buffer_nelems": {buf_name: 64},
    })
    return kernel


# -- fingerprint equivalence class -----------------------------------------


def test_fingerprint_deterministic_within_process():
    assert kernel_fingerprint(_build_kernel()) == kernel_fingerprint(
        _build_kernel())


def test_fingerprint_stable_across_process_restarts():
    code = (
        "from tests.test_compile_cache import _build_kernel\n"
        "from repro.compiler.cache import kernel_fingerprint\n"
        "print(kernel_fingerprint(_build_kernel()))\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [REPO_SRC, os.path.join(REPO_SRC, os.pardir)])
    env["PYTHONHASHSEED"] = "99"      # hash randomisation must not leak in
    out = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True)
    assert out.returncode == 0, out.stderr
    assert out.stdout.strip() == kernel_fingerprint(_build_kernel())


def test_fingerprint_invariant_under_register_renaming():
    # Register names are never semantic: only their def/use structure is.
    assert kernel_fingerprint(_build_kernel(reg_hint="t")) == \
        kernel_fingerprint(_build_kernel(reg_hint="zz"))


def test_fingerprint_sensitive_to_buffer_renaming():
    # Buffer names ARE semantic (the runtime binds by name).
    assert kernel_fingerprint(_build_kernel(buf_name="out")) != \
        kernel_fingerprint(_build_kernel(buf_name="dst"))


def test_fingerprint_sensitive_to_ir_mutation():
    assert kernel_fingerprint(_build_kernel(const=3)) != \
        kernel_fingerprint(_build_kernel(const=4))


def test_fingerprint_sensitive_to_metadata():
    a, b = _build_kernel(), _build_kernel()
    b.metadata["buffer_nelems"] = {"out": 128}
    assert kernel_fingerprint(a) != kernel_fingerprint(b)


# -- compile keys ----------------------------------------------------------


def _key(kernel, **kw):
    base = dict(variant="original", communication=True, verify=True,
                optimize=False, lint=True, validate=True)
    base.update(kw)
    return compile_key(kernel, **base)


def test_key_distinct_per_option():
    k = _build_kernel()
    base = _key(k)
    assert base is not None
    assert _key(k, optimize=True) != base
    assert _key(k, variant="intra+lds") != base
    assert _key(k, lint=False) != base
    assert _key(k, validate=False) != base
    assert _key(k, communication=False) != base


def test_key_includes_planted_pass_configuration():
    k = _build_kernel()
    stock = _key(k, variant="intra+lds")
    planted = _key(k, variant="intra+lds",
                   rmt_pass=rmt_pass_for("intra+lds", communication=False))
    assert stock != planted


def test_key_matches_for_structurally_identical_builds():
    assert _key(_build_kernel()) == _key(_build_kernel(reg_hint="other"))


def _build_protected_kernel(protected=True):
    kb = KernelBuilder("fp_protect")
    out = kb.buffer_param("out", DType.U32)
    gid = kb.global_id(0)
    if protected:
        with kb.protect("hot"):
            kb.store(out, gid, gid)
    else:
        kb.store(out, gid, gid)
    kernel = kb.finish()
    kernel.metadata.update({
        "local_size": (64, 1, 1), "global_size": (64, 1, 1),
        "buffer_nelems": {"out": 64},
    })
    return kernel


def test_fingerprint_sensitive_to_protect_regions():
    """A protect() annotation changes selective-build semantics, so a
    partial build may never alias a fully-unannotated entry."""
    assert kernel_fingerprint(_build_protected_kernel(True)) != \
        kernel_fingerprint(_build_protected_kernel(False))


def test_key_sensitive_to_selective_policy():
    from repro.compiler.passes.rmt_selective import (
        SelectiveOptions, SelectiveRmtPass)

    k = _build_protected_kernel()
    keys = {
        _key(k, variant="selective",
             rmt_pass=SelectiveRmtPass(SelectiveOptions(
                 source=source, threshold=threshold)))
        for source, threshold in (
            ("regions", 1.0), ("priority", 1.0), ("priority", 0.5))
    }
    assert None not in keys          # the pass stays cacheable
    assert len(keys) == 3            # every policy is its own entry


def test_selective_cache_hit_returns_identical_object():
    from repro.compiler.passes.rmt_selective import (
        SelectiveOptions, SelectiveRmtPass)

    cache = CompileCache()
    opts = SelectiveOptions(source="regions")
    c1 = compile_kernel(_build_protected_kernel(), "selective",
                        rmt_pass=SelectiveRmtPass(opts), cache=cache)
    c2 = compile_kernel(_build_protected_kernel(), "selective",
                        rmt_pass=SelectiveRmtPass(opts), cache=cache)
    assert c1 is c2
    assert cache.stats.mem_hits == 1


def test_uncacheable_pass_disables_caching_not_compilation():
    class WeirdPass:
        name = "weird"

        def __init__(self):
            self.fn = lambda k: k    # closures have no canonical encoding

        def run(self, kernel):
            return kernel

    with pytest.raises(Uncacheable):
        pass_fingerprint(WeirdPass())
    assert _key(_build_kernel(), rmt_pass=WeirdPass()) is None

    cache = CompileCache()
    compiled = compile_kernel(_build_kernel(), "original",
                              rmt_pass=WeirdPass(), cache=cache)
    assert compiled is not None
    assert len(cache) == 0
    assert cache.stats.uncacheable == 1


# -- memory tier -----------------------------------------------------------


def test_memory_hit_returns_identical_compiled_object():
    cache = CompileCache()
    c1 = compile_kernel(_build_kernel(), "original", cache=cache)
    c2 = compile_kernel(_build_kernel(), "original", cache=cache)
    assert c1 is c2
    assert cache.stats.mem_hits == 1 and cache.stats.stores == 1


def test_cache_hit_skips_lint_and_tv(monkeypatch):
    import repro.compiler.tv as tv_mod

    calls = {"tv": 0}
    real = tv_mod.validate_compile

    def counting(*a, **kw):
        calls["tv"] += 1
        return real(*a, **kw)

    monkeypatch.setattr(tv_mod, "validate_compile", counting)
    cache = CompileCache()
    bench = make_benchmark("FWT", "small")
    for _ in range(4):
        compile_kernel(bench.build(), "intra+lds", cache=cache)
    assert calls["tv"] == 1


def test_cache_false_bypasses():
    cache = CompileCache()
    cc.set_default_cache(cache)
    try:
        c1 = compile_kernel(_build_kernel(), "original", cache=False)
        c2 = compile_kernel(_build_kernel(), "original", cache=False)
    finally:
        cc.set_default_cache(None)
    assert c1 is not c2
    assert len(cache) == 0


def test_memory_tier_evicts_at_capacity():
    cache = CompileCache(max_entries=2)
    for const in (1, 2, 3):
        compile_kernel(_build_kernel(const=const), "original", cache=cache)
    assert len(cache) == 2


# -- disk tier -------------------------------------------------------------


def test_disk_roundtrip_and_bitwise_equal_execution(tmp_path):
    disk = str(tmp_path / "cc")
    bench = make_benchmark("FWT", "small")
    store = CompileCache(disk_dir=disk)
    original = compile_kernel(bench.build(), "intra+lds", cache=store)
    assert store.stats.stores == 1

    fresh = CompileCache(disk_dir=disk)       # simulates a new process
    restored = compile_kernel(bench.build(), "intra+lds", cache=fresh)
    assert fresh.stats.disk_hits == 1 and fresh.stats.stores == 0
    assert restored is not original

    ref = make_benchmark("FWT", "small").run(Session(), original)
    got = make_benchmark("FWT", "small").run(Session(), restored)
    assert ref.cycles == got.cycles
    for name in ref.outputs:
        assert np.array_equal(ref.outputs[name], got.outputs[name])


def test_disk_corruption_degrades_to_clean_recompile(tmp_path):
    disk = str(tmp_path / "cc")
    store = CompileCache(disk_dir=disk)
    compile_kernel(_build_kernel(), "original", cache=store)
    [entry] = [f for f in os.listdir(disk) if f.endswith(".pkl")]
    with open(os.path.join(disk, entry), "wb") as fh:
        fh.write(b"\x00not a pickle")

    fresh = CompileCache(disk_dir=disk)
    compiled = compile_kernel(_build_kernel(), "original", cache=fresh)
    assert compiled is not None
    assert fresh.stats.disk_errors == 1
    assert fresh.stats.stores == 1            # re-stored a good entry
    # ... and the replacement entry is loadable again.
    again = CompileCache(disk_dir=disk)
    compile_kernel(_build_kernel(), "original", cache=again)
    assert again.stats.disk_hits == 1


def test_disk_truncated_entry_recovers(tmp_path):
    disk = str(tmp_path / "cc")
    store = CompileCache(disk_dir=disk)
    compile_kernel(_build_kernel(), "original", cache=store)
    [entry] = [f for f in os.listdir(disk) if f.endswith(".pkl")]
    path = os.path.join(disk, entry)
    data = open(path, "rb").read()
    with open(path, "wb") as fh:
        fh.write(data[: len(data) // 2])
    fresh = CompileCache(disk_dir=disk)
    assert compile_kernel(_build_kernel(), "original", cache=fresh) is not None
    assert fresh.stats.disk_errors == 1


# -- environment wiring ----------------------------------------------------


def test_default_cache_env_off(monkeypatch):
    monkeypatch.setenv("REPRO_COMPILE_CACHE", "0")
    cc.set_default_cache(None)
    cc._initialised = False
    try:
        assert cc.default_cache() is None
    finally:
        cc._initialised = False


def test_default_cache_env_disk_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_COMPILE_CACHE", str(tmp_path / "dc"))
    cc._initialised = False
    try:
        cache = cc.default_cache()
        assert cache is not None and cache.disk_dir == str(tmp_path / "dc")
    finally:
        cc.set_default_cache(None)
        cc._initialised = False
