"""Structural and semantic tests for the Intra-Group RMT pass."""

import numpy as np
import pytest

from repro.compiler import IntraGroupRmtPass, RmtOptions, compile_kernel
from repro.compiler.pass_manager import PassManager
from repro.compiler.passes.rmt_common import INTRA_COMM_ADDR, INTRA_COMM_VAL
from repro.ir import (
    DType,
    KernelBuilder,
    ReportError,
    SpecialId,
    StoreGlobal,
    StoreLocal,
    Swizzle,
    verify_kernel,
    walk_instrs,
)
from repro.runtime import Session


def _base_kernel(with_lds=True):
    b = KernelBuilder("base")
    a = b.buffer_param("a", DType.F32)
    out = b.buffer_param("out", DType.F32)
    gid = b.global_id(0)
    x = b.load(a, gid)
    if with_lds:
        lds = b.local_alloc("tile", DType.F32, 64)
        lid = b.local_id(0)
        b.store_local(lds, lid, x)
        b.barrier()
        x = b.load_local(lds, lid)
    b.store(out, gid, b.mul(x, 3.0))
    k = b.finish()
    k.metadata["local_size"] = (64, 1, 1)
    return k


def _transform(include_lds=True, communication=True, fast=False, kernel=None):
    p = IntraGroupRmtPass(RmtOptions(
        include_lds=include_lds, communication=communication, fast_comm=fast))
    return PassManager([p]).run(kernel or _base_kernel())


class TestStructure:
    def test_transformed_verifies(self):
        verify_kernel(_transform())

    def test_metadata_recorded(self):
        k = _transform(include_lds=False)
        meta = k.metadata["rmt"]
        assert meta["flavor"] == "intra"
        assert meta["include_lds"] is False
        assert meta["ndrange"] == "double_local_dim0"
        assert k.metadata["local_size"] == (128, 1, 1)

    def test_original_ids_replaced(self):
        k = _transform()
        # The only remaining get_global_id(0)s are the prologue's raw
        # queries; the body's were replaced by moves.
        specials = [i for i in walk_instrs(k.body) if isinstance(i, SpecialId)]
        body_gids = [s for s in specials if s.kind == "global_id"]
        assert len(body_gids) == 1    # prologue only

    def test_lds_allocations_doubled_when_included(self):
        k = _transform(include_lds=True)
        assert k.local("tile").nelems == 128

    def test_lds_allocations_kept_when_excluded(self):
        k = _transform(include_lds=False)
        assert k.local("tile").nelems == 64

    def test_comm_buffers_allocated(self):
        k = _transform()
        assert k.local(INTRA_COMM_ADDR).nelems == 64
        assert k.local(INTRA_COMM_VAL).nelems == 64

    def test_fast_comm_uses_swizzle_not_lds(self):
        k = _transform(fast=True)
        assert any(isinstance(i, Swizzle) for i in walk_instrs(k.body))
        with pytest.raises(KeyError):
            k.local(INTRA_COMM_ADDR)

    def test_report_error_present_iff_communicating(self):
        k = _transform(communication=True)
        assert any(isinstance(i, ReportError) for i in walk_instrs(k.body))
        k2 = _transform(communication=False)
        assert not any(isinstance(i, ReportError) for i in walk_instrs(k2.body))

    def test_minus_lds_guards_local_stores(self):
        """−LDS inserts comparisons for local stores too (more ReportError
        paths than +LDS, which only guards the global store)."""
        plus = _transform(include_lds=True)
        minus = _transform(include_lds=False)
        n_plus = sum(1 for i in walk_instrs(plus.body) if isinstance(i, ReportError))
        n_minus = sum(1 for i in walk_instrs(minus.body) if isinstance(i, ReportError))
        assert n_minus > n_plus

    def test_missing_local_size_metadata_rejected(self):
        k = _base_kernel()
        del k.metadata["local_size"]
        with pytest.raises(ValueError, match="local_size"):
            _transform(kernel=k)


class TestSemantics:
    def _run(self, variant, kernel=None, n=512):
        kernel = kernel or _base_kernel()
        compiled = compile_kernel(kernel, variant)
        s = Session()
        data = np.arange(n, dtype=np.float32)
        ab = s.upload("a", data)
        ob = s.zeros("out", n, np.float32)
        res = s.launch(compiled, n, 64, {"a": ab, "out": ob})
        return s.download(ob), res

    @pytest.mark.parametrize("variant", [
        "intra+lds", "intra-lds", "intra+lds_fast", "intra-lds_fast",
    ])
    def test_output_equivalence(self, variant):
        expect, _ = self._run("original")
        got, res = self._run(variant)
        np.testing.assert_array_equal(got, expect)
        assert not res.detections

    def test_doubles_workitems(self):
        _, orig = self._run("original")
        _, rmt = self._run("intra+lds")
        assert rmt.waves_launched == 2 * orig.waves_launched
        assert rmt.groups_launched == orig.groups_launched

    def test_wrong_local_size_rejected_at_launch(self):
        compiled = compile_kernel(_base_kernel(), "intra+lds")
        s = Session()
        ab = s.upload("a", np.zeros(512, dtype=np.float32))
        ob = s.zeros("out", 512, np.float32)
        with pytest.raises(ValueError, match="local size"):
            s.launch(compiled, 512, 128, {"a": ab, "out": ob})


class TestDetection:
    def test_forced_mismatch_detected(self):
        """Corrupting one producer lane's store value raises the flag."""
        from repro.faults import FaultHook, FaultPlan

        kernel = _base_kernel(with_lds=False)
        compiled = compile_kernel(kernel, "intra+lds")
        # Find the multiply feeding the store; flip its result in an odd
        # (producer) lane right before the comparison executes.
        plan = FaultPlan(target="vgpr", wave_ordinal=0, trigger_instr=4,
                         bit=12, lane=33, victim_index=0)
        hook = FaultHook(plan, scalar_reg_ids=compiled.uniformity.uniform_regs)
        s = Session()
        ab = s.upload("a", np.arange(512, dtype=np.float32))
        ob = s.zeros("out", 512, np.float32)
        res = s.launch(compiled, 512, 64, {"a": ab, "out": ob},
                       fault_hook=hook)
        assert hook.record.fired
        assert res.detections, "fault in producer lane must be detected"
