"""Tests for the greedy reproducer minimizer (repro.fuzz.shrink)."""

import pytest

from repro.fuzz.generator import generate_program
from repro.fuzz.oracle import RunSpec, check_program
from repro.fuzz.program import BufferSpec, FuzzProgram, Op
from repro.fuzz.shrink import (
    ShrinkResult,
    count_ops,
    same_errors_predicate,
    shrink_program,
)
from tests.test_fuzz_oracle import OffByOnePass, planted_probe


def _padded_probe() -> FuzzProgram:
    """The planted probe wrapped in junk the shrinker should remove:
    dead ALU chains, an empty-ish branch, and a pointless loop."""
    prog = planted_probe()
    pad = [
        Op("const", result=100, dtype="u32", imm=5),
        Op("alu", result=101, dtype="u32", op="mul", args=(100, 100)),
        Op("alu", result=102, dtype="u32", op="add", args=(101, 100)),
        Op("cmp", result=103, op="lt", args=(100, 101)),
        Op("if", args=(103,), body=[
            Op("alu", result=104, dtype="u32", op="xor", args=(101, 102)),
        ]),
        Op("for", result=105, imm=(0, 3, 1), body=[
            Op("alu", result=106, dtype="u32", op="sub", args=(102, 100)),
        ]),
    ]
    prog.ops[0:0] = pad
    assert prog.validate() == []
    return prog


class TestCountOps:
    def test_counts_nested(self):
        p = _padded_probe()
        assert count_ops(p) == 6 + 2 + 6  # probe + nested + pad tops


class TestPredicates:
    def test_non_reproducing_input_rejected(self):
        with pytest.raises(ValueError):
            shrink_program(planted_probe(), lambda p: False)

    def test_same_errors_predicate_matches_signature(self):
        runs = [RunSpec("original", optimize=False,
                        extra_passes=(OffByOnePass(),), lint=False)]
        report = check_program(planted_probe(), runs=runs)
        assert report.errors
        pred = same_errors_predicate(report, runs=runs)
        assert pred(planted_probe())
        # A program with no store cannot reproduce a store miscompare.
        no_store = planted_probe()
        no_store.ops = [op for op in no_store.ops if op.kind != "store"]
        assert not pred(no_store)


class TestStructuralShrink:
    """Cheap structural predicate: exercises the reduction machinery
    without paying for oracle runs on every candidate."""

    def _has_store(self, prog: FuzzProgram) -> bool:
        def walk(ops):
            return any(op.kind == "store" or walk(op.body) or walk(op.orelse)
                       for op in ops)
        return prog.validate() == [] and walk(prog.ops)

    def test_shrinks_generated_program_to_store_core(self):
        prog = generate_program(0)
        result = shrink_program(prog, self._has_store)
        assert isinstance(result, ShrinkResult)
        assert result.ops_after < result.ops_before
        assert result.program.validate() == []
        assert self._has_store(result.program)
        # Greedy fixpoint: the store plus its index/value dep chains.
        assert result.ops_after <= 12

    def test_provenance_stamped(self):
        prog = generate_program(0)
        result = shrink_program(prog, self._has_store)
        assert result.program.meta["shrunk_from"] == prog.digest()
        assert result.program.meta["shrink_attempts"] == result.attempts
        assert result.program.meta["seed"] == 0

    def test_input_program_not_mutated(self):
        prog = generate_program(0)
        before = prog.spec_repr()
        shrink_program(prog, self._has_store)
        assert prog.spec_repr() == before


class TestOracleShrink:
    def test_padded_probe_shrinks_to_core(self):
        """End-to-end: minimize a real miscompare under the oracle
        predicate.  The junk padding must go; the load/add/store chain
        that makes the off-by-one visible must stay."""
        runs = [RunSpec("original", optimize=False,
                        extra_passes=(OffByOnePass(),), lint=False)]
        prog = _padded_probe()
        report = check_program(prog, runs=runs)
        assert report.errors
        result = shrink_program(prog, same_errors_predicate(report, runs=runs),
                                max_rounds=4)
        assert result.ops_after < count_ops(prog)
        assert result.ops_after <= 6
        final = check_program(result.program, runs=runs)
        assert any(f.kind == "miscompare" for f in final.errors)
