"""Regression tests for the RMT atomic double-execution bug.

The fuzzing subsystem's first differential catch: both RMT passes used
to leave user atomics unguarded, so the producer *and* consumer replica
each performed the RMW — an ``atomic add`` of ``gid+1`` over 64 items
yielded 4160 instead of 2080.  The fix executes the atomic once (in the
producer's lane/group) and forwards the old value to the consumer, so
``want_old`` results stay replica-consistent without a detection.

These tests pin the fixed semantics for every atomic op the generator
uses (add/max/or), both ``want_old`` modes, and every RMT variant.
"""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_kernel
from repro.ir.builder import KernelBuilder
from repro.ir.types import DType
from repro.runtime.api import Session

N = 64
LOCAL = 16
VARIANTS = ("original", "intra+lds", "intra-lds", "inter")


def _launch(kernel, variant, optimize=False, n=N, bufs=()):
    compiled = compile_kernel(kernel, variant=variant, optimize=optimize)
    s = Session()
    bindings = {name: s.upload(name, data.copy()) for name, data in bufs}
    res = s.launch(compiled, n, LOCAL, bindings)
    return {name: s.download(b) for name, b in bindings.items()}, res


def _atomic_kernel(op, value_of, want_old):
    """acc[0] <op>= value_of(gid); optionally out[gid] = old."""
    b = KernelBuilder(f"atomic_{op}_{int(want_old)}")
    acc = b.buffer_param("acc", DType.U32)
    out = b.buffer_param("out", DType.U32)
    gid = b.global_id(0)
    zero = b.const(0, DType.U32)
    old = b.atomic(op, acc, zero, value_of(b, gid), want_old=want_old)
    if want_old:
        b.store(out, gid, old)
    else:
        b.store(out, gid, gid)
    k = b.finish()
    k.metadata["local_size"] = (LOCAL, 1, 1)
    return k


def _bufs():
    return (("acc", np.zeros(1, np.uint32)), ("out", np.zeros(N, np.uint32)))


class TestSingleExecution:
    """The original repro: add of gid+1 must total 2080, not 4160."""

    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("optimize", [False, True])
    def test_add_totals_once(self, variant, optimize):
        k = _atomic_kernel("add", lambda b, g: b.add(g, b.const(1, DType.U32)),
                           want_old=False)
        mem, res = _launch(k, variant, optimize, bufs=_bufs())
        assert int(mem["acc"][0]) == N * (N + 1) // 2  # 2080
        assert not res.detections

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_max_bitwise_identical(self, variant):
        k = _atomic_kernel("max", lambda b, g: g, want_old=False)
        mem, res = _launch(k, variant, bufs=_bufs())
        assert int(mem["acc"][0]) == N - 1
        assert not res.detections

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_or_bitwise_identical(self, variant):
        def val(b, g):
            # 1 << (gid & 31): all 64 lanes together set all 32 bits.
            return b.shl(b.const(1, DType.U32), b.and_(g, b.const(31, DType.U32)))
        k = _atomic_kernel("or", val, want_old=False)
        mem, res = _launch(k, variant, bufs=_bufs())
        assert int(mem["acc"][0]) == 0xFFFFFFFF
        assert not res.detections


class TestWantOld:
    """With ``want_old`` the consumer must see the producer's old value
    (replica-consistent), not perform its own RMW."""

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_add_old_values_consistent(self, variant):
        total = N * (N + 1) // 2
        k = _atomic_kernel("add", lambda b, g: b.add(g, b.const(1, DType.U32)),
                           want_old=True)
        mem, res = _launch(k, variant, bufs=_bufs())
        assert not res.detections, (
            "replica-divergent old values => double execution regressed")
        assert int(mem["acc"][0]) == total
        old = mem["out"].astype(np.uint64)
        # Each old value is a strict partial sum: in [0, total) and, with
        # the lane's own increment added, at most the final total.
        gids = np.arange(N, dtype=np.uint64)
        assert (old < total).all()
        assert (old + gids + 1 <= total).all()
        # Old values are distinct (each RMW observed a unique prefix).
        assert len(set(old.tolist())) == N

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_max_old_values_bounded(self, variant):
        k = _atomic_kernel("max", lambda b, g: g, want_old=True)
        mem, res = _launch(k, variant, bufs=_bufs())
        assert not res.detections
        assert int(mem["acc"][0]) == N - 1
        assert (mem["out"] < N).all()


class TestCrossVariantDeterminism:
    """Deterministic atomics (single kind per cell) must be bit-identical
    across the whole variant matrix — the fuzz oracle's core invariant."""

    def test_full_matrix_identical_memory(self):
        k = None
        golden = None
        for variant in VARIANTS:
            k = _atomic_kernel("max", lambda b, g: g, want_old=False)
            mem, res = _launch(k, variant, bufs=_bufs())
            assert not res.detections
            if golden is None:
                golden = mem
            else:
                for name in golden:
                    np.testing.assert_array_equal(golden[name], mem[name])
