"""Journal persistence/resume, seed derivation, and telemetry statistics."""

import json

import numpy as np
import pytest

from repro.faults import draw_plans
from repro.orchestrator import (
    Journal,
    JournalError,
    Telemetry,
    child_sequence,
    read_journal,
    trial_rng,
)


class TestJournal:
    def test_header_and_entries_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path, meta={"seed": 7, "trials": 4}) as j:
            j.append("trial", index=0, outcome="masked")
            j.append("trial", index=1, outcome="sdc")
        header, entries = read_journal(path)
        assert header["kind"] == "header"
        assert header["meta"] == {"seed": 7, "trials": 4}
        assert [e["index"] for e in entries] == [0, 1]

    def test_fresh_open_truncates(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path, meta={"seed": 1}) as j:
            j.append("trial", index=0)
        with Journal(path, meta={"seed": 1}):
            pass
        _, entries = read_journal(path)
        assert entries == []

    def test_resume_loads_and_appends(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path, meta={"seed": 1}) as j:
            j.append("trial", index=0)
        with Journal(path, meta={"seed": 1}, resume=True) as j:
            assert j.completed_indices() == {0}
            j.append("trial", index=1)
        _, entries = read_journal(path)
        assert [e["index"] for e in entries] == [0, 1]

    def test_resume_meta_mismatch_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        Journal(path, meta={"seed": 1, "trials": 8}).close()
        with pytest.raises(JournalError, match="different campaign"):
            Journal(path, meta={"seed": 2, "trials": 8}, resume=True)

    def test_resume_of_missing_file_starts_fresh(self, tmp_path):
        path = tmp_path / "missing.jsonl"
        with Journal(path, meta={"seed": 1}, resume=True) as j:
            assert j.entries() == []
        assert path.exists()

    def test_truncated_final_line_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path, meta={"seed": 1}) as j:
            j.append("trial", index=0, outcome="masked")
        with path.open("a") as fh:
            fh.write('{"kind": "trial", "index": 1, "outco')  # killed mid-write
        header, entries = read_journal(path)
        assert [e["index"] for e in entries] == [0]
        with Journal(path, meta={"seed": 1}, resume=True) as j:
            assert j.completed_indices() == {0}

    def test_headerless_file_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(json.dumps({"kind": "trial", "index": 0}) + "\n")
        with pytest.raises(JournalError, match="not a journal header"):
            read_journal(path)

    def test_closed_journal_refuses_writes(self, tmp_path):
        j = Journal(tmp_path / "j.jsonl", meta={})
        j.close()
        with pytest.raises(JournalError, match="closed"):
            j.append("trial", index=0)


class TestSeeding:
    def test_child_is_pure_function_of_seed_and_index(self):
        a = trial_rng(99, 5).integers(0, 2**31, 4)
        b = trial_rng(99, 5).integers(0, 2**31, 4)
        assert (a == b).all()

    def test_children_independent_of_each_other(self):
        draws = {i: trial_rng(7, i).integers(0, 2**31, 4).tolist()
                 for i in range(8)}
        assert len({tuple(v) for v in draws.values()}) == 8

    def test_matches_numpy_spawn(self):
        spawned = np.random.SeedSequence(1234).spawn(6)
        for i, child in enumerate(spawned):
            ours = child_sequence(1234, i)
            assert ours.generate_state(4).tolist() == \
                   child.generate_state(4).tolist()

    def test_plans_independent_of_trial_count(self):
        # Plan i must not depend on how many trials surround it — the
        # property that makes sharded campaigns bit-identical to serial.
        short = draw_plans(42, 4, "vgpr", max_wave=8, max_instr=24)
        long = draw_plans(42, 16, "vgpr", max_wave=8, max_instr=24)
        assert [vars(p) for p in short] == [vars(p) for p in long[:4]]

    def test_plans_vary_across_trials_and_seeds(self):
        plans = draw_plans(42, 16, "vgpr")
        assert len({tuple(sorted(vars(p).items())) for p in plans}) > 1
        other = draw_plans(43, 16, "vgpr")
        assert [vars(p) for p in plans] != [vars(p) for p in other]


class TestTelemetry:
    def test_counts_eta_and_summary(self):
        tel = Telemetry(label="t")
        tel.start(10, skipped=2)
        for i in range(4):
            tel.task_done(task_id=i, duration=0.01)
            tel.note_outcome("masked" if i % 2 else "sdc", shard=i % 2)
        s = tel.summary()
        assert s["completed"] == 4 and s["skipped"] == 2
        assert s["outcomes"] == {"masked": 2, "sdc": 2}
        assert s["shard_outcomes"]["0"]["sdc"] == 2
        assert tel.eta_s() is not None and tel.eta_s() >= 0
        line = tel.progress_line()
        assert "[6/10]" in line and "masked=2" in line

    def test_event_cap_bounds_memory(self):
        tel = Telemetry(event_cap=10)
        for i in range(25):
            tel.emit("tick", i=i)
        assert len(tel.events) == 10
        assert tel.dropped_events == 15
        assert tel.events[-1].fields["i"] == 24

    def test_progress_paints_single_line(self):
        class Sink:
            def __init__(self):
                self.text = ""

            def write(self, s):
                self.text += s

            def flush(self):
                pass

        sink = Sink()
        tel = Telemetry(label="p", progress=True, stream=sink,
                        min_refresh_s=0.0)
        tel.start(2)
        tel.task_done(task_id=0)
        tel.task_done(task_id=1)
        tel.finish()
        assert "[2/2]" in sink.text
        assert sink.text.endswith("\n")
