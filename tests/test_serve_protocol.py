"""Wire protocol: framing, job validation/canonicalisation, dedup keys."""

import json

import pytest

from repro.serve.protocol import (
    JobSpec,
    ProtocolError,
    decode_line,
    encode_line,
    job_key,
    parse_job,
)


class TestFraming:
    def test_roundtrip(self):
        msg = {"op": "submit", "id": "c1", "job": {"kind": "compile"}}
        assert decode_line(encode_line(msg)) == msg

    def test_one_object_per_line(self):
        line = encode_line({"a": 1})
        assert line.endswith(b"\n") and b"\n" not in line[:-1]

    def test_bad_json_rejected(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_line(b"{not json\n")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_line(b"[1,2,3]\n")


class TestParseJob:
    def test_compile_defaults(self):
        spec = parse_job({"kind": "compile", "benchmark": "FWT"})
        assert spec.kind == "compile"
        assert spec.as_dict() == {
            "kind": "compile", "benchmark": "FWT", "scale": "small",
            "variant": "original", "opt": 0,
        }

    def test_certify_defaults(self):
        spec = parse_job({"kind": "certify", "benchmark": "FWT"})
        d = spec.as_dict()
        assert list(d["variants"]) == ["original", "intra+lds",
                                       "intra-lds", "inter"]
        assert list(d["opt_levels"]) == [0, 1]

    def test_campaign_defaults(self):
        spec = parse_job({"kind": "campaign", "benchmark": "FWT"})
        d = spec.as_dict()
        assert d["variant"] == "intra+lds"
        assert d["target"] == "vgpr"
        assert d["trials"] == 32 and d["seed"] == 1234
        assert d["workers"] == 0 and d["timeout_s"] is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError, match="unknown kind"):
            parse_job({"kind": "transpile", "benchmark": "FWT"})

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ProtocolError, match="unknown benchmark"):
            parse_job({"kind": "compile", "benchmark": "NOPE"})

    def test_unknown_field_rejected(self):
        # A typo like "trails" must not silently run a default campaign.
        with pytest.raises(ProtocolError, match="trails"):
            parse_job({"kind": "campaign", "benchmark": "FWT", "trails": 5})

    def test_bad_variant_rejected(self):
        with pytest.raises(ProtocolError, match="unknown variant"):
            parse_job({"kind": "compile", "benchmark": "FWT",
                       "variant": "triple"})

    def test_bool_is_not_an_int(self):
        with pytest.raises(ProtocolError, match="trials"):
            parse_job({"kind": "campaign", "benchmark": "FWT", "trials": True})

    def test_bool_is_not_a_timeout(self):
        with pytest.raises(ProtocolError, match="timeout_s"):
            parse_job({"kind": "campaign", "benchmark": "FWT",
                       "timeout_s": True})

    def test_out_of_range_rejected(self):
        with pytest.raises(ProtocolError, match="opt"):
            parse_job({"kind": "compile", "benchmark": "FWT", "opt": 2})

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_job("compile FWT")

    def test_params_are_canonical(self):
        # Two spellings of the same request produce identical specs.
        a = parse_job({"kind": "compile", "benchmark": "FWT"})
        b = parse_job({"kind": "compile", "benchmark": "FWT",
                       "variant": "original", "opt": 0, "scale": "small"})
        assert a == b

    def test_label(self):
        spec = parse_job({"kind": "compile", "benchmark": "FWT",
                          "variant": "intra+lds", "opt": 1})
        assert spec.label == "compile FWT/intra+lds@O1"


class TestJobKey:
    def test_deterministic(self):
        spec = parse_job({"kind": "compile", "benchmark": "FWT"})
        assert job_key(spec) == job_key(spec)

    def test_defaulted_and_explicit_share_a_key(self):
        a = parse_job({"kind": "campaign", "benchmark": "FWT"})
        b = parse_job({"kind": "campaign", "benchmark": "FWT",
                       "variant": "intra+lds", "target": "vgpr",
                       "trials": 32, "seed": 1234})
        assert job_key(a) == job_key(b)

    def test_distinct_params_distinct_keys(self):
        base = {"kind": "campaign", "benchmark": "FWT"}
        keys = {job_key(parse_job(base)),
                job_key(parse_job({**base, "seed": 99})),
                job_key(parse_job({**base, "trials": 64})),
                job_key(parse_job({**base, "target": "sgpr"}))}
        assert len(keys) == 4

    def test_distinct_kinds_distinct_keys(self):
        assert job_key(parse_job({"kind": "compile", "benchmark": "FWT"})) != \
            job_key(parse_job({"kind": "certify", "benchmark": "FWT"}))

    def test_key_is_content_addressed_not_name_addressed(self):
        # The key embeds the structural kernel fingerprint, so two
        # benchmarks with different kernels cannot collide even if every
        # parameter matches.
        a = job_key(parse_job({"kind": "compile", "benchmark": "FWT"}))
        b = job_key(parse_job({"kind": "compile", "benchmark": "DCT"}))
        assert a != b

    def test_spec_is_hashable_and_json_safe(self):
        spec = parse_job({"kind": "certify", "benchmark": "FWT"})
        hash(spec)  # frozen dataclass with tuple params
        json.dumps(spec.as_dict())
