"""Tests for the static-prediction validation harness: rank
correlation, bucket joins, and the bucket plumbing through campaign
records."""

import pytest

from repro.faults import (
    FaultPlan,
    TrialRecord,
    bucket_sdc_rates,
    merge_bucket_outcomes,
    run_campaign,
    spearman,
    validate_predictions,
)
from repro.faults.campaign import CampaignResult
from repro.kernels import SMALL_SUITE


class TestSpearman:
    def test_perfect_monotone(self):
        assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)
        assert spearman([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)

    def test_nonlinear_monotone_still_perfect(self):
        # Rank correlation ignores the shape, only the ordering.
        assert spearman([1, 2, 3, 4], [1, 8, 27, 1000]) == pytest.approx(1.0)

    def test_ties_share_average_rank(self):
        # ys ties on the middle pair; correlation drops below 1 but
        # stays positive and symmetric.
        r = spearman([1, 2, 3, 4], [1, 2, 2, 3])
        assert 0.8 < r < 1.0
        assert spearman([1, 2, 3, 4], [3, 2, 2, 1]) == pytest.approx(-r)

    def test_degenerate_inputs(self):
        assert spearman([], []) == 0.0
        assert spearman([1], [2]) == 0.0
        assert spearman([1, 2, 3], [5, 5, 5]) == 0.0  # zero variance

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            spearman([1, 2], [1])


class TestBucketJoins:
    def test_merge_sums_histograms(self):
        a = CampaignResult("FWT", "original", "vgpr")
        b = CampaignResult("FWT", "original", "vgpr")
        a.bucket_outcomes = {0: {"sdc": 1, "masked": 2}, 3: {"sdc": 4}}
        b.bucket_outcomes = {0: {"sdc": 2}, 1: {"masked": 1}}
        merged = merge_bucket_outcomes([a, b])
        assert merged == {0: {"sdc": 3, "masked": 2}, 1: {"masked": 1},
                          3: {"sdc": 4}}

    def test_sdc_rates(self):
        rates = bucket_sdc_rates({0: {"sdc": 1, "masked": 3},
                                  2: {"masked": 5}})
        assert rates[0] == (0.25, 4)
        assert rates[2] == (0.0, 5)

    def test_trial_record_bucket_round_trip(self):
        plan = FaultPlan("vgpr", 0, 3, 12, 9, 0)
        rec = TrialRecord(index=0, outcome="sdc", plan=plan, fired=True,
                          description="d", cycles=1.0, bucket=3)
        back = TrialRecord.from_json(rec.to_json())
        assert back.bucket == 3

    def test_trial_record_bucket_default_backfills(self):
        """Pre-bucket journals load with bucket=-1 (unknown)."""
        plan = FaultPlan("vgpr", 0, 3, 12, 9, 0)
        rec = TrialRecord(index=0, outcome="sdc", plan=plan, fired=True,
                          description="d", cycles=1.0)
        doc = rec.to_json()
        doc.pop("bucket")
        assert TrialRecord.from_json(doc).bucket == -1


@pytest.mark.slow
class TestCampaignBuckets:
    def test_register_campaign_stamps_buckets(self):
        r = run_campaign(SMALL_SUITE["FWT"], "original", "vgpr",
                         trials=10, seed=3, max_instr=20)
        fired = [t for t in r.records if t.fired]
        assert fired
        assert any(t.bucket >= 0 for t in fired)
        assert sum(sum(h.values()) for h in r.bucket_outcomes.values()) \
            == sum(1 for t in fired if t.bucket >= 0)

    def test_serial_and_sharded_bucket_histograms_agree(self):
        a = run_campaign(SMALL_SUITE["FWT"], "original", "vgpr",
                         trials=10, seed=3, max_instr=20, workers=1)
        b = run_campaign(SMALL_SUITE["FWT"], "original", "vgpr",
                         trials=10, seed=3, max_instr=20, workers=2)
        assert a.bucket_outcomes == b.bucket_outcomes

    def test_validate_predictions_smoke(self):
        report = validate_predictions("FWT", targets=("vgpr",), trials=12,
                                      seed=11, max_instr=20)
        assert -1.0 <= report.rank_correlation <= 1.0
        assert report.bucket_outcomes
        doc = report.to_json()
        assert doc["benchmark"] == "FWT"
        assert set(doc["sdc_rates"]) == {str(b) for b
                                         in report.bucket_outcomes}
