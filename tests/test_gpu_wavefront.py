"""Tests for the wavefront interpreter: ALU semantics, masks, IDs, LDS."""

import numpy as np
import pytest

from repro.gpu import Device
from repro.ir import DType, KernelBuilder


def _run_elementwise(build_fn, inputs, out_dtype=np.float32, n=64,
                     out_name="out", local=64, scalars=None):
    """Build a 1-in/1-out elementwise kernel with build_fn(b, x) -> result."""
    b = KernelBuilder("t")
    in_dt = {
        np.float32: DType.F32, np.int32: DType.I32, np.uint32: DType.U32,
    }[inputs.dtype.type]
    out_dt = {
        np.float32: DType.F32, np.int32: DType.I32, np.uint32: DType.U32,
    }[out_dtype]
    a = b.buffer_param("a", in_dt)
    out = b.buffer_param("out", out_dt)
    gid = b.global_id(0)
    x = b.load(a, gid)
    b.store(out, gid, build_fn(b, x))
    k = b.finish()

    dev = Device()
    ab = dev.alloc("a", inputs)
    ob = dev.alloc_zeros("out", n, out_dtype)
    dev.launch(k, n, local, {"a": ab, "out": ob}, scalars=scalars or {})
    return dev.read_buffer(ob)


class TestAluSemantics:
    def test_float_arith(self):
        x = np.linspace(-4, 4, 64).astype(np.float32)
        got = _run_elementwise(lambda b, v: b.add(b.mul(v, 2.0), 1.0), x)
        np.testing.assert_allclose(got, x * 2 + 1, rtol=1e-6)

    def test_div_float(self):
        x = np.linspace(1, 8, 64).astype(np.float32)
        got = _run_elementwise(lambda b, v: b.div(1.0, v), x)
        np.testing.assert_allclose(got, 1.0 / x, rtol=1e-6)

    def test_int_div_truncates_toward_zero(self):
        x = np.array([-7, -1, 1, 7] * 16, dtype=np.int32)
        got = _run_elementwise(lambda b, v: b.div(v, 2), x, out_dtype=np.int32)
        np.testing.assert_array_equal(got, np.array([-3, 0, 0, 3] * 16))

    def test_int_rem_sign(self):
        x = np.array([-7, -3, 3, 7] * 16, dtype=np.int32)
        got = _run_elementwise(lambda b, v: b.rem(v, 4), x, out_dtype=np.int32)
        np.testing.assert_array_equal(got, np.array([-3, -3, 3, 3] * 16))

    def test_div_by_zero_integer_is_zero(self):
        x = np.zeros(64, dtype=np.uint32)
        got = _run_elementwise(lambda b, v: b.div(7, v), x, out_dtype=np.uint32)
        np.testing.assert_array_equal(got, np.zeros(64, dtype=np.uint32))

    def test_shifts(self):
        x = np.arange(64, dtype=np.uint32)
        got = _run_elementwise(lambda b, v: b.shl(v, 2), x, out_dtype=np.uint32)
        np.testing.assert_array_equal(got, x << 2)
        got = _run_elementwise(lambda b, v: b.shr(v, 1), x, out_dtype=np.uint32)
        np.testing.assert_array_equal(got, x >> 1)

    def test_ashr_arithmetic(self):
        x = np.array([-8, 8] * 32, dtype=np.int32)
        got = _run_elementwise(lambda b, v: b.ashr(v, 1), x, out_dtype=np.int32)
        np.testing.assert_array_equal(got, x >> 1)

    def test_bitwise(self):
        x = np.arange(64, dtype=np.uint32)
        got = _run_elementwise(lambda b, v: b.xor(b.and_(v, 12), 5), x,
                               out_dtype=np.uint32)
        np.testing.assert_array_equal(got, (x & 12) ^ 5)

    def test_minmax(self):
        x = np.linspace(-10, 10, 64).astype(np.float32)
        got = _run_elementwise(lambda b, v: b.min(b.max(v, -2.0), 2.0), x)
        np.testing.assert_allclose(got, np.clip(x, -2, 2), rtol=1e-6)

    def test_transcendentals(self):
        x = np.linspace(0.1, 4, 64).astype(np.float32)
        got = _run_elementwise(lambda b, v: b.sqrt(v), x)
        np.testing.assert_allclose(got, np.sqrt(x), rtol=1e-6)
        got = _run_elementwise(lambda b, v: b.exp(b.log(v)), x)
        np.testing.assert_allclose(got, x, rtol=1e-5)
        got = _run_elementwise(lambda b, v: b.sin(v), x)
        np.testing.assert_allclose(got, np.sin(x), rtol=1e-5, atol=1e-6)

    def test_rsqrt(self):
        x = np.linspace(0.5, 4, 64).astype(np.float32)
        got = _run_elementwise(lambda b, v: b.rsqrt(v), x)
        np.testing.assert_allclose(got, 1 / np.sqrt(x), rtol=1e-5)

    def test_conversions(self):
        x = np.linspace(-7.9, 7.9, 64).astype(np.float32)
        got = _run_elementwise(lambda b, v: b.f2i(v), x, out_dtype=np.int32)
        np.testing.assert_array_equal(got, x.astype(np.int32))
        xi = np.arange(64, dtype=np.int32)
        got = _run_elementwise(lambda b, v: b.i2f(v), xi, out_dtype=np.float32)
        np.testing.assert_array_equal(got, xi.astype(np.float32))

    def test_bitcast_preserves_bits(self):
        x = np.array([1.0, -1.0] * 32, dtype=np.float32)
        got = _run_elementwise(lambda b, v: b.bitcast(v, DType.U32), x,
                               out_dtype=np.uint32)
        np.testing.assert_array_equal(got, x.view(np.uint32))

    def test_select(self):
        x = np.arange(64, dtype=np.uint32)
        got = _run_elementwise(
            lambda b, v: b.select(b.lt(v, 32), v, b.const(0, DType.U32)),
            x, out_dtype=np.uint32)
        np.testing.assert_array_equal(got, np.where(x < 32, x, 0))

    def test_neg_abs(self):
        x = np.linspace(-5, 5, 64).astype(np.float32)
        got = _run_elementwise(lambda b, v: b.abs(b.neg(v)), x)
        np.testing.assert_allclose(got, np.abs(x), rtol=1e-6)

    def test_floor_pow(self):
        x = np.linspace(0.5, 3.5, 64).astype(np.float32)
        got = _run_elementwise(lambda b, v: b.floor(v), x)
        np.testing.assert_array_equal(got, np.floor(x))
        got = _run_elementwise(lambda b, v: b.pow(v, 2.0), x)
        np.testing.assert_allclose(got, x ** 2, rtol=1e-5)


class TestIdsAndGeometry:
    def _ids_kernel(self, kind, dim=0):
        b = KernelBuilder("ids")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        val = getattr(b, kind)(dim)
        b.store(out, gid, val)
        return b.finish()

    def _run_ids(self, kind, dim, gsz, lsz, n):
        dev = Device()
        ob = dev.alloc_zeros("out", n, np.uint32)
        dev.launch(self._ids_kernel(kind, dim), gsz, lsz, {"out": ob})
        return dev.read_buffer(ob)

    def test_global_id(self):
        out = self._run_ids("global_id", 0, 256, 64, 256)
        np.testing.assert_array_equal(out, np.arange(256))

    def test_local_id_wraps(self):
        out = self._run_ids("local_id", 0, 256, 64, 256)
        np.testing.assert_array_equal(out, np.tile(np.arange(64), 4))

    def test_group_id(self):
        out = self._run_ids("group_id", 0, 256, 64, 256)
        np.testing.assert_array_equal(out, np.repeat(np.arange(4), 64))

    def test_sizes(self):
        out = self._run_ids("global_size", 0, 256, 64, 256)
        assert (out == 256).all()
        out = self._run_ids("local_size", 0, 256, 64, 256)
        assert (out == 64).all()
        out = self._run_ids("num_groups", 0, 256, 64, 256)
        assert (out == 4).all()

    def test_2d_global_id(self):
        b = KernelBuilder("ids2d")
        out = b.buffer_param("out", DType.U32)
        gx = b.global_id(0)
        gy = b.global_id(1)
        gsx = b.global_size(0)
        b.store(out, b.add(b.mul(gy, gsx), gx), gy)
        k = b.finish()
        dev = Device()
        ob = dev.alloc_zeros("out", 16 * 8, np.uint32)
        dev.launch(k, (16, 8), (8, 4), {"out": ob})
        out = dev.read_buffer(ob).reshape(8, 16)
        np.testing.assert_array_equal(out, np.repeat(np.arange(8), 16).reshape(8, 16))

    def test_partial_wave_masked(self):
        """local size 32 < wavefront 64: inactive lanes write nothing."""
        b = KernelBuilder("partial")
        out = b.buffer_param("out", DType.U32)
        b.store(out, b.global_id(0), 7)
        k = b.finish()
        dev = Device()
        ob = dev.alloc_zeros("out", 64, np.uint32)
        dev.launch(k, 32, 32, {"out": ob})
        out_v = dev.read_buffer(ob)
        assert (out_v[:32] == 7).all()
        assert (out_v[32:] == 0).all()


class TestControlFlowSemantics:
    def test_divergent_if(self):
        x = np.arange(64, dtype=np.uint32)
        got = _run_elementwise(
            lambda b, v: b.select(b.eq(b.and_(v, 1), 0), v, b.mul(v, 10)),
            x, out_dtype=np.uint32)
        expected = np.where(x % 2 == 0, x, x * 10)
        np.testing.assert_array_equal(got, expected)

    def test_divergent_loop_trip_counts(self):
        """Each lane iterates a different number of times."""
        b = KernelBuilder("k")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        trip = b.rem(gid, 7)
        acc = b.var(DType.U32, 0)
        i = b.var(DType.U32, 0)
        with b.loop() as lp:
            lp.break_unless(b.lt(i, trip))
            b.set(acc, b.add(acc, i))
            b.set(i, b.add(i, 1))
        b.store(out, gid, acc)
        k = b.finish()
        dev = Device()
        ob = dev.alloc_zeros("out", 64, np.uint32)
        dev.launch(k, 64, 64, {"out": ob})
        got = dev.read_buffer(ob)
        trips = np.arange(64) % 7
        expected = np.array([t * (t - 1) // 2 for t in trips], dtype=np.uint32)
        np.testing.assert_array_equal(got, expected)

    def test_nested_if_in_loop(self):
        b = KernelBuilder("k")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        acc = b.var(DType.U32, 0)
        with b.for_range(0, 8) as i:
            with b.if_(b.eq(b.and_(i, 1), 0)):
                b.set(acc, b.add(acc, i))
        b.store(out, gid, acc)
        k = b.finish()
        dev = Device()
        ob = dev.alloc_zeros("out", 64, np.uint32)
        dev.launch(k, 64, 64, {"out": ob})
        assert (dev.read_buffer(ob) == 0 + 2 + 4 + 6).all()


class TestSwizzle:
    def _swizzle(self, **kw):
        b = KernelBuilder("k")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        lid = b.local_id(0)
        s = b.swizzle(lid, **kw)
        b.store(out, gid, s)
        k = b.finish()
        dev = Device()
        ob = dev.alloc_zeros("out", 64, np.uint32)
        dev.launch(k, 64, 64, {"out": ob})
        return dev.read_buffer(ob)

    def test_or_mask_pairs(self):
        out = self._swizzle(or_mask=1)
        lanes = np.arange(64)
        np.testing.assert_array_equal(out, lanes | 1)

    def test_xor_mask_swap(self):
        out = self._swizzle(xor_mask=1)
        lanes = np.arange(64)
        np.testing.assert_array_equal(out, lanes ^ 1)

    def test_and_mask_broadcast_groups(self):
        out = self._swizzle(and_mask=~3)
        lanes = np.arange(64)
        np.testing.assert_array_equal(out, lanes & ~3)


class TestLdsSemantics:
    def test_lds_roundtrip_and_reverse(self):
        b = KernelBuilder("k")
        out = b.buffer_param("out", DType.U32)
        lds = b.local_alloc("tile", DType.U32, 64)
        gid = b.global_id(0)
        lid = b.local_id(0)
        b.store_local(lds, lid, lid)
        b.barrier()
        rev = b.sub(63, lid)
        b.store(out, gid, b.load_local(lds, rev))
        k = b.finish()
        dev = Device()
        ob = dev.alloc_zeros("out", 64, np.uint32)
        dev.launch(k, 64, 64, {"out": ob})
        np.testing.assert_array_equal(dev.read_buffer(ob), 63 - np.arange(64))

    def test_lds_out_of_bounds_raises(self):
        b = KernelBuilder("k")
        out = b.buffer_param("out", DType.U32)
        lds = b.local_alloc("tile", DType.U32, 8)
        b.store_local(lds, b.global_id(0), 1)
        b.store(out, 0, 0)
        k = b.finish()
        dev = Device()
        ob = dev.alloc_zeros("out", 64, np.uint32)
        with pytest.raises(IndexError, match="LDS"):
            dev.launch(k, 64, 64, {"out": ob})

    def test_lds_isolated_between_groups(self):
        b = KernelBuilder("k")
        out = b.buffer_param("out", DType.U32)
        lds = b.local_alloc("tile", DType.U32, 64)
        gid = b.global_id(0)
        lid = b.local_id(0)
        grp = b.group_id(0)
        b.store_local(lds, lid, grp)
        b.barrier()
        b.store(out, gid, b.load_local(lds, lid))
        k = b.finish()
        dev = Device()
        ob = dev.alloc_zeros("out", 128, np.uint32)
        dev.launch(k, 128, 64, {"out": ob})
        got = dev.read_buffer(ob)
        np.testing.assert_array_equal(got, np.repeat([0, 1], 64))
