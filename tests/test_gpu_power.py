"""Tests for the activity-based power model."""

import numpy as np
import pytest

from repro.gpu import DEFAULT_POWER, Device, HD7790, estimate_power
from repro.gpu.counters import KernelCounters
from repro.ir import DType, KernelBuilder


def _counters_with_activity(valu_frac, cycles=2_000_000):
    c = KernelCounters(window_cycles=1_000_000)
    simd_capacity = HD7790.num_cus * HD7790.simds_per_cu
    c.valu.add(0, valu_frac * cycles * simd_capacity / simd_capacity)
    # spread busy across the run at per-window level
    c.valu.windows.clear()
    per_window = valu_frac * 1_000_000 * simd_capacity
    for w in range(cycles // 1_000_000):
        c.valu.windows[w] = per_window
    c.valu.total = per_window * (cycles // 1_000_000)
    return c


class TestPowerModel:
    def test_idle_power_is_static(self):
        c = KernelCounters(window_cycles=1_000_000)
        rep = estimate_power(c, 1_000_000, HD7790, DEFAULT_POWER)
        assert rep.average_w == pytest.approx(DEFAULT_POWER.static_w)
        assert rep.dynamic_avg_w == pytest.approx(0.0)

    def test_full_valu_adds_valu_power(self):
        c = _counters_with_activity(1.0)
        rep = estimate_power(c, 2_000_000, HD7790, DEFAULT_POWER)
        assert rep.average_w == pytest.approx(
            DEFAULT_POWER.static_w + DEFAULT_POWER.valu_w, rel=0.02
        )

    def test_power_monotonic_in_activity(self):
        lo = estimate_power(_counters_with_activity(0.2), 2_000_000, HD7790, DEFAULT_POWER)
        hi = estimate_power(_counters_with_activity(0.8), 2_000_000, HD7790, DEFAULT_POWER)
        assert hi.average_w > lo.average_w

    def test_peak_at_least_average(self):
        c = _counters_with_activity(0.5)
        # make one window busier
        c.valu.windows[0] *= 1.5
        rep = estimate_power(c, 2_000_000, HD7790, DEFAULT_POWER)
        assert rep.peak_w >= rep.average_w

    def test_power_in_figure5_band_for_real_kernel(self):
        """A real kernel's modelled power lands in the paper's 60-74 W band."""
        b = KernelBuilder("k")
        a = b.buffer_param("a", DType.F32)
        out = b.buffer_param("out", DType.F32)
        gid = b.global_id(0)
        acc = b.var(DType.F32, 0.0)
        with b.for_range(0, 32) as _i:
            b.set(acc, b.add(acc, b.load(a, gid)))
        b.store(out, gid, acc)
        k = b.finish()
        dev = Device()
        n = 16384
        ab = dev.alloc("a", np.ones(n, dtype=np.float32))
        ob = dev.alloc_zeros("out", n, np.float32)
        dev.launch(k, n, 64, {"a": ab, "out": ob})
        rep = dev.power_report()
        assert 52.0 <= rep.average_w <= 80.0
