"""Tests for IR core data structures: kernel lookups, cloning, walking."""

import pytest

from repro.ir import (
    Alu,
    DType,
    If,
    KernelBuilder,
    VReg,
    While,
    clone_stmt,
    format_kernel,
    walk_instrs,
    walk_stmts,
)
from repro.compiler import clone_kernel


def _loop_kernel():
    b = KernelBuilder("k")
    a = b.buffer_param("a", DType.F32)
    out = b.buffer_param("out", DType.F32)
    lds = b.local_alloc("tile", DType.F32, 32)
    gid = b.global_id(0)
    acc = b.var(DType.F32, 0.0)
    with b.for_range(0, 4) as i:
        cond = b.lt(i, 2)
        with b.if_(cond):
            b.set(acc, b.add(acc, b.load(a, gid)))
    b.store(out, gid, acc)
    return b.finish()


class TestKernelLookups:
    def test_buffer_lookup(self):
        k = _loop_kernel()
        assert k.buffer("a").dtype is DType.F32
        with pytest.raises(KeyError):
            k.buffer("nope")

    def test_local_lookup(self):
        k = _loop_kernel()
        assert k.local("tile").nelems == 32
        with pytest.raises(KeyError):
            k.local("nope")

    def test_scalar_lookup_missing(self):
        k = _loop_kernel()
        with pytest.raises(KeyError):
            k.scalar("nope")

    def test_lds_bytes(self):
        k = _loop_kernel()
        assert k.lds_bytes() == 32 * 4

    def test_new_reg_unique_names(self):
        k = _loop_kernel()
        r1 = k.new_reg(DType.U32)
        r2 = k.new_reg(DType.U32)
        assert r1.name != r2.name


class TestWalkers:
    def test_walk_instrs_covers_nested(self):
        k = _loop_kernel()
        instrs = list(walk_instrs(k.body))
        assert any(type(i).__name__ == "LoadGlobal" for i in instrs)
        assert any(type(i).__name__ == "StoreGlobal" for i in instrs)

    def test_walk_stmts_includes_control_flow(self):
        k = _loop_kernel()
        stmts = list(walk_stmts(k.body))
        assert any(isinstance(s, While) for s in stmts)
        assert any(isinstance(s, If) for s in stmts)

    def test_all_regs_nonempty(self):
        k = _loop_kernel()
        regs = k.all_regs()
        assert len(regs) > 4
        assert all(isinstance(r, VReg) for r in regs)


class TestCloning:
    def test_clone_stmt_regmap_substitution(self):
        a = VReg("a", DType.U32)
        b_ = VReg("b", DType.U32)
        c = VReg("c", DType.U32)
        instr = Alu("add", c, a, b_)
        new_c = VReg("c2", DType.U32)
        clone = clone_stmt(instr, {c: new_c})
        assert clone.dst is new_c
        assert clone.a is a

    def test_clone_kernel_independent_bodies(self):
        k = _loop_kernel()
        k2 = clone_kernel(k)
        n_before = len(list(walk_instrs(k.body)))
        k2.body.append(Alu("mov", k2.new_reg(DType.U32), k2.all_regs()[0]))
        assert len(list(walk_instrs(k.body))) == n_before

    def test_clone_kernel_metadata_deep_copied(self):
        k = _loop_kernel()
        k.metadata["local_size"] = (64, 1, 1)
        k2 = clone_kernel(k)
        k2.metadata["local_size"] = (128, 1, 1)
        assert k.metadata["local_size"] == (64, 1, 1)

    def test_clone_statement_trees_are_fresh(self):
        k = _loop_kernel()
        k2 = clone_kernel(k)
        loops = [s for s in k.body if isinstance(s, While)]
        loops2 = [s for s in k2.body if isinstance(s, While)]
        assert loops and loops2
        assert loops[0] is not loops2[0]
        assert loops[0].body is not loops2[0].body


class TestPrinter:
    def test_format_kernel_mentions_everything(self):
        k = _loop_kernel()
        text = format_kernel(k)
        assert "kernel k(" in text
        assert "tile[32]" in text
        assert "while" in text
        assert "store_global" in text

    def test_format_kernel_if_else(self):
        b = KernelBuilder("k")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        with b.if_else(b.lt(gid, 1)) as orelse:
            b.store(out, gid, 1)
            with orelse():
                b.store(out, gid, 2)
        text = format_kernel(b.finish())
        assert "} else {" in text
