"""Tests for the experiment harness and figure generation (small scale)."""

import json

import pytest

from repro.eval.experiments import (
    fig2_data,
    fig3_data,
    fig5_data,
    fig8_data,
    table1_data,
    table2_data,
    table3_data,
)
from repro.eval.harness import CACHE_VERSION, Harness
from repro.eval.render import FigureData, format_figure


@pytest.fixture(scope="module")
def harness():
    return Harness(scale="small")


class TestHarness:
    def test_run_records_fields(self, harness):
        rec = harness.run("FWT", "original")
        assert rec.cycles > 0
        assert rec.verified
        assert 0 <= rec.counters["VALUBusy"] <= 1
        assert rec.power_avg_w > 0

    def test_in_memory_cache(self, harness):
        a = harness.run("FWT", "original")
        b = harness.run("FWT", "original")
        assert a is b

    def test_slowdown_of_original_is_one(self, harness):
        assert harness.slowdown("FWT", "original") == pytest.approx(1.0)

    def test_rmt_slowdown_positive(self, harness):
        assert harness.slowdown("FWT", "intra+lds") > 0.5

    def test_capped_run_not_faster_than_uncapped(self, harness):
        base = harness.run("MM", "original")
        capped = harness.run("MM", "original", capped_from="intra+lds")
        assert capped.cycles >= base.cycles * 0.95

    def test_capped_requires_original(self, harness):
        with pytest.raises(ValueError, match="original"):
            harness.run("FWT", "inter", capped_from="inter")

    def test_disk_cache_roundtrip(self, tmp_path):
        path = tmp_path / "cache.json"
        h1 = Harness(scale="small", cache_path=str(path))
        rec = h1.run("PS", "original")
        assert path.exists()
        payload = json.loads(path.read_text())
        assert any(k.startswith(f"v{CACHE_VERSION}/small/PS/") for k in payload)
        h2 = Harness(scale="small", cache_path=str(path))
        rec2 = h2.run("PS", "original")
        assert rec2.cycles == rec.cycles

    def test_stale_cache_version_ignored(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({
            "v0/small/PS/original/comm=True/cap=": {
                "abbrev": "PS", "variant": "original", "scale": "small",
                "communication": True, "cycles": 1.0,
            }
        }))
        h = Harness(scale="small", cache_path=str(path))
        assert not h._cache


class TestStaticFigures:
    def test_table1_reproduces_paper(self):
        fig = table1_data()
        row = fig.row_for("structure", "Vector register file")
        assert row["ecc_kB"] == pytest.approx(56.0)
        assert row["paper_ecc_kB"] == pytest.approx(56.0)

    def test_table2_checkmarks(self):
        fig = table2_data()
        plus = fig.row_for("flavor", "intra+lds")
        minus = fig.row_for("flavor", "intra-lds")
        assert plus["LDS"] and not minus["LDS"]
        assert not plus["SU"] and not minus["SU"]

    def test_table3_checkmarks(self):
        fig = table3_data()
        inter = fig.row_for("flavor", "inter")
        assert inter["SU"] and inter["SRF"] and inter["IF/SCHED"]
        assert not inter["R/W L1$"]

    def test_fig8_swizzle_semantics(self):
        fig = fig8_data()
        for row in fig.rows:
            lane = int(row["lane"][1:])
            assert row["after"] == (lane | 1)


class TestSimFigures:
    @pytest.mark.slow
    def test_fig2_rows_complete(self, harness):
        fig = fig2_data(harness)
        assert len(fig.rows) == 16
        for row in fig.rows:
            assert row["intra+lds"] > 0.4
            assert row["measured_band"] in ("low", "high")

    def test_fig3_three_variants_per_kernel(self, harness):
        fig = fig3_data(harness)
        assert len(fig.rows) == 48

    def test_fig5_power_rows(self, harness):
        fig = fig5_data(harness)
        assert len(fig.rows) == 9
        for row in fig.rows:
            assert row["average_w"] > 0
            assert row["peak_w"] >= row["average_w"] * 0.99


class TestRender:
    def test_format_figure_alignment(self):
        fig = FigureData("F", "demo", ["a", "bb"], [{"a": 1.0, "bb": None}])
        text = format_figure(fig)
        assert "== F: demo ==" in text
        assert "1.00" in text and "-" in text

    def test_row_for_missing(self):
        fig = FigureData("F", "demo", ["a"], [{"a": 1}])
        with pytest.raises(KeyError):
            fig.row_for("a", 2)
