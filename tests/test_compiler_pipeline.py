"""Tests for the compile pipeline and pass manager."""

import pytest

from repro.compiler import (
    PassManager,
    RMT_VARIANTS,
    clone_kernel,
    compile_kernel,
    rmt_pass_for,
)
from repro.compiler.pass_manager import Pass
from repro.ir import DType, KernelBuilder, VerificationError, walk_instrs


def _kernel():
    b = KernelBuilder("k")
    a = b.buffer_param("a", DType.F32)
    out = b.buffer_param("out", DType.F32)
    gid = b.global_id(0)
    b.store(out, gid, b.load(a, gid))
    k = b.finish()
    k.metadata["local_size"] = (64, 1, 1)
    return k


class TestRmtPassFor:
    def test_original_is_none(self):
        assert rmt_pass_for("original") is None

    @pytest.mark.parametrize("variant", [v for v in RMT_VARIANTS if v != "original"])
    def test_known_variants_resolve(self, variant):
        assert rmt_pass_for(variant) is not None

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown RMT variant"):
            rmt_pass_for("bogus")

    def test_fast_flag_parsed(self):
        p = rmt_pass_for("intra-lds_fast")
        assert p.options.fast_comm and not p.options.include_lds


class TestCompileKernel:
    @pytest.mark.parametrize("variant", RMT_VARIANTS)
    def test_compiles_all_variants(self, variant):
        ck = compile_kernel(_kernel(), variant)
        assert ck.variant == variant
        assert ck.resources.vgprs_per_workitem > 0
        assert ck.sor is not None

    def test_original_kernel_untouched(self):
        k = _kernel()
        before = len(list(walk_instrs(k.body)))
        compile_kernel(k, "intra+lds")
        assert len(list(walk_instrs(k.body))) == before
        assert "rmt" not in k.metadata

    def test_scalar_instrs_exposed(self):
        ck = compile_kernel(_kernel(), "original")
        assert isinstance(ck.scalar_instrs, set)

    def test_rmt_metadata_property(self):
        assert compile_kernel(_kernel(), "original").rmt_metadata is None
        assert compile_kernel(_kernel(), "inter").rmt_metadata["flavor"] == "inter"


class TestPassManager:
    def test_verifies_between_passes(self):
        class Corrupting(Pass):
            name = "corrupt"

            def run(self, kernel):
                from repro.ir import Alu, VReg

                ghost = VReg("ghost", DType.U32)
                dst = kernel.new_reg(DType.U32)
                kernel.body.append(Alu("mov", dst, ghost))
                return kernel

        with pytest.raises(VerificationError):
            PassManager([Corrupting()]).run(_kernel())

    def test_verify_disabled(self):
        class Corrupting(Pass):
            def run(self, kernel):
                from repro.ir import Alu, VReg

                ghost = VReg("ghost", DType.U32)
                kernel.body.append(Alu("mov", kernel.new_reg(DType.U32), ghost))
                return kernel

        PassManager([Corrupting()], verify=False).run(_kernel())  # no raise

    def test_empty_pipeline_is_identity_modulo_clone(self):
        k = _kernel()
        out = PassManager([]).run(k)
        assert out is not k
        assert out.name == k.name
        assert len(out.body) == len(k.body)
