"""Tests for repro.ir.types."""

import numpy as np
import pytest

from repro.ir.types import (
    DType,
    MEMORY_DTYPES,
    bitcast_from_u32,
    bitcast_to_u32,
)


class TestDType:
    def test_np_dtypes(self):
        assert DType.I32.np_dtype == np.dtype(np.int32)
        assert DType.U32.np_dtype == np.dtype(np.uint32)
        assert DType.F32.np_dtype == np.dtype(np.float32)
        assert DType.PRED.np_dtype == np.dtype(np.bool_)

    def test_nbytes(self):
        assert DType.I32.nbytes == 4
        assert DType.U32.nbytes == 4
        assert DType.F32.nbytes == 4
        assert DType.PRED.nbytes == 1

    def test_is_float(self):
        assert DType.F32.is_float
        assert not DType.I32.is_float
        assert not DType.U32.is_float

    def test_is_integer(self):
        assert DType.I32.is_integer
        assert DType.U32.is_integer
        assert not DType.F32.is_integer
        assert not DType.PRED.is_integer

    def test_memory_dtypes_excludes_pred(self):
        assert DType.PRED not in MEMORY_DTYPES
        assert set(MEMORY_DTYPES) == {DType.I32, DType.U32, DType.F32}


class TestBitcast:
    def test_f32_roundtrip(self):
        values = np.array([1.5, -2.25, 0.0, np.inf], dtype=np.float32)
        raw = bitcast_to_u32(values)
        assert raw.dtype == np.uint32
        back = bitcast_from_u32(raw, DType.F32)
        np.testing.assert_array_equal(back, values)

    def test_i32_roundtrip(self):
        values = np.array([-1, 0, 2**31 - 1, -2**31], dtype=np.int32)
        back = bitcast_from_u32(bitcast_to_u32(values), DType.I32)
        np.testing.assert_array_equal(back, values)

    def test_negative_float_bits(self):
        value = np.array([-0.0], dtype=np.float32)
        assert bitcast_to_u32(value)[0] == 0x80000000

    def test_bool_to_u32(self):
        values = np.array([True, False], dtype=np.bool_)
        raw = bitcast_to_u32(values)
        np.testing.assert_array_equal(raw, [1, 0])

    def test_u32_to_pred(self):
        raw = np.array([0, 1, 42], dtype=np.uint32)
        back = bitcast_from_u32(raw, DType.PRED)
        np.testing.assert_array_equal(back, [False, True, True])
