"""Execution-digest helper for the scheduler-identity regression tests.

``run_digest`` reduces one benchmark execution to a digest of everything
observable — cycle count, a hash of every output buffer's bytes, counter
totals, detection/launch/event tallies.  The goldens in
``tests/data/schedule_identity.json`` were generated on the engine as it
stood *before* the pluggable-:class:`~repro.gpu.schedule.Scheduler`
refactor; ``test_scheduler_identity.py`` recomputes digests on the
current engine and compares, proving the refactor (and the default
scheduler) is bitwise- and cycle-neutral.

Regenerate (only legitimate after an intentional timing-model change)::

    PYTHONPATH=src:tests python -c \
        "import schedule_identity_util as u; u.write_goldens()"
"""

import hashlib
import json
import os

from repro.compiler.pipeline import compile_kernel
from repro.gpu import fused, vectorized
from repro.gpu.counters import BusyTracker
from repro.kernels.bitonic_sort import BitonicSort
from repro.kernels.fast_walsh import FastWalshTransform
from repro.kernels.reduction import Reduction
from repro.kernels.urng import Urng
from repro.kernels.suite import SMALL_SUITE, make_benchmark
from repro.runtime.api import Session

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data",
                           "schedule_identity.json")

VARIANTS = ("original", "intra+lds", "intra-lds", "inter")
OPT_LEVELS = (False, True)

#: Representative subset both the fast lane and the fused path pin.
FAST_CASES = (
    ("FWT", "intra+lds", False),
    ("FWT", "inter", False),
    ("BinS", "original", False),
    ("MM", "intra-lds", True),
    ("BO", "intra+lds", True),
    ("R", "inter", True),
)

#: Deep multi-workgroup / multi-wavefront launch shapes (4 waves per
#: group before RMT doubling, dozens of resident groups) — the
#: geometries the vectorized engine batches hardest, pinned here against
#: the pre-refactor per-wavefront engine.  Keyed by pseudo-abbreviations
#: resolved through :data:`MULTI_FACTORIES`.
MULTI_FACTORIES = {
    "FWTx4": lambda: FastWalshTransform(n=4096, local_size=256),
    "Rx4": lambda: Reduction(n=8192, local_size=256),
    "BitSx4": lambda: BitonicSort(n=4096, local_size=256),
    "URNGx4": lambda: Urng(n=8192, local_size=256),
}

MULTI_CASES = tuple(
    (abbrev, variant, optimize)
    for abbrev in sorted(MULTI_FACTORIES)
    for (variant, optimize) in (("intra+lds", False), ("inter", False),
                                ("original", True))
)


def make_case_benchmark(abbrev):
    """Resolve an abbreviation to a benchmark (suite or multi-wave)."""
    factory = MULTI_FACTORIES.get(abbrev)
    if factory is not None:
        return factory()
    return make_benchmark(abbrev, "small")


def config_key(abbrev, variant, optimize, fusion_on):
    path = "fused" if fusion_on else "interp"
    return f"{abbrev}/{variant}/O{int(optimize)}/{path}"


def run_digest(abbrev, variant, optimize, fusion_on, scheduler=None,
               vector=False):
    """Execute one suite config and reduce it to a JSON-safe digest.

    ``scheduler`` installs a session-default wavefront scheduler; the
    goldens were captured with the pre-refactor (implicit default)
    order, so any scheduler passed here must claim identity with it.
    ``vector=True`` routes launches through the vectorized run-ahead
    engine (:mod:`repro.gpu.vectorized`), which claims the same
    identity — its digests are compared against the *same* goldens.
    """
    with fused.fusion(fusion_on), vectorized.vector(vector):
        bench = make_case_benchmark(abbrev)
        compiled = compile_kernel(bench.build(), variant,
                                  optimize=optimize, cache=False)
        res = bench.run(Session(scheduler=scheduler), compiled)
    h = hashlib.sha256()
    for name in sorted(res.outputs):
        h.update(name.encode())
        h.update(res.outputs[name].tobytes())
    counters = {}
    for k, v in sorted(vars(res.merged_counters()).items()):
        if isinstance(v, BusyTracker):
            counters[k] = repr(v.total)
        elif isinstance(v, (int, float)):
            counters[k] = repr(v)
    return {
        "cycles": repr(res.cycles),
        "outputs_sha256": h.hexdigest(),
        "counters": counters,
        "detections": len(res.detections),
        "events": [int(l.events_processed) for l in res.launches],
        "waves": [int(l.waves_launched) for l in res.launches],
        "groups": [int(l.groups_launched) for l in res.launches],
    }


def all_keys():
    """Every golden key: full interp matrix + fused digests for FAST_CASES."""
    keys = []
    for abbrev in sorted(SMALL_SUITE):
        for variant in VARIANTS:
            for optimize in OPT_LEVELS:
                keys.append((abbrev, variant, optimize, False))
    for abbrev, variant, optimize in FAST_CASES:
        keys.append((abbrev, variant, optimize, True))
    for abbrev, variant, optimize in MULTI_CASES:
        keys.append((abbrev, variant, optimize, False))
        keys.append((abbrev, variant, optimize, True))
    return keys


def load_goldens():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def write_goldens(path=GOLDEN_PATH):
    goldens = {}
    for abbrev, variant, optimize, fusion_on in all_keys():
        key = config_key(abbrev, variant, optimize, fusion_on)
        goldens[key] = run_digest(abbrev, variant, optimize, fusion_on)
        print(key, "ok", flush=True)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(goldens, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return goldens
