"""Tests for the interval (value-range) abstract interpreter."""

from repro.compiler.analysis.ranges import (
    MASK_BITS,
    Interval,
    analyze_ranges,
    fault_transfer_width,
)
from repro.compiler.analysis.vulnerability import analyze_vulnerability
from repro.ir import DType, KernelBuilder
from repro.ir.core import StoreGlobal, StoreLocal, walk_instrs


def _first_store(kernel):
    return next(
        i for i in walk_instrs(kernel.body)
        if isinstance(i, (StoreGlobal, StoreLocal))
    )


def _with_sizes(kernel, local=16, global_=64, nelems=None):
    kernel.metadata["local_size"] = (local, 1, 1)
    kernel.metadata["global_size"] = (global_, 1, 1)
    if nelems:
        kernel.metadata["buffer_nelems"] = dict(nelems)
    return kernel


class TestInterval:
    def test_hull_and_widen(self):
        a = Interval(0, 10)
        b = Interval(5, 20)
        assert a.hull(b) == Interval(0, 20)
        # Directional widening drops only the bound that moved.
        assert Interval(0, 10).widen(Interval(0, 12)) == Interval(0, None)
        assert Interval(0, 10).widen(Interval(-2, 10)) == Interval(None, 10)
        assert Interval(0, 10).widen(Interval(2, 8)) == Interval(0, 10)

    def test_within(self):
        assert Interval(1, 3).within(0, 7)
        assert not Interval(1, 9).within(0, 7)
        assert not Interval(None, 3).within(0, 7)


class TestTransfers:
    def test_const_and_arith(self):
        b = KernelBuilder("arith")
        out = b.buffer_param("out", DType.U32)
        five = b.const(5, DType.U32)
        three = b.const(3, DType.U32)
        s = b.add(five, three)
        d = b.sub(s, three)
        p = b.mul(s, three)
        b.store(out, d, p)
        k = _with_sizes(b.finish())
        ra = analyze_ranges(k)
        store = _first_store(k)
        assert ra.interval_at(store, s) == Interval(8, 8)
        assert ra.interval_at(store, d) == Interval(5, 5)
        assert ra.interval_at(store, p) == Interval(24, 24)

    def test_special_ids_bounded_by_metadata(self):
        b = KernelBuilder("ids")
        out = b.buffer_param("out", DType.U32)
        lid = b.local_id(0)
        gid = b.global_id(0)
        ls = b.local_size(0)
        b.store(out, gid, b.add(lid, ls))
        k = _with_sizes(b.finish(), local=16, global_=64)
        ra = analyze_ranges(k)
        store = _first_store(k)
        assert ra.interval_at(store, lid) == Interval(0, 15)
        assert ra.interval_at(store, gid) == Interval(0, 63)
        assert ra.interval_at(store, ls) == Interval(16, 16)

    def test_and_mask_reanchors(self):
        """``x & 63`` is machine-exact in [0, 63] even for opaque x."""
        b = KernelBuilder("mask")
        out = b.buffer_param("out", DType.U32)
        inp = b.buffer_param("inp", DType.U32)
        x = b.load(inp, b.global_id(0))
        masked = b.and_(x, b.const(63, DType.U32))
        b.store(out, masked, x)
        k = _with_sizes(b.finish())
        ra = analyze_ranges(k)
        store = _first_store(k)
        assert ra.interval_at(store, masked) == Interval(0, 63)

    def test_rem_reanchors(self):
        b = KernelBuilder("rem")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        r = b.rem(gid, b.const(10, DType.U32))
        b.store(out, r, gid)
        k = _with_sizes(b.finish())
        store = _first_store(k)
        assert analyze_ranges(k).interval_at(store, r) == Interval(0, 9)

    def test_shifts(self):
        b = KernelBuilder("shift")
        out = b.buffer_param("out", DType.U32)
        lid = b.local_id(0)
        dbl = b.shl(lid, b.const(1, DType.U32))
        half = b.shr(lid, b.const(1, DType.U32))
        b.store(out, dbl, half)
        k = _with_sizes(b.finish(), local=16)
        ra = analyze_ranges(k)
        store = _first_store(k)
        assert ra.interval_at(store, dbl) == Interval(0, 30)
        assert ra.interval_at(store, half) == Interval(0, 7)

    def test_u32_sub_admits_underflow(self):
        """Interval arithmetic is mathematical: a u32 subtraction that
        can underflow reads as a possibly-negative value (i.e. the
        machine index may wrap huge), not as zero."""
        b = KernelBuilder("under")
        out = b.buffer_param("out", DType.U32)
        lid = b.local_id(0)
        d = b.sub(lid, b.const(8, DType.U32))
        b.store(out, d, lid)
        k = _with_sizes(b.finish(), local=16)
        store = _first_store(k)
        assert analyze_ranges(k).interval_at(store, d) == Interval(-8, 7)

    def test_sub_of_max_clamps_at_zero(self):
        """``sub(max(x, y), y)`` is recognized as max(x - y, 0) — the
        PrefixSum partner-index idiom."""
        b = KernelBuilder("maxsub")
        out = b.buffer_param("out", DType.U32)
        lid = b.local_id(0)
        y = b.const(8, DType.U32)
        m = b.max(lid, y)
        d = b.sub(m, y)
        b.store(out, d, lid)
        k = _with_sizes(b.finish(), local=16)
        store = _first_store(k)
        assert analyze_ranges(k).interval_at(store, d) == Interval(0, 7)

    def test_select_hulls_both_arms(self):
        b = KernelBuilder("sel")
        out = b.buffer_param("out", DType.U32)
        lid = b.local_id(0)
        v = b.select(b.lt(lid, 8), b.const(2, DType.U32),
                     b.const(40, DType.U32))
        b.store(out, lid, v)
        k = _with_sizes(b.finish(), local=16)
        store = _first_store(k)
        assert analyze_ranges(k).interval_at(store, v) == Interval(2, 40)


class TestBranchRefinement:
    def test_then_arm_refined_by_guard(self):
        b = KernelBuilder("guard")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        with b.if_(b.lt(gid, 4)):
            b.store(out, gid, gid)
        k = _with_sizes(b.finish(), global_=64)
        store = _first_store(k)
        assert analyze_ranges(k).interval_at(store, gid) == Interval(0, 3)

    def test_else_arm_gets_negation(self):
        b = KernelBuilder("negguard")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        with b.if_else(b.lt(gid, 4)) as orelse:
            b.add(gid, 0)
            with orelse():
                b.store(out, gid, gid)
        k = _with_sizes(b.finish(), global_=64)
        store = _first_store(k)
        assert analyze_ranges(k).interval_at(store, gid) == Interval(4, 63)

    def test_conjunction_refines_both_facts(self):
        b = KernelBuilder("conj")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        p = b.pand(b.ge(gid, 8), b.lt(gid, 16))
        with b.if_(p):
            b.store(out, gid, gid)
        k = _with_sizes(b.finish(), global_=64)
        store = _first_store(k)
        assert analyze_ranges(k).interval_at(store, gid) == Interval(8, 15)

    def test_refinement_killed_by_reassignment(self):
        """A guard on ``v`` says nothing once ``v`` is reassigned."""
        b = KernelBuilder("killed")
        out = b.buffer_param("out", DType.U32)
        v = b.var(DType.U32, 2)
        p = b.lt(v, 4)
        b.set(v, 100)
        with b.if_(p):
            b.store(out, v, v)
        k = _with_sizes(b.finish())
        store = _first_store(k)
        assert analyze_ranges(k).interval_at(store, v) == Interval(100, 100)


class TestLoops:
    def test_counting_loop_body_interval(self):
        """Widening blows the moving bound; the guard re-sharpens it."""
        b = KernelBuilder("count")
        out = b.buffer_param("out", DType.U32)
        i = b.var(DType.U32, 0)
        with b.loop() as lp:
            lp.break_unless(b.lt(i, 8))
            b.store(out, i, i)
            b.set(i, b.add(i, 1))
        k = _with_sizes(b.finish())
        store = _first_store(k)
        assert analyze_ranges(k).interval_at(store, i) == Interval(0, 7)

    def test_halving_loop_keeps_upper_bound(self):
        """The reduction idiom: ``stride >>= 1`` from ls/2 — the upper
        bound is stable across iterations and must survive widening."""
        b = KernelBuilder("halve")
        out = b.buffer_param("out", DType.U32)
        stride = b.var(DType.U32, 8, hint="stride")
        with b.loop() as lp:
            lp.break_unless(b.gt(stride, 0))
            b.store(out, stride, stride)
            b.set(stride, b.shr(stride, b.const(1, DType.U32)))
        k = _with_sizes(b.finish())
        store = _first_store(k)
        iv = analyze_ranges(k).interval_at(store, stride)
        assert iv == Interval(1, 8)

    def test_post_loop_negated_guard(self):
        b = KernelBuilder("after")
        out = b.buffer_param("out", DType.U32)
        i = b.var(DType.U32, 0)
        with b.loop() as lp:
            lp.break_unless(b.lt(i, 8))
            b.set(i, b.add(i, 1))
        b.store(out, i, i)
        k = _with_sizes(b.finish())
        store = _first_store(k)
        iv = analyze_ranges(k).interval_at(store, i)
        # Exit implies i >= 8; the widened upper bound is gone.
        assert iv.lo == 8


class TestAccessRecording:
    def test_global_access_uses_buffer_nelems(self):
        b = KernelBuilder("glob")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        b.store(out, gid, gid)
        k = _with_sizes(b.finish(), global_=64, nelems={"out": 64})
        ra = analyze_ranges(k)
        store = _first_store(k)
        acc = ra.access_for(store)
        assert acc is not None
        assert acc.kind == "store_global"
        assert acc.target == "out"
        assert acc.nelems == 64
        assert acc.index == Interval(0, 63)

    def test_lds_access_always_has_nelems(self):
        b = KernelBuilder("lds")
        lds = b.local_alloc("buf", DType.U32, 32)
        lid = b.local_id(0)
        b.store_local(lds, lid, lid)
        k = _with_sizes(b.finish(), local=16)
        acc = analyze_ranges(k).access_for(_first_store(k))
        assert acc.kind == "store_local"
        assert acc.nelems == 32
        assert acc.index == Interval(0, 15)

    def test_unknown_buffer_has_no_nelems(self):
        b = KernelBuilder("nosize")
        out = b.buffer_param("out", DType.U32)
        b.store(out, b.global_id(0), b.const(1, DType.U32))
        k = _with_sizes(b.finish())
        acc = analyze_ranges(k).access_for(_first_store(k))
        assert acc.nelems is None

    def test_interval_at_unrecorded_instr_defaults(self):
        """Queries off any access point fall back to the type default."""
        b = KernelBuilder("dflt")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        b.store(out, gid, gid)
        k = _with_sizes(b.finish())
        ra = analyze_ranges(k)
        other = k.body[0]  # the SpecialId itself — not an access
        assert ra.access_for(other) is None
        assert ra.interval_at(other, gid) == Interval(0, None)


def _entry_for(kernel, reg):
    report = analyze_vulnerability(kernel)
    return next(e for e in report.entries if e.reg == reg.name)


class TestMaskingProofs:
    """Logical-masking width proofs, end to end through the ACE/AVF
    classification (the widths that drive selective-RMT priorities)."""

    def test_and_mask_popcount(self):
        b = KernelBuilder("andmask")
        x = b.var(DType.U32, 0)
        mask = b.const(0b1011, DType.U32)
        m = b.and_(x, mask)
        instr = next(i for i in walk_instrs(b._kernel.body)
                     if getattr(i, "op", None) == "and")
        assert fault_transfer_width(instr, x, {id(mask): 0b1011}) == 3
        assert m is not None

    def test_shift_count_is_masked(self):
        """A value consumed only as a shift count transfers 5 bits —
        the machine masks the count with &31 — so it is not ACE."""
        b = KernelBuilder("shiftcount")
        out = b.buffer_param("out", DType.U32)
        inp = b.buffer_param("inp", DType.U32)
        gid = b.global_id(0)
        x = b.load(inp, gid)
        b.store(out, gid, b.shl(b.const(3, DType.U32), x))
        k = _with_sizes(b.finish())
        entry = _entry_for(k, x)
        assert entry.width == MASK_BITS
        assert entry.classification == "masked"
        assert entry.exposure > 0          # live, just narrow

    def test_compare_then_clamp_is_masked(self):
        """``p = lt(x, 7); select(p, x, 7)`` bounds every fault in x (and
        in p) by the clamp constant: width 3, not ACE."""
        b = KernelBuilder("clamp")
        out = b.buffer_param("out", DType.U32)
        inp = b.buffer_param("inp", DType.U32)
        gid = b.global_id(0)
        x = b.load(inp, gid)
        seven = b.const(7, DType.U32)
        p = b.lt(x, seven)
        b.store(out, gid, b.select(p, x, seven))
        k = _with_sizes(b.finish())
        ex = _entry_for(k, x)
        ep = _entry_for(k, p)
        assert ex.width == 3 and ex.classification == "masked"
        assert ep.width == 3 and ep.classification == "masked"

    def test_dead_past_last_use_not_ace(self):
        """A def no later instruction consumes has zero residency: its
        register-file slot is architecturally invisible."""
        b = KernelBuilder("deadtail")
        out = b.buffer_param("out", DType.U32)
        inp = b.buffer_param("inp", DType.U32)
        gid = b.global_id(0)
        x = b.load(inp, gid)
        unused = b.add(x, b.const(1, DType.U32))
        b.store(out, gid, x)
        k = _with_sizes(b.finish())
        entry = _entry_for(k, unused)
        assert entry.classification == "dead"
        assert entry.priority == 0.0

    def test_unmasked_store_address_stays_ace(self):
        """Cry-wolf guard: the shift-count proof must not win when the
        same value also addresses a store unmasked — any bit flips the
        destination cell, so the full 32 bits are architecturally
        exposed."""
        b = KernelBuilder("addr")
        out = b.buffer_param("out", DType.U32)
        inp = b.buffer_param("inp", DType.U32)
        gid = b.global_id(0)
        x = b.load(inp, gid)
        v = b.shl(b.const(1, DType.U32), x)   # masked use…
        b.store(out, x, v)                     # …but an unmasked address
        k = _with_sizes(b.finish())
        entry = _entry_for(k, x)
        assert entry.width == 32
        assert entry.classification == "ace"
