"""Smoke tests for ``python -m repro.bench`` and the campaign
compile-once guarantee it benchmarks."""

import json
import os

from repro.bench.__main__ import main
from repro.faults.campaign import run_campaign
from repro.kernels import base as kernels_base
from repro.kernels.suite import make_benchmark


def test_bench_cli_writes_report(tmp_path, capsys):
    out = str(tmp_path / "BENCH_7.json")
    rc = main(["--quick", "--only", "compile", "--out", out])
    assert rc == 0
    report = json.loads(open(out).read())
    assert report["schema"] == 1 and report["bench"] == 7
    assert report["quick"] is True
    assert report["correct"] is True
    compile_sec = report["sections"]["compile"]
    assert compile_sec["cold_ms"] > 0 and compile_sec["warm_ms"] > 0
    assert "compile" in capsys.readouterr().out


def test_bench_cli_quiet_suppresses_summary(tmp_path, capsys):
    out = str(tmp_path / "b.json")
    rc = main(["--quick", "--only", "compile", "--out", out, "-q"])
    assert rc == 0
    assert capsys.readouterr().out == ""
    assert os.path.exists(out)


def test_bench_equivalence_section_gates_exit(tmp_path):
    out = str(tmp_path / "b.json")
    rc = main(["--quick", "--only", "interp", "--out", out, "-q"])
    report = json.loads(open(out).read())
    assert rc == (0 if report["sections"]["interp"]["bitwise_identical"]
                  else 1)
    assert report["sections"]["interp"]["bitwise_identical"] is True


def test_bench_vector_section_three_way_identical(tmp_path, capsys):
    """The vector section: the run-ahead engine must be bitwise-
    and cycle-identical to both other engines on the multi-workgroup
    dispatch, and the recorded speedup is over the fused baseline."""
    out = str(tmp_path / "b.json")
    rc = main(["--quick", "--only", "vector", "--out", out, "-q"])
    assert rc == 0
    report = json.loads(open(out).read())
    vec = report["sections"]["vector"]
    assert vec["bitwise_identical"] is True
    assert vec["workgroups"] > 1 and vec["wavefronts"] > vec["workgroups"]
    assert vec["vectorized_cycles_per_sec"] > vec["fused_cycles_per_sec"]
    assert vec["target_speedup"] == 10.0
    assert report["correct"] is True


def test_campaign_compiles_once_per_run(monkeypatch):
    """run_campaign must compile before fan-out, never per trial."""
    calls = {"n": 0}
    real = kernels_base.Benchmark.compile

    def counting(self, *a, **kw):
        calls["n"] += 1
        return real(self, *a, **kw)

    monkeypatch.setattr(kernels_base.Benchmark, "compile", counting)
    result = run_campaign(lambda: make_benchmark("FWT", "small"),
                          "intra+lds", "vgpr", trials=4, seed=7,
                          max_instr=20)
    assert len(result.records) == 4
    assert calls["n"] == 1
