"""Fuzz reproducer: edge_trivial_store.

Hand-crafted edge shape (corpus v1); regenerate with `python -m repro.fuzz --write-corpus`.
"""

from repro.fuzz.program import (  # noqa: F401
    BufferSpec, FuzzProgram, LdsSpec, Op, ScalarSpec,
)


def make_program() -> FuzzProgram:
    return FuzzProgram(name='edge_trivial_store',
                global_size=64,
                local_size=16,
                buffers=[BufferSpec(name='out0',
                                    dtype='u32',
                                    nelems=64,
                                    role='out',
                                    init='zeros',
                                    seed=0)],
                scalars=[],
                lds=[],
                ops=[Op(kind='special',
                        result=1,
                        dtype=None,
                        op='global_id',
                        ref=None,
                        imm=0,
                        args=(),
                        body=[],
                        orelse=[]),
                     Op(kind='const',
                        result=2,
                        dtype='u32',
                        op=None,
                        ref=None,
                        imm=7,
                        args=(),
                        body=[],
                        orelse=[]),
                     Op(kind='alu',
                        result=3,
                        dtype='u32',
                        op='add',
                        ref=None,
                        imm=None,
                        args=(1, 2),
                        body=[],
                        orelse=[]),
                     Op(kind='store',
                        result=None,
                        dtype=None,
                        op=None,
                        ref='out0',
                        imm=None,
                        args=(1, 3),
                        body=[],
                        orelse=[])],
                meta={'corpus': 1})


if __name__ == "__main__":
    from repro.fuzz.oracle import check_program, format_findings

    report = check_program(make_program())
    print(format_findings(report))
    raise SystemExit(1 if report.errors else 0)
