"""Correctness tests for all 16 benchmark kernels (small scale)."""

import numpy as np
import pytest

from repro.compiler import RMT_VARIANTS
from repro.kernels import SMALL_SUITE, SUITE, all_abbrevs, make_benchmark

ALL = sorted(SMALL_SUITE)


class TestRegistry:
    def test_sixteen_kernels(self):
        assert len(SUITE) == 16
        assert set(SUITE) == set(SMALL_SUITE)

    def test_make_benchmark_paper_and_small(self):
        b1 = make_benchmark("FWT", "paper")
        b2 = make_benchmark("FWT", "small")
        assert b1.n > b2.n

    def test_unknown_abbrev(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            make_benchmark("XYZ")

    def test_all_abbrevs_order(self):
        assert all_abbrevs()[0] == "BinS"
        assert len(all_abbrevs()) == 16

    def test_metadata_populated(self):
        for ab in ALL:
            bench = SMALL_SUITE[ab]()
            assert bench.abbrev == ab
            assert bench.name
            assert bench.description
            kernel = bench.build()
            assert "local_size" in kernel.metadata


@pytest.mark.parametrize("abbrev", ALL)
def test_original_correct(abbrev):
    bench = SMALL_SUITE[abbrev]()
    result = bench.execute("original")
    assert bench.check(result), f"{abbrev} failed its oracle"
    assert not result.detections


@pytest.mark.parametrize("abbrev", ALL)
def test_intra_plus_lds_correct(abbrev):
    bench = SMALL_SUITE[abbrev]()
    result = bench.execute("intra+lds")
    assert bench.check(result)
    assert not result.detections


@pytest.mark.parametrize("abbrev", ALL)
def test_intra_minus_lds_correct(abbrev):
    bench = SMALL_SUITE[abbrev]()
    result = bench.execute("intra-lds")
    assert bench.check(result)
    assert not result.detections


@pytest.mark.parametrize("abbrev", ALL)
def test_intra_fast_correct(abbrev):
    bench = SMALL_SUITE[abbrev]()
    result = bench.execute("intra+lds_fast")
    assert bench.check(result)
    assert not result.detections


@pytest.mark.parametrize("abbrev", ALL)
def test_inter_correct(abbrev):
    bench = SMALL_SUITE[abbrev]()
    result = bench.execute("inter")
    assert bench.check(result)
    assert not result.detections


@pytest.mark.parametrize("abbrev", ["FWT", "MM", "R"])
def test_no_comm_variants_still_correct(abbrev):
    """Component-isolation transforms (no output comparison) stay correct."""
    bench = SMALL_SUITE[abbrev]()
    for variant in ("intra+lds", "inter"):
        result = bench.execute(variant, communication=False)
        assert bench.check(result)
        assert not result.detections


class TestDeterminism:
    def test_same_seed_same_cycles(self):
        a = SMALL_SUITE["R"]().execute("original")
        b = SMALL_SUITE["R"]().execute("original")
        assert a.cycles == b.cycles

    def test_inputs_seeded(self):
        a = SMALL_SUITE["BlkSch"]()
        b = SMALL_SUITE["BlkSch"]()
        np.testing.assert_array_equal(a.rand, b.rand)
