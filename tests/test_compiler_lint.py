"""Tests for the RMT correctness lint suite.

Each checker gets at least one seeded violation that the structural
verifier (``verify_kernel``) accepts — the lint suite exists precisely
to catch what that program-order checker cannot.
"""

import pytest

from repro.compiler import compile_kernel
from repro.compiler.lint import (
    ERROR,
    LintError,
    check_kernel,
    checker_names,
    run_lints,
)
from repro.compiler.pipeline import RMT_VARIANTS
from repro.ir import DType, KernelBuilder
from repro.ir.core import (
    Alu,
    If,
    ReportError,
    StoreGlobal,
    StoreLocal,
    walk_instrs,
    walk_stmts,
)
from repro.ir.verify import VerificationError, verify_kernel
from repro.kernels.suite import all_abbrevs, make_benchmark


def _errors(diags, checker=None):
    return [
        d
        for d in diags
        if d.severity == ERROR and (checker is None or d.checker == checker)
    ]


# ---------------------------------------------------------------------------
# barrier-divergence
# ---------------------------------------------------------------------------


class TestBarrierDivergence:
    def _divergent_barrier_kernel(self, local_size):
        b = KernelBuilder("divbar")
        lds = b.local_alloc("buf", DType.U32, 128)
        lid = b.local_id(0)
        with b.if_(b.lt(lid, 16)):
            b.store_local(lds, lid, lid)
            b.barrier()
        k = b.finish()
        k.metadata["local_size"] = local_size
        return k

    def test_divergent_barrier_flagged(self):
        k = self._divergent_barrier_kernel((128, 1, 1))
        verify_kernel(k)  # the structural verifier accepts this
        diags = run_lints(k, ["barrier-divergence"])
        assert _errors(diags, "barrier-divergence")

    def test_single_wavefront_group_exempt(self):
        k = self._divergent_barrier_kernel((64, 1, 1))
        assert not run_lints(k, ["barrier-divergence"])

    def test_uniform_condition_ok(self):
        b = KernelBuilder("unibar")
        lds = b.local_alloc("buf", DType.U32, 128)
        n = b.scalar_param("n", DType.U32)
        lid = b.local_id(0)
        with b.if_(b.gt(n, 4)):
            b.store_local(lds, lid, lid)
            b.barrier()
        k = b.finish()
        k.metadata["local_size"] = (128, 1, 1)
        assert not run_lints(k, ["barrier-divergence"])

    def test_divergent_while_flagged(self):
        b = KernelBuilder("divloop")
        b.local_alloc("buf", DType.U32, 128)
        lid = b.local_id(0)
        i = b.var(DType.U32, 0)
        with b.loop() as lp:
            lp.break_unless(b.lt(i, lid))  # trip count varies per lane
            b.barrier()
            b.set(i, b.add(i, 1))
        k = b.finish()
        k.metadata["local_size"] = (128, 1, 1)
        verify_kernel(k)
        assert _errors(run_lints(k, ["barrier-divergence"]))


# ---------------------------------------------------------------------------
# lds-race
# ---------------------------------------------------------------------------


class TestLdsRace:
    def test_all_lanes_store_same_element_races(self):
        b = KernelBuilder("collide")
        lds = b.local_alloc("buf", DType.U32, 64)
        lid = b.local_id(0)
        b.store_local(lds, b.const(0, DType.U32), lid)
        k = b.finish()
        k.metadata["local_size"] = (128, 1, 1)
        verify_kernel(k)  # structurally fine; dynamically a race
        errs = _errors(run_lints(k, ["lds-race"]), "lds-race")
        assert errs
        assert "witness" in errs[0].message

    def test_per_lane_elements_safe(self):
        b = KernelBuilder("private")
        lds = b.local_alloc("buf", DType.U32, 128)
        lid = b.local_id(0)
        b.store_local(lds, lid, lid)
        b.load_local(lds, lid)
        k = b.finish()
        k.metadata["local_size"] = (128, 1, 1)
        assert not run_lints(k, ["lds-race"])

    def test_barrier_between_conflicting_accesses_ok(self):
        b = KernelBuilder("synced")
        lds = b.local_alloc("buf", DType.U32, 128)
        lid = b.local_id(0)
        b.store_local(lds, lid, lid)
        b.barrier()
        b.load_local(lds, b.const(0, DType.U32))
        k = b.finish()
        k.metadata["local_size"] = (128, 1, 1)
        assert not run_lints(k, ["lds-race"])

    def test_missing_barrier_before_shared_read_races(self):
        """The reduction pattern with the barrier removed."""
        b = KernelBuilder("nosync")
        lds = b.local_alloc("buf", DType.U32, 128)
        lid = b.local_id(0)
        b.store_local(lds, lid, lid)
        b.load_local(lds, b.const(0, DType.U32))  # no barrier!
        k = b.finish()
        k.metadata["local_size"] = (128, 1, 1)
        verify_kernel(k)
        assert _errors(run_lints(k, ["lds-race"]), "lds-race")

    def test_single_wavefront_lockstep_exempt(self):
        b = KernelBuilder("lockstep")
        lds = b.local_alloc("buf", DType.U32, 64)
        lid = b.local_id(0)
        b.store_local(lds, b.const(0, DType.U32), lid)
        k = b.finish()
        k.metadata["local_size"] = (64, 1, 1)
        assert not run_lints(k, ["lds-race"])

    def test_unanalyzable_index_warns_not_errors(self):
        b = KernelBuilder("scatter")
        perm = b.buffer_param("perm", DType.U32)
        lds = b.local_alloc("buf", DType.U32, 128)
        lid = b.local_id(0)
        target = b.load(perm, lid)
        b.store_local(lds, target, lid)
        k = b.finish()
        k.metadata["local_size"] = (128, 1, 1)
        diags = run_lints(k, ["lds-race"])
        assert diags and not _errors(diags)

    def test_reduction_tree_proved_safe(self):
        k = make_benchmark("R", scale="small").build()
        assert not run_lints(k, ["lds-race"])


# ---------------------------------------------------------------------------
# undef
# ---------------------------------------------------------------------------


class TestUndef:
    def test_one_arm_definition_flagged(self):
        b = KernelBuilder("halfdef")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        holder = {}
        with b.if_(b.lt(gid, 4)):
            holder["v"] = b.add(gid, 1)
        b.store(out, gid, holder["v"])
        k = b.finish()
        verify_kernel(k)  # program-order heuristic accepts either-arm defs
        assert _errors(run_lints(k, ["undef"]), "undef")

    def test_both_arm_definition_ok(self):
        b = KernelBuilder("bothdef")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        v = b.var(DType.U32, 0)
        with b.if_(b.lt(gid, 4)):
            b.set(v, 1)
        b.store(out, gid, v)
        k = b.finish()
        assert not run_lints(k, ["undef"])

    def test_guard_correlated_definition_suppressed(self):
        """The DWT idiom: def and use under later tests of one predicate."""
        b = KernelBuilder("corr")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        active = b.lt(gid, 4)
        holder = {}
        with b.if_(active):
            holder["v"] = b.add(gid, 1)
        with b.if_(active):
            b.store(out, gid, holder["v"])
        k = b.finish()
        assert not run_lints(k, ["undef"])

    def test_zero_trip_loop_definition_flagged(self):
        b = KernelBuilder("zerotrip")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        n = b.scalar_param("n", DType.U32)
        i = b.var(DType.U32, 0)
        holder = {}
        with b.loop() as lp:
            lp.break_unless(b.lt(i, n))
            holder["v"] = b.add(i, 7)
            b.set(i, b.add(i, 1))
        b.store(out, gid, holder["v"])
        k = b.finish()
        verify_kernel(k)
        assert _errors(run_lints(k, ["undef"]), "undef")


# ---------------------------------------------------------------------------
# sor-coverage (with hand-corrupted RMT output)
# ---------------------------------------------------------------------------


def _transformed(abbrev, variant, **kwargs):
    # cache=False: these tests corrupt the returned kernel in place, and
    # cached CompiledKernel objects are shared process-wide.
    k = make_benchmark(abbrev, scale="small").build()
    return compile_kernel(k, variant, lint=False, cache=False,
                          **kwargs).kernel


class TestSorCoverage:
    def test_intact_variants_pass(self):
        for variant in ("intra+lds", "intra-lds", "inter"):
            k = _transformed("R", variant)
            assert not run_lints(k, ["sor-coverage"])

    def test_untransformed_kernel_skipped(self):
        k = make_benchmark("R", scale="small").build()
        assert not run_lints(k, ["sor-coverage"])

    def test_dropped_output_comparison_rejected(self):
        """Corrupt the pass output: delete the mismatch handler."""
        k = _transformed("MM", "intra+lds")

        def drop_handler(body):
            for stmt in body:
                if isinstance(stmt, If):
                    for sub in (stmt.then_body, stmt.else_body):
                        for s in list(sub):
                            if isinstance(s, If) and any(
                                isinstance(x, ReportError)
                                for x in walk_stmts(s.then_body)
                            ):
                                sub.remove(s)
                                return True
                        if drop_handler(sub):
                            return True
            return False

        assert drop_handler(k.body)
        verify_kernel(k)  # still structurally valid
        errs = _errors(run_lints(k, ["sor-coverage"]), "sor-coverage")
        assert errs
        assert "no output comparison" in errs[0].message

    def test_unguarded_store_rejected(self):
        """Corrupt the pass output: hoist the store out of the consumer
        predicate so both replicas write."""
        k = _transformed("R", "inter")

        def hoist(body):
            for pos, stmt in enumerate(body):
                if isinstance(stmt, If):
                    inner = [
                        s
                        for s in stmt.then_body
                        if isinstance(s, StoreGlobal)
                        and not s.buf.name.startswith("__rmt_")
                    ]
                    if inner and not stmt.else_body:
                        body[pos:pos + 1] = list(stmt.then_body)
                        return True
                    if hoist(stmt.then_body) or hoist(stmt.else_body):
                        return True
            return False

        assert hoist(k.body)
        verify_kernel(k)
        errs = _errors(run_lints(k, ["sor-coverage"]), "sor-coverage")
        assert errs

    def test_skipped_lds_remap_rejected(self):
        """Corrupt the pass output: undo one LDS replica-half remap."""
        k = _transformed("R", "intra+lds")
        defs = {}
        for instr in walk_instrs(k.body):
            for dst in instr.dests():
                defs.setdefault(id(dst), instr)
        corrupted = False
        for instr in walk_instrs(k.body):
            if isinstance(instr, StoreLocal) and not instr.lds.name.startswith(
                "__rmt_"
            ):
                d = defs.get(id(instr.index))
                if isinstance(d, Alu) and d.op == "add":
                    instr.index = d.a  # strip the parity*half offset
                    corrupted = True
                    break
        assert corrupted
        verify_kernel(k)
        diags = run_lints(k, ["sor-coverage"])
        errs = _errors(diags, "sor-coverage")
        assert errs
        assert "replica half" in errs[0].message


# ---------------------------------------------------------------------------
# engine / pipeline wiring
# ---------------------------------------------------------------------------


class TestWiring:
    def test_check_kernel_raises_lint_error(self):
        b = KernelBuilder("collide")
        lds = b.local_alloc("buf", DType.U32, 64)
        lid = b.local_id(0)
        b.store_local(lds, b.const(0, DType.U32), lid)
        k = b.finish()
        k.metadata["local_size"] = (128, 1, 1)
        with pytest.raises(LintError) as exc_info:
            check_kernel(k)
        # LintError is a VerificationError: generic handlers still work,
        # and the structured diagnostics ride along.
        assert isinstance(exc_info.value, VerificationError)
        assert exc_info.value.diagnostics
        assert exc_info.value.errors

    def test_compile_kernel_lints_by_default(self):
        b = KernelBuilder("collide")
        lds = b.local_alloc("buf", DType.U32, 64)
        lid = b.local_id(0)
        b.store_local(lds, b.const(0, DType.U32), lid)
        k = b.finish()
        k.metadata["local_size"] = (128, 1, 1)
        with pytest.raises(LintError):
            compile_kernel(k, "original")
        compiled = compile_kernel(k, "original", lint=False)
        assert compiled.kernel is not None

    def test_unknown_checker_rejected(self):
        b = KernelBuilder("k")
        k = b.finish()
        with pytest.raises(KeyError):
            run_lints(k, ["no-such-checker"])

    def test_checker_names_stable(self):
        assert set(checker_names()) == {
            "barrier-divergence",
            "lds-race",
            "undef",
            "sor-coverage",
            "oob",
            "vuln",
        }


class TestVerificationErrorDetails:
    def test_error_list_and_count_exposed(self):
        b = KernelBuilder("broken")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        x = b.add(gid, 1)
        b.store(out, gid, b.add(x, 1))
        b.store(out, gid, b.add(x, 2))
        k = b.finish()
        # Remove x's definition: both adds now read an undefined register.
        k.body.remove(next(i for i in walk_instrs(k.body) if x in i.dests()))
        with pytest.raises(VerificationError) as exc_info:
            verify_kernel(k)
        err = exc_info.value
        assert len(err.errors) == 2
        assert "2 error(s)" in str(err)
        assert all("undefined register" in e for e in err.errors)


# ---------------------------------------------------------------------------
# Whole-suite sweep + CLI
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("abbrev", all_abbrevs())
def test_suite_kernels_lint_clean_fast_variants(abbrev):
    k = make_benchmark(abbrev, scale="small").build()
    for variant in ("original", "intra+lds", "inter"):
        compiled = compile_kernel(k, variant, lint=False)
        assert not _errors(run_lints(compiled.kernel)), (abbrev, variant)


@pytest.mark.slow
@pytest.mark.parametrize("abbrev", all_abbrevs())
def test_suite_kernels_lint_clean_all_variants(abbrev):
    k = make_benchmark(abbrev, scale="small").build()
    for variant in RMT_VARIANTS:
        for optimize in (False, True):
            compiled = compile_kernel(k, variant, lint=False, optimize=optimize)
            assert not _errors(run_lints(compiled.kernel)), (
                abbrev, variant, optimize,
            )


class TestCli:
    def test_clean_run_exits_zero(self):
        from repro.lint import main

        assert main(["--kernels", "R,PS", "--variants",
                     "original,inter", "-q"]) == 0

    def test_unknown_kernel_exits_two(self):
        from repro.lint import main

        assert main(["--kernels", "NOPE", "-q"]) == 2

    def test_unknown_variant_exits_two(self):
        from repro.lint import main

        assert main(["--variants", "NOPE", "-q"]) == 2
