"""Tests for the ``python -m repro.fuzz`` campaign driver."""

import json
import os

import pytest

from repro.fuzz.cli import build_runs, main
from repro.fuzz.oracle import RunSpec


class TestBuildRuns:
    def test_none_keeps_default_matrix(self):
        assert build_runs(None) is None
        assert build_runs([]) is None

    def test_original_is_o1_only(self):
        runs = build_runs(["original"])
        assert [(r.variant, r.optimize) for r in runs] == [("original", True)]

    def test_variant_expands_to_both_levels(self):
        runs = build_runs(["inter"])
        assert [(r.variant, r.optimize) for r in runs] == [
            ("inter", False), ("inter", True)]

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown variant"):
            build_runs(["hyper"])

    def test_cli_unknown_variant_exits_2_no_traceback(self, capsys):
        assert main(["--variants", "bogus", "--count", "1"]) == 2
        err = capsys.readouterr().err
        assert "unknown variant" in err and "Traceback" not in err


class TestMain:
    def test_small_clean_campaign(self, capsys):
        assert main(["--seed", "0", "--count", "3"]) == 0
        out = capsys.readouterr().out
        assert "3/3 trials" in out
        assert "0 error finding(s)" in out

    def test_variant_filter(self, capsys):
        assert main(["--seed", "5", "--count", "2",
                     "--variants", "inter"]) == 0
        assert "2/2 trials" in capsys.readouterr().out

    def test_max_ops_override(self):
        assert main(["--seed", "0", "--count", "2", "--max-ops", "6"]) == 0

    def test_journal_and_resume(self, tmp_path, capsys):
        journal = str(tmp_path / "fuzz.jsonl")
        assert main(["--seed", "0", "--count", "4",
                     "--journal", journal]) == 0
        entries = [json.loads(l) for l in open(journal)]
        kinds = [e.get("kind") for e in entries]
        assert kinds.count("trial") == 4
        assert kinds[-1] == "summary"
        capsys.readouterr()

        # Resume: everything journaled is skipped, nothing re-runs.
        assert main(["--seed", "0", "--count", "4",
                     "--journal", journal, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "0/4 trials (skipped 4 journaled)" in out

    def test_time_budget_stops_early(self, capsys):
        # Zero budget: the first chunk runs (so progress is always made),
        # later chunks are cut.  With count > one chunk, some are skipped.
        assert main(["--seed", "0", "--count", "10", "--workers", "1",
                     "--time-budget", "0"]) == 0
        out = capsys.readouterr().out
        assert "8/10 trials" in out  # one chunk of workers*8

    def test_write_corpus(self, tmp_path, capsys):
        target = str(tmp_path / "corpus")
        assert main(["--write-corpus", "--repro-dir", target]) == 0
        files = sorted(os.listdir(target))
        assert len(files) >= 10
        assert all(f.startswith("edge_") and f.endswith(".py") for f in files)

    def test_parallel_workers(self, capsys):
        assert main(["--seed", "0", "--count", "4", "--workers", "2"]) == 0
        assert "4/4 trials" in capsys.readouterr().out


class TestShrinkAndDump:
    def test_reproducer_written_and_runnable(self, tmp_path):
        """Drive the --shrink path directly with a planted-buggy run
        matrix (the stock matrix is clean, so no natural error seed
        exists): the dumped reproducer must re-flag the miscompare."""
        from repro.fuzz.cli import _shrink_and_dump
        from repro.fuzz.oracle import check_program
        from tests.test_fuzz_oracle import OffByOnePass

        runs = [RunSpec("original", optimize=False,
                        extra_passes=(OffByOnePass(),), lint=False)]
        path = _shrink_and_dump(6, runs, str(tmp_path))
        assert path is not None and os.path.exists(path)
        assert os.path.basename(path) == "fuzz_min_6.py"

        import importlib.util
        spec = importlib.util.spec_from_file_location("fuzz_min_6", path)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        prog = mod.make_program()
        assert prog.meta.get("shrunk_from")
        report = check_program(prog, runs=runs)
        assert any(f.kind == "miscompare" for f in report.errors)

    def test_clean_seed_writes_nothing(self, tmp_path):
        from repro.fuzz.cli import _shrink_and_dump

        assert _shrink_and_dump(0, None, str(tmp_path)) is None
        assert not os.listdir(tmp_path)
