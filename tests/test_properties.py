"""Property-based tests (hypothesis) for core invariants.

The headline property is the RMT soundness contract: for randomly
generated elementwise kernels, every RMT variant produces bit-identical
output to the original and raises no spurious detections.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compiler import RMT_VARIANTS, compile_kernel
from repro.eval.ecc import secded_check_bits
from repro.gpu.counters import BusyTracker
from repro.gpu.memory import CacheModel, coalesce_lines
from repro.ir import DType, KernelBuilder
from repro.ir.types import bitcast_from_u32, bitcast_to_u32
from repro.runtime import Session

# ---------------------------------------------------------------------------
# Random elementwise kernel programs
# ---------------------------------------------------------------------------

_UNARY = ["neg", "abs", "not"]
_BINARY = ["add", "sub", "mul", "min", "max", "and", "or", "xor"]


@st.composite
def programs(draw):
    """A short random u32 expression DAG over the loaded input."""
    n_ops = draw(st.integers(min_value=1, max_value=8))
    ops = []
    for _ in range(n_ops):
        if draw(st.booleans()):
            ops.append(("bin", draw(st.sampled_from(_BINARY)),
                        draw(st.integers(0, 2**16))))
        else:
            ops.append(("un", draw(st.sampled_from(_UNARY)), None))
    return ops


def _build_kernel(ops):
    b = KernelBuilder("prop")
    a = b.buffer_param("a", DType.U32)
    out = b.buffer_param("out", DType.U32)
    gid = b.global_id(0)
    v = b.load(a, gid)
    for kind, op, imm in ops:
        if kind == "bin":
            v = getattr(b, {"and": "and_", "or": "or_"}.get(op, op))(v, imm)
        else:
            v = getattr(b, {"not": "not_"}.get(op, op))(v)
    b.store(out, gid, v)
    k = b.finish()
    k.metadata["local_size"] = (64, 1, 1)
    return k


def _execute(kernel, variant, data):
    compiled = compile_kernel(kernel, variant)
    s = Session()
    ab = s.upload("a", data)
    ob = s.zeros("out", data.size, np.uint32)
    res = s.launch(compiled, data.size, 64, {"a": ab, "out": ob})
    return s.download(ob), res


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=programs(), seed=st.integers(0, 2**31 - 1))
def test_rmt_variants_preserve_semantics(ops, seed):
    """Original and every RMT flavor compute identical results."""
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2**32, size=128, dtype=np.uint32)
    kernel = _build_kernel(ops)
    expected, base = _execute(kernel, "original", data)
    for variant in RMT_VARIANTS:
        if variant == "original":
            continue
        got, res = _execute(_build_kernel(ops), variant, data)
        np.testing.assert_array_equal(got, expected, err_msg=variant)
        assert not res.detections, f"{variant}: spurious detection"


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 2**31), min_size=1, max_size=64))
def test_bitcast_u32_roundtrip(values):
    arr = np.array(values, dtype=np.uint32)
    back = bitcast_to_u32(bitcast_from_u32(arr, DType.F32))
    np.testing.assert_array_equal(back, arr)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 2**20), min_size=1, max_size=64),
    st.sampled_from([32, 64, 128]),
)
def test_coalesce_lines_bounds(addresses, line):
    addrs = np.array(addresses, dtype=np.int64) * 4
    lines = coalesce_lines(addrs, line)
    assert 1 <= len(lines) <= len(addresses)
    # every address is covered by some returned line
    assert set(addrs // line) == set(int(x) for x in lines)


@settings(max_examples=30, deadline=None)
@given(st.lists(
    st.tuples(st.floats(0, 1e6), st.floats(0, 1e4)), min_size=1, max_size=60,
))
def test_busy_tracker_windows_sum_to_total(intervals):
    t = BusyTracker(window_cycles=1000)
    for start, dur in intervals:
        t.add(start, start + dur)
    assert sum(t.windows.values()) == pytest.approx(t.total, rel=1e-9, abs=1e-6)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(0, 255), min_size=1, max_size=200),
    st.integers(1, 8),
)
def test_cache_never_exceeds_capacity(accesses, ways):
    c = CacheModel(8 * 64 * ways, 64, ways)  # 8 sets
    for line in accesses:
        c.access(line, write=bool(line % 2))
    for s in c._sets:
        assert len(s) <= ways
    # re-access of the most recent line is always a hit
    hit, _ = c.access(accesses[-1])
    assert hit


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 4096))
def test_secded_hamming_bound(data_bits):
    r = secded_check_bits(data_bits) - 1  # drop the DED parity bit
    assert 2 ** r >= data_bits + r + 1
    assert 2 ** (r - 1) < data_bits + (r - 1) + 1


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    lanes=st.lists(st.integers(0, 63), min_size=1, max_size=64, unique=True),
    seed=st.integers(0, 2**31 - 1),
)
def test_lds_scatter_gather_roundtrip(lanes, seed):
    """Random LDS permutation writes/reads are exact."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(64).astype(np.uint32)

    b = KernelBuilder("k")
    pidx = b.buffer_param("perm", DType.U32)
    out = b.buffer_param("out", DType.U32)
    lds = b.local_alloc("t", DType.U32, 64)
    gid = b.global_id(0)
    lid = b.local_id(0)
    target = b.load(pidx, lid)
    b.store_local(lds, target, lid)
    b.barrier()
    b.store(out, gid, b.load_local(lds, lid))
    k = b.finish()

    s = Session()
    pb = s.upload("perm", perm)
    ob = s.zeros("out", 64, np.uint32)
    compiled = compile_kernel(k, "original")
    s.launch(compiled, 64, 64, {"perm": pb, "out": ob})
    got = s.download(ob)
    inverse = np.empty(64, dtype=np.uint32)
    inverse[perm] = np.arange(64, dtype=np.uint32)
    np.testing.assert_array_equal(got, inverse)
