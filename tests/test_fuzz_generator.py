"""Tests for the seeded random kernel generator (repro.fuzz.generator).

The generator's contract: every program it emits is (a) bit-reproducible
from its seed, (b) spec-valid, and (c) verifier- and lint-clean through
the full compile pipeline at every RMT variant and optimization level.
"""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_kernel
from repro.fuzz.generator import GenConfig, generate_program
from repro.fuzz.program import FuzzProgram, Op
from repro.ir.builder import KernelBuilder
from repro.ir.types import DType

SWEEP_SEEDS = range(200)
VARIANTS = ("intra+lds", "intra-lds", "inter")


def _walk(ops):
    for op in ops:
        yield op
        yield from _walk(op.body)
        yield from _walk(op.orelse)


class TestDeterminism:
    def test_bit_reproducible_from_seed(self):
        for seed in range(25):
            a = generate_program(seed)
            b = generate_program(seed)
            assert a.spec_repr() == b.spec_repr()
            assert a.digest() == b.digest()

    def test_distinct_seeds_distinct_programs(self):
        digests = {generate_program(s).digest() for s in range(50)}
        assert len(digests) == 50

    def test_seed_recorded_in_meta(self):
        p = generate_program(7)
        assert p.meta["seed"] == 7
        assert "generator" in p.meta

    def test_initial_data_reproducible(self):
        a = generate_program(3)
        b = generate_program(3)
        for ba, bb in zip(a.buffers, b.buffers):
            np.testing.assert_array_equal(ba.initial_data(), bb.initial_data())


class TestSweepCleanliness:
    """ISSUE acceptance: 200 seeded programs pass verify + lints."""

    def test_200_programs_validate_and_compile_clean(self):
        for seed in SWEEP_SEEDS:
            p = generate_program(seed)
            assert p.validate() == [], f"seed {seed}: {p.validate()}"
            # verify=True, lint=True are the compile_kernel defaults; a
            # dirty program raises and fails the test with the seed.
            try:
                compile_kernel(p.build())
            except Exception as e:  # pragma: no cover - diagnostic path
                pytest.fail(f"seed {seed} failed baseline compile: {e}")

    def test_variant_matrix_compiles_clean_sample(self):
        for seed in range(30):
            p = generate_program(seed)
            for variant in VARIANTS:
                for optimize in (False, True):
                    try:
                        compile_kernel(p.build(), variant=variant,
                                       optimize=optimize)
                    except Exception as e:  # pragma: no cover
                        pytest.fail(f"seed {seed} {variant} O{int(optimize)}"
                                    f" failed: {e}")

    @pytest.mark.slow
    def test_variant_matrix_compiles_clean_full(self):
        for seed in SWEEP_SEEDS:
            p = generate_program(seed)
            for variant in VARIANTS:
                for optimize in (False, True):
                    compile_kernel(p.build(), variant=variant,
                                   optimize=optimize)


class TestShapeInvariants:
    def test_sizes_and_budget(self):
        from repro.fuzz.shrink import count_ops

        cfg = GenConfig()
        for seed in range(60):
            p = generate_program(seed)
            assert p.global_size % p.local_size == 0
            assert p.global_size & (p.global_size - 1) == 0  # power of 2
            assert 1 <= len(p.buffers) <= 5
            # The budget counts *segments*; each emits a bounded number
            # of ops, so total op count stays within a loose multiple.
            assert 0 < count_ops(p) <= cfg.max_ops * 12 + 40

    def test_every_out_buffer_gets_epilogue_store(self):
        for seed in range(60):
            p = generate_program(seed)
            stored = {op.ref for op in _walk(p.ops) if op.kind == "store"}
            for buf in p.buffers:
                if buf.role == "out":
                    assert buf.name in stored, f"seed {seed}: {buf.name}"

    def test_acc_buffers_single_atomic_kind(self):
        """Mixed atomic kinds on one cell are order-dependent (max∘or !=
        or∘max) and would make the differential oracle flaky."""
        for seed in range(120):
            p = generate_program(seed)
            kinds = {}
            for op in _walk(p.ops):
                if op.kind == "atomic":
                    kinds.setdefault(op.ref, set()).add(op.op)
            for name, ops in kinds.items():
                assert len(ops) == 1, f"seed {seed}: {name} uses {ops}"

    def test_in_buffers_never_stored(self):
        for seed in range(120):
            p = generate_program(seed)
            in_bufs = {b.name for b in p.buffers if b.role == "in"}
            for op in _walk(p.ops):
                if op.kind in ("store", "atomic"):
                    assert op.ref not in in_bufs, f"seed {seed}"


class TestFeatureCoverage:
    def test_sweep_exercises_all_major_features(self):
        seen = set()
        for seed in range(100):
            for op in _walk(generate_program(seed).ops):
                seen.add(op.kind)
                if op.dtype == "f32":
                    seen.add("f32")
        for feature in ("alu", "cmp", "select", "load", "store", "if",
                        "for", "barrier", "load_local", "store_local",
                        "atomic", "f32"):
            assert feature in seen, f"{feature} never generated in 100 seeds"


class TestConfigGates:
    def _kinds(self, seed, cfg):
        return {op.kind for op in _walk(generate_program(seed, cfg).ops)}

    def test_allow_lds_false(self):
        cfg = GenConfig(allow_lds=False)
        for seed in range(40):
            kinds = self._kinds(seed, cfg)
            assert not kinds & {"load_local", "store_local"}

    def test_allow_atomics_false(self):
        cfg = GenConfig(allow_atomics=False)
        for seed in range(40):
            assert "atomic" not in self._kinds(seed, cfg)

    def test_allow_branches_and_loops_false(self):
        cfg = GenConfig(allow_branches=False, allow_loops=False)
        for seed in range(40):
            assert not self._kinds(seed, cfg) & {"if", "for"}

    def test_max_ops_scales_program_size(self):
        from repro.fuzz.shrink import count_ops

        small = GenConfig(min_ops=4, max_ops=8)
        big = GenConfig(min_ops=30, max_ops=36)
        small_sizes = []
        for seed in range(40):
            p = generate_program(seed, small)
            small_sizes.append(count_ops(p))
            assert p.validate() == []
            compile_kernel(p.build())
        big_sizes = [count_ops(generate_program(s, big)) for s in range(40)]
        assert (sum(small_sizes) / len(small_sizes)
                < sum(big_sizes) / len(big_sizes))


class TestLdsRacesShiftRegression:
    """The fuzzer's first catch (seed 393): the lds_races lint's affine
    evaluator crashed with 'negative shift count' on shift-by-negative-
    constant LDS indices; the engine masks counts with `& 31`."""

    def _kernel(self, shift_op, count):
        b = KernelBuilder("shift_lint")
        lid = b.local_id(0)
        amt = b.const(count, DType.I32)
        idx = getattr(b, shift_op)(b.bitcast(lid, DType.I32), amt)
        lds = b.local_alloc("scratch", DType.U32, 64)
        b.store_local(lds, b.and_(b.bitcast(idx, DType.U32), 63), lid)
        b.barrier()
        k = b.finish()
        k.metadata["local_size"] = (64, 1, 1)
        return k

    @pytest.mark.parametrize("shift_op", ["shl", "shr"])
    @pytest.mark.parametrize("count", [-5, -1, 35])
    def test_lint_survives_out_of_range_shift_counts(self, shift_op, count):
        for variant in ("original", "intra+lds", "inter"):
            compile_kernel(self._kernel(shift_op, count), variant=variant)

    def test_seed_393_compiles_at_every_variant(self):
        p = generate_program(393)
        for variant in ("original",) + VARIANTS:
            compile_kernel(p.build(), variant=variant)


class TestProtectRegions:
    """The protect_prob knob: off by default (stream-preserving), and
    when on, emitted regions survive the spec → IR round trip."""

    def test_zero_prob_is_stream_identical_to_default(self):
        for seed in range(10):
            assert generate_program(seed).digest() == \
                generate_program(seed, GenConfig(protect_prob=0.0)).digest()

    def test_protect_emission_deterministic(self):
        cfg = GenConfig(protect_prob=0.5)
        for seed in range(10):
            assert generate_program(seed, cfg).digest() == \
                generate_program(seed, cfg).digest()

    def test_regions_reach_kernel_metadata(self):
        cfg = GenConfig(protect_prob=0.5)
        protected = 0
        for seed in range(10):
            p = generate_program(seed, cfg)
            has = any(op.kind == "protect" for op in _walk(p.ops))
            regions = (p.build().metadata.get("protect")
                       or {}).get("regions") or []
            assert bool(regions) == has
            protected += has
        assert protected  # the knob actually fires at p=0.5

    def test_protect_programs_validate_and_compile_clean(self):
        """Values defined inside a region stay usable after it (protect
        is not a scope), and the builds stay verifier/lint-clean."""
        cfg = GenConfig(protect_prob=0.5)
        for seed in range(10):
            p = generate_program(seed, cfg)
            assert p.validate() == [], f"seed {seed}: {p.validate()}"
            compile_kernel(p.build())
