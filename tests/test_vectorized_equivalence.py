"""Three-way equivalence: interpreter vs fused vs vectorized engines.

The vectorized run-ahead engine (:mod:`repro.gpu.vectorized`) must be an
*unobservable* optimisation, exactly like block fusion before it:
identical memory images, cycle counts, counter totals, and detection
events on every kernel, launch geometry, variant, and opt level — and it
must provably *disengage* (fall back to the standard engine) whenever a
fault hook or a non-default scheduler needs per-instruction order.

Lanes:

* **geometry sweep** — seeded dispatch shapes crossing work-group count,
  wavefronts per group, and ragged last wavefronts (``local_size`` not a
  multiple of 64 leaves partially-active lane masks) through a kernel
  that mixes divergent loops, LDS traffic with barriers, atomics, and
  f32 transcendentals;
* **suite sweep** — the paper's small benchmark suite × RMT variant ×
  opt level (``slow`` lane, mirroring ``test_fused_equivalence``);
* **corpus replay** — the hand-written fuzz edge programs;
* **fault-path identity** — campaign outcome classifications must not
  move when vectorization is globally enabled, because hooked launches
  bypass it entirely;
* **fallback proof** — ``LaunchResult.engine_kind`` pins which engine
  actually ran.
"""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_kernel
from repro.fuzz.corpus import edge_programs
from repro.fuzz.oracle import RunSpec, run_program
from repro.gpu import fused, vectorized
from repro.gpu.counters import BusyTracker
from repro.gpu.schedule import ReorderScheduler
from repro.ir.builder import KernelBuilder
from repro.ir.types import DType
from repro.kernels.suite import SMALL_SUITE, make_benchmark
from repro.runtime.api import Session


def _norm_counters(counters):
    return {
        k: (v.total if isinstance(v, BusyTracker) else v)
        for k, v in vars(counters).items()
    }


# ---------------------------------------------------------------------------
# Seeded dispatch-geometry sweep
# ---------------------------------------------------------------------------

#: (local_size, groups) launch shapes.  96/160/200 are deliberately not
#: multiples of 64: their last wavefront runs with a ragged lane mask,
#: the case where the vectorized masked write path must match the
#: reference exactly.  Multi-group shapes exercise convoy batching
#: across group boundaries.
GEOMETRIES = [
    (64, 1),      # single full wave
    (96, 3),      # 1.5 waves/group — ragged second wave
    (160, 2),     # 2.5 waves/group
    (200, 5),     # 3.125 waves/group, 5 groups
    (256, 7),     # 4 full waves/group, 7 groups
    (32, 4),      # sub-wave groups: every wave ragged
]


def _build_geometry_kernel(local_size: int, groups: int, seed: int):
    """Divergence + LDS + atomics over a parametric launch shape."""
    n = local_size * groups
    b = KernelBuilder(f"geom{local_size}x{groups}s{seed}")
    src = b.buffer_param("src", DType.F32)
    dst = b.buffer_param("dst", DType.F32)
    tally = b.buffer_param("tally", DType.U32)
    scratch = b.local_alloc("scratch", DType.F32, local_size)

    gid = b.global_id(0)
    lid = b.local_id(0)
    x = b.var(DType.F32, 0.0, hint="x")
    b.set(x, b.load(src, gid))

    # Divergent while loop: lanes iterate (lid % 7) + 1 times.
    k = b.var(DType.U32, 0, hint="k")
    bound = b.add(b.rem(lid, b.const(7, DType.U32)), 1)
    with b.loop() as lp:
        lp.break_unless(b.lt(k, bound))
        b.set(x, b.add(b.mul(x, b.const(0.875, DType.F32)),
                       b.sqrt(b.abs(x))))
        b.set(k, b.add(k, 1))

    # LDS neighbour exchange across the whole (possibly ragged) group.
    b.store_local(scratch, lid, x)
    b.barrier()
    nbr = b.load_local(scratch, b.rem(b.add(lid, 1), local_size))
    b.barrier()
    b.set(x, b.add(x, b.mul(nbr, b.const(0.5, DType.F32))))

    # Divergent branch with a store on one arm only.
    with b.if_(b.lt(lid, local_size // 2)):
        b.set(x, b.sub(x, b.sin(x)))

    b.store(dst, gid, x)
    b.atomic("add", tally, b.group_id(0),
             b.f2u(b.abs(x)), want_old=False)

    kern = b.finish()
    kern.metadata["local_size"] = (local_size, 1, 1)
    kern.metadata["global_size"] = (n, 1, 1)
    kern.metadata["buffer_nelems"] = {"src": n, "dst": n, "tally": groups}
    return kern


def _run_geometry(local_size, groups, seed, variant, optimize,
                  fusion_on, vector_on):
    n = local_size * groups
    kern = _build_geometry_kernel(local_size, groups, seed)
    with fused.fusion(fusion_on), vectorized.vector(vector_on):
        compiled = compile_kernel(kern, variant, optimize=optimize,
                                  cache=False)
        session = Session()
        rng = np.random.default_rng(np.random.SeedSequence(seed))
        src = session.upload(
            "src", (rng.standard_normal(n) * 4).astype(np.float32))
        dst = session.zeros("dst", n, np.float32)
        tally = session.zeros("tally", groups, np.uint32)
        result = session.launch(compiled, n, local_size,
                                {"src": src, "dst": dst, "tally": tally})
        return {
            "dst": session.download(dst).tobytes(),
            "tally": session.download(tally).tobytes(),
            "cycles": result.cycles,
            "counters": _norm_counters(result.counters),
            "engine": result.engine_kind,
        }


def _assert_three_way(local_size, groups, seed, variant, optimize):
    where = f"geom {local_size}x{groups} s{seed} {variant}/O{int(optimize)}"
    interp = _run_geometry(local_size, groups, seed, variant, optimize,
                           fusion_on=False, vector_on=False)
    fzd = _run_geometry(local_size, groups, seed, variant, optimize,
                        fusion_on=True, vector_on=False)
    vec = _run_geometry(local_size, groups, seed, variant, optimize,
                        fusion_on=True, vector_on=True)
    assert vec["engine"] == "vectorized", f"{where}: vec lane fell back"
    assert interp["engine"] == fzd["engine"] == "standard", where
    for field in ("dst", "tally", "cycles", "counters"):
        assert interp[field] == fzd[field], f"{where}: interp!=fused {field}"
        assert interp[field] == vec[field], f"{where}: interp!=vec {field}"


FAST_GEOMETRY = [
    (96, 3, 11, "original", False),
    (200, 5, 13, "intra+lds", False),
    (160, 2, 17, "inter", False),
]


@pytest.mark.parametrize("local_size,groups,seed,variant,optimize",
                         FAST_GEOMETRY)
def test_geometry_three_way_fast(local_size, groups, seed, variant, optimize):
    _assert_three_way(local_size, groups, seed, variant, optimize)


@pytest.mark.slow
@pytest.mark.parametrize("local_size,groups", GEOMETRIES)
@pytest.mark.parametrize("variant,optimize", [
    ("original", False), ("original", True),
    ("intra+lds", False), ("intra-lds", True), ("inter", False),
])
def test_geometry_three_way_full(local_size, groups, variant, optimize):
    _assert_three_way(local_size, groups, 23, variant, optimize)


# ---------------------------------------------------------------------------
# Suite sweep (slow) — vectorized vs reference across the paper's matrix
# ---------------------------------------------------------------------------


def _run_suite(abbrev, variant, optimize, vector_on):
    with fused.fusion(not vector_on), vectorized.vector(vector_on):
        bench = make_benchmark(abbrev, "small")
        compiled = compile_kernel(
            bench.build(), variant, optimize=optimize, cache=False)
        return bench.run(Session(), compiled)


@pytest.mark.slow
@pytest.mark.parametrize("abbrev", sorted(SMALL_SUITE))
@pytest.mark.parametrize("variant",
                         ["original", "intra+lds", "intra-lds", "inter"])
@pytest.mark.parametrize("optimize", [False, True])
def test_vectorized_matches_reference_full(abbrev, variant, optimize):
    where = f"{abbrev}/{variant}/O{int(optimize)}"
    ref = _run_suite(abbrev, variant, optimize, vector_on=False)
    vec = _run_suite(abbrev, variant, optimize, vector_on=True)
    assert ref.cycles == vec.cycles, f"{where}: cycle counts diverge"
    for name in ref.outputs:
        assert np.array_equal(ref.outputs[name], vec.outputs[name]), (
            f"{where}: output {name!r} diverges")
    assert _norm_counters(ref.merged_counters()) == _norm_counters(
        vec.merged_counters()), f"{where}: counters diverge"
    assert len(ref.detections) == len(vec.detections), where


# ---------------------------------------------------------------------------
# Fuzz corpus replay
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("prog", edge_programs(), ids=lambda p: p.name)
def test_vectorized_matches_reference_on_corpus(prog):
    for spec in (RunSpec("original"), RunSpec("intra+lds"),
                 RunSpec("inter", optimize=True)):
        with fused.fusion(False), vectorized.vector(False):
            ref = run_program(prog, spec, cycle_budget=50_000_000)
        with vectorized.vector(True):
            vec = run_program(prog, spec, cycle_budget=50_000_000)
        where = f"{prog.name}/{spec.label}"
        assert ref.status == vec.status == "ok", where
        assert ref.cycles == vec.cycles, where
        assert ref.detections == vec.detections, where
        for name in ref.memory:
            assert np.array_equal(ref.memory[name].view(np.uint8),
                                  vec.memory[name].view(np.uint8)), (
                f"{where}: {name}")


# ---------------------------------------------------------------------------
# Fault-path identity: campaigns classify identically with vec enabled
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("abbrev,variant,target", [
    ("DWT", "intra+lds", "vgpr"),
    ("FWT", "inter", "lds"),
])
def test_campaign_outcomes_identical_with_vectorization(
        abbrev, variant, target):
    """Hooked launches bypass vectorization, so enabling it globally
    must not move a single trial's classification (masked / detected /
    sdc / hang) — including hang verdicts from the spin-flush watchdog.
    """
    from repro.faults.campaign import run_campaign

    def tally(vector_on):
        with vectorized.vector(vector_on):
            res = run_campaign(lambda: make_benchmark(abbrev, "small"),
                               variant, target, trials=12, seed=99)
        return (dict(res.outcomes),
                [(r.outcome, r.fired, r.cycles) for r in res.records])

    assert tally(False) == tally(True)


def test_fault_hook_launch_reports_standard_engine():
    with vectorized.vector(True):
        bench = make_benchmark("FWT", "small")
        compiled = bench.compile("original", cache=False)
        res = bench.run(Session(), compiled,
                        fault_hook=lambda wave, instr: None)
    assert all(l.engine_kind == "standard" for l in res.launches)


# ---------------------------------------------------------------------------
# Scheduler fallback: adversarial/controlled pops get the standard engine
# ---------------------------------------------------------------------------


def test_reorder_scheduler_falls_back_to_standard_engine():
    bench = make_benchmark("FWT", "small")
    compiled = bench.compile("inter", cache=False)
    with vectorized.vector(True):
        res = bench.run(Session(scheduler=ReorderScheduler("reverse")),
                        compiled)
        ref = bench.run(Session(), compiled)
    assert all(l.engine_kind == "standard" for l in res.launches)
    assert all(l.engine_kind == "vectorized" for l in ref.launches)
    # Functional outputs agree even though the schedule (and so the
    # cycle count) legitimately differs.
    for name in ref.outputs:
        assert np.array_equal(ref.outputs[name], res.outputs[name]), name


@pytest.mark.slow
def test_mc_selftest_convicts_with_vectorization_enabled():
    """The model checker's controlled scheduler never supports
    run-ahead; with vectorization globally on, its sweeps must still
    run (on the standard engine) and still convict the planted bugs.
    """
    from repro.mc.selftest import run_selftest

    with vectorized.vector(True):
        result = run_selftest(max_schedules=48)
    assert result.ok, result.summary() if hasattr(result, "summary") else result


# ---------------------------------------------------------------------------
# Unit behaviour
# ---------------------------------------------------------------------------


def test_vector_toggle_default_off_and_context():
    assert not vectorized.vector_enabled()
    with vectorized.vector(True):
        assert vectorized.vector_enabled()
        with vectorized.vector(False):
            assert not vectorized.vector_enabled()
        assert vectorized.vector_enabled()
    assert not vectorized.vector_enabled()


def test_vectorized_launch_sets_engine_kind():
    bench = make_benchmark("FWT", "small")
    compiled = bench.compile("original", cache=False)
    with vectorized.vector(True):
        res = bench.run(Session(), compiled)
    assert all(l.engine_kind == "vectorized" for l in res.launches)
