"""Edge-case tests for the CFG/dataflow framework: degenerate shapes
the suite kernels never produce — empty bodies, zero-instruction
kernels, unreachable blocks — must not crash or corrupt the fixpoints."""

from repro.compiler.analysis.dataflow import (
    barrier_free_path,
    barrier_intervals,
    build_cfg,
    compute_dominators,
    definite_assignment,
    dominates,
    liveness,
    reaching_definitions,
)
from repro.ir import DType, KernelBuilder
from repro.ir.core import Kernel


def _run_all(cfg):
    """Every analysis over one CFG — none may raise."""
    return (
        compute_dominators(cfg),
        reaching_definitions(cfg),
        liveness(cfg),
        definite_assignment(cfg),
        barrier_intervals(cfg),
    )


class TestEmptyKernel:
    def test_zero_statement_kernel(self):
        k = Kernel(name="empty", params=[], locals=[], body=[])
        cfg = build_cfg(k)
        assert len(cfg) == 2          # entry and exit only
        dom, rd, lv, da, bi = _run_all(cfg)
        assert dominates(dom, cfg.entry, cfg.exit)
        assert rd.sites == []
        assert lv.max_live() == 0
        assert not da.violations and not da.cond_violations

    def test_rpo_covers_both_blocks(self):
        k = Kernel(name="empty", params=[], locals=[], body=[])
        cfg = build_cfg(k)
        assert set(cfg.rpo()) == {cfg.entry, cfg.exit}


class TestSingleBlockKernel:
    def _straight(self):
        b = KernelBuilder("single")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        x = b.add(gid, 1)
        b.store(out, gid, x)
        return b.finish(), gid, x

    def test_all_instrs_in_entry_block(self):
        k, _gid, _x = self._straight()
        cfg = build_cfg(k)
        assert all(bid == cfg.entry for bid, _i, _l in cfg.iter_instrs())

    def test_analyses_on_straight_line(self):
        k, gid, x = self._straight()
        cfg = build_cfg(k)
        dom, rd, lv, da, bi = _run_all(cfg)
        store = k.body[-1]
        assert len(rd.reaching(store, x)) == 1
        assert not da.violations
        # No barriers: everything shares the entry interval.
        assert bi.may_share_interval(k.body[0], store)
        assert barrier_free_path(cfg, k.body[0], store)


class TestEmptyBodies:
    def test_empty_then_arm(self):
        b = KernelBuilder("emptythen")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        with b.if_(b.lt(gid, 4)):
            pass
        b.store(out, gid, gid)
        k = b.finish()
        cfg = build_cfg(k)
        dom, rd, lv, da, bi = _run_all(cfg)
        assert not da.violations
        assert dominates(dom, cfg.entry, cfg.exit)

    def test_empty_else_arm(self):
        b = KernelBuilder("emptyelse")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        with b.if_else(b.lt(gid, 4)) as orelse:
            b.store(out, gid, gid)
            with orelse():
                pass
        k = b.finish()
        _run_all(build_cfg(k))

    def test_empty_loop_body(self):
        """A While whose body is empty still has a back edge, and the
        fixpoints terminate."""
        b = KernelBuilder("emptyloop")
        out = b.buffer_param("out", DType.U32)
        i = b.var(DType.U32, 0)
        with b.loop() as lp:
            lp.break_unless(b.lt(i, 8))
        b.store(out, i, i)
        k = b.finish()
        cfg = build_cfg(k)
        rpo_pos = {bid: n for n, bid in enumerate(cfg.rpo())}
        back = [(blk.bid, s) for blk in cfg.blocks for s in blk.succs
                if rpo_pos.get(s, 0) <= rpo_pos.get(blk.bid, 0)]
        assert back
        dom, rd, lv, da, bi = _run_all(cfg)
        assert not da.violations

    def test_nested_empty_structures(self):
        b = KernelBuilder("nestempty")
        gid = b.global_id(0)
        i = b.var(DType.U32, 0)
        with b.if_(b.lt(gid, 4)):
            with b.loop() as lp:
                lp.break_unless(b.lt(i, 2))
        k = b.finish()
        dom, rd, lv, da, bi = _run_all(build_cfg(k))
        assert not da.violations


class TestUnreachableBlocks:
    """The structured lowering never produces unreachable blocks, but
    the analyses are documented to tolerate them (clients may prune or
    stitch CFGs); splice one in and check the documented behaviour."""

    def _with_orphan(self):
        b = KernelBuilder("orphan")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        b.store(out, gid, gid)
        k = b.finish()
        cfg = build_cfg(k)
        orphan = cfg._new_block()
        orphan.instrs.append((k.body[0], cfg.locs[id(k.body[0])]))
        return cfg, orphan

    def test_rpo_skips_unreachable(self):
        cfg, orphan = self._with_orphan()
        assert orphan.bid not in cfg.rpo()

    def test_dominators_keep_full_set_for_unreachable(self):
        cfg, orphan = self._with_orphan()
        dom = compute_dominators(cfg)
        # "Everything dominates an unreachable block" — the standard
        # convention, which makes dominance queries vacuously true there.
        assert dominates(dom, cfg.entry, orphan.bid)
        assert dominates(dom, cfg.exit, orphan.bid)

    def test_analyses_terminate_with_unreachable_block(self):
        cfg, _orphan = self._with_orphan()
        _run_all(cfg)

    def test_barrier_queries_conservative_for_unknown_instrs(self):
        b = KernelBuilder("known")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        b.store(out, gid, gid)
        k = b.finish()
        cfg = build_cfg(k)
        bi = barrier_intervals(cfg)
        b2 = KernelBuilder("foreign")
        b2.global_id(0)
        stmt = b2.kernel.body[0]
        # Statements the CFG has never seen: be conservative, not wrong.
        assert bi.may_share_interval(k.body[0], stmt)
        assert barrier_free_path(cfg, k.body[0], stmt)
