"""Tests for the Table 1 ECC model."""

import pytest

from repro.eval.ecc import (
    ecc_overhead,
    format_table1,
    secded_check_bits,
    table1,
    total_overhead_fraction,
)


class TestSecDed:
    def test_known_widths(self):
        # (39,32) and (72,64) are the classic SEC-DED geometries.
        assert secded_check_bits(32) == 7
        assert secded_check_bits(64) == 8
        assert secded_check_bits(512) == 11

    def test_monotonic(self):
        prev = 0
        for bits in (8, 16, 32, 64, 128, 256, 512):
            r = secded_check_bits(bits)
            assert r >= prev
            prev = r

    def test_invalid(self):
        with pytest.raises(ValueError):
            secded_check_bits(0)


class TestTable1:
    def test_paper_values(self):
        rows = {e.structure: e for e in table1()}
        assert rows["Local data share"].overhead_bytes == 14 * 1024
        assert rows["Vector register file"].overhead_bytes == 56 * 1024
        assert rows["Scalar register file"].overhead_bytes == 1.75 * 1024
        # Standard (522,512) code: 352 B (paper prints 343.75 B).
        assert rows["R/W L1 cache"].overhead_bytes == pytest.approx(352, abs=9)

    def test_sizes_match_paper(self):
        rows = {e.structure: e for e in table1()}
        assert rows["Local data share"].size_bytes == 64 * 1024
        assert rows["Vector register file"].size_bytes == 256 * 1024
        assert rows["Scalar register file"].size_bytes == 8 * 1024
        assert rows["R/W L1 cache"].size_bytes == 16 * 1024

    def test_total_overhead_21_percent(self):
        assert total_overhead_fraction(table1()) == pytest.approx(0.21, abs=0.005)

    def test_ecc_overhead_formula(self):
        # 1 kB at 32-bit words: 256 words x 7 bits = 224 B.
        assert ecc_overhead(1024, 32) == 224

    def test_format_contains_all_rows(self):
        text = format_table1(table1())
        for name in ("Local data share", "Vector register file",
                     "Scalar register file", "R/W L1 cache"):
            assert name in text
        assert "21.0%" in text
