"""Structural and semantic tests for the Inter-Group RMT pass."""

import numpy as np
import pytest

from repro.compiler import InterGroupRmtPass, RmtOptions, compile_kernel
from repro.compiler.pass_manager import PassManager
from repro.compiler.passes.rmt_common import (
    INTER_COMM_ADDR,
    INTER_COMM_VAL,
    INTER_COUNTER,
    INTER_FLAG,
)
from repro.ir import (
    AtomicGlobal,
    DType,
    KernelBuilder,
    ReportError,
    verify_kernel,
    walk_instrs,
)
from repro.runtime import Session


def _base_kernel():
    b = KernelBuilder("base")
    a = b.buffer_param("a", DType.F32)
    out = b.buffer_param("out", DType.F32)
    gid = b.global_id(0)
    grp = b.group_id(0)
    x = b.load(a, gid)
    b.store(out, gid, b.add(x, b.u2f(grp)))
    k = b.finish()
    k.metadata["local_size"] = (64, 1, 1)
    return k


def _transform(communication=True):
    p = InterGroupRmtPass(RmtOptions(communication=communication))
    return PassManager([p]).run(_base_kernel())


class TestStructure:
    def test_transformed_verifies(self):
        verify_kernel(_transform())

    def test_hidden_params_appended(self):
        k = _transform()
        names = {p.name for p in k.params}
        assert {INTER_COUNTER, INTER_FLAG, INTER_COMM_ADDR, INTER_COMM_VAL} <= names

    def test_metadata(self):
        k = _transform()
        meta = k.metadata["rmt"]
        assert meta["flavor"] == "inter"
        assert meta["ndrange"] == "double_groups_dim0"
        assert set(meta["extra_buffers"]) == {
            INTER_COUNTER, INTER_FLAG, INTER_COMM_ADDR, INTER_COMM_VAL
        }

    def test_ticket_counter_atomic_present(self):
        k = _transform()
        atomics = [i for i in walk_instrs(k.body) if isinstance(i, AtomicGlobal)]
        counter_ops = [a for a in atomics if a.buf.name == INTER_COUNTER]
        assert len(counter_ops) == 1 and counter_ops[0].op == "add"

    def test_lock_protocol_atomics(self):
        k = _transform()
        atomics = [i for i in walk_instrs(k.body) if isinstance(i, AtomicGlobal)]
        flag_ops = [a for a in atomics if a.buf.name == INTER_FLAG]
        # producer: wait + signal; consumer: wait + free = 4 flag operations
        assert len(flag_ops) == 4
        assert {a.op for a in flag_ops} == {"add", "xchg"}

    def test_no_comm_variant_has_no_lock_traffic(self):
        k = _transform(communication=False)
        atomics = [i for i in walk_instrs(k.body) if isinstance(i, AtomicGlobal)]
        assert all(a.buf.name == INTER_COUNTER for a in atomics)
        assert not any(isinstance(i, ReportError) for i in walk_instrs(k.body))

    def test_bcast_lds_allocated(self):
        k = _transform()
        assert k.local("__rmt_gid_bcast").nelems == 1


class TestSemantics:
    def _run(self, variant, n=512, local=64):
        compiled = compile_kernel(_base_kernel(), variant)
        s = Session()
        data = np.arange(n, dtype=np.float32)
        ab = s.upload("a", data)
        ob = s.zeros("out", n, np.float32)
        res = s.launch(compiled, n, local, {"a": ab, "out": ob})
        return s.download(ob), res, s

    def test_output_equivalence(self):
        expect, _, _ = self._run("original")
        got, res, _ = self._run("inter")
        np.testing.assert_array_equal(got, expect)
        assert not res.detections

    def test_doubles_groups(self):
        _, orig, _ = self._run("original")
        _, rmt, _ = self._run("inter")
        assert rmt.groups_launched == 2 * orig.groups_launched

    def test_group_id_virtualization_covers_grid(self):
        """Every original group id is produced exactly twice."""
        b = KernelBuilder("grp")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        grp = b.group_id(0)
        b.store(out, gid, grp)
        k = b.finish()
        k.metadata["local_size"] = (64, 1, 1)
        compiled = compile_kernel(k, "inter")
        s = Session()
        ob = s.zeros("out", 512, np.uint32)
        s.launch(compiled, 512, 64, {"out": ob})
        got = s.download(ob)
        np.testing.assert_array_equal(got, np.repeat(np.arange(8), 64))

    def test_flags_all_freed_after_run(self):
        """The two-tier lock leaves every slot free (0) at kernel end."""
        _, _, s = self._run("inter")
        flag_bufs = [b for n, b in s.device.memory.buffers.items()
                     if n.startswith(INTER_FLAG)]
        assert flag_bufs
        for buf in flag_bufs:
            assert (buf.data == 0).all()

    def test_ticket_counter_consumed_exactly(self):
        _, res, s = self._run("inter")
        counters = [b for n, b in s.device.memory.buffers.items()
                    if n.startswith(INTER_COUNTER)]
        assert counters[0].data[0] == res.groups_launched


class TestDetection:
    def test_forced_mismatch_detected(self):
        from repro.faults import FaultHook, FaultPlan

        detections = 0
        fired = 0
        for trigger in (2, 36, 52, 54):
            compiled = compile_kernel(_base_kernel(), "inter")
            plan = FaultPlan(target="vgpr", wave_ordinal=0,
                             trigger_instr=trigger, bit=18, lane=7,
                             victim_index=1)
            hook = FaultHook(
                plan, scalar_reg_ids=compiled.uniformity.uniform_regs
            )
            s = Session()
            ab = s.upload("a", np.arange(512, dtype=np.float32))
            ob = s.zeros("out", 512, np.float32)
            res = s.launch(compiled, 512, 64, {"a": ab, "out": ob},
                           fault_hook=hook)
            fired += hook.record.fired
            detections += bool(res.detections)
        assert fired == 4
        assert detections >= 1, "upsets in live producer values must be caught"
