"""Tests for the cleanup optimization passes (fold / CSE / DCE)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compiler import compile_kernel
from repro.compiler.passes.optimize import (
    CommonSubexpressionPass,
    ConstantFoldingPass,
    DeadCodeEliminationPass,
    optimize,
)
from repro.compiler.pass_manager import clone_kernel
from repro.ir import (
    Alu,
    Const,
    DType,
    KernelBuilder,
    verify_kernel,
    walk_instrs,
)
from repro.runtime import Session


def _count(kernel):
    return len(list(walk_instrs(kernel.body)))


class TestDce:
    def test_removes_unused_computation(self):
        b = KernelBuilder("k")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        _dead = b.mul(b.add(gid, 5), 7)
        b.store(out, gid, gid)
        k = b.finish()
        before = _count(k)
        DeadCodeEliminationPass().run(k)
        verify_kernel(k)
        assert _count(k) < before

    def test_keeps_stores_and_roots(self):
        b = KernelBuilder("k")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        v = b.add(gid, 1)
        b.store(out, gid, v)
        k = b.finish()
        before = _count(k)
        DeadCodeEliminationPass().run(k)
        assert _count(k) == before

    def test_keeps_loop_carried_values(self):
        b = KernelBuilder("k")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        acc = b.var(DType.U32, 0)
        with b.for_range(0, 4) as i:
            b.set(acc, b.add(acc, i))
        b.store(out, gid, acc)
        k = b.finish()
        DeadCodeEliminationPass().run(k)
        verify_kernel(k)
        # acc updates inside the loop must survive
        ck = compile_kernel(k, "original", verify=True)
        s = Session()
        ob = s.zeros("out", 64, np.uint32)
        s.launch(ck, 64, 64, {"out": ob})
        assert (s.download(ob) == 6).all()

    def test_keeps_if_condition_chain(self):
        b = KernelBuilder("k")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        cond = b.lt(gid, 8)
        with b.if_(cond):
            b.store(out, gid, 1)
        k = b.finish()
        DeadCodeEliminationPass().run(k)
        verify_kernel(k)
        kinds = [type(i).__name__ for i in walk_instrs(k.body)]
        assert "Cmp" in kinds


class TestConstantFolding:
    def test_folds_integer_chain(self):
        b = KernelBuilder("k")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        c = b.add(b.const(2, DType.U32), b.const(3, DType.U32))
        c = b.shl(c, b.const(2, DType.U32))
        b.store(out, gid, c)
        k = b.finish()
        ConstantFoldingPass().run(k)
        consts = [i for i in walk_instrs(k.body) if isinstance(i, Const)]
        assert any(i.value == 20 for i in consts)

    def test_u32_wraparound(self):
        b = KernelBuilder("k")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        c = b.sub(b.const(0, DType.U32), b.const(1, DType.U32))
        b.store(out, gid, c)
        k = b.finish()
        ConstantFoldingPass().run(k)
        consts = [i for i in walk_instrs(k.body) if isinstance(i, Const)]
        assert any(i.value == 0xFFFFFFFF for i in consts)

    def test_does_not_fold_floats(self):
        b = KernelBuilder("k")
        out = b.buffer_param("out", DType.F32)
        gid = b.global_id(0)
        c = b.add(b.const(0.5, DType.F32), b.const(0.25, DType.F32))
        b.store(out, gid, c)
        k = b.finish()
        before = _count(k)
        ConstantFoldingPass().run(k)
        assert _count(k) == before

    def test_loop_invalidates_env(self):
        """A register redefined inside a loop must not be treated constant."""
        b = KernelBuilder("k")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        x = b.var(DType.U32, 1)
        with b.for_range(0, 3) as _i:
            b.set(x, b.add(x, x))
        y = b.add(x, 0)
        b.store(out, gid, y)
        k = b.finish()
        ConstantFoldingPass().run(k)
        ck = compile_kernel(k, "original")
        s = Session()
        ob = s.zeros("out", 64, np.uint32)
        s.launch(ck, 64, 64, {"out": ob})
        assert (s.download(ob) == 8).all()


class TestCse:
    def test_merges_duplicate_expressions(self):
        b = KernelBuilder("k")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        a1 = b.mul(gid, 3)
        a2 = b.mul(gid, 3)  # same registers? no — new const register
        # Use identical source registers explicitly:
        three = b.const(3, DType.U32)
        c1 = b.mul(gid, three)
        c2 = b.mul(gid, three)
        b.store(out, gid, b.add(c1, c2))
        k = b.finish()
        CommonSubexpressionPass().run(k)
        muls = [i for i in walk_instrs(k.body)
                if isinstance(i, Alu) and i.op == "mul"]
        movs = [i for i in walk_instrs(k.body)
                if isinstance(i, Alu) and i.op == "mov"]
        assert movs, "second identical mul should become a move"

    def test_redefinition_blocks_cse(self):
        b = KernelBuilder("k")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        x = b.var(DType.U32, 2)
        c1 = b.mul(gid, x)
        b.set(x, 5)
        c2 = b.mul(gid, x)   # must NOT merge with c1
        b.store(out, gid, b.add(c1, c2))
        k = b.finish()
        CommonSubexpressionPass().run(k)
        ck = compile_kernel(k, "original")
        s = Session()
        ob = s.zeros("out", 64, np.uint32)
        s.launch(ck, 64, 64, {"out": ob})
        expected = (np.arange(64) * 2 + np.arange(64) * 5).astype(np.uint32)
        np.testing.assert_array_equal(s.download(ob), expected)


class TestOptimizePipeline:
    def _kernel(self):
        b = KernelBuilder("k")
        a = b.buffer_param("a", DType.F32)
        out = b.buffer_param("out", DType.F32)
        lds = b.local_alloc("t", DType.F32, 64)
        gid = b.global_id(0)
        lid = b.local_id(0)
        b.store_local(lds, lid, b.load(a, gid))
        b.barrier()
        b.store(out, gid, b.mul(b.load_local(lds, lid), 2.0))
        k = b.finish()
        k.metadata["local_size"] = (64, 1, 1)
        return k

    @pytest.mark.parametrize("variant", ["intra+lds", "intra-lds", "inter"])
    def test_optimized_rmt_equivalent(self, variant):
        data = np.arange(256, dtype=np.float32)

        def run(optimized):
            ck = compile_kernel(self._kernel(), variant, optimize=optimized)
            s = Session()
            ab = s.upload("a", data)
            ob = s.zeros("out", 256, np.float32)
            res = s.launch(ck, 256, 64, {"a": ab, "out": ob})
            assert not res.detections
            return s.download(ob)

        np.testing.assert_array_equal(run(False), run(True))

    def test_optimization_shrinks_rmt_kernel(self):
        plain = compile_kernel(self._kernel(), "intra+lds")
        opt = compile_kernel(self._kernel(), "intra+lds", optimize=True)
        assert _count(opt.kernel) <= _count(plain.kernel)
        assert (opt.resources.vgprs_per_workitem
                <= plain.resources.vgprs_per_workitem)

    def test_optimize_helper_runs_all(self):
        k = self._kernel()
        before = _count(k)
        optimize(k)
        verify_kernel(k)
        assert _count(k) <= before


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**31 - 1), n_ops=st.integers(1, 10))
def test_optimize_preserves_semantics_on_random_programs(seed, n_ops):
    rng = np.random.default_rng(seed)
    ops = ["add", "sub", "mul", "and", "or", "xor", "min", "max"]

    def build():
        b = KernelBuilder("p")
        a = b.buffer_param("a", DType.U32)
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        vals = [b.load(a, gid), b.const(int(rng.integers(0, 100)), DType.U32)]
        for _ in range(n_ops):
            op = ops[int(rng.integers(0, len(ops)))]
            x = vals[int(rng.integers(0, len(vals)))]
            y = vals[int(rng.integers(0, len(vals)))]
            vals.append(getattr(b, {"and": "and_", "or": "or_"}.get(op, op))(x, y))
        b.store(out, gid, vals[-1])
        k = b.finish()
        k.metadata["local_size"] = (64, 1, 1)
        return k

    data = (np.arange(128, dtype=np.uint64) * 2654435761 % 2**32).astype(np.uint32)

    def run(optimized):
        rng2 = np.random.default_rng(seed)  # rebuild identically
        nonlocal rng
        rng = rng2
        ck = compile_kernel(build(), "original", optimize=optimized)
        s = Session()
        ab = s.upload("a", data.astype(np.uint32))
        ob = s.zeros("out", 128, np.uint32)
        s.launch(ck, 128, 64, {"a": ab, "out": ob})
        return s.download(ob)

    np.testing.assert_array_equal(run(False), run(True))
