"""Tests for compiler analyses: uniformity, resources, SoR."""

import pytest

from repro.compiler import (
    analyze_sor,
    analyze_uniformity,
    compile_kernel,
    estimate_resources,
)
from repro.ir import DType, KernelBuilder, walk_instrs


def _kernel_with_scalar_work():
    b = KernelBuilder("k")
    a = b.buffer_param("a", DType.F32)
    out = b.buffer_param("out", DType.F32)
    n = b.scalar_param("n", DType.U32)
    grp = b.group_id(0)
    base = b.mul(grp, n)          # uniform: group id x param
    gid = b.global_id(0)          # vector
    mixed = b.add(gid, base)      # vector (mixes uniform + vector)
    b.store(out, mixed, b.load(a, gid))
    return b.finish(), base, gid, mixed


class TestUniformity:
    def test_uniform_sources_propagate(self):
        k, base, gid, mixed = _kernel_with_scalar_work()
        info = analyze_uniformity(k)
        assert info.is_uniform(base)
        assert not info.is_uniform(gid)
        assert not info.is_uniform(mixed)

    def test_constants_and_params_uniform(self):
        b = KernelBuilder("k")
        n = b.scalar_param("n", DType.U32)
        c = b.const(5, DType.U32)
        k = b.finish()
        info = analyze_uniformity(k)
        assert info.is_uniform(n)
        assert info.is_uniform(c)

    def test_uniform_address_loads_scalarize(self):
        """A load with a wavefront-uniform address runs on the SU."""
        b = KernelBuilder("k")
        a = b.buffer_param("a", DType.F32)
        x = b.load(a, b.const(0, DType.U32))
        k = b.finish()
        info = analyze_uniformity(k)
        assert info.is_uniform(x)

    def test_vector_address_loads_stay_vector(self):
        b = KernelBuilder("k")
        a = b.buffer_param("a", DType.F32)
        x = b.load(a, b.global_id(0))
        k = b.finish()
        info = analyze_uniformity(k)
        assert not info.is_uniform(x)

    def test_divergent_region_demotes(self):
        b = KernelBuilder("k")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        cond = b.lt(gid, 4)       # non-uniform condition
        v = b.var(DType.U32, 0)
        with b.if_(cond):
            b.set(v, 7)            # written under divergence
        b.store(out, gid, v)
        k = b.finish()
        info = analyze_uniformity(k)
        assert not info.is_uniform(v)

    def test_nonuniform_redefinition_demotes(self):
        b = KernelBuilder("k")
        out = b.buffer_param("out", DType.U32)
        v = b.var(DType.U32, 1)    # uniform at first
        b.set(v, b.global_id(0))   # redefined as vector
        b.store(out, b.global_id(0), v)
        k = b.finish()
        info = analyze_uniformity(k)
        assert not info.is_uniform(v)

    def test_deep_copy_chain_converges_without_warning(self):
        """A long copy chain with a late demotion converges cleanly: the
        copies read the value *before* the non-uniform redefinition, so
        they stay uniform while the redefined register is demoted."""
        import warnings

        b = KernelBuilder("k")
        out = b.buffer_param("out", DType.U32)
        v = b.var(DType.U32, 0)
        chain = [b.mov(v)]
        for _ in range(11):
            chain.append(b.mov(chain[-1]))
        b.set(v, b.global_id(0))
        b.store(out, b.global_id(0), chain[-1])
        k = b.finish()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            info = analyze_uniformity(k)
        assert not info.is_uniform(v)
        assert all(info.is_uniform(r) for r in chain)

    def test_nonconvergence_bound_warns(self, monkeypatch):
        """If the fixpoint never stabilizes (analysis bug), the generous
        iteration bound trips and warns instead of looping forever or —
        as the old hard-coded ``range(8)`` did — silently returning a
        half-converged result."""
        from repro.compiler.analysis import uniformity as uniformity_mod

        real_walk = uniformity_mod._walk
        state = {"tick": 0}

        def flapping_walk(body, info, divergent):
            real_walk(body, info, divergent)
            state["tick"] += 1
            if state["tick"] % 2:
                info.uniform_regs.add(-1)  # sentinel: never stabilizes
            else:
                info.uniform_regs.discard(-1)

        monkeypatch.setattr(uniformity_mod, "_walk", flapping_walk)
        b = KernelBuilder("k")
        b.global_id(0)
        k = b.finish()
        with pytest.warns(RuntimeWarning, match="did not converge"):
            uniformity_mod.analyze_uniformity(k)

    def test_uniform_loop_counter_scalar(self):
        b = KernelBuilder("k")
        out = b.buffer_param("out", DType.U32)
        acc = b.var(DType.U32, 0)
        with b.for_range(0, 4) as i:
            b.set(acc, b.add(acc, i))
        b.store(out, b.global_id(0), acc)
        k = b.finish()
        info = analyze_uniformity(k)
        assert info.is_uniform(acc)
        assert info.is_uniform(i)


class TestResources:
    def test_more_live_values_more_vgprs(self):
        def kernel(width):
            b = KernelBuilder("k")
            a = b.buffer_param("a", DType.F32)
            out = b.buffer_param("out", DType.F32)
            gid = b.global_id(0)
            vals = [b.load(a, b.add(gid, i)) for i in range(width)]
            acc = vals[0]
            for v in vals[1:]:
                acc = b.add(acc, v)
            b.store(out, gid, acc)
            return b.finish()

        narrow = estimate_resources(kernel(2))
        wide = estimate_resources(kernel(16))
        assert wide.vgprs_per_workitem > narrow.vgprs_per_workitem

    def test_uniform_values_charged_to_sgprs(self):
        b = KernelBuilder("k")
        out = b.buffer_param("out", DType.U32)
        n = b.scalar_param("n", DType.U32)
        u1 = b.mul(n, 3)
        u2 = b.add(u1, 7)
        b.store(out, b.global_id(0), u2)
        res = estimate_resources(b.finish())
        assert res.sgprs_per_wave > 16   # above the baseline

    def test_lds_footprint(self):
        b = KernelBuilder("k")
        b.local_alloc("t", DType.F32, 256)
        res = estimate_resources(b.finish())
        assert res.lds_bytes_per_group == 1024

    def test_rmt_inflates_registers(self):
        from repro.kernels import SMALL_SUITE

        bench = SMALL_SUITE["FWT"]()
        orig = bench.compile("original")
        rmt = bench.compile("intra+lds")
        assert rmt.resources.vgprs_per_workitem >= orig.resources.vgprs_per_workitem
        assert rmt.resources.lds_bytes_per_group > orig.resources.lds_bytes_per_group


class TestSorAnalysis:
    def _compiled(self, variant):
        b = KernelBuilder("k")
        a = b.buffer_param("a", DType.F32)
        out = b.buffer_param("out", DType.F32)
        lds = b.local_alloc("t", DType.F32, 64)
        gid = b.global_id(0)
        lid = b.local_id(0)
        b.store_local(lds, lid, b.load(a, gid))
        b.barrier()
        b.store(out, gid, b.load_local(lds, lid))
        k = b.finish()
        k.metadata["local_size"] = (64, 1, 1)
        return compile_kernel(k, variant)

    def test_table2_intra_plus(self):
        sor = self._compiled("intra+lds").sor
        assert set(sor.protected) == {"SIMD ALU", "VRF", "LDS"}

    def test_table2_intra_minus(self):
        sor = self._compiled("intra-lds").sor
        assert set(sor.protected) == {"SIMD ALU", "VRF"}
        assert "LDS" in sor.unprotected

    def test_table3_inter(self):
        sor = self._compiled("inter").sor
        assert set(sor.unprotected) == {"R/W L1$"}

    def test_untransformed_nothing_protected(self):
        sor = self._compiled("original").sor
        assert not sor.protected

    def test_reports_have_reasons(self):
        sor = self._compiled("intra+lds").sor
        assert all(e.reason for e in sor.entries)
