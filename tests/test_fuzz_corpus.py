"""Regression corpus replay (tests/corpus/).

Every reproducer script in tests/corpus/ — the hand-crafted edge-shape
set plus anything ``--shrink`` dumped from fuzz campaigns — must load,
validate, and pass the full differential matrix cleanly.  A divergence
here means a previously-understood behaviour regressed.
"""

import glob
import importlib.util
import os

import pytest

from repro.fuzz.corpus import EDGE_SHAPES, edge_programs, write_corpus
from repro.fuzz.oracle import check_program, format_findings

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.py")))


def _load(path):
    name = "corpus_" + os.path.splitext(os.path.basename(path))[0]
    spec = importlib.util.spec_from_file_location(name, path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_corpus_is_populated():
    assert len(CORPUS_FILES) >= 10


@pytest.mark.parametrize("path", CORPUS_FILES,
                         ids=[os.path.basename(p) for p in CORPUS_FILES])
def test_corpus_program_replays_clean(path):
    mod = _load(path)
    prog = mod.make_program()
    assert prog.validate() == []
    report = check_program(prog)
    assert report.ok, format_findings(report)


def test_edge_programs_cover_declared_shapes():
    progs = edge_programs()
    assert len(progs) == len(EDGE_SHAPES)
    names = {p.name for p in progs}
    assert len(names) == len(progs)


def test_committed_edge_files_in_sync(tmp_path):
    """The committed edge_*.py scripts must match what write_corpus
    renders — catches corpus.py edits that forgot --write-corpus."""
    written = write_corpus(str(tmp_path))
    for path in written:
        committed = os.path.join(CORPUS_DIR, os.path.basename(path))
        assert os.path.exists(committed), (
            f"{os.path.basename(path)} missing: run "
            "`python -m repro.fuzz --write-corpus`")
        with open(path) as fh_new, open(committed) as fh_old:
            assert fh_new.read() == fh_old.read(), (
                f"{os.path.basename(path)} stale: run "
                "`python -m repro.fuzz --write-corpus`")
