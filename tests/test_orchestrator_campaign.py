"""Integration: sharded campaigns, journal resume, shard merge, grid, CLI."""

import json

import pytest

from repro.campaign import main as campaign_main
from repro.eval import GridCell, Harness, default_grid
from repro.faults import (
    CampaignResult,
    FaultHook,
    TrialRecord,
    classify_trial,
    run_campaign,
    run_single_fault,
)
from repro.faults.injector import FaultPlan
from repro.kernels import SMALL_SUITE
from repro.orchestrator import JournalError, Telemetry, read_journal

CAMPAIGN = dict(trials=8, seed=3, max_instr=20)


def fwt_campaign(**kw):
    merged = {**CAMPAIGN, **kw}
    return run_campaign(SMALL_SUITE["FWT"], "intra+lds", "vgpr", **merged)


class TestTrialRecords:
    def test_roundtrip(self):
        rec = TrialRecord(index=3, outcome="sdc",
                          plan=FaultPlan("vgpr", 1, 2, 3, 4, 5),
                          fired=True, description="d", cycles=10.0)
        back = TrialRecord.from_json(json.loads(json.dumps(rec.to_json())))
        assert back == rec

    def test_infra_record_roundtrip_without_plan(self):
        rec = TrialRecord(index=0, outcome="infra_error", error="crash: x")
        assert TrialRecord.from_json(rec.to_json()) == rec

    def test_record_cap_bounds_memory(self):
        res = CampaignResult("FWT", "intra+lds", "vgpr", record_cap=2)
        for i in range(5):
            res.add(TrialRecord(index=i, outcome="masked", fired=True))
        assert len(res.records) == 2
        assert res.dropped_records == 3
        assert res.fired == 5 and res.trials == 5

    def test_classify_trial_used_by_run_single_fault(self):
        bench = SMALL_SUITE["FWT"]()
        plan = FaultPlan("vgpr", 0, 3, 12, 9, 0)
        outcome = run_single_fault(bench, "intra+lds", plan)
        # classify_trial is the single classifier; re-running the same
        # plan must agree with it.
        from repro.runtime import Session

        compiled = bench.compile("intra+lds")
        hook = FaultHook(plan, scalar_reg_ids=compiled.uniformity.uniform_regs)
        result = bench.run(Session(), compiled, fault_hook=hook)
        assert outcome in ("masked", "detected", "sdc")
        assert classify_trial(bench, result) == outcome


class TestMerge:
    def _shard(self, outcomes, records=0):
        res = CampaignResult("FWT", "intra+lds", "vgpr")
        index = 0
        for outcome, count in outcomes.items():
            for _ in range(count):
                res.add(TrialRecord(index=index, outcome=outcome,
                                    fired=index < records))
                index += 1
        return res

    def test_merged_sums_histograms(self):
        a = self._shard({"masked": 2, "sdc": 1}, records=2)
        b = self._shard({"detected": 3}, records=1)
        merged = CampaignResult.merged([a, b])
        assert merged.trials == 6
        assert merged.outcomes["masked"] == 2
        assert merged.outcomes["detected"] == 3
        assert merged.outcomes["sdc"] == 1
        assert merged.fired == a.fired + b.fired
        assert len(merged.records) == 3

    def test_merged_rejects_mixed_campaigns(self):
        a = self._shard({"masked": 1})
        b = CampaignResult("R", "intra+lds", "vgpr")
        with pytest.raises(ValueError, match="different campaigns"):
            CampaignResult.merged([a, b])

    def test_merged_respects_record_cap(self):
        shards = [self._shard({"masked": 4}, records=4) for _ in range(3)]
        for s in shards:
            s.record_cap = 5
        merged = CampaignResult.merged(shards)
        assert len(merged.records) == 5
        assert merged.dropped_records == 7


@pytest.mark.slow
class TestShardDeterminism:
    def test_parallel_equals_serial(self):
        """The satellite regression: workers=1 ≡ workers=4 histograms."""
        serial = fwt_campaign(workers=1)
        sharded = fwt_campaign(workers=4)
        assert serial.outcomes == sharded.outcomes
        assert [r.to_json() for r in serial.records] == \
               [r.to_json() for r in sharded.records]

    def test_telemetry_reflects_outcomes(self):
        tel = Telemetry()
        result = fwt_campaign(workers=2, telemetry=tel)
        assert dict(tel.outcomes) == {
            k: v for k, v in result.outcomes.items() if v
        }


@pytest.mark.slow
class TestJournalResume:
    def test_kill_and_resume_reproduces_exactly(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        full = fwt_campaign(workers=2, journal=str(journal))

        # Simulate a kill after 3 completed trials: truncate the journal
        # to its header plus a 3-trial prefix.
        lines = journal.read_text().splitlines()
        trial_lines = [l for l in lines if '"kind":"trial"' in l]
        journal.write_text("\n".join([lines[0]] + trial_lines[:3]) + "\n")

        resumed = fwt_campaign(workers=2, journal=str(journal), resume=True)
        assert resumed.outcomes == full.outcomes
        _, entries = read_journal(journal)
        indices = [e["index"] for e in entries if e["kind"] == "trial"]
        assert sorted(indices) == list(range(CAMPAIGN["trials"]))
        assert len(indices) == len(set(indices)), "no duplicate trials"

    def test_resume_at_wrong_scale_rejected(self, tmp_path):
        """small and paper kernels differ structurally; their trials
        must never mix through a resumed journal."""
        journal = tmp_path / "campaign.jsonl"
        fwt_campaign(trials=2, journal=str(journal), scale="small")
        with pytest.raises(JournalError, match="scale"):
            fwt_campaign(trials=2, journal=str(journal), resume=True,
                         scale="paper")
        # A caller that does not declare a scale (bespoke make_bench,
        # pre-existing journals) stays resumable.
        again = fwt_campaign(trials=2, journal=str(journal), resume=True)
        assert again.trials == 2

    def test_completed_journal_resumes_without_rerunning(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        full = fwt_campaign(workers=1, journal=str(journal))
        tel = Telemetry()
        again = fwt_campaign(workers=1, journal=str(journal), resume=True,
                             telemetry=tel)
        assert again.outcomes == full.outcomes
        assert tel.skipped == CAMPAIGN["trials"]
        assert tel.completed == 0


@pytest.mark.slow
class TestGrid:
    CELLS = [GridCell("FWT", v) for v in ("original", "intra+lds")]

    def test_parallel_grid_matches_serial(self):
        serial = Harness(scale="small").run_grid(self.CELLS, workers=1)
        pooled = Harness(scale="small").run_grid(self.CELLS, workers=2)
        assert [r.cycles for r in serial] == [r.cycles for r in pooled]
        assert [r.verified for r in pooled] == [True, True]

    def test_grid_merges_into_run_cache(self):
        h = Harness(scale="small")
        records = h.run_grid(self.CELLS, workers=2)
        # run() must now be a pure cache hit returning the same objects.
        assert h.run("FWT", "original") is records[0]
        assert h.run("FWT", "intra+lds") is records[1]

    def test_grid_cached_cells_skipped(self):
        h = Harness(scale="small")
        h.run_grid(self.CELLS, workers=1)
        tel = Telemetry()
        h.run_grid(self.CELLS, workers=1, telemetry=tel)
        assert tel.skipped == len(self.CELLS)
        assert tel.completed == 0

    def test_default_grid_shape(self):
        grid = default_grid(kernels=["FWT", "R"])
        assert len(grid) == 2 * 4
        assert all(isinstance(c, GridCell) for c in grid)


@pytest.mark.slow
class TestCli:
    def test_smoke_markdown_and_resume(self, tmp_path, capsys):
        args = ["--scale", "small", "--benchmarks", "FWT",
                "--variants", "intra+lds", "--targets", "vgpr",
                "--trials", "4", "--seed", "3", "--max-instr", "20",
                "--workers", "2", "--journal", str(tmp_path)]
        assert campaign_main(args) == 0
        table = capsys.readouterr().out
        assert "| FWT | intra+lds | vgpr | 4 |" in table

        assert campaign_main(args + ["--resume", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        campaign = doc["campaigns"][0]
        assert campaign["trials"] == 4
        assert campaign["telemetry"]["skipped"] == 4

    def test_summary_written_to_file(self, tmp_path, capsys):
        out = tmp_path / "summary.json"
        assert campaign_main(
            ["--scale", "small", "--benchmarks", "FWT",
             "--variants", "intra+lds", "--targets", "vgpr",
             "--trials", "2", "--seed", "3", "--max-instr", "12",
             "--format", "json", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["campaigns"][0]["benchmark"] == "FWT"


class TestCliFast:
    def test_list(self, capsys):
        assert campaign_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "FWT" in out and "intra+lds" in out and "vgpr" in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            campaign_main(["--benchmarks", "NOPE"])

    def test_journal_mismatch_is_one_line_error(self, tmp_path, capsys):
        def args(seed):
            return ["--scale", "small", "--benchmarks", "FWT",
                    "--variants", "intra+lds", "--targets", "vgpr",
                    "--trials", "2", "--seed", seed, "--max-instr", "12",
                    "--journal", str(tmp_path)]

        assert campaign_main(args("3")) == 0
        capsys.readouterr()
        # Resuming with a different seed must refuse cleanly, not traceback.
        assert campaign_main(args("4") + ["--resume"]) == 2
        err = capsys.readouterr().err
        assert "different campaign" in err and "Traceback" not in err

    def test_help(self, capsys):
        with pytest.raises(SystemExit) as exc:
            campaign_main(["--help"])
        assert exc.value.code == 0
        assert "campaign" in capsys.readouterr().out


class TestCheckpointAndJournalClose:
    """Regression: every exit path closes the journal and stays resumable."""

    def test_should_stop_checkpoints_then_resumes(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        polls = {"n": 0}

        def stop_soon():
            polls["n"] += 1
            return polls["n"] > 2

        partial = fwt_campaign(journal=path, should_stop=stop_soon)
        assert 0 < partial.trials < CAMPAIGN["trials"]
        header, entries = read_journal(path)
        # No final "campaign" summary entry: the journal says unfinished.
        assert all(e["kind"] == "trial" for e in entries)
        assert len(entries) == partial.trials

        full = fwt_campaign(journal=path, resume=True)
        assert full.trials == CAMPAIGN["trials"]
        _, entries = read_journal(path)
        kinds = [e["kind"] for e in entries]
        assert kinds.count("trial") == CAMPAIGN["trials"]
        assert kinds[-1] == "campaign"
        # The resumed histogram matches an uninterrupted run bit for bit.
        assert full.to_json() == fwt_campaign().to_json()

    def test_interrupt_closes_journal_and_resumes(self, tmp_path):
        from repro.orchestrator import Journal

        path = str(tmp_path / "intr.jsonl")
        meta = {"kind": "fault-campaign", "benchmark": "FWT",
                "variant": "intra+lds", "target": "vgpr",
                "trials": CAMPAIGN["trials"], "seed": CAMPAIGN["seed"]}
        jnl = Journal(path, meta=meta)

        def boom(ev):
            if ev.kind == "done":
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            fwt_campaign(journal=jnl, telemetry=Telemetry(on_event=boom))
        assert jnl._fh is None  # closed on the interrupt path
        header, entries = read_journal(path)  # valid file, no half-open fh

        resumed = fwt_campaign(journal=path, resume=True)
        assert resumed.trials == CAMPAIGN["trials"]
        assert resumed.to_json() == fwt_campaign().to_json()

    def test_injected_journal_streams_entries(self, tmp_path):
        from repro.orchestrator import Journal

        path = str(tmp_path / "sink.jsonl")
        seen = []
        jnl = Journal(path, meta={"kind": "fault-campaign",
                                  "benchmark": "FWT"},
                      on_append=seen.append)
        res = fwt_campaign(journal=jnl)
        assert res.trials == CAMPAIGN["trials"]
        assert [e["kind"] for e in seen].count("trial") == CAMPAIGN["trials"]
        assert seen[-1]["kind"] == "campaign"
        # Sink observed exactly what reached the disk.
        _, entries = read_journal(path)
        assert entries == seen

    def test_injected_journal_meta_mismatch_rejected(self, tmp_path):
        from repro.orchestrator import Journal, JournalError

        path = str(tmp_path / "mismatch.jsonl")
        fwt_campaign(journal=path)  # seed=3 on disk
        with pytest.raises(JournalError, match="different campaign"):
            fwt_campaign(journal=path, resume=True, seed=4)
