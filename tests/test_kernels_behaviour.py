"""Per-kernel behavioural tests beyond the suite-wide oracle checks."""

import numpy as np
import pytest

from repro.kernels.binary_search import BinarySearch
from repro.kernels.binomial_option import BinomialOption
from repro.kernels.bitonic_sort import BitonicSort
from repro.kernels.dct import Dct, _dct_matrix
from repro.kernels.dwt_haar import DwtHaar1D
from repro.kernels.fast_walsh import FastWalshTransform
from repro.kernels.floyd_warshall import FloydWarshall
from repro.kernels.matmul import MatrixMultiplication
from repro.kernels.nbody import NBody
from repro.kernels.prefix_sum import PrefixSum
from repro.kernels.quasi_random import QuasiRandomSequence
from repro.kernels.reduction import Reduction
from repro.kernels.simple_convolution import SimpleConvolution
from repro.kernels.sobel_filter import SobelFilter
from repro.kernels.urng import Urng


class TestBinarySearch:
    def test_finds_key_at_various_positions(self):
        for seed in (1, 2, 3):
            bench = BinarySearch(n=2048, segment=8, seed=seed)
            res = bench.execute("original")
            idx = res.outputs["out"][0]
            assert bench.data[idx] == bench.key

    def test_invalid_segment_rejected(self):
        with pytest.raises(ValueError):
            BinarySearch(n=100, segment=7)

    def test_divergence_counted(self):
        bench = BinarySearch(n=2048, segment=8)
        res = bench.execute("original")
        assert res.merged_counters().divergent_branches > 0


class TestBitonicSort:
    def test_sorts_multiple_seeds(self):
        for seed in (1, 9):
            bench = BitonicSort(n=512, local_size=64, seed=seed)
            res = bench.execute("original")
            np.testing.assert_array_equal(res.outputs["arr"], np.sort(bench.data))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            BitonicSort(n=1000)

    def test_launch_count_is_log_squared(self):
        bench = BitonicSort(n=256, local_size=64)
        res = bench.execute("original")
        stages = 8
        assert len(res.launches) == stages * (stages + 1) // 2


class TestBlackScholesAndBO:
    def test_bo_prices_nonnegative(self):
        bench = BinomialOption(options=24)
        res = bench.execute("original")
        assert (res.outputs["out"] >= 0).all()

    def test_bo_reference_matches_closed_recursion(self):
        bench = BinomialOption(options=8)
        ref = bench.reference()["out"]
        assert ref.shape == (8,)
        assert (ref >= 0).all()


class TestTransforms:
    def test_fwt_involution_scaled(self):
        """Applying FWT twice scales by n."""
        bench = FastWalshTransform(n=256, local_size=64)
        once = bench.reference()["arr"]
        bench2 = FastWalshTransform(n=256, local_size=64)
        bench2.data = once.copy()
        twice = bench2.reference()["arr"]
        np.testing.assert_allclose(twice, bench.data * 256, rtol=1e-4)

    def test_dct_matrix_orthonormal(self):
        c = _dct_matrix()
        np.testing.assert_allclose(c @ c.T, np.eye(8), atol=1e-12)

    def test_dct_constant_block_concentrates_dc(self):
        bench = Dct(width=8, height=8)
        bench.image = np.ones(64, dtype=np.float32)
        res = bench.execute("original")
        out = res.outputs["out"].reshape(8, 8)
        assert out[0, 0] == pytest.approx(8.0, rel=1e-4)
        assert np.abs(out).sum() == pytest.approx(8.0, rel=1e-3)

    def test_dwt_energy_preserved(self):
        bench = DwtHaar1D(n=1024, local_size=64)
        ref = bench.reference()["dst"]
        np.testing.assert_allclose(
            np.sum(ref.astype(np.float64) ** 2),
            np.sum(bench.data.astype(np.float64) ** 2),
            rtol=1e-5,
        )


class TestGraphAndLinalg:
    def test_fw_triangle_inequality(self):
        bench = FloydWarshall(n=32, local_size=64)
        res = bench.execute("original")
        d = res.outputs["dist"].reshape(32, 32).astype(np.int64)
        # d[i,j] <= d[i,k] + d[k,j] for sampled triples
        rng = np.random.default_rng(0)
        for _ in range(200):
            i, j, k = rng.integers(0, 32, size=3)
            assert d[i, j] <= d[i, k] + d[k, j]

    def test_mm_identity(self):
        bench = MatrixMultiplication(n=32)
        bench.a = np.eye(32, dtype=np.float32)
        res = bench.execute("original")
        np.testing.assert_allclose(
            res.outputs["c"].reshape(32, 32), bench.b, rtol=1e-5
        )

    def test_mm_tile_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MatrixMultiplication(n=30)


class TestNBodyPhysics:
    def test_symmetric_pair_cancels(self):
        bench = NBody(bodies=128, local_size=64)
        # Place bodies symmetrically around the origin with equal masses:
        # net acceleration on the center pair is mirror-symmetric.
        res = bench.execute("original")
        ref = bench.reference()
        assert np.isfinite(res.outputs["ax"]).all()
        np.testing.assert_allclose(res.outputs["ax"], ref["ax"], rtol=2e-2, atol=2e-3)


class TestScanAndReduce:
    def test_prefix_sum_monotone_for_positive_input(self):
        bench = PrefixSum(n=128)
        res = bench.execute("original")
        out = res.outputs["dst"]
        assert (np.diff(out) >= 0).all()

    def test_prefix_sum_requires_power_of_two(self):
        with pytest.raises(ValueError):
            PrefixSum(n=100)

    def test_reduction_partials_sum_to_total(self):
        bench = Reduction(n=4096, local_size=256)
        res = bench.execute("original")
        assert res.outputs["dst"].astype(np.uint64).sum() == bench.data.astype(np.uint64).sum()

    def test_reduction_alignment_rejected(self):
        with pytest.raises(ValueError):
            Reduction(n=1000, local_size=256)


class TestImageKernels:
    def test_sc_preserves_constant_image(self):
        bench = SimpleConvolution(width=64, height=32, local_size=64)
        bench.image = np.full(64 * 32, 3.0, dtype=np.float32)
        res = bench.execute("original")
        np.testing.assert_allclose(res.outputs["out"], 3.0, rtol=1e-4)

    def test_sf_zero_on_flat_image(self):
        bench = SobelFilter(width=64, height=32, local_size=64)
        bench.image = np.full(64 * 32, 1.0, dtype=np.float32)
        res = bench.execute("original")
        assert np.abs(res.outputs["out"]).max() == 0.0

    def test_sf_borders_untouched(self):
        bench = SobelFilter(width=64, height=32, local_size=64)
        res = bench.execute("original")
        out = res.outputs["out"].reshape(32, 64)
        assert (out[0] == 0).all() and (out[-1] == 0).all()
        assert (out[:, 0] == 0).all() and (out[:, -1] == 0).all()


class TestRngKernels:
    def test_urng_outputs_in_unit_interval(self):
        bench = Urng(n=2048, local_size=128)
        res = bench.execute("original")
        out = res.outputs["out"]
        assert (out >= 0).all() and (out < 1).all()

    def test_qrs_first_dimension_van_der_corput(self):
        bench = QuasiRandomSequence(n=256, local_size=64)
        ref = bench.reference()["out"][:256]
        # dimension 0 is a bit-reversal sequence: all values distinct.
        assert len(np.unique(ref)) == 256
