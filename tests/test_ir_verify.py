"""Tests for the IR verifier."""

import pytest

from repro.ir import (
    Alu,
    BufferParam,
    Cmp,
    DType,
    If,
    Kernel,
    KernelBuilder,
    LoadGlobal,
    LocalAlloc,
    PredOp,
    StoreGlobal,
    StoreLocal,
    VReg,
    VerificationError,
    verify_kernel,
)


def _valid_kernel():
    b = KernelBuilder("ok")
    a = b.buffer_param("a", DType.F32)
    out = b.buffer_param("out", DType.F32)
    gid = b.global_id(0)
    b.store(out, gid, b.load(a, gid))
    return b.finish()


def test_valid_kernel_passes():
    verify_kernel(_valid_kernel())


def test_undefined_register_read_rejected():
    k = Kernel("bad")
    buf = BufferParam("out", DType.U32)
    k.params.append(buf)
    ghost = VReg("ghost", DType.U32)
    k.body.append(StoreGlobal(buf, ghost, ghost))
    with pytest.raises(VerificationError, match="undefined register"):
        verify_kernel(k)


def test_undeclared_buffer_rejected():
    k = Kernel("bad")
    rogue = BufferParam("rogue", DType.U32)
    idx = VReg("i", DType.U32)
    k.body.append(Alu("mov", idx, idx))  # defines idx (self-read is its own bug)
    with pytest.raises(VerificationError):
        verify_kernel(k)

    k2 = _valid_kernel()
    gid = next(iter(k2.body[0].dests()))
    k2.body.append(StoreGlobal(rogue, gid, gid))
    with pytest.raises(VerificationError, match="undeclared buffer"):
        verify_kernel(k2)


def test_undeclared_lds_rejected():
    k = _valid_kernel()
    gid = next(iter(k.body[0].dests()))
    rogue = LocalAlloc("rogue", DType.U32, 8)
    k.body.append(StoreLocal(rogue, gid, gid))
    with pytest.raises(VerificationError, match="undeclared LDS"):
        verify_kernel(k)


def test_nonpred_if_condition_rejected():
    k = _valid_kernel()
    gid = next(iter(k.body[0].dests()))
    k.body.append(If(gid, []))
    with pytest.raises(VerificationError, match="not a predicate"):
        verify_kernel(k)


def test_store_type_mismatch_rejected():
    b = KernelBuilder("bad")
    out = b.buffer_param("out", DType.F32)
    gid = b.global_id(0)
    k = b.kernel
    k.body.append(StoreGlobal(out, gid, gid))  # u32 value into f32 buffer
    with pytest.raises(VerificationError, match="store value type"):
        verify_kernel(k)


def test_predop_requires_predicates():
    b = KernelBuilder("bad")
    gid = b.global_id(0)
    k = b.kernel
    dst = k.new_reg(DType.PRED)
    k.body.append(PredOp("and", dst, gid, gid))
    with pytest.raises(VerificationError, match="not a predicate"):
        verify_kernel(k)


def test_conditional_definitions_visible_after_if():
    """Non-SSA: a register defined in both arms is defined after the If."""
    b = KernelBuilder("k")
    out = b.buffer_param("out", DType.U32)
    gid = b.global_id(0)
    v = b.var(DType.U32, 0)
    cond = b.lt(gid, 4)
    with b.if_else(cond) as orelse:
        b.set(v, 1)
        with orelse():
            b.set(v, 2)
    b.store(out, gid, v)
    verify_kernel(b.finish())


def test_loop_cond_block_definitions_visible():
    b = KernelBuilder("k")
    out = b.buffer_param("out", DType.U32)
    gid = b.global_id(0)
    i = b.var(DType.U32, 0)
    with b.loop() as lp:
        c = b.lt(i, 4)
        lp.break_unless(c)
        b.set(i, b.add(i, 1))
    b.store(out, gid, i)
    verify_kernel(b.finish())
