"""Tests for the interval-analysis out-of-bounds lint."""

import pytest

from repro.compiler.lint import ERROR, WARNING, run_lints
from repro.compiler.pipeline import compile_kernel
from repro.ir import DType, KernelBuilder
from repro.kernels.suite import all_abbrevs, make_benchmark


def _oob(kernel):
    return run_lints(kernel, ["oob"])


def _with_sizes(kernel, local=16, global_=64, nelems=None):
    kernel.metadata["local_size"] = (local, 1, 1)
    kernel.metadata["global_size"] = (global_, 1, 1)
    if nelems:
        kernel.metadata["buffer_nelems"] = dict(nelems)
    return kernel


class TestPlantedOob:
    def test_provable_oob_is_error(self):
        b = KernelBuilder("prov")
        out = b.buffer_param("out", DType.U32)
        b.store(out, b.const(100, DType.U32), b.const(1, DType.U32))
        k = _with_sizes(b.finish(), nelems={"out": 10})
        diags = _oob(k)
        assert [d.severity for d in diags] == [ERROR]
        assert "out[[100, 100]]" in diags[0].message

    def test_boundary_crossing_is_warning(self):
        """gid in [0, 63] against a 32-element buffer: some abstract
        execution is out of bounds, but not all — warning."""
        b = KernelBuilder("cross")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        b.store(out, gid, gid)
        k = _with_sizes(b.finish(), global_=64, nelems={"out": 32})
        diags = _oob(k)
        assert [d.severity for d in diags] == [WARNING]

    def test_lds_oob_needs_no_metadata(self):
        """LDS allocation sizes are in the IR itself."""
        b = KernelBuilder("ldsoob")
        lds = b.local_alloc("buf", DType.U32, 8)
        lid = b.local_id(0)
        b.store_local(lds, b.add(lid, b.const(8, DType.U32)), lid)
        k = _with_sizes(b.finish(), local=16)
        diags = _oob(k)
        assert [d.severity for d in diags] == [ERROR]
        assert diags[0].checker == "oob"

    def test_unbounded_index_is_silent(self):
        """Scalar-parameter-dependent addresses are host-launched in
        bounds; the checker only speaks when it can bound the index."""
        b = KernelBuilder("param")
        out = b.buffer_param("out", DType.U32)
        n = b.scalar_param("n", DType.U32)
        b.store(out, b.mul(b.global_id(0), n), n)
        k = _with_sizes(b.finish(), nelems={"out": 64})
        assert _oob(k) == []

    def test_guarded_access_in_bounds(self):
        """Branch refinement keeps a properly guarded access clean."""
        b = KernelBuilder("guarded")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        with b.if_(b.lt(gid, 32)):
            b.store(out, gid, gid)
        k = _with_sizes(b.finish(), global_=64, nelems={"out": 32})
        assert _oob(k) == []

    def test_unknown_buffer_size_is_silent(self):
        b = KernelBuilder("nosize")
        out = b.buffer_param("out", DType.U32)
        b.store(out, b.const(10 ** 9, DType.U32), b.const(0, DType.U32))
        k = _with_sizes(b.finish())
        assert _oob(k) == []


@pytest.mark.parametrize("abbrev", all_abbrevs())
@pytest.mark.parametrize("variant", ["original", "intra+lds", "intra-lds", "inter"])
def test_suite_matrix_oob_clean(abbrev, variant):
    """Satellite acceptance: no OOB finding anywhere in the suite under
    the headline RMT variants, unoptimized or optimized."""
    bench = make_benchmark(abbrev, scale="small")
    for optimize in (False, True):
        compiled = compile_kernel(
            bench.build(), variant, optimize=optimize, lint=False,
            validate=False,
        )
        diags = run_lints(compiled.kernel, ["oob"])
        assert diags == [], (
            f"{abbrev}/{variant}@O{int(optimize)}: "
            + "; ".join(str(d) for d in diags)
        )
