"""Tests for the KernelBuilder DSL."""

import numpy as np
import pytest

from repro.ir import (
    Alu,
    Barrier,
    Const,
    DType,
    If,
    KernelBuilder,
    LoadGlobal,
    SpecialId,
    StoreGlobal,
    While,
    verify_kernel,
    walk_instrs,
)


def test_simple_kernel_structure():
    b = KernelBuilder("k")
    a = b.buffer_param("a", DType.F32)
    out = b.buffer_param("out", DType.F32)
    gid = b.global_id(0)
    x = b.load(a, gid)
    b.store(out, gid, b.add(x, 1.0))
    k = b.finish()
    verify_kernel(k)
    kinds = [type(i).__name__ for i in walk_instrs(k.body)]
    assert "SpecialId" in kinds
    assert "LoadGlobal" in kinds
    assert "StoreGlobal" in kinds


def test_scalar_param_materializes_register():
    b = KernelBuilder("k")
    n = b.scalar_param("n", DType.U32)
    assert n.dtype is DType.U32
    k = b.finish()
    assert k.scalar("n").name == "n"


def test_immediate_coercion_infers_from_operand():
    b = KernelBuilder("k")
    a = b.buffer_param("a", DType.F32)
    x = b.load(a, b.global_id(0))
    y = b.add(x, 2)            # int immediate against f32 operand
    assert y.dtype is DType.F32


def test_if_else_emits_both_bodies():
    b = KernelBuilder("k")
    out = b.buffer_param("out", DType.U32)
    gid = b.global_id(0)
    cond = b.lt(gid, 10)
    with b.if_else(cond) as orelse:
        b.store(out, gid, 1)
        with orelse():
            b.store(out, gid, 2)
    k = b.finish()
    verify_kernel(k)
    ifs = [s for s in k.body if isinstance(s, If)]
    assert len(ifs) == 1
    assert len(ifs[0].then_body) >= 1
    assert len(ifs[0].else_body) >= 1


def test_loop_requires_break_unless():
    b = KernelBuilder("k")
    with pytest.raises(RuntimeError, match="break_unless"):
        with b.loop():
            pass


def test_loop_break_unless_twice_rejected():
    b = KernelBuilder("k")
    i = b.var(DType.U32, 0)
    with pytest.raises(RuntimeError, match="twice"):
        with b.loop() as lp:
            c = b.lt(i, 3)
            lp.break_unless(c)
            lp.break_unless(c)


def test_loop_condition_must_be_predicate():
    b = KernelBuilder("k")
    i = b.var(DType.U32, 0)
    with pytest.raises((TypeError, RuntimeError)):
        with b.loop() as lp:
            lp.break_unless(i)


def test_for_range_builds_while():
    b = KernelBuilder("k")
    out = b.buffer_param("out", DType.U32)
    gid = b.global_id(0)
    acc = b.var(DType.U32, 0)
    with b.for_range(0, 4) as i:
        b.set(acc, b.add(acc, i))
    b.store(out, gid, acc)
    k = b.finish()
    verify_kernel(k)
    assert any(isinstance(s, While) for s in k.body)


def test_finish_rejects_unbalanced_contexts():
    b = KernelBuilder("k")
    cond = b.eq(b.global_id(0), 0)
    ctx = b.if_(cond)
    ctx.__enter__()
    with pytest.raises(RuntimeError, match="unbalanced"):
        b.finish()


def test_emit_after_finish_rejected():
    b = KernelBuilder("k")
    b.finish()
    with pytest.raises(RuntimeError, match="finished"):
        b.global_id(0)


def test_duplicate_local_alloc_rejected():
    b = KernelBuilder("k")
    b.local_alloc("tile", DType.F32, 16)
    with pytest.raises(ValueError, match="duplicate"):
        b.local_alloc("tile", DType.F32, 16)


def test_attach_emits_into_existing_kernel():
    b = KernelBuilder("k")
    out = b.buffer_param("out", DType.U32)
    b.store(out, b.global_id(0), 1)
    k = b.finish()

    prologue = []
    eb = KernelBuilder.attach(k, prologue)
    eb.global_id(0)
    assert len(prologue) == 1
    assert isinstance(prologue[0], SpecialId)


def test_as_u32_passthrough_and_bitcast():
    b = KernelBuilder("k")
    a = b.buffer_param("a", DType.F32)
    u = b.global_id(0)
    assert b.as_u32(u) is u          # already u32: no instruction
    f = b.load(a, u)
    cast = b.as_u32(f)
    assert cast.dtype is DType.U32


def test_barrier_and_atomic_emission():
    b = KernelBuilder("k")
    buf = b.buffer_param("c", DType.U32)
    b.barrier()
    old = b.atomic("add", buf, 0, 1)
    assert old is not None and old.dtype is DType.U32
    none = b.atomic("xchg", buf, 0, 1, want_old=False)
    assert none is None
    k = b.finish()
    assert any(isinstance(i, Barrier) for i in walk_instrs(k.body))


def test_swizzle_defaults():
    b = KernelBuilder("k")
    v = b.global_id(0)
    s = b.swizzle(v, or_mask=1)
    assert s.dtype is DType.U32
