"""The pluggable-scheduler refactor must be execution-neutral.

``tests/data/schedule_identity.json`` holds digests (cycles, output
hashes, counter totals, event tallies) captured on the engine *before*
wavefront issue order became a :class:`~repro.gpu.schedule.Scheduler`
decision point.  Recomputing them on the current engine proves the
default path is bitwise- and cycle-identical: same outputs, same
floating-point cycle counts, same event-pop totals.

The fast lane pins a representative suite × variant × opt subset on
both execution paths (reference interpreter and block-fused executors);
the full small-suite matrix runs in the slow lane.
"""

import pytest

from repro.gpu.schedule import DefaultScheduler, EventScheduler
from tests.schedule_identity_util import (
    FAST_CASES,
    MULTI_CASES,
    all_keys,
    config_key,
    load_goldens,
    run_digest,
)

GOLDENS = load_goldens()

_FAST = [(a, v, o, fused) for fused in (False, True)
         for (a, v, o) in FAST_CASES]
_SLOW = [k for k in all_keys() if k not in _FAST]

#: Vectorized-engine lane: the run-ahead engine claims bitwise- and
#: cycle-identity with the default order, so its digests are checked
#: against the SAME pre-refactor goldens (no vectorized goldens exist).
#: Multi-wave geometries batch hardest; FAST_CASES covers single-wave
#: groups, control flow, and the inter-group lock protocol.
_VEC_FAST = [
    ("FWTx4", "intra+lds", False, False),
    ("FWTx4", "inter", False, True),
    ("BitSx4", "intra+lds", False, True),
    ("URNGx4", "inter", False, False),
    ("Rx4", "original", True, True),
    ("FWT", "inter", False, False),
    ("MM", "intra-lds", True, True),
]
_VEC_SLOW = sorted(
    {(a, v, o, f)
     for (a, v, o) in FAST_CASES + MULTI_CASES
     for f in (False, True)} - set(_VEC_FAST))


def _assert_digest_matches(abbrev, variant, optimize, fusion_on,
                           vector=False):
    key = config_key(abbrev, variant, optimize, fusion_on)
    assert key in GOLDENS, f"no golden for {key}; regenerate the goldens"
    got = run_digest(abbrev, variant, optimize, fusion_on, vector=vector)
    want = GOLDENS[key]
    engine = "vectorized engine" if vector else "pre-refactor engine"
    for field in sorted(want):
        assert got[field] == want[field], (
            f"{key}: {field} diverged from the {engine}\n"
            f"  golden:  {want[field]}\n  current: {got[field]}")


@pytest.mark.parametrize(
    "abbrev,variant,optimize,fusion_on", _FAST,
    ids=[config_key(*k) for k in _FAST])
def test_default_schedule_matches_prerefactor_fast(
        abbrev, variant, optimize, fusion_on):
    _assert_digest_matches(abbrev, variant, optimize, fusion_on)


@pytest.mark.slow
@pytest.mark.parametrize(
    "abbrev,variant,optimize,fusion_on", _SLOW,
    ids=[config_key(*k) for k in _SLOW])
def test_default_schedule_matches_prerefactor_full(
        abbrev, variant, optimize, fusion_on):
    _assert_digest_matches(abbrev, variant, optimize, fusion_on)


@pytest.mark.parametrize(
    "abbrev,variant,optimize,fusion_on", _VEC_FAST,
    ids=[config_key(*k) for k in _VEC_FAST])
def test_vectorized_engine_matches_prerefactor_fast(
        abbrev, variant, optimize, fusion_on):
    _assert_digest_matches(abbrev, variant, optimize, fusion_on,
                           vector=True)


@pytest.mark.slow
@pytest.mark.parametrize(
    "abbrev,variant,optimize,fusion_on", _VEC_SLOW,
    ids=[config_key(*k) for k in _VEC_SLOW])
def test_vectorized_engine_matches_prerefactor_full(
        abbrev, variant, optimize, fusion_on):
    _assert_digest_matches(abbrev, variant, optimize, fusion_on,
                           vector=True)


def test_event_scheduler_wrap_is_identity():
    """EventScheduler(inner, sink) must be pop-order-neutral.

    Runs the *standard* engine with an explicit EventScheduler wrapping
    the default heap and a sink that counts pushes — the digest must
    equal the pre-refactor golden and the sink must actually have seen
    the event stream.
    """
    abbrev, variant, optimize = "FWT", "inter", False
    key = config_key(abbrev, variant, optimize, False)
    pushed = []
    sched = EventScheduler(DefaultScheduler(), sink=pushed.append)
    got = run_digest(abbrev, variant, optimize, False, scheduler=sched)
    assert got == GOLDENS[key]
    assert len(pushed) > 0, "sink never saw a continuation push"


def test_explicit_default_scheduler_is_identity():
    """Passing ``scheduler=DefaultScheduler()`` must equal passing none.

    Also exercises the session-default plumbing: the same scheduler
    instance is reused (and reset) across the benchmark's launches.
    """
    abbrev, variant, optimize = "FWT", "inter", False
    key = config_key(abbrev, variant, optimize, False)
    got = run_digest(abbrev, variant, optimize, False,
                     scheduler=DefaultScheduler())
    assert got == GOLDENS[key]


def test_goldens_cover_declared_matrix():
    declared = {config_key(*k) for k in all_keys()}
    assert declared == set(GOLDENS), (
        "golden file out of sync with all_keys(); regenerate")
