"""The pluggable-scheduler refactor must be execution-neutral.

``tests/data/schedule_identity.json`` holds digests (cycles, output
hashes, counter totals, event tallies) captured on the engine *before*
wavefront issue order became a :class:`~repro.gpu.schedule.Scheduler`
decision point.  Recomputing them on the current engine proves the
default path is bitwise- and cycle-identical: same outputs, same
floating-point cycle counts, same event-pop totals.

The fast lane pins a representative suite × variant × opt subset on
both execution paths (reference interpreter and block-fused executors);
the full small-suite matrix runs in the slow lane.
"""

import pytest

from repro.gpu.schedule import DefaultScheduler
from tests.schedule_identity_util import (
    FAST_CASES,
    all_keys,
    config_key,
    load_goldens,
    run_digest,
)

GOLDENS = load_goldens()

_FAST = [(a, v, o, fused) for fused in (False, True)
         for (a, v, o) in FAST_CASES]
_SLOW = [k for k in all_keys() if k not in _FAST]


def _assert_digest_matches(abbrev, variant, optimize, fusion_on):
    key = config_key(abbrev, variant, optimize, fusion_on)
    assert key in GOLDENS, f"no golden for {key}; regenerate the goldens"
    got = run_digest(abbrev, variant, optimize, fusion_on)
    want = GOLDENS[key]
    for field in sorted(want):
        assert got[field] == want[field], (
            f"{key}: {field} diverged from the pre-refactor engine\n"
            f"  golden:  {want[field]}\n  current: {got[field]}")


@pytest.mark.parametrize(
    "abbrev,variant,optimize,fusion_on", _FAST,
    ids=[config_key(*k) for k in _FAST])
def test_default_schedule_matches_prerefactor_fast(
        abbrev, variant, optimize, fusion_on):
    _assert_digest_matches(abbrev, variant, optimize, fusion_on)


@pytest.mark.slow
@pytest.mark.parametrize(
    "abbrev,variant,optimize,fusion_on", _SLOW,
    ids=[config_key(*k) for k in _SLOW])
def test_default_schedule_matches_prerefactor_full(
        abbrev, variant, optimize, fusion_on):
    _assert_digest_matches(abbrev, variant, optimize, fusion_on)


def test_explicit_default_scheduler_is_identity():
    """Passing ``scheduler=DefaultScheduler()`` must equal passing none.

    Also exercises the session-default plumbing: the same scheduler
    instance is reused (and reset) across the benchmark's launches.
    """
    abbrev, variant, optimize = "FWT", "inter", False
    key = config_key(abbrev, variant, optimize, False)
    got = run_digest(abbrev, variant, optimize, False,
                     scheduler=DefaultScheduler())
    assert got == GOLDENS[key]


def test_goldens_cover_declared_matrix():
    declared = {config_key(*k) for k in all_keys()}
    assert declared == set(GOLDENS), (
        "golden file out of sync with all_keys(); regenerate")
