"""Fault-injection tests, including the SoR coverage properties of
Tables 2 and 3."""

import numpy as np
import pytest

from repro.faults import (
    FaultHook,
    FaultPlan,
    OUTCOMES,
    TARGETS,
    random_plan,
    run_campaign,
    run_single_fault,
)
from repro.kernels import SMALL_SUITE


class TestPlans:
    def test_bad_target_rejected(self):
        with pytest.raises(ValueError, match="unknown fault target"):
            FaultPlan("cache", 0, 1, 0, 0, 0)

    def test_random_plan_in_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            p = random_plan(rng, "vgpr", max_wave=4, max_instr=10)
            assert 0 <= p.wave_ordinal < 4
            assert 1 <= p.trigger_instr < 10
            assert 0 <= p.bit < 32
            assert 0 <= p.lane < 64

    def test_targets_enumerated(self):
        assert set(TARGETS) == {"vgpr", "sgpr", "lds"}


class TestSingleFault:
    def test_outcome_classification_values(self):
        bench = SMALL_SUITE["FWT"]()
        plan = FaultPlan("vgpr", 0, 3, 12, 9, 0)
        outcome = run_single_fault(bench, "intra+lds", plan)
        assert outcome in OUTCOMES

    def test_original_kernel_cannot_detect(self):
        bench_factory = SMALL_SUITE["FWT"]
        r = run_campaign(bench_factory, "original", "vgpr",
                         trials=8, seed=11, max_instr=12)
        assert r.detected_count == 0

    def test_hook_fires_deterministically(self):
        bench = SMALL_SUITE["FWT"]()
        compiled = bench.compile("original")
        plan = FaultPlan("vgpr", 0, 2, 5, 3, 0)
        from repro.runtime import Session

        hook = FaultHook(plan, scalar_reg_ids=compiled.uniformity.uniform_regs)
        bench.run(Session(), compiled, fault_hook=hook)
        assert hook.record.fired
        assert "vgpr flip bit 5" in hook.record.description


@pytest.mark.slow
class TestCampaigns:
    def test_campaign_accounting(self):
        r = run_campaign(SMALL_SUITE["FWT"], "intra+lds", "vgpr",
                         trials=6, seed=3, max_instr=20)
        assert r.trials == 6
        assert sum(r.outcomes.values()) == 6
        assert 0.0 <= r.coverage <= 1.0
        assert "FWT/intra+lds/vgpr" in r.summary()

    def test_campaign_reproducible(self):
        a = run_campaign(SMALL_SUITE["FWT"], "intra+lds", "vgpr",
                         trials=6, seed=3, max_instr=20)
        b = run_campaign(SMALL_SUITE["FWT"], "intra+lds", "vgpr",
                         trials=6, seed=3, max_instr=20)
        assert a.outcomes == b.outcomes


@pytest.mark.slow
class TestSorProperties:
    """Empirical validation of the paper's Tables 2 and 3."""

    def test_intra_detects_vgpr_faults(self):
        """VRF is inside the Intra-Group SoR: injected upsets get caught."""
        r = run_campaign(SMALL_SUITE["FWT"], "intra+lds", "vgpr",
                         trials=16, seed=5, max_instr=25)
        assert r.detected_count >= 3

    def test_intra_rmt_shrinks_sdc_rate(self):
        """RMT converts would-be SDCs into detections."""
        base = run_campaign(SMALL_SUITE["FWT"], "original", "vgpr",
                            trials=16, seed=5, max_instr=14)
        rmt = run_campaign(SMALL_SUITE["FWT"], "intra+lds", "vgpr",
                           trials=16, seed=5, max_instr=14)
        assert base.sdc_count > 0, "baseline must be vulnerable for the test to bite"
        assert rmt.sdc_count < base.sdc_count

    def test_sgpr_faults_escape_intra_group(self):
        """SRF is outside the Intra-Group SoR: shared scalar upsets can
        corrupt both redundant work-items identically (Table 2)."""
        r = run_campaign(SMALL_SUITE["FWT"], "intra+lds", "sgpr",
                         trials=16, seed=7, max_instr=25)
        assert r.detected_count == 0
        assert r.sdc_count > 0

    def test_lds_faults_detected_or_masked_under_plus_lds(self):
        """LDS inside the Intra-Group+LDS SoR (duplicated allocations)."""
        r = run_campaign(SMALL_SUITE["R"], "intra+lds", "lds",
                         trials=12, seed=9, max_instr=20)
        assert r.sdc_count == 0

    def test_lds_faults_can_escape_minus_lds(self):
        """LDS outside the Intra-Group−LDS SoR: a flipped shared LDS word
        feeds both redundant work-items after the comparison point."""
        r = run_campaign(SMALL_SUITE["R"], "intra-lds", "lds",
                         trials=24, seed=9, max_instr=20)
        escaped = r.sdc_count
        caught = r.detected_count
        # The write-then-compare window still catches pre-store upsets,
        # but post-comparison upsets must be able to slip through.
        assert escaped > 0 or caught == 0
