"""Inter-group protocol robustness under adversarial issue orders.

These are the cheap, deterministic cousins of the full DPOR sweep: a
:class:`~repro.gpu.schedule.ReorderScheduler` keeps time-monotonic
event processing but reverses (or rotates) every same-timestamp batch,
flipping which wavefront wins the ticket counter, which side of a
producer/consumer pair reaches the two-tier lock first, and the order
comm-buffer traffic hits the L2.  The protocol must not care: outputs
stay bitwise correct and no spurious detections fire, on the tiny
model-checking workloads and on a real suite benchmark.
"""

import pytest

from repro.gpu import fused
from repro.gpu.schedule import ReorderScheduler
from repro.kernels.suite import make_benchmark
from repro.mc.explore import compile_workload
from repro.mc.workloads import get_workload
from repro.runtime.api import Session

POLICIES = [
    ("reverse", lambda: ReorderScheduler("reverse")),
    ("rotate", lambda: ReorderScheduler("rotate", rotate=1)),
]


def _run_workload(workload, scheduler):
    compiled = compile_workload(workload)
    session = Session()
    buffers = {name: session.upload(name, arr)
               for name, arr in workload.inputs().items()}
    result = session.launch(compiled, workload.global_size,
                            workload.local_size, bindings=buffers,
                            scheduler=scheduler)
    outputs = {name: session.download(buf)
               for name, buf in buffers.items()}
    return result, outputs


@pytest.mark.parametrize("policy,make_sched", POLICIES,
                         ids=[p for p, _ in POLICIES])
@pytest.mark.parametrize("name", ["handshake2", "lock2", "atomic1"])
def test_protocol_correct_under_adversarial_order(name, policy, make_sched):
    """Ticket virtualization, two-tier lock, and the guarded-atomic
    reply all survive reversed/rotated wavefront issue order."""
    workload = get_workload(name)
    sched = make_sched()
    result, outputs = _run_workload(workload, sched)
    assert sched.batches_permuted > 0, (
        "adversarial scheduler never got a same-timestamp batch to "
        "permute; the test is vacuous")
    assert workload.check(outputs) is None
    assert len(result.detections) == 0


@pytest.mark.parametrize("policy,make_sched", POLICIES,
                         ids=[p for p, _ in POLICIES])
def test_suite_benchmark_correct_under_adversarial_order(policy, make_sched):
    """A real inter-group compile (FWT small) under permuted issue order:
    correct outputs, no cry-wolf detections, schedule genuinely changed."""
    bench = make_benchmark("FWT", "small")
    compiled = bench.compile("inter")
    sched = make_sched()
    res = bench.run(Session(scheduler=sched), compiled)
    assert sched.batches_permuted > 0
    assert bench.check(res)
    assert len(res.detections) == 0


def test_reverse_order_changes_execution():
    """The adversarial lane must actually perturb timing, not alias the
    default order (guards against a degenerate ReorderScheduler)."""
    workload = get_workload("handshake2")
    with fused.fusion(False):
        _, base = _run_workload(workload, None)
        sched = ReorderScheduler("reverse")
        result, outputs = _run_workload(workload, sched)
    assert sched.batches_permuted > 0
    assert workload.check(outputs) is None
    assert workload.check(base) is None
