"""Bitwise equivalence of the block-fused executors vs the reference
interpreter.

The fused path (PR 5) must be an *unobservable* optimisation: identical
memory images, cycle counts, counter totals, and detection events on
every kernel, variant, and opt level.  The fast lane pins a
representative subset; the ``slow``-marked sweep covers the full suite
matrix the way the acceptance criteria demand.
"""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_kernel
from repro.fuzz.corpus import edge_programs
from repro.fuzz.oracle import RunSpec, run_program
from repro.gpu import fused
from repro.gpu.counters import BusyTracker
from repro.gpu.fused import FusedBlock, FusedProgram, lower_kernel
from repro.kernels.suite import SMALL_SUITE, make_benchmark
from repro.runtime.api import Session


def _norm_counters(counters):
    return {
        k: (v.total if isinstance(v, BusyTracker) else v)
        for k, v in vars(counters).items()
    }


def _run_suite(abbrev, variant, on, optimize=False):
    with fused.fusion(on):
        bench = make_benchmark(abbrev, "small")
        compiled = compile_kernel(
            bench.build(), variant, optimize=optimize, cache=False)
        return bench.run(Session(), compiled)


def _assert_bitwise_equal(ref, fzd, where):
    assert ref.cycles == fzd.cycles, f"{where}: cycle counts diverge"
    for name in ref.outputs:
        assert np.array_equal(ref.outputs[name], fzd.outputs[name]), (
            f"{where}: output {name!r} diverges")
    assert _norm_counters(ref.merged_counters()) == _norm_counters(
        fzd.merged_counters()), f"{where}: counters diverge"
    assert len(ref.detections) == len(fzd.detections), where


# -- fast lane: representative suite subset --------------------------------

FAST_CASES = [
    ("FWT", "intra+lds", False),    # LDS + barriers + loops
    ("FWT", "inter", False),        # inter-group handshake
    ("BinS", "original", False),    # divergent while loop
    ("MM", "intra-lds", True),      # O1 cleanup pipeline
    ("BO", "intra+lds", True),      # transcendental-heavy, O1
]


@pytest.mark.parametrize("abbrev,variant,optimize", FAST_CASES)
def test_fused_matches_reference_fast(abbrev, variant, optimize):
    ref = _run_suite(abbrev, variant, on=False, optimize=optimize)
    fzd = _run_suite(abbrev, variant, on=True, optimize=optimize)
    _assert_bitwise_equal(ref, fzd, f"{abbrev}/{variant}/O{int(optimize)}")


# -- full sweep: whole suite × variants × opt levels -----------------------


@pytest.mark.slow
@pytest.mark.parametrize("abbrev", sorted(SMALL_SUITE))
@pytest.mark.parametrize("variant",
                         ["original", "intra+lds", "intra-lds", "inter"])
@pytest.mark.parametrize("optimize", [False, True])
def test_fused_matches_reference_full(abbrev, variant, optimize):
    ref = _run_suite(abbrev, variant, on=False, optimize=optimize)
    fzd = _run_suite(abbrev, variant, on=True, optimize=optimize)
    _assert_bitwise_equal(ref, fzd, f"{abbrev}/{variant}/O{int(optimize)}")


# -- fuzz corpus replay ----------------------------------------------------


@pytest.mark.parametrize("prog", edge_programs(), ids=lambda p: p.name)
def test_fused_matches_reference_on_corpus(prog):
    for spec in (RunSpec("original"), RunSpec("intra+lds"),
                 RunSpec("inter", optimize=True)):
        with fused.fusion(False):
            ref = run_program(prog, spec, cycle_budget=50_000_000)
        with fused.fusion(True):
            fzd = run_program(prog, spec, cycle_budget=50_000_000)
        where = f"{prog.name}/{spec.label}"
        assert ref.status == fzd.status == "ok", where
        assert ref.cycles == fzd.cycles, where
        assert ref.detections == fzd.detections, where
        for name in ref.memory:
            assert np.array_equal(ref.memory[name].view(np.uint8),
                                  fzd.memory[name].view(np.uint8)), (
                f"{where}: {name}")


# -- fault-hook interplay --------------------------------------------------


def test_fault_hook_launch_is_identical_with_fusion_enabled():
    """A hooked launch must bypass fusion and match pre-PR behaviour."""
    from repro.faults.campaign import draw_plans, execute_trial

    plans = draw_plans(3, 4, "vgpr", max_instr=20)
    bench = make_benchmark("FWT", "small")
    compiled = bench.compile("intra+lds", cache=False)

    def outcomes(on):
        with fused.fusion(on):
            recs = [
                execute_trial(make_benchmark("FWT", "small"), compiled,
                              plan, 50_000_000, index=i)
                for i, plan in enumerate(plans)
            ]
        return [(r.outcome, r.fired, r.cycles, r.description) for r in recs]

    assert outcomes(True) == outcomes(False)


def test_fused_program_not_used_when_hook_installed():
    from repro.gpu.wavefront import LaunchContext

    bench = make_benchmark("FWT", "small")
    compiled = bench.compile("original", cache=False)
    seen = []

    orig_init = LaunchContext.__init__

    def spy(self, *a, **kw):
        orig_init(self, *a, **kw)
        seen.append(self)

    LaunchContext.__init__ = spy
    try:
        with fused.fusion(True):
            bench.run(Session(), compiled, fault_hook=lambda wave, instr: None)
    finally:
        LaunchContext.__init__ = orig_init
    assert seen and all(ctx.fused is None for ctx in seen)


# -- lowering unit behaviour -----------------------------------------------


def test_lower_kernel_memoizes_on_kernel_instance():
    kernel = make_benchmark("FWT", "small").build()
    prog = lower_kernel(kernel)
    assert isinstance(prog, FusedProgram)
    assert lower_kernel(kernel) is prog
    assert prog.n_blocks > 0 and prog.n_fused_instrs > 0


def test_fused_blocks_only_contain_pure_ops():
    from repro.gpu.wavefront import _PURE_OPS

    kernel = make_benchmark("BitS", "small").build()
    prog = lower_kernel(kernel)

    def walk(items):
        for item in items:
            if isinstance(item, FusedBlock):
                for ins in item.instrs:
                    assert ins.__class__ in _PURE_OPS
            elif hasattr(item, "then_items"):
                walk(item.then_items)
                walk(item.else_items)
            elif hasattr(item, "body_items"):
                walk(item.cond_items)
                walk(item.body_items)

    walk(prog.items)


def test_fusion_toggle_controls_launch_lowering():
    bench = make_benchmark("FWT", "small")
    compiled = bench.compile("original", cache=False)
    with fused.fusion(False):
        assert fused.maybe_lower(compiled.kernel) is None
    with fused.fusion(True):
        assert fused.maybe_lower(compiled.kernel) is not None
