"""Tests for the translation validator (simulation-relation checker)."""

import pytest

from repro.compiler.pipeline import compile_kernel
from repro.compiler.tv import (
    FAILED,
    OBLIGATIONS,
    TvError,
    TvReport,
    validate_compile,
)
from repro.kernels.suite import make_benchmark
from repro.tv.selftest import (
    CryWolfPass,
    DropReplicaPass,
    OffByOnePass,
    SkipComparePass,
    SpinForeverPass,
    probe_program,
    run_selftest,
)

#: Kernels exercising every obligation: LDS reductions (R), the
#: partner-index idiom (PS), and a pure-global kernel (FW).
_FAST_KERNELS = ("R", "PS", "FW")
_VARIANTS = ("original", "intra+lds", "intra-lds", "inter")


@pytest.fixture(autouse=True)
def _no_compile_cache(monkeypatch):
    """External ``validate_compile(kernel, compiled.kernel)`` anchors
    the proof to THIS build's register objects; a compile served from
    the content-addressed cache (same structure, different build) is
    unprovable by construction, so these tests never cache."""
    import repro.compiler.pipeline as pipeline

    monkeypatch.setattr(pipeline, "resolve_cache", lambda arg=None: None)


def _validate(abbrev, variant, optimize):
    kernel = make_benchmark(abbrev, scale="small").build()
    compiled = compile_kernel(
        kernel, variant, optimize=optimize, lint=False, validate=False)
    return validate_compile(
        kernel, compiled.kernel, variant=variant, raise_on_failure=False)


class TestCertification:
    @pytest.mark.parametrize("abbrev", _FAST_KERNELS)
    @pytest.mark.parametrize("variant", _VARIANTS)
    @pytest.mark.parametrize("optimize", [False, True])
    def test_suite_subset_certifies(self, abbrev, variant, optimize):
        report = _validate(abbrev, variant, optimize)
        assert report.ok, "; ".join(str(w) for w in report.witnesses)
        assert set(report.obligations) == set(OBLIGATIONS)
        assert all(s in ("proved", "skipped")
                   for s in report.obligations.values())

    def test_identity_mode_skips_replica_obligations(self):
        report = _validate("R", "original", False)
        assert report.mode == "identity"
        for name in ("output-comparison", "atomic-forwarding",
                     "replica-completeness"):
            assert report.obligations[name] == "skipped"
        assert report.obligations["effect-correspondence"] == "proved"

    def test_fast_variants_certify(self):
        for variant in ("intra+lds_fast", "intra-lds_fast"):
            kernel = make_benchmark("R", scale="small").build()
            compiled = compile_kernel(
                kernel, variant, optimize=True, lint=False, validate=False)
            report = validate_compile(
                kernel, compiled.kernel, variant=variant,
                raise_on_failure=False)
            assert report.ok, "; ".join(str(w) for w in report.witnesses)

    def test_report_json_shape(self):
        report = _validate("R", "intra+lds", True)
        doc = report.to_json()
        assert doc["ok"] is True
        assert doc["mode"] == "intra"
        assert doc["variant"] == "intra+lds"
        assert set(doc["obligations"]) == set(OBLIGATIONS)
        assert doc["witnesses"] == []


class TestPlantedRejection:
    """Every planted miscompile must die with a FAILED witness on the
    expected obligation — the acceptance criterion of the validator."""

    def test_static_selftest_rejects_all(self):
        results = run_selftest(dynamic=False)
        assert len(results) == 5
        for r in results:
            assert r.rejected, f"{r.case}: no failed witness"
            assert r.obligation_hit, (
                f"{r.case}: wrong obligation — got "
                f"{ {k: v for k, v in r.report.obligations.items() if v == FAILED} }"
            )

    def test_dynamic_oracle_never_outruns_validator(self):
        """Cross-check: every planted bug the differential oracle
        catches must also carry a static witness (no escapes)."""
        results = run_selftest(dynamic=True)
        for r in results:
            assert not r.escapes, r.escapes

    def test_witness_is_instruction_pair_diff(self):
        """The off-by-one witness names both sides of the mismatch."""
        original = probe_program().build()
        compiled = compile_kernel(
            original, "intra+lds", extra_passes=(OffByOnePass(),),
            lint=False, validate=False)
        report = validate_compile(
            original, compiled.kernel, variant="intra+lds",
            raise_on_failure=False)
        w = next(w for w in report.failures
                 if w.obligation == "effect-correspondence")
        assert w.status == FAILED
        assert w.loc                     # transformed-side location
        assert w.original_loc            # ... paired with the original's
        assert w.obligation in str(w)
        assert set(w.to_json()) == {
            "obligation", "status", "kernel", "loc", "message",
            "original_loc"}

    @pytest.mark.parametrize("planted,variant,obligation", [
        (SkipComparePass, "intra+lds", "output-comparison"),
        (CryWolfPass, "original", "effect-correspondence"),
        (SpinForeverPass, "original", "control-skeleton"),
    ])
    def test_individual_obligations(self, planted, variant, obligation):
        original = probe_program().build()
        if variant != "original" and planted is SkipComparePass:
            compiled = compile_kernel(
                original, variant, rmt_pass=planted(), lint=False,
                validate=False)
        else:
            compiled = compile_kernel(
                original, variant, extra_passes=(planted(),), lint=False,
                validate=False)
        report = validate_compile(
            original, compiled.kernel, variant=variant,
            raise_on_failure=False)
        assert report.obligations[obligation] == FAILED

    def test_drop_replica_breaks_completeness(self):
        original = probe_program().build()
        compiled = compile_kernel(
            original, "intra+lds", extra_passes=(DropReplicaPass(),),
            lint=False, validate=False)
        report = validate_compile(
            original, compiled.kernel, variant="intra+lds",
            raise_on_failure=False)
        assert report.obligations["replica-completeness"] == FAILED


class TestPipelineWiring:
    def test_default_compile_validates_clean(self):
        kernel = make_benchmark("R", scale="small").build()
        compiled = compile_kernel(kernel, "intra+lds")  # lint + tv on
        assert compiled.kernel.metadata.get("rmt")

    def test_planted_bug_raises_tv_error(self):
        original = probe_program().build()
        with pytest.raises(TvError) as excinfo:
            compile_kernel(
                original, "intra+lds", extra_passes=(OffByOnePass(),),
                lint=False, validate=True)
        report = excinfo.value.report
        assert isinstance(report, TvReport)
        assert report.failures
        assert "effect-correspondence" in str(excinfo.value)

    def test_opt_out_skips_validation(self):
        original = probe_program().build()
        compiled = compile_kernel(
            original, "intra+lds", extra_passes=(OffByOnePass(),),
            lint=False, validate=False)
        assert compiled.kernel is not None

    def test_validation_follows_lint_by_default(self):
        """``validate`` defaults to ``lint and verify`` — a lint-off
        compile of a planted bug must not raise."""
        original = probe_program().build()
        compiled = compile_kernel(
            original, "intra+lds", extra_passes=(OffByOnePass(),),
            lint=False)
        assert compiled.kernel is not None
