"""Tests for the selective (vulnerability-driven) RMT pass: the partial
sphere-of-replication contract, single-replica sinking, and the
coverage it actually buys under fault injection."""

import pytest

from repro.compiler.lint import run_lints
from repro.compiler.passes.rmt_selective import (
    SelectiveOptions,
    SelectiveRmtPass,
)
from repro.compiler.pipeline import compile_kernel
from repro.faults import draw_plans, execute_trial
from repro.ir import DType, KernelBuilder
from repro.ir.core import Alu, If, StoreGlobal
from repro.kernels import SMALL_SUITE
from repro.runtime import Session


def _two_exit_kernel():
    """One protected store (regions source) and one unprotected store."""
    b = KernelBuilder("twoexit")
    out = b.buffer_param("out", DType.U32)
    aux = b.buffer_param("aux", DType.U32)
    inp = b.buffer_param("inp", DType.U32)
    gid = b.global_id(0)
    x = b.load(inp, gid)
    with b.protect("hot"):
        b.store(out, gid, b.add(x, gid))             # exit 0
    b.store(aux, gid, b.xor(x, gid))                 # exit 1
    k = b.finish()
    k.metadata["local_size"] = (16, 1, 1)
    return k


def _compile_selective(kernel, **opts):
    return compile_kernel(
        kernel, variant="selective",
        rmt_pass=SelectiveRmtPass(SelectiveOptions(**opts)),
        cache=False,
    )


def _aux_guards(kernel):
    """Every If whose then-body directly stores to 'aux'."""
    found = []

    def walk(body):
        for s in body:
            if isinstance(s, If):
                if any(isinstance(t, StoreGlobal) and t.buf.name == "aux"
                       for t in s.then_body):
                    found.append(s)
                walk(s.then_body)
                walk(s.else_body)

    walk(kernel.body)
    return found


class TestOptions:
    def test_bad_source_rejected(self):
        with pytest.raises(ValueError, match="source"):
            SelectiveOptions(source="vibes")

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            SelectiveOptions(threshold=1.5)


class TestPartialContract:
    def test_regions_source_passes_pipeline(self):
        """A region-annotated kernel certifies (lint + TV) selectively."""
        compiled = _compile_selective(_two_exit_kernel(), source="regions")
        partial = compiled.kernel.metadata["rmt"]["partial"]
        assert partial["protected"] == [0]
        assert partial["unprotected"] == [1]
        assert partial["total"] == 2
        assert partial["source"] == "regions"

    def test_auto_prefers_regions(self):
        compiled = _compile_selective(_two_exit_kernel(), source="auto")
        assert compiled.kernel.metadata["rmt"]["partial"]["source"] == "regions"

    def test_priority_threshold_endpoints(self):
        bench = SMALL_SUITE["FWT"]()
        full = _compile_selective(bench.build(), source="priority",
                                  threshold=1.0)
        none = _compile_selective(bench.build(), source="priority",
                                  threshold=0.0)
        assert full.kernel.metadata["rmt"]["partial"]["unprotected"] == []
        assert none.kernel.metadata["rmt"]["partial"]["protected"] == []

    def test_vuln_checker_accepts_declared_contract(self):
        compiled = _compile_selective(_two_exit_kernel(), source="regions")
        assert not run_lints(compiled.kernel, ["vuln"])

    def test_vuln_checker_rejects_corrupted_contract(self):
        compiled = _compile_selective(_two_exit_kernel(), source="regions")
        partial = compiled.kernel.metadata["rmt"]["partial"]
        partial["unprotected"] = []          # ordinal 1 now unaccounted
        diags = run_lints(compiled.kernel, ["vuln"])
        assert any(d.severity == "error" for d in diags)

    def test_vuln_checker_rejects_overlap(self):
        compiled = _compile_selective(_two_exit_kernel(), source="regions")
        compiled.kernel.metadata["rmt"]["partial"]["unprotected"] = [0, 1]
        diags = run_lints(compiled.kernel, ["vuln"])
        assert any(d.severity == "error" for d in diags)


class TestSinking:
    def test_unprotected_feed_sinks_into_consumer_guard(self):
        compiled = _compile_selective(_two_exit_kernel(), source="regions",
                                      sink=True)
        guards = _aux_guards(compiled.kernel)
        assert guards, "unprotected store lost its consumer guard"
        assert any(
            isinstance(s, Alu) and s.op == "xor"
            for g in guards for s in g.then_body
        ), "xor feeding only the unprotected exit was not sunk"

    def test_sink_disabled_leaves_computation_hoisted(self):
        compiled = _compile_selective(_two_exit_kernel(), source="regions",
                                      sink=False)
        assert not any(
            isinstance(s, Alu) and s.op == "xor"
            for g in _aux_guards(compiled.kernel) for s in g.then_body
        )


class TestExecution:
    def test_selective_output_matches_reference(self):
        """Unfaulted selective builds stay correct and never cry wolf."""
        bench = SMALL_SUITE["FWT"]()
        compiled = _compile_selective(bench.build(), source="priority",
                                      threshold=0.5)
        result = bench.run(Session(), compiled)
        assert bench.check(result)
        assert not result.detections

    def test_zero_protection_matches_reference(self):
        bench = SMALL_SUITE["R"]()
        compiled = _compile_selective(bench.build(), source="priority",
                                      threshold=0.0)
        result = bench.run(Session(), compiled)
        assert bench.check(result)
        assert not result.detections


@pytest.mark.slow
class TestFaultCoverage:
    def test_full_threshold_detects_vgpr_faults(self):
        """threshold=1.0 degenerates to full Intra-Group protection."""
        bench = SMALL_SUITE["FWT"]()
        compiled = _compile_selective(bench.build(), source="priority",
                                      threshold=1.0)
        outcomes = [
            execute_trial(bench, compiled, plan).outcome
            for plan in draw_plans(5, 12, "vgpr", max_instr=20)
        ]
        assert outcomes.count("detected") >= 3

    def test_zero_threshold_cannot_detect(self):
        """With nothing protected there are no comparisons to fire: the
        declared contract is 'these exits may silently corrupt'."""
        bench = SMALL_SUITE["FWT"]()
        compiled = _compile_selective(bench.build(), source="priority",
                                      threshold=0.0)
        outcomes = [
            execute_trial(bench, compiled, plan).outcome
            for plan in draw_plans(5, 12, "vgpr", max_instr=20)
        ]
        assert outcomes.count("detected") == 0
