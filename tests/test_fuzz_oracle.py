"""Planted-bug tests for the differential oracle (repro.fuzz.oracle).

The oracle is only trustworthy if it *provably* flags broken compilers.
These tests plant two classic RMT pass bugs via the RunSpec hooks —

* an intra-group pass that silently drops one output comparison
  (detection coverage hole), and
* a store-index off-by-one (plain miscompare) —

and assert the oracle (and, for the comparison hole, the static
sor-coverage lint) catches each one.  A third set of planted passes
exercises the false-detection and hang findings.
"""

import numpy as np
import pytest

from repro.compiler.lint import LintError
from repro.compiler.pass_manager import Pass
from repro.compiler.passes.rmt_common import RmtOptions
from repro.compiler.passes.rmt_intra import IntraGroupRmtPass
from repro.compiler.pipeline import compile_kernel
from repro.faults.injector import random_plan
from repro.fuzz.generator import generate_program
from repro.fuzz.oracle import (
    RunSpec,
    check_program,
    default_runs,
    format_findings,
    run_program,
)
from repro.fuzz.program import BufferSpec, FuzzProgram, Op
from repro.ir.core import Alu, Cmp, Const, If, ReportError, StoreGlobal, While
from repro.ir.types import DType
from repro.orchestrator.seeding import trial_rng


def planted_probe() -> FuzzProgram:
    """``out0[gid] = in0[gid & 63] + gid`` — the store value varies per
    lane, so an index permutation cannot go unnoticed, and the compare-
    before-store window is wide enough for register faults to land in."""
    return FuzzProgram(
        name="planted_probe",
        global_size=64,
        local_size=16,
        buffers=[
            BufferSpec("in0", "u32", 64, role="in", init="random", seed=11),
            BufferSpec("out0", "u32", 64, role="out", init="zeros"),
        ],
        ops=[
            Op("special", result=1, op="global_id", imm=0),
            Op("const", result=2, dtype="u32", imm=63),
            Op("alu", result=3, dtype="u32", op="and", args=(1, 2)),
            Op("load", result=4, ref="in0", args=(3,)),
            Op("alu", result=5, dtype="u32", op="add", args=(4, 1)),
            Op("store", ref="out0", args=(1, 5)),
        ],
    )


# ---------------------------------------------------------------------------
# Planted compiler bugs
# ---------------------------------------------------------------------------


class OffByOnePass(Pass):
    """Planted bug: xor the first global store's index with 1."""

    name = "planted-off-by-one"

    def run(self, kernel):
        self._patch(kernel.body, kernel)
        return kernel

    def _patch(self, body, kernel) -> bool:
        for i, stmt in enumerate(body):
            if isinstance(stmt, StoreGlobal):
                one = kernel.new_reg(DType.U32, hint="obo_c")
                bad = kernel.new_reg(DType.U32, hint="obo")
                body[i:i] = [Const(one, 1),
                             Alu("xor", bad, stmt.index, one)]
                stmt.index = bad
                return True
            if isinstance(stmt, If):
                if (self._patch(stmt.then_body, kernel)
                        or self._patch(stmt.else_body, kernel)):
                    return True
            if isinstance(stmt, While):
                if self._patch(stmt.body, kernel):
                    return True
        return False


class SkipComparePass(Pass):
    """Planted bug: run the stock Intra-Group(+LDS) pass, then delete the
    first output-comparison branch (the ``If`` guarding a report_error).
    The transformed kernel still duplicates computation but one store
    goes out unchecked — a detection coverage hole."""

    name = "planted-skip-compare"

    def __init__(self):
        self.inner = IntraGroupRmtPass(RmtOptions(include_lds=True))

    def run(self, kernel):
        kernel = self.inner.run(kernel)
        assert self._strip(kernel.body), "no report_error branch to strip"
        return kernel

    def _strip(self, body) -> bool:
        """Delete the innermost ``If`` directly guarding a report_error
        (NOT any enclosing consumer branch, which also holds the store)."""
        for i, stmt in enumerate(body):
            if isinstance(stmt, If):
                if self._strip(stmt.then_body) or self._strip(stmt.else_body):
                    return True
                if any(isinstance(s, ReportError) for s in stmt.then_body):
                    del body[i]
                    return True
            elif isinstance(stmt, While):
                if self._strip(stmt.cond_block) or self._strip(stmt.body):
                    return True
        return False


class CryWolfPass(Pass):
    """Planted bug: unconditionally raise the detection flag."""

    name = "planted-cry-wolf"

    def run(self, kernel):
        kernel.body.append(ReportError(7))
        return kernel


class SpinForeverPass(Pass):
    """Planted bug: append a loop whose condition never goes false."""

    name = "planted-spin"

    def run(self, kernel):
        a = kernel.new_reg(DType.U32, hint="spin_a")
        b = kernel.new_reg(DType.U32, hint="spin_b")
        p = kernel.new_reg(DType.PRED, hint="spin_p")
        cond_block = [Const(a, 0), Const(b, 0), Cmp("eq", p, a, b)]
        kernel.body.append(While(cond_block, p, []))
        return kernel


def _memory_differs(a, b) -> bool:
    return any(a[k].tobytes() != b[k].tobytes() for k in a)


# ---------------------------------------------------------------------------
# Clean-program behaviour
# ---------------------------------------------------------------------------


class TestCleanPrograms:
    def test_full_matrix_clean(self):
        report = check_program(generate_program(1))
        assert report.ok, format_findings(report)
        # baseline + original@O1 + 3 variants x O0/O1
        assert len(report.runs) == 1 + len(default_runs())
        assert all(r.status == "ok" for r in report.runs)
        assert all(r.detections == 0 for r in report.runs)

    def test_probe_program_clean(self):
        report = check_program(planted_probe())
        assert report.ok, format_findings(report)

    def test_fault_mode_reports_no_errors_on_clean_program(self):
        report = check_program(planted_probe(), faults=6, fault_seed=5)
        assert report.ok, format_findings(report)

    def test_finding_json_roundtrip(self):
        report = check_program(
            planted_probe(),
            runs=[RunSpec("original", optimize=False,
                          extra_passes=(OffByOnePass(),), lint=False)])
        assert report.errors
        j = report.errors[0].to_json()
        assert j["kind"] == "miscompare"
        assert j["severity"] == "error"
        assert j["program"] == "planted_probe"


# ---------------------------------------------------------------------------
# Planted store off-by-one -> miscompare
# ---------------------------------------------------------------------------


class TestOffByOne:
    def test_miscompare_flagged(self):
        report = check_program(
            planted_probe(),
            runs=[RunSpec("original", optimize=False,
                          extra_passes=(OffByOnePass(),), lint=False)])
        kinds = {(f.kind, f.run) for f in report.errors}
        assert ("miscompare", "original@O0") in kinds, \
            format_findings(report)
        # It is a pure data miscompare: no detections, no crash.
        assert not {f.kind for f in report.findings} & {"crash", "hang"}

    def test_miscompare_flagged_under_rmt_variant(self):
        report = check_program(
            planted_probe(),
            runs=[RunSpec("intra+lds", optimize=False,
                          extra_passes=(OffByOnePass(),), lint=False)])
        assert any(f.kind == "miscompare" for f in report.errors), \
            format_findings(report)

    def test_detail_names_buffer_and_index(self):
        report = check_program(
            planted_probe(),
            runs=[RunSpec("original", optimize=False,
                          extra_passes=(OffByOnePass(),), lint=False)])
        detail = report.errors[0].detail
        assert "out0" in detail and "differ" in detail


# ---------------------------------------------------------------------------
# Planted skipped comparison -> lint rejection + SoR coverage hole
# ---------------------------------------------------------------------------


class TestSkipCompare:
    def test_static_lint_rejects_missing_compare(self):
        """The sor-coverage lint alone catches the planted pass."""
        with pytest.raises(LintError, match="sor"):
            compile_kernel(planted_probe().build(), variant="intra+lds",
                           rmt_pass=SkipComparePass(), lint=True)

    def test_unfaulted_behaviour_unchanged(self):
        """The bug is purely a detection hole: without faults the buggy
        pass still computes correct outputs and raises no flag."""
        report = check_program(
            planted_probe(),
            runs=[RunSpec("intra+lds", optimize=False,
                          rmt_pass=SkipComparePass(), lint=False)])
        assert report.ok, format_findings(report)

    def test_fault_detection_hole(self):
        """Stock pass: some register fault is detected.  Buggy pass: some
        register fault silently corrupts memory with zero detections."""
        prog = planted_probe()
        baseline = run_program(prog, RunSpec("original", optimize=False))
        assert baseline.status == "ok"

        stock = RunSpec("intra+lds", optimize=False)
        buggy = RunSpec("intra+lds", optimize=False,
                        rmt_pass=SkipComparePass(), lint=False)

        stock_detected = False
        buggy_sdc = False
        for i in range(120):
            plan = random_plan(trial_rng(99, i), "vgpr",
                               max_wave=8, max_instr=60)
            if not stock_detected:
                r = run_program(prog, stock, fault_plan=plan)
                if r.status == "ok" and r.detections:
                    stock_detected = True
            if not buggy_sdc:
                r = run_program(prog, buggy, fault_plan=plan)
                if (r.status == "ok" and not r.detections
                        and _memory_differs(baseline.memory, r.memory)):
                    buggy_sdc = True
            if stock_detected and buggy_sdc:
                break
        assert stock_detected, "no fault plan triggered a stock detection"
        assert buggy_sdc, ("no fault plan produced a silent corruption "
                           "under the compare-skipping pass")


# ---------------------------------------------------------------------------
# False detections and hangs
# ---------------------------------------------------------------------------


class TestOtherFindings:
    def test_false_detection_flagged(self):
        report = check_program(
            planted_probe(),
            runs=[RunSpec("original", optimize=False,
                          extra_passes=(CryWolfPass(),), lint=False)])
        assert any(f.kind == "false_detection" for f in report.errors), \
            format_findings(report)

    def test_hang_flagged(self):
        result = run_program(
            planted_probe(),
            RunSpec("original", optimize=False,
                    extra_passes=(SpinForeverPass(),), lint=False),
            cycle_budget=100_000)
        assert result.status == "hang"

    def test_crash_flagged(self):
        class BoomPass(Pass):
            name = "planted-boom"

            def run(self, kernel):
                raise RuntimeError("planted compiler crash")

        report = check_program(
            planted_probe(),
            runs=[RunSpec("original", optimize=False,
                          extra_passes=(BoomPass(),), lint=False)])
        assert any(f.kind == "crash" and "planted compiler crash" in f.detail
                   for f in report.errors)

    def test_spec_validation_failure_is_a_finding(self):
        bad = planted_probe()
        bad.ops.append(Op("alu", result=9, dtype="u32", op="add",
                          args=(777, 778)))
        report = check_program(bad)
        assert any(f.kind == "baseline_failure" for f in report.errors)


class TestSelectiveRuns:
    """Programs with protect() regions get a selective-RMT differential
    run; the fault probe must skip it (partial coverage is declared, not
    a finding)."""

    def _protect_program(self):
        from repro.fuzz.generator import GenConfig

        cfg = GenConfig(protect_prob=0.5)

        def has_protect(ops):
            return any(op.kind == "protect" or has_protect(op.body)
                       or has_protect(op.orelse) for op in ops)

        for seed in range(20):
            p = generate_program(seed, cfg)
            if has_protect(p.ops):
                return p
        pytest.fail("no protect program in 20 seeds at p=0.5")

    def test_selective_run_added_and_green(self):
        report = check_program(self._protect_program())
        labels = [r.label for r in report.runs]
        assert "selective@O0" in labels
        assert report.ok, format_findings(report)

    def test_no_selective_run_without_protect(self):
        report = check_program(planted_probe())
        assert not any(r.label.startswith("selective") for r in report.runs)

    def test_fault_probe_skips_selective_spec(self):
        report = check_program(self._protect_program(), faults=3)
        fault_labels = [f.run for f in report.findings
                        if f.kind in ("fault_sdc", "fault_hang")]
        assert not any(l.startswith("selective") for l in fault_labels)
        assert report.ok, format_findings(report)
