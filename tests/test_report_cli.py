"""Tests for the report CLI and example scripts (smoke level)."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.eval.report import main as report_main

_REPO = Path(__file__).resolve().parent.parent


class TestReportCli:
    def test_static_figures(self, capsys):
        rc = report_main(["--figures", "table1,table2,table3,fig8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out
        assert "Table 3" in out
        assert "Figure 8" in out

    @pytest.mark.slow
    def test_small_scale_sim_figure(self, capsys):
        rc = report_main(["--scale", "small", "--figures", "fig5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "BO" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            report_main(["--figures", "fig99"])


@pytest.mark.slow
@pytest.mark.parametrize("script,args", [
    ("quickstart.py", []),
    ("overhead_analysis.py", ["--kernels", "FWT,PS"]),
    ("swizzle_fast_comm.py", ["--kernels", "PS,FWT"]),
    ("fault_injection_campaign.py", ["--trials", "3", "--kernels", "FWT"]),
])
def test_examples_run_clean(script, args):
    proc = subprocess.run(
        [sys.executable, str(_REPO / "examples" / script), *args],
        capture_output=True, text=True, timeout=900,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()
