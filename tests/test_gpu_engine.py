"""Timing-engine behavioural tests: latency hiding, contention, barriers,
atomic ordering, watchdogs, detection events."""

import numpy as np
import pytest

from repro.gpu import Device, GpuConfig, HD7790, KernelResources, SimulationError
from repro.ir import DType, KernelBuilder


def _streaming_kernel(loads=1, alu_chain=0):
    b = KernelBuilder("stream")
    a = b.buffer_param("a", DType.F32)
    out = b.buffer_param("out", DType.F32)
    gid = b.global_id(0)
    acc = b.var(DType.F32, 0.0)
    for i in range(loads):
        b.set(acc, b.add(acc, b.load(a, gid)))
    for _ in range(alu_chain):
        b.set(acc, b.add(acc, 1.0))
    b.store(out, gid, acc)
    return b.finish()


def _launch(kernel, n=4096, local=64, config=HD7790, resources=None):
    dev = Device(config)
    ab = dev.alloc("a", np.ones(n, dtype=np.float32))
    ob = dev.alloc_zeros("out", n, np.float32)
    res = dev.launch(kernel, n, local, {"a": ab, "out": ob}, resources=resources)
    return dev, res


class TestLatencyHiding:
    def test_more_waves_hide_memory_latency(self):
        """The same total work finishes faster with more resident waves."""
        k = _streaming_kernel(loads=4)
        _, busy = _launch(k, n=16384)
        # One group per CU only (cap via resources):
        capped = KernelResources(32, 32, 0, groups_per_cu_cap=1)
        _, starved = _launch(k, n=16384, resources=capped)
        assert starved.cycles > busy.cycles * 1.5

    def test_alu_hides_behind_memory(self):
        """Adding ALU work to a memory-bound kernel barely changes runtime."""
        _, lean = _launch(_streaming_kernel(loads=4, alu_chain=0), n=16384)
        _, fat = _launch(_streaming_kernel(loads=4, alu_chain=12), n=16384)
        assert fat.cycles < lean.cycles * 1.35

    def test_compute_bound_scales_with_alu(self):
        _, short = _launch(_streaming_kernel(loads=1, alu_chain=16), n=16384)
        _, long_ = _launch(_streaming_kernel(loads=1, alu_chain=160), n=16384)
        assert long_.cycles > short.cycles * 2.0


class TestContention:
    def test_runtime_scales_with_items_when_saturated(self):
        k = _streaming_kernel(loads=2)
        _, small = _launch(k, n=16384)
        _, large = _launch(k, n=65536)
        ratio = large.cycles / small.cycles
        assert 2.0 < ratio < 8.0

    def test_dram_bandwidth_limits_streaming(self):
        slow_cfg = HD7790.with_(dram_bytes_per_cycle=8.0)
        k = _streaming_kernel(loads=2)
        _, fast = _launch(k, n=32768)
        _, slow = _launch(k, n=32768, config=slow_cfg)
        assert slow.cycles > fast.cycles * 1.5


class TestBarriers:
    def test_barrier_orders_lds_between_waves(self):
        """Wave 1 writes, all waves barrier, wave 0 reads wave 1's data."""
        b = KernelBuilder("k")
        out = b.buffer_param("out", DType.U32)
        lds = b.local_alloc("tile", DType.U32, 128)
        gid = b.global_id(0)
        lid = b.local_id(0)
        b.store_local(lds, lid, b.add(lid, 100))
        b.barrier()
        partner = b.rem(b.add(lid, 64), 128)
        b.store(out, gid, b.load_local(lds, partner))
        k = b.finish()
        dev = Device()
        ob = dev.alloc_zeros("out", 128, np.uint32)
        dev.launch(k, 128, 128, {"out": ob})
        got = dev.read_buffer(ob)
        expected = (np.arange(128) + 64) % 128 + 100
        np.testing.assert_array_equal(got, expected)

    def test_barrier_deadlock_detected(self):
        """A barrier reached by only some waves trips the deadlock check."""
        b = KernelBuilder("k")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        lid = b.local_id(0)
        first_wave = b.lt(lid, 64)
        with b.if_(first_wave):
            b.barrier()
        b.store(out, gid, lid)
        k = b.finish()
        dev = Device()
        ob = dev.alloc_zeros("out", 128, np.uint32)
        with pytest.raises(SimulationError, match="deadlock"):
            dev.launch(k, 128, 128, {"out": ob})


class TestAtomics:
    def test_atomic_counter_unique_tickets(self):
        b = KernelBuilder("k")
        ctr = b.buffer_param("ctr", DType.U32)
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        ticket = b.atomic("add", ctr, 0, 1)
        b.store(out, gid, ticket)
        k = b.finish()
        dev = Device()
        cb = dev.alloc_zeros("ctr", 1, np.uint32)
        ob = dev.alloc_zeros("out", 256, np.uint32)
        dev.launch(k, 256, 64, {"ctr": cb, "out": ob})
        got = np.sort(dev.read_buffer(ob))
        np.testing.assert_array_equal(got, np.arange(256))
        assert dev.read_buffer(cb)[0] == 256

    def test_same_address_atomics_serialize_in_time(self):
        cfg = HD7790
        b = KernelBuilder("k")
        ctr = b.buffer_param("ctr", DType.U32)
        out = b.buffer_param("out", DType.U32)
        b.atomic("add", ctr, 0, 1, want_old=False)
        b.store(out, b.global_id(0), 1)
        k = b.finish()

        def run(n):
            dev = Device(cfg)
            cb = dev.alloc_zeros("ctr", 1, np.uint32)
            ob = dev.alloc_zeros("out", n, np.uint32)
            return dev.launch(k, n, 64, {"ctr": cb, "out": ob}).cycles

        # 16x the same-address atomics must stretch runtime superlinearly
        # versus the equivalent amount of plain work.
        assert run(4096) > run(256) * 4

    def test_spin_on_flag_completes(self):
        """Producer wave releases a consumer wave spinning on a flag."""
        b = KernelBuilder("k")
        flag = b.buffer_param("flag", DType.U32)
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        grp = b.group_id(0)
        is_producer = b.eq(grp, 0)
        with b.if_(is_producer):
            b.atomic("xchg", flag, 0, 1, want_old=False)
        is_consumer = b.eq(grp, 1)
        with b.if_(is_consumer):
            with b.loop() as lp:
                f = b.atomic("add", flag, 0, 0)
                lp.break_unless(b.ne(f, 1))
        b.store(out, gid, 1)
        k = b.finish()
        dev = Device()
        fb = dev.alloc_zeros("flag", 1, np.uint32)
        ob = dev.alloc_zeros("out", 128, np.uint32)
        res = dev.launch(k, 128, 64, {"flag": fb, "out": ob})
        assert (dev.read_buffer(ob) == 1).all()
        assert res.cycles > 0


class TestDetectionEvents:
    def test_report_error_recorded(self):
        b = KernelBuilder("k")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        with b.if_(b.lt(gid, 3)):
            b.report_error(9)
        b.store(out, gid, gid)
        k = b.finish()
        dev = Device()
        ob = dev.alloc_zeros("out", 64, np.uint32)
        res = dev.launch(k, 64, 64, {"out": ob})
        assert res.detected
        assert len(res.detections) == 1
        _t, code, lanes = res.detections[0]
        assert code == 9 and lanes == 3

    def test_no_error_no_detection(self):
        k = _streaming_kernel()
        _, res = _launch(k, n=256)
        assert not res.detected


class TestWatchdog:
    def test_runaway_spin_trips_watchdog(self):
        cfg = HD7790.with_(max_cycles=200_000)
        b = KernelBuilder("k")
        flag = b.buffer_param("flag", DType.U32)
        out = b.buffer_param("out", DType.U32)
        with b.loop() as lp:
            f = b.atomic("add", flag, 0, 0)
            lp.break_unless(b.eq(f, 0))  # flag stays 0: spins forever
        b.store(out, b.global_id(0), 1)
        k = b.finish()
        dev = Device(cfg)
        fb = dev.alloc_zeros("flag", 1, np.uint32)
        ob = dev.alloc_zeros("out", 64, np.uint32)
        with pytest.raises(SimulationError, match="watchdog"):
            dev.launch(k, 64, 64, {"flag": fb, "out": ob})


class TestSchedulingAccounting:
    def test_groups_and_waves_counted(self):
        k = _streaming_kernel()
        _, res = _launch(k, n=1024, local=128)
        assert res.groups_launched == 8
        assert res.waves_launched == 16

    def test_under_utilization_leaves_cus_idle(self):
        """Fewer groups than CUs: doubling groups costs little extra time."""
        k = _streaming_kernel(loads=1, alu_chain=64)
        _, four = _launch(k, n=4 * 64, local=64)
        _, eight = _launch(k, n=8 * 64, local=64)
        assert eight.cycles < four.cycles * 1.3
