"""Replay the adversarial-schedule corpus (tests/schedules/).

Each corpus script pins one schedule shape the model checker's sweep
covers — two-tier-lock contention, reversed ticket draws, barrier
handoffs — in the runnable-reproducer format of
:mod:`repro.mc.witness` with ``KIND = None``: legal schedules that must
*stay* violation-free.  A failure here means a schedule that used to be
handled correctly now races, deadlocks, corrupts output, or can no
longer be replayed (the protocol's visible-operation shape changed).
"""

import glob
import os

import pytest

from repro.mc.explore import classify_outcome, run_schedule
from repro.mc.witness import load_schedule
from repro.mc.workloads import get_workload

SCHEDULES_DIR = os.path.join(os.path.dirname(__file__), "schedules")
SCHEDULE_FILES = sorted(glob.glob(os.path.join(SCHEDULES_DIR, "*.py")))


def test_corpus_is_populated():
    assert len(SCHEDULE_FILES) >= 6


def test_corpus_covers_lock_and_barrier_shapes():
    names = {os.path.basename(p) for p in SCHEDULE_FILES}
    assert any(n.startswith("lock2") for n in names)
    assert any(n.startswith("barrier2") for n in names)


@pytest.mark.parametrize("path", SCHEDULE_FILES,
                         ids=[os.path.basename(p) for p in SCHEDULE_FILES])
def test_corpus_schedule_replays_clean(path):
    workload_name, choices, kind = load_schedule(path)
    assert kind is None, "corpus entries must be violation-free schedules"
    workload = get_workload(workload_name)
    outcome = run_schedule(workload, [tuple(c) for c in choices])

    # The recorded prefix must still be feasible as written — replay
    # raises ReplayDivergence otherwise — and actually consumed.
    taken = [list(t.wave) for t in outcome.turns[:len(choices)]]
    assert taken == [list(c) for c in choices], (
        f"{os.path.basename(path)}: prefix reshaped to {taken}")

    violations = classify_outcome(workload, outcome)
    assert not violations, "\n".join(
        f"{v.kind}: {v.message}" for v in violations)
    assert outcome.check_failure is None
    assert outcome.detections == 0
