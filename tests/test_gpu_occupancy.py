"""Tests for the occupancy model."""

import pytest

from repro.gpu.config import HD7790
from repro.gpu.occupancy import (
    KernelResources,
    SchedulingError,
    compute_occupancy,
)


def _res(vgprs=32, sgprs=32, lds=0, cap=0):
    return KernelResources(
        vgprs_per_workitem=vgprs, sgprs_per_wave=sgprs,
        lds_bytes_per_group=lds, groups_per_cu_cap=cap,
    )


class TestOccupancy:
    def test_wave_count(self):
        occ = compute_occupancy(HD7790, _res(), local_size=256)
        assert occ.waves_per_group == 4

    def test_vgpr_limit(self):
        light = compute_occupancy(HD7790, _res(vgprs=25), 64)
        heavy = compute_occupancy(HD7790, _res(vgprs=128), 64)
        assert light.max_waves_per_simd == 10
        assert heavy.max_waves_per_simd == 2

    def test_vgpr_limits_groups(self):
        # 256 work-items = 4 waves/group; 64 VGPRs -> 4 waves/SIMD -> 16
        # wave slots -> 4 groups.
        occ = compute_occupancy(HD7790, _res(vgprs=64), 256)
        assert occ.max_groups_per_cu == 4
        assert occ.limiting_resource == "wave_slots"

    def test_lds_limits_groups(self):
        occ = compute_occupancy(HD7790, _res(lds=32 * 1024), 64)
        assert occ.max_groups_per_cu == 2
        assert occ.limiting_resource == "lds"

    def test_group_cap_limit(self):
        occ = compute_occupancy(HD7790, _res(), 64)
        assert occ.max_groups_per_cu == HD7790.max_groups_per_cu

    def test_inflation_cap(self):
        occ = compute_occupancy(HD7790, _res(cap=3), 64)
        assert occ.max_groups_per_cu == 3
        assert occ.limiting_resource == "inflation_cap"

    def test_monotonic_in_vgprs(self):
        prev = None
        for vgprs in (16, 32, 64, 128, 256):
            occ = compute_occupancy(HD7790, _res(vgprs=vgprs), 128)
            if prev is not None:
                assert occ.max_groups_per_cu <= prev
            prev = occ.max_groups_per_cu

    def test_oversized_lds_rejected(self):
        with pytest.raises(SchedulingError, match="LDS"):
            compute_occupancy(HD7790, _res(lds=128 * 1024), 64)

    def test_oversized_vgprs_rejected(self):
        with pytest.raises(SchedulingError):
            compute_occupancy(HD7790, _res(vgprs=500), 64)

    def test_inflated_composition(self):
        a = _res(vgprs=20, sgprs=30, lds=100)
        b = _res(vgprs=40, sgprs=10, lds=50)
        c = a.inflated(b)
        assert c.vgprs_per_workitem == 40
        assert c.sgprs_per_wave == 30
        assert c.lds_bytes_per_group == 100

    def test_max_waves_per_cu(self):
        occ = compute_occupancy(HD7790, _res(), 64)
        assert occ.max_waves_per_cu == occ.max_waves_per_simd * 4
