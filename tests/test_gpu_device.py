"""Tests for the Device façade and fault-mode memory wrapping."""

import numpy as np
import pytest

from repro.gpu import Device, HD7790
from repro.ir import DType, KernelBuilder


def _store_kernel(offset: int):
    """Stores to gid + offset (out of bounds when offset > 0)."""
    b = KernelBuilder("k")
    out = b.buffer_param("out", DType.U32)
    gid = b.global_id(0)
    b.store(out, b.add(gid, offset), gid)
    return b.finish()


class TestDevice:
    def test_clock_accumulates_across_launches(self):
        dev = Device()
        k = _store_kernel(0)
        ob = dev.alloc_zeros("out", 64, np.uint32)
        dev.launch(k, 64, 64, {"out": ob})
        first = dev.clock
        dev.launch(k, 64, 64, {"out": ob})
        assert dev.clock > first
        assert dev.stats.launches == 2

    def test_merged_counters_cover_all_launches(self):
        dev = Device()
        k = _store_kernel(0)
        ob = dev.alloc_zeros("out", 64, np.uint32)
        r1 = dev.launch(k, 64, 64, {"out": ob})
        r2 = dev.launch(k, 64, 64, {"out": ob})
        merged = dev.merged_counters()
        assert merged.valu_instructions == (
            r1.counters.valu_instructions + r2.counters.valu_instructions
        )

    def test_caches_warm_across_launches(self):
        dev = Device()
        b = KernelBuilder("load")
        src = b.buffer_param("src", DType.F32)
        out = b.buffer_param("out", DType.F32)
        gid = b.global_id(0)
        b.store(out, gid, b.load(src, gid))
        k = b.finish()
        sb = dev.alloc("src", np.ones(4096, dtype=np.float32))
        ob = dev.alloc_zeros("out", 4096, np.float32)
        r1 = dev.launch(k, 4096, 64, {"src": sb, "out": ob})
        r2 = dev.launch(k, 4096, 64, {"src": sb, "out": ob})
        # Second pass re-reads the same data: strictly more cache hits.
        assert r2.cycles <= r1.cycles

    def test_out_of_bounds_raises_without_fault_mode(self):
        dev = Device()
        ob = dev.alloc_zeros("out", 64, np.uint32)
        with pytest.raises(IndexError):
            dev.launch(_store_kernel(10), 64, 64, {"out": ob})

    def test_out_of_bounds_wraps_under_fault_mode(self):
        dev = Device()
        ob = dev.alloc_zeros("out", 64, np.uint32)
        hook_calls = []

        def hook(wave, instr):
            hook_calls.append(1)

        res = dev.launch(_store_kernel(10), 64, 64, {"out": ob}, fault_hook=hook)
        assert res.cycles > 0
        out = dev.read_buffer(ob)
        # Wrapped stores landed *somewhere* inside the buffer.
        assert out.any()
        assert hook_calls
