"""Tests for the launch-sequence windowing of BitS and FW (DESIGN.md §6)."""

import numpy as np
import pytest

from repro.kernels.bitonic_sort import BitonicSort
from repro.kernels.floyd_warshall import FloydWarshall


class TestBitonicWindow:
    def test_window_still_fully_sorts(self):
        bench = BitonicSort(n=1024, local_size=64, start_stage=8)
        res = bench.execute("original")
        np.testing.assert_array_equal(res.outputs["arr"], np.sort(bench.data))

    def test_host_prefix_matches_device_prefix(self):
        """Host-applied stages produce the same state the device would."""
        full = BitonicSort(n=512, local_size=64, start_stage=1)
        full_res = full.execute("original")
        windowed = BitonicSort(n=512, local_size=64, start_stage=5)
        win_res = windowed.execute("original")
        np.testing.assert_array_equal(
            win_res.outputs["arr"], full_res.outputs["arr"]
        )

    def test_window_reduces_launches(self):
        full = BitonicSort(n=1024, local_size=64).execute("original")
        win = BitonicSort(n=1024, local_size=64, start_stage=9).execute("original")
        assert len(win.launches) < len(full.launches)

    def test_window_rmt_variants_still_verify(self):
        for variant in ("intra+lds", "inter"):
            bench = BitonicSort(n=1024, local_size=64, start_stage=9)
            res = bench.execute(variant)
            assert bench.check(res)
            assert not res.detections


class TestFloydWarshallWindow:
    def test_window_matches_prefix_reference(self):
        bench = FloydWarshall(n=32, local_size=64, k_iters=8)
        res = bench.execute("original")
        assert bench.check(res)
        assert len(res.launches) == 8

    def test_full_run_is_default(self):
        bench = FloydWarshall(n=16, local_size=64)
        res = bench.execute("original")
        assert len(res.launches) == 16
        # Full relaxation: result is the true all-pairs shortest paths.
        d = res.outputs["dist"].reshape(16, 16).astype(np.int64)
        for k in range(16):
            assert (d <= d[:, k:k + 1] + d[k:k + 1, :]).all()

    def test_window_rmt_equivalence(self):
        expect = FloydWarshall(n=32, local_size=64, k_iters=8).execute("original")
        got = FloydWarshall(n=32, local_size=64, k_iters=8).execute("intra-lds")
        np.testing.assert_array_equal(
            got.outputs["dist"], expect.outputs["dist"]
        )
