"""Unit tests for the schedule-space model checker (repro.mc)."""

import json

import pytest

from repro.gpu.schedule import OpInfo
from repro.mc import main as mc_main
from repro.mc.controlled import ReplayDivergence, Turn
from repro.mc.explore import (
    classify_outcome,
    compile_workload,
    explore,
    minimize_witness,
    run_schedule,
)
from repro.mc.hb import compute_clocks, find_races
from repro.mc.selftest import (
    SabotagedInterPass,
    plant_liveness_bug,
    plant_race_bug,
    run_selftest,
)
from repro.mc.witness import load_schedule, replay, write_reproducer
from repro.mc.workloads import WORKLOADS, get_workload


# ---------------------------------------------------------------------------
# Controlled scheduler
# ---------------------------------------------------------------------------


def test_default_prefix_runs_clean():
    wl = get_workload("handshake1")
    out = run_schedule(wl)
    assert out.deadlock is None and out.sim_error is None
    assert out.check_failure is None
    assert out.detections == 0
    assert len(out.turns) > 4
    # Decision points are 1:1 with turns, and enabled sets are recorded.
    assert all(t.wave in t.enabled for t in out.turns)


def test_replay_divergence_on_bogus_choice():
    wl = get_workload("handshake1")
    with pytest.raises(ReplayDivergence):
        run_schedule(wl, [(7, 7)])


def test_consumer_ahead_parks_in_spin():
    """Driving the consumer first forces it to poll an unpublished slot
    flag; the second identical read must park it (spin turn recorded),
    and the producer's publish must unpark it to completion."""
    wl = get_workload("handshake1")
    out = run_schedule(wl, [(1, 0)] * 6)
    assert any(t.spin for t in out.turns)
    assert out.deadlock is None
    assert out.check_failure is None


# ---------------------------------------------------------------------------
# Happens-before tracker (synthetic traces)
# ---------------------------------------------------------------------------


def _turn(i, wave, enabled, op):
    t = Turn(i, wave, tuple(enabled))
    t.op = op
    return t


def test_unsynchronized_conflict_is_a_race():
    a, b = (0, 0), (1, 0)
    turns = [
        _turn(0, a, [a, b], OpInfo("store", "buf", (3,), True, False)),
        _turn(1, b, [a, b], OpInfo("load", "buf", (3,), False, False)),
    ]
    clocks = compute_clocks(turns, waves_per_group=1)
    races = find_races(turns, clocks)
    assert len(races) == 1
    assert races[0].buf == "buf" and races[0].addrs == (3,)


def test_atomic_handshake_orders_the_pair():
    """store(a) ; release-atomic(a, flag) ... acquire-atomic(b, flag) ;
    load(b) — the same-address atomic chain must order store vs load."""
    a, b = (0, 0), (1, 0)
    turns = [
        _turn(0, a, [a, b], OpInfo("store", "buf", (3,), True, False)),
        _turn(1, a, [a, b], OpInfo("atomic", "flag", (0,), True, True)),
        _turn(2, b, [a, b], OpInfo("atomic", "flag", (0,), False, True)),
        _turn(3, b, [a, b], OpInfo("load", "buf", (3,), False, False)),
    ]
    clocks = compute_clocks(turns, waves_per_group=1)
    assert find_races(turns, clocks) == []
    assert clocks.ordered(0, 3)
    # The atomic pair itself is NOT pre-ordered: its reversal is exactly
    # what DPOR must explore (C_pre judgement).
    assert not clocks.ordered(1, 2)


def test_disjoint_addresses_do_not_conflict():
    a, b = (0, 0), (1, 0)
    turns = [
        _turn(0, a, [a, b], OpInfo("store", "buf", (1,), True, False)),
        _turn(1, b, [a, b], OpInfo("store", "buf", (2,), True, False)),
    ]
    clocks = compute_clocks(turns, waves_per_group=1)
    assert find_races(turns, clocks) == []


# ---------------------------------------------------------------------------
# DPOR sweep
# ---------------------------------------------------------------------------


def test_sweep_explores_and_prunes():
    rep = explore(get_workload("handshake1"), max_schedules=64)
    assert not rep.truncated
    assert rep.explored > 1, "DPOR found no alternative schedules"
    assert rep.pruned > 0, "DPOR pruned nothing; reduction is inert"
    assert rep.hb_pruned > 0
    assert rep.violations == []


def test_sweep_respects_bound():
    rep = explore(get_workload("handshake2"), max_schedules=5)
    assert rep.explored == 5
    assert rep.truncated


# ---------------------------------------------------------------------------
# Planted bugs and the selftest
# ---------------------------------------------------------------------------


def test_liveness_bug_deadlocks():
    wl = get_workload("handshake1")
    sab = SabotagedInterPass("liveness", plant_liveness_bug)
    out = run_schedule(wl, rmt_pass=sab)
    assert out.deadlock is not None
    v = classify_outcome(wl, out)
    assert [x.kind for x in v] == ["deadlock"]


def test_race_bug_is_flagged():
    wl = get_workload("handshake1")
    sab = SabotagedInterPass("race", plant_race_bug)
    out = run_schedule(wl, rmt_pass=sab)
    kinds = {x.kind for x in classify_outcome(wl, out)}
    assert "race" in kinds


def test_selftest_catches_both_planted_bugs():
    result = run_selftest(max_schedules=32)
    assert result.ok, json.dumps(result.to_dict(), indent=2)
    by_label = {leg.label: leg for leg in result.legs}
    assert by_label["lock-liveness"].caught
    assert by_label["comm-race"].caught
    assert by_label["clean-control"].caught


def test_minimized_witness_still_violates():
    wl = get_workload("handshake1")
    sab = SabotagedInterPass("liveness", plant_liveness_bug)
    compiled = compile_workload(wl, sab)
    out = run_schedule(wl, compiled=compiled)
    assert out.deadlock is not None
    witness = minimize_witness(wl, out.choices, "deadlock",
                               compiled=compiled)
    assert len(witness) <= len(out.choices)
    replayed = run_schedule(wl, witness, compiled=compiled)
    assert replayed.deadlock is not None


# ---------------------------------------------------------------------------
# Witness serialization and CLI
# ---------------------------------------------------------------------------


def test_witness_roundtrip(tmp_path):
    path = write_reproducer(tmp_path / "w.py", "handshake1",
                            [(1, 0), (0, 0)], None, "round-trip check")
    workload, choices, kind = load_schedule(path)
    assert workload == "handshake1"
    assert choices == [(1, 0), (0, 0)]
    assert kind is None
    assert replay(workload, choices) == 0


def test_cli_sweep_writes_report(tmp_path, capsys):
    out = tmp_path / "report.json"
    status = mc_main(["--workloads", "handshake1",
                      "--max-schedules", "16", "--out", str(out)])
    assert status == 0
    doc = json.loads(out.read_text())
    assert doc["ok"] is True
    assert doc["violations"] == []
    (rep,) = doc["reports"]
    assert rep["workload"] == "handshake1"
    assert rep["explored"] > 1
    assert rep["pruned"] > 0


def test_cli_json_mode_emits_one_document(capsys):
    status = mc_main(["--workloads", "handshake1",
                      "--max-schedules", "8", "--json"])
    assert status == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is True


def test_cli_rejects_unknown_workload(capsys):
    assert mc_main(["--workloads", "nope"]) == 2


def test_cli_replays_corpus_entry(tmp_path, capsys):
    path = write_reproducer(tmp_path / "c.py", "lock2",
                            [(1, 0)], None, "cli replay check")
    assert mc_main(["--replay", str(path)]) == 0


def test_all_workloads_default_schedule_clean():
    for name in sorted(WORKLOADS):
        wl = get_workload(name)
        out = run_schedule(wl)
        assert out.check_failure is None, (name, out.check_failure)
        assert out.detections == 0
        assert classify_outcome(wl, out) == [], name
