"""Tests for the CFG/dataflow framework behind the lint suite."""

import pytest

from repro.compiler.analysis.dataflow import (
    barrier_free_path,
    barrier_intervals,
    build_cfg,
    compute_dominators,
    definite_assignment,
    dominates,
    liveness,
    reaching_definitions,
)
from repro.ir import DType, KernelBuilder
from repro.ir.core import LoadLocal, StoreGlobal, StoreLocal, walk_instrs


def _straightline():
    b = KernelBuilder("straight")
    out = b.buffer_param("out", DType.U32)
    gid = b.global_id(0)
    x = b.add(gid, 1)
    b.store(out, gid, x)
    return b.finish(), gid, x


def _diamond():
    b = KernelBuilder("diamond")
    out = b.buffer_param("out", DType.U32)
    gid = b.global_id(0)
    cond = b.lt(gid, 4)
    v = b.var(DType.U32, 0)
    with b.if_else(cond) as orelse:
        b.set(v, 1)
        with orelse():
            b.set(v, 2)
    b.store(out, gid, v)
    return b.finish(), v


def _loop_kernel():
    b = KernelBuilder("looped")
    out = b.buffer_param("out", DType.U32)
    gid = b.global_id(0)
    i = b.var(DType.U32, 0)
    with b.loop() as lp:
        lp.break_unless(b.lt(i, 8))
        b.set(i, b.add(i, 1))
    b.store(out, gid, i)
    return b.finish(), i


class TestCfg:
    def test_straightline_single_path(self):
        k, _gid, _x = _straightline()
        cfg = build_cfg(k)
        instrs = list(cfg.iter_instrs())
        assert len(instrs) == len(k.body)
        # entry reaches exit
        assert cfg.entry != cfg.exit

    def test_if_produces_branch_and_join(self):
        k, _v = _diamond()
        cfg = build_cfg(k)
        branch_blocks = [blk for blk in cfg.blocks if len(blk.succs) == 2]
        join_blocks = [blk for blk in cfg.blocks if len(blk.preds) == 2]
        assert branch_blocks and join_blocks

    def test_while_produces_back_edge(self):
        k, _i = _loop_kernel()
        cfg = build_cfg(k)
        rpo_pos = {bid: n for n, bid in enumerate(cfg.rpo())}
        back_edges = [
            (blk.bid, s)
            for blk in cfg.blocks
            for s in blk.succs
            if rpo_pos.get(s, 0) <= rpo_pos.get(blk.bid, 0)
        ]
        assert back_edges

    def test_locs_render_structured_paths(self):
        k, _v = _diamond()
        cfg = build_cfg(k)
        rendered = {str(loc) for _bid, _instr, loc in cfg.iter_instrs()}
        assert any(".then" in r for r in rendered)
        assert any(".else" in r for r in rendered)


class TestDominators:
    def test_entry_dominates_everything(self):
        k, _v = _diamond()
        cfg = build_cfg(k)
        dom = compute_dominators(cfg)
        for blk in cfg.blocks:
            assert dominates(dom, cfg.entry, blk.bid)

    def test_branch_arm_does_not_dominate_join(self):
        k, _v = _diamond()
        cfg = build_cfg(k)
        dom = compute_dominators(cfg)
        join = next(blk.bid for blk in cfg.blocks if len(blk.preds) == 2)
        for pred in cfg.blocks[join].preds:
            if pred != cfg.entry:
                assert not dominates(dom, pred, join) or len(
                    cfg.blocks[join].preds
                ) == 1


class TestReachingDefs:
    def test_both_arm_defs_reach_join_use(self):
        k, v = _diamond()
        cfg = build_cfg(k)
        rd = reaching_definitions(cfg)
        store = k.body[-1]
        sites = rd.reaching(store, v)
        # Both arms assign, killing the initializer on every path.
        assert len(sites) == 2
        assert {s.block for s in sites} != {cfg.entry}

    def test_straightline_single_def(self):
        k, _gid, x = _straightline()
        cfg = build_cfg(k)
        rd = reaching_definitions(cfg)
        store = k.body[-1]
        assert len(rd.reaching(store, x)) == 1


class TestLiveness:
    def _branch_use(self):
        b = KernelBuilder("live")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        x = b.add(gid, 1)
        with b.if_(b.lt(gid, 4)):
            b.store(out, gid, x)
        k = b.finish()
        cfg = build_cfg(k)
        store = next(
            i for i in walk_instrs(k.body) if isinstance(i, StoreGlobal)
        )
        store_bid = next(
            blk.bid
            for blk in cfg.blocks
            if any(instr is store for instr, _loc in blk.instrs)
        )
        return cfg, x, store_bid

    def test_value_live_across_branch(self):
        cfg, x, _store_bid = self._branch_use()
        lv = liveness(cfg)
        assert x in lv.regs_out(cfg.entry)

    def test_dead_after_last_use(self):
        cfg, x, store_bid = self._branch_use()
        lv = liveness(cfg)
        assert x not in lv.regs_out(store_bid)

    def test_loop_carried_value_live_around_back_edge(self):
        k, i = _loop_kernel()
        cfg = build_cfg(k)
        lv = liveness(cfg)
        assert lv.max_live() >= 1


class TestDefiniteAssignment:
    def test_both_arms_definite(self):
        k, _v = _diamond()
        cfg = build_cfg(k)
        da = definite_assignment(cfg)
        assert not da.violations

    def test_one_arm_not_definite(self):
        b = KernelBuilder("halfdef")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        cond = b.lt(gid, 4)
        holder = {}
        with b.if_(cond):
            holder["v"] = b.add(gid, 1)
        b.store(out, gid, holder["v"])
        k = b.finish()
        cfg = build_cfg(k)
        da = definite_assignment(cfg)
        assert any(reg is holder["v"] for _i, reg, _l in da.violations)

    def test_zero_trip_loop_def_not_definite(self):
        b = KernelBuilder("zerotrip")
        out = b.buffer_param("out", DType.U32)
        gid = b.global_id(0)
        i = b.var(DType.U32, 0)
        holder = {}
        with b.loop() as lp:
            lp.break_unless(b.lt(i, 8))
            holder["v"] = b.add(i, 3)
            b.set(i, b.add(i, 1))
        b.store(out, gid, holder["v"])
        k = b.finish()
        da = definite_assignment(build_cfg(k))
        assert any(reg is holder["v"] for _i, reg, _l in da.violations)


class TestBarrierIntervals:
    def _barriered(self):
        b = KernelBuilder("sync")
        lds = b.local_alloc("buf", DType.U32, 64)
        lid = b.local_id(0)
        b.store_local(lds, lid, lid)
        b.barrier()
        b.load_local(lds, b.const(0, DType.U32))
        k = b.finish()
        store_i = next(i for i in walk_instrs(k.body) if isinstance(i, StoreLocal))
        load_i = next(i for i in walk_instrs(k.body) if isinstance(i, LoadLocal))
        return k, store_i, load_i

    def test_barrier_separates(self):
        k, store_i, load_i = self._barriered()
        iv = barrier_intervals(build_cfg(k))
        assert not iv.may_share_interval(store_i, load_i)

    def test_same_interval_shares(self):
        k, store_i, _load = self._barriered()
        iv = barrier_intervals(build_cfg(k))
        assert iv.may_share_interval(store_i, store_i)

    def test_barrier_free_path_direct(self):
        k, store_i, load_i = self._barriered()
        cfg = build_cfg(k)
        assert not barrier_free_path(cfg, store_i, load_i)
        assert not barrier_free_path(cfg, load_i, store_i)

    def test_loop_trailing_barrier_separates_epilogue(self):
        """A loop-body store followed by the loop's barrier can never
        share an interval with a post-loop read — the reduction shape."""
        b = KernelBuilder("tree")
        lds = b.local_alloc("buf", DType.U32, 64)
        lid = b.local_id(0)
        stride = b.var(DType.U32, 32, hint="stride")
        with b.loop() as lp:
            lp.break_unless(b.gt(stride, 0))
            with b.if_(b.lt(lid, stride)):
                b.store_local(lds, lid, lid)
            b.barrier()
            b.set(stride, b.shr(stride, 1))
        b.load_local(lds, b.const(0, DType.U32))
        k = b.finish()
        cfg = build_cfg(k)
        store_i = next(i for i in walk_instrs(k.body) if isinstance(i, StoreLocal))
        load_i = next(i for i in walk_instrs(k.body) if isinstance(i, LoadLocal))
        assert not barrier_free_path(cfg, store_i, load_i)
        assert not barrier_free_path(cfg, load_i, store_i)
        # ... while the in-loop loads DO share an interval with the store.
        assert barrier_free_path(cfg, store_i, store_i)
