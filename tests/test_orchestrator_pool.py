"""Pool semantics: sharding, retry, timeout, crash quarantine, streaming."""

import os
import time

import pytest

from repro.orchestrator import (
    STATUS_CRASH,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    Telemetry,
    fork_available,
    run_tasks,
)

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="requires fork start method")


def square(x):
    return x * x


class TestSerial:
    def test_results_complete(self):
        r = run_tasks([(i, i) for i in range(6)], square, workers=1)
        assert sorted(r) == list(range(6))
        assert all(r[i].ok and r[i].value == i * i for i in range(6))

    def test_duplicate_task_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate task id"):
            run_tasks([("a", 1), ("a", 2)], square, workers=1)

    def test_error_retried_then_reported(self):
        calls = []

        def flaky(x):
            calls.append(x)
            raise RuntimeError("boom")

        r = run_tasks([("t", 1)], flaky, workers=1, max_retries=2)
        assert r["t"].status == STATUS_ERROR
        assert r["t"].attempts == 3
        assert "boom" in r["t"].error
        assert len(calls) == 3

    def test_retry_can_succeed(self):
        state = {"n": 0}

        def flaky(x):
            state["n"] += 1
            if state["n"] < 2:
                raise RuntimeError("transient")
            return x

        r = run_tasks([("t", 5)], flaky, workers=1, max_retries=2)
        assert r["t"].ok and r["t"].value == 5 and r["t"].attempts == 2

    def test_on_result_streams_every_task(self):
        got = []
        run_tasks([(i, i) for i in range(4)], square, workers=1,
                  on_result=lambda tr: got.append(tr.task_id))
        assert sorted(got) == [0, 1, 2, 3]


@needs_fork
class TestPool:
    def test_matches_serial(self):
        serial = run_tasks([(i, i) for i in range(8)], square, workers=1)
        pooled = run_tasks([(i, i) for i in range(8)], square, workers=3)
        assert {k: v.value for k, v in serial.items()} == \
               {k: v.value for k, v in pooled.items()}

    def test_closure_payloads_cross_fork(self):
        offset = 1000  # captured by the closure, never pickled
        r = run_tasks([(i, i) for i in range(4)], lambda x: x + offset,
                      workers=2)
        assert all(r[i].value == i + 1000 for i in range(4))

    def test_worker_exception_becomes_error_result(self):
        def boom(x):
            raise ValueError(f"bad {x}")

        r = run_tasks([("a", 1)], boom, workers=2, max_retries=0)
        assert r["a"].status == STATUS_ERROR and "bad 1" in r["a"].error

    def test_worker_crash_quarantined_others_survive(self):
        def work(x):
            if x == "die":
                os._exit(9)
            return x

        tel = Telemetry()
        r = run_tasks([("a", "die"), ("b", "fine"), ("c", "also")],
                      work, workers=2, max_retries=1, telemetry=tel)
        assert r["a"].status == STATUS_CRASH
        assert r["a"].attempts == 2          # initial + one retry
        assert r["b"].ok and r["b"].value == "fine"
        assert r["c"].ok
        assert tel.quarantined == 1
        assert any(e.kind == "quarantine" for e in tel.events)

    def test_timeout_kills_and_records(self):
        def work(x):
            if x == 0:
                time.sleep(60)
            return x

        t0 = time.monotonic()
        r = run_tasks([(0, 0), (1, 1)], work, workers=2,
                      timeout_s=0.5, max_retries=0)
        assert time.monotonic() - t0 < 30
        assert r[0].status == STATUS_TIMEOUT
        assert "deadline" in r[0].error
        assert r[1].ok

    def test_telemetry_counts_and_throughput(self):
        tel = Telemetry(label="pool")
        tel.start(5)
        run_tasks([(i, i) for i in range(5)], square, workers=2,
                  telemetry=tel)
        tel.finish()
        assert tel.completed == 5
        summary = tel.summary()
        assert summary["completed"] == 5
        assert summary["throughput_per_s"] > 0
        kinds = {e.kind for e in tel.events}
        assert {"start", "assign", "done", "finish"} <= kinds

    def test_more_tasks_than_workers(self):
        r = run_tasks([(i, i) for i in range(20)], square, workers=3)
        assert len(r) == 20 and all(tr.ok for tr in r.values())

    def test_statuses_and_shards_recorded(self):
        r = run_tasks([(i, i) for i in range(6)], square, workers=2)
        assert all(tr.status == STATUS_OK for tr in r.values())
        assert all(tr.shard in (0, 1) for tr in r.values())
        assert all(tr.duration_s >= 0 for tr in r.values())


def sleepy(x):
    if x > 1:
        time.sleep(30)
    return x


class TestShutdownAndCancellation:
    """Regression: interrupted runs must reap workers, not leak them."""

    def test_should_stop_serial_returns_partial(self):
        polls = {"n": 0}

        def stop_after_three():
            polls["n"] += 1
            return polls["n"] > 3

        r = run_tasks([(i, i) for i in range(10)], square, workers=1,
                      should_stop=stop_after_three)
        assert 0 < len(r) < 10
        assert all(tr.ok for tr in r.values())

    @needs_fork
    def test_should_stop_pool_checkpoints_and_reaps(self):
        import multiprocessing

        stop = {"go": False}

        def work(x):
            time.sleep(0.05)
            return x

        def should_stop():
            return stop["go"]

        def flip(_ev):
            stop["go"] = True

        tel = Telemetry(on_event=flip)   # first event flips the stop flag
        t0 = time.monotonic()
        r = run_tasks([(i, i) for i in range(100)], work, workers=2,
                      telemetry=tel, should_stop=should_stop)
        assert time.monotonic() - t0 < 20
        # In-flight tasks finished, undispatched ones were abandoned.
        assert 0 < len(r) < 100
        for _ in range(100):
            if not multiprocessing.active_children():
                break
            time.sleep(0.05)
        assert not multiprocessing.active_children()

    @needs_fork
    def test_interrupt_in_parent_loop_reaps_workers(self):
        """A ^C while workers are mid-task must not leave zombies."""
        import multiprocessing

        def boom(ev):
            if ev.kind == "done":
                raise KeyboardInterrupt

        tel = Telemetry(on_event=boom)
        t0 = time.monotonic()
        with pytest.raises(KeyboardInterrupt):
            run_tasks([(i, i) for i in range(8)], sleepy, workers=2,
                      telemetry=tel)
        # Abnormal shutdown terminates the sleepers instead of waiting
        # out their 30s naps.
        assert time.monotonic() - t0 < 20
        for _ in range(100):
            if not multiprocessing.active_children():
                break
            time.sleep(0.05)
        assert not multiprocessing.active_children()

    @needs_fork
    def test_graceful_completion_leaves_no_children(self):
        import multiprocessing

        r = run_tasks([(i, i) for i in range(10)], square, workers=3)
        assert len(r) == 10
        for _ in range(100):
            if not multiprocessing.active_children():
                break
            time.sleep(0.05)
        assert not multiprocessing.active_children()
