"""Tests for the lint/tv command-line front ends and the shared
deterministic diagnostic serialization."""

import json

import pytest

from repro.compiler.lint import Diagnostic, normalize_diagnostics
from repro.lint import main as lint_main
from repro.tv import main as tv_main


class TestNormalization:
    def _diags(self):
        return [
            Diagnostic("undef", "error", "k", "body[3]", "zzz"),
            Diagnostic("lds-race", "warning", "k", "body[1]", "aaa"),
            Diagnostic("undef", "error", "k", "body[3]", "zzz"),  # dup
            Diagnostic("undef", "error", "k", "body[1]", "mmm"),
        ]

    def test_sorted_and_deduped(self):
        out = normalize_diagnostics(self._diags())
        assert [(d.checker, d.loc, d.message) for d in out] == [
            ("lds-race", "body[1]", "aaa"),
            ("undef", "body[1]", "mmm"),
            ("undef", "body[3]", "zzz"),
        ]

    def test_order_independent_of_input(self):
        a = normalize_diagnostics(self._diags())
        b = normalize_diagnostics(list(reversed(self._diags())))
        assert a == b

    def test_to_json_round_trip(self):
        d = Diagnostic("oob", "warning", "k", "body[2].then[0]", "msg")
        doc = d.to_json()
        assert doc == {
            "checker": "oob", "severity": "warning", "kernel": "k",
            "loc": "body[2].then[0]", "message": "msg",
        }
        assert json.dumps(doc)  # JSON-serializable as-is


class TestLintCli:
    def test_clean_subset_exits_zero(self, capsys):
        rc = lint_main(["--kernels", "R", "--variants", "original", "-q"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 error(s)" in out

    def test_json_document(self, capsys):
        rc = lint_main(["--kernels", "R,FWT", "--variants",
                        "original,intra+lds", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["ok"] is True
        assert doc["summary"]["total"] == 4
        assert {r["target"] for r in doc["results"]} == {
            "R/original", "R/intra+lds", "FWT/original", "FWT/intra+lds"}
        for row in doc["results"]:
            assert row["ok"] is True
            assert row["diagnostics"] == []

    def test_unknown_variant_exits_two(self, capsys):
        assert lint_main(["--variants", "bogus"]) == 2

    def test_unknown_checker_exits_two(self, capsys):
        assert lint_main(["--checkers", "bogus"]) == 2


class TestTvCli:
    def test_certifies_subset(self, capsys):
        rc = tv_main(["--kernels", "R", "--variants", "original,intra+lds",
                      "--opt", "1", "-q"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "certified 2/2" in out

    def test_json_document(self, capsys):
        rc = tv_main(["--kernels", "R", "--variants", "intra+lds",
                      "--opt", "0", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["ok"] is True
        assert doc["summary"] == {
            "total": 1, "certified": 1, "failed": 0, "unproven": 0,
            "compile_failures": 0}
        row = doc["results"][0]
        assert row["target"] == "R/intra+lds@O0"
        assert row["mode"] == "intra"
        assert row["witnesses"] == []
        # Same serializer family as repro.lint: obligations are a name
        # -> status map, witnesses mirror Diagnostic.to_json keys.
        assert all(v in ("proved", "skipped")
                   for v in row["obligations"].values())

    def test_unknown_variant_exits_two(self, capsys):
        assert tv_main(["--variants", "bogus"]) == 2

    def test_bad_opt_exits_two(self, capsys):
        assert tv_main(["--opt", "3"]) == 2

    def test_selftest_static_only(self, capsys):
        rc = tv_main(["--selftest", "--no-dynamic"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "5/5 planted bugs statically rejected" in out

    def test_selftest_json(self, capsys):
        rc = tv_main(["--selftest", "--no-dynamic", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["ok"] is True
        assert {c["case"] for c in doc["selftest"]} == {
            "off-by-one", "skip-compare", "drop-replica", "cry-wolf",
            "spin-forever"}
        assert all(c["rejected"] and c["obligation_hit"]
                   for c in doc["selftest"])
