#!/usr/bin/env python
"""Benchmark the campaign orchestrator: serial vs. sharded execution.

Runs one 64-trial SEU campaign twice — ``workers=1`` and ``workers=4``
(override with ``--workers``) — and verifies the two produce the *same*
outcome histogram and per-trial records while the sharded run finishes
faster.  On a machine with >= 4 free cores the speedup is >= 2x; the
script reports whatever the hardware delivers (a single-core container
will honestly show ~1x: the work is CPU-bound simulation).

Also demonstrates journal checkpoint/resume: the sharded run writes a
JSONL journal, the script truncates it to a prefix (simulating a kill
mid-campaign), and a resumed run reproduces the uninterrupted histogram
exactly while re-running only the missing trials.

Run:  python examples/parallel_campaign_benchmark.py [--trials 64] [--workers 4]
"""

import argparse
import os
import tempfile
import time

from repro.faults import run_campaign
from repro.kernels import SMALL_SUITE
from repro.orchestrator import read_journal


def timed_campaign(workers, **kw):
    t0 = time.perf_counter()
    result = run_campaign(SMALL_SUITE["FWT"], "intra+lds", "vgpr",
                          workers=workers, **kw)
    return result, time.perf_counter() - t0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=64)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()
    kw = dict(trials=args.trials, seed=args.seed, max_instr=24)

    print(f"campaign: FWT/intra+lds/vgpr, {args.trials} trials")
    serial, t_serial = timed_campaign(1, **kw)
    print(f"  workers=1:              {t_serial:6.1f}s   {serial.summary()}")
    sharded, t_sharded = timed_campaign(args.workers, **kw)
    print(f"  workers={args.workers}:              {t_sharded:6.1f}s   "
          f"{sharded.summary()}")

    assert serial.outcomes == sharded.outcomes, "histograms must be identical"
    assert [r.to_json() for r in serial.records] == \
           [r.to_json() for r in sharded.records], "records must be identical"
    speedup = t_serial / t_sharded if t_sharded else float("inf")
    cores = os.cpu_count() or 1
    print(f"  speedup: {speedup:.2f}x on {cores} cores "
          f"(histograms bit-identical)")
    if cores >= args.workers and speedup < 2.0:
        print("  note: expected >= 2x with free cores; machine may be loaded")

    # -- journal resume after a simulated mid-campaign kill ---------------
    with tempfile.TemporaryDirectory() as tmp:
        journal = os.path.join(tmp, "campaign.jsonl")
        run_campaign(SMALL_SUITE["FWT"], "intra+lds", "vgpr",
                     workers=args.workers, journal=journal, **kw)
        lines = open(journal).read().splitlines()
        keep = args.trials // 4
        trial_lines = [l for l in lines if '"kind":"trial"' in l]
        with open(journal, "w") as fh:
            fh.write("\n".join([lines[0]] + trial_lines[:keep]) + "\n")
        t0 = time.perf_counter()
        resumed = run_campaign(SMALL_SUITE["FWT"], "intra+lds", "vgpr",
                               workers=args.workers, journal=journal,
                               resume=True, **kw)
        t_resume = time.perf_counter() - t0
        _, entries = read_journal(journal)
        indices = sorted(e["index"] for e in entries if e["kind"] == "trial")
        assert indices == list(range(args.trials)), "no gaps, no duplicates"
        assert resumed.outcomes == serial.outcomes, "resume must reproduce"
        print(f"  resume: killed after {keep} trials; resumed run finished "
              f"the remaining {args.trials - keep} in {t_resume:.1f}s and "
              f"reproduced the histogram exactly")


if __name__ == "__main__":
    main()
