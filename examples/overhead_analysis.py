#!/usr/bin/env python
"""Overhead anatomy: where RMT's cost comes from, kernel by kernel.

Reproduces the paper's Section 6.4 methodology on a subset of the suite:
run the original kernel, the original with RMT-sized occupancy
("reserving space for redundant computation"), RMT without output
comparison, and full RMT — the successive deltas are the Figure 4
components (work-group doubling, redundant computation, communication).

Run:  python examples/overhead_analysis.py [--scale small] [--kernels FWT,R,MM,PS]
"""

import argparse

from repro.eval.harness import Harness


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=["small", "paper"])
    parser.add_argument("--kernels", default="FWT,R,MM,PS")
    parser.add_argument("--flavor", default="intra+lds",
                        choices=["intra+lds", "intra-lds", "inter"])
    args = parser.parse_args()

    harness = Harness(scale=args.scale)
    flavor = args.flavor
    print(f"component breakdown for {flavor} ({args.scale} scale), "
          "as fraction of original runtime:\n")
    header = (f"{'kernel':7s} {'doubling':>9s} {'redundant':>10s} "
              f"{'comm':>7s} {'total':>7s}")
    print(header)
    print("-" * len(header))
    for abbrev in args.kernels.split(","):
        abbrev = abbrev.strip()
        base = harness.run(abbrev, "original").cycles
        capped = harness.run(abbrev, "original", capped_from=flavor).cycles
        nocomm = harness.run(abbrev, flavor, communication=False).cycles
        full = harness.run(abbrev, flavor).cycles
        print(f"{abbrev:7s} {(capped - base) / base:9.1%} "
              f"{(nocomm - capped) / base:10.1%} "
              f"{(full - nocomm) / base:7.1%} "
              f"{(full - base) / base:7.1%}")
    print(
        "\nnegative entries are accidental speed-ups (reduced divergence or "
        "contention), a real phenomenon the paper discusses for SC."
    )


if __name__ == "__main__":
    main()
