#!/usr/bin/env python
"""Static vulnerability predictions vs measured fault outcomes, and the
coverage-vs-overhead frontier selective RMT opens up.

Two experiments over one benchmark:

1. **Validation** — run a fixed-seed fault campaign on the unprotected
   kernel, join each fired trial to the static priority bucket of the
   register it flipped, and report per-bucket SDC rates plus the
   Spearman rank correlation (the ACE/AVF analysis predicts outcomes
   iff higher buckets corrupt more often).

2. **Frontier** — compile selective builds covering 25/50/75/100% of
   the exit priority mass, measure fault coverage
   ``detected / (detected + sdc)`` and cycle overhead vs the original,
   and print them beside the paper's all-or-nothing variants
   (intra+lds / intra-lds / inter).  The paper's Figure 2 trades the
   whole sphere of replication at once; selective RMT samples the
   interior of that trade-off.

Run:  python examples/vuln_validation.py [--benchmark FWT] [--trials 120]
"""

import argparse

from repro.compiler.pipeline import compile_kernel
from repro.compiler.passes.rmt_selective import (
    SelectiveOptions,
    SelectiveRmtPass,
)
from repro.faults import draw_plans, execute_trial, validate_predictions
from repro.kernels.suite import make_benchmark
from repro.runtime import Session

STOCK_VARIANTS = ("intra+lds", "intra-lds", "inter")
FRACTIONS = (0.25, 0.5, 0.75, 1.0)


def fault_stats(bench, compiled, trials, seed, max_instr, cycle_budget):
    """(coverage, detected, sdc) for vgpr faults on one compiled build."""
    reference = bench.reference()
    detected = sdc = 0
    for plan in draw_plans(seed, trials, "vgpr", max_instr=max_instr):
        outcome = execute_trial(bench, compiled, plan,
                                cycle_budget=cycle_budget,
                                reference=reference).outcome
        detected += outcome == "detected"
        sdc += outcome == "sdc"
    exposed = detected + sdc
    return (detected / exposed if exposed else None), detected, sdc


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="FWT")
    parser.add_argument("--scale", default="small",
                        choices=["small", "paper"])
    parser.add_argument("--trials", type=int, default=120,
                        help="validation trials per target (default: 120)")
    parser.add_argument("--frontier-trials", type=int, default=32,
                        help="fault trials per frontier point (default: 32)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--max-instr", type=int, default=40)
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args()

    # -- 1. static predictions vs fault outcomes ------------------------
    print(f"== validation: {args.benchmark} static buckets vs "
          f"injected-fault outcomes ==")
    report = validate_predictions(
        args.benchmark, trials=args.trials, seed=args.seed,
        scale=args.scale, workers=args.workers, max_instr=args.max_instr)
    print(report.summary())
    for b, (rate, n) in sorted(report.sdc_rates.items()):
        print(f"  bucket {b}: SDC rate {rate:5.1%} over {n} fired trials")

    # -- 2. the coverage-vs-overhead frontier ---------------------------
    print(f"\n== frontier: selective priority mass vs the all-or-nothing "
          f"variants ({args.benchmark}) ==")
    bench = make_benchmark(args.benchmark, scale=args.scale)
    base_cycles = bench.run(Session(), bench.compile("original")).cycles

    header = f"{'build':16s} {'coverage':>9s} {'overhead':>9s} " \
             f"{'detected':>9s} {'sdc':>5s}"
    print(header)
    print("-" * len(header))

    def row(label, compiled):
        cycles = bench.run(Session(), compiled).cycles
        # Same watchdog idiom as run_campaign: a fault that corrupts a
        # loop bound must classify as a hang, not stall the experiment.
        budget = 25.0 * max(cycles, 1.0) + 2_000_000
        coverage, detected, sdc = fault_stats(
            bench, compiled, args.frontier_trials, args.seed, args.max_instr,
            budget)
        cov = f"{coverage:9.1%}" if coverage is not None else f"{'n/a':>9s}"
        print(f"{label:16s} {cov} {cycles / base_cycles:8.2f}x "
              f"{detected:9d} {sdc:5d}")

    for frac in FRACTIONS:
        compiled = compile_kernel(
            bench.build(), variant="selective",
            rmt_pass=SelectiveRmtPass(SelectiveOptions(
                source="priority", threshold=frac)))
        row(f"selective@{int(frac * 100)}%", compiled)
    for variant in STOCK_VARIANTS:
        row(variant, bench.compile(variant))

    print("\ncoverage = detected / (detected + sdc) over vgpr fault "
          "trials; masked trials are excluded.\noverhead = unfaulted "
          "cycles vs the original build.")


if __name__ == "__main__":
    main()
