#!/usr/bin/env python
"""Fault-injection campaign: validate the spheres of replication.

Injects random single-event upsets into the vector register file, the
scalar register file, and the LDS while FastWalshTransform and Reduction
run under each RMT flavor, then tabulates masked / detected / SDC
outcomes.  This demonstrates empirically what the paper's Tables 2 and 3
claim structurally:

* VRF upsets are detected under every RMT flavor (inside all SoRs);
* SRF upsets escape Intra-Group RMT (the redundant pair shares the
  scalar unit) but not Inter-Group RMT;
* LDS upsets escape Intra-Group−LDS (shared allocation) but not
  Intra-Group+LDS (duplicated allocation).

Run:  python examples/fault_injection_campaign.py [--trials 16] [--workers 4]

``--workers N`` shards each campaign's trials across N forked worker
processes via ``repro.orchestrator`` — the histograms are bit-identical
to a serial run because every trial draws its fault plan from its own
``SeedSequence`` child stream.
"""

import argparse

from repro.faults import run_campaign
from repro.kernels import SMALL_SUITE


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=16)
    parser.add_argument("--kernels", default="FWT,R")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes per campaign (0 = one per CPU)")
    args = parser.parse_args()
    if args.workers == 0:
        from repro.orchestrator import default_workers
        args.workers = default_workers()

    header = (f"{'kernel':7s} {'variant':11s} {'target':6s} "
              f"{'masked':>7s} {'detected':>9s} {'sdc':>5s} {'hang':>5s}")
    print(header)
    print("-" * len(header))
    for abbrev in args.kernels.split(","):
        factory = SMALL_SUITE[abbrev.strip()]
        for variant in ("original", "intra+lds", "intra-lds", "inter"):
            for target in ("vgpr", "sgpr", "lds"):
                r = run_campaign(
                    factory, variant, target,
                    trials=args.trials, seed=42, max_instr=24,
                    workers=args.workers,
                )
                o = r.outcomes
                flag = ""
                if variant != "original" and target == "vgpr" and o["sdc"]:
                    flag = "  <- check-to-store window"
                print(f"{abbrev:7s} {variant:11s} {target:6s} "
                      f"{o['masked']:7d} {o['detected']:9d} "
                      f"{o['sdc']:5d} {o['hang']:5d}{flag}")
    print(
        "\nreading the table: RMT turns silent corruptions into detections "
        "for in-SoR structures; sgpr rows under intra-group and lds rows "
        "under intra-group−lds stay vulnerable, exactly as Tables 2/3 state."
    )


if __name__ == "__main__":
    main()
