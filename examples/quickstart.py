#!/usr/bin/env python
"""Quickstart: transform a kernel with RMT and run it on the simulator.

Builds a small OpenCL-style kernel in the IR DSL, applies the paper's
Intra-Group+LDS RMT compiler pass, runs original and transformed versions
on the simulated GCN GPU, and prints the runtime overhead, the sphere of
replication, and proof that the redundant version computes identical
results.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.compiler import compile_kernel
from repro.ir import DType, KernelBuilder, format_kernel
from repro.runtime import Session


def build_saxpy():
    """z = a*x + y, one work-item per element."""
    b = KernelBuilder("saxpy")
    x = b.buffer_param("x", DType.F32)
    y = b.buffer_param("y", DType.F32)
    z = b.buffer_param("z", DType.F32)
    a = b.scalar_param("a", DType.F32)
    gid = b.global_id(0)
    b.store(z, gid, b.add(b.mul(a, b.load(x, gid)), b.load(y, gid)))
    kernel = b.finish()
    # The RMT pass needs the work-group shape to size its LDS buffers.
    kernel.metadata["local_size"] = (64, 1, 1)
    return kernel


def run(variant: str, n: int = 8192):
    compiled = compile_kernel(build_saxpy(), variant)
    session = Session()
    rng = np.random.default_rng(1)
    hx = rng.standard_normal(n).astype(np.float32)
    hy = rng.standard_normal(n).astype(np.float32)
    bufs = {
        "x": session.upload("x", hx),
        "y": session.upload("y", hy),
        "z": session.zeros("z", n, np.float32),
    }
    result = session.launch(compiled, n, 64, bufs, scalars={"a": 2.5})
    out = session.download(bufs["z"])
    np.testing.assert_allclose(out, 2.5 * hx + hy, rtol=1e-6)
    return compiled, result


def main():
    print("=== original kernel IR ===")
    print(format_kernel(build_saxpy()))

    compiled_rmt, _ = run("intra+lds")
    print("\n=== after Intra-Group+LDS RMT (excerpt) ===")
    text = format_kernel(compiled_rmt.kernel)
    print("\n".join(text.splitlines()[:28]) + "\n  ...")

    print("\n=== runtime comparison ===")
    base = None
    for variant in ("original", "intra+lds", "intra-lds", "intra+lds_fast", "inter"):
        compiled, result = run(variant)
        base = base or result.cycles
        print(f"{variant:16s} cycles={result.cycles:9.0f} "
              f"slowdown={result.cycles / base:5.2f}x "
              f"VGPRs={compiled.resources.vgprs_per_workitem:3d} "
              f"protected={', '.join(compiled.sor.protected) or '-'}")
    print("\nevery variant verified bit-identical output — redundancy is free "
          "of functional side effects")


if __name__ == "__main__":
    main()
