#!/usr/bin/env python
"""Beyond OpenCL: register-level communication via swizzle (Section 8).

First shows the cross-lane semantics of the GCN ``ds_swizzle``-style
instruction (the paper's Figure 8), then measures how replacing the LDS
communication buffer with register-level exchange changes Intra-Group
RMT overhead for communication-heavy kernels (Figure 9).

Run:  python examples/swizzle_fast_comm.py [--scale small]
"""

import argparse

from repro.eval.experiments import fig8_data
from repro.eval.harness import Harness
from repro.eval.render import format_figure


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=["small", "paper"])
    parser.add_argument("--kernels", default="PS,DWT,R,BO,FWT")
    args = parser.parse_args()

    print(format_figure(fig8_data()))

    harness = Harness(scale=args.scale)
    print(f"\nIntra-Group RMT slowdown, LDS comm vs FAST register comm "
          f"({args.scale} scale):\n")
    header = f"{'kernel':7s} {'+lds':>6s} {'+lds FAST':>10s} {'-lds':>6s} {'-lds FAST':>10s}"
    print(header)
    print("-" * len(header))
    for abbrev in args.kernels.split(","):
        abbrev = abbrev.strip()
        plus = harness.slowdown(abbrev, "intra+lds")
        plus_f = harness.slowdown(abbrev, "intra+lds_fast")
        minus = harness.slowdown(abbrev, "intra-lds")
        minus_f = harness.slowdown(abbrev, "intra-lds_fast")
        print(f"{abbrev:7s} {plus:6.2f} {plus_f:10.2f} {minus:6.2f} {minus_f:10.2f}")
    print(
        "\nFAST removes the LDS round-trips (and the communication buffer's "
        "LDS footprint) at the cost of pack/unpack VALU work — it pays off "
        "exactly where communication dominated."
    )


if __name__ == "__main__":
    main()
