"""Transient-fault injection: SEU models and campaigns."""

from .campaign import (
    DEFAULT_RECORD_CAP,
    OUTCOMES,
    CampaignResult,
    TrialRecord,
    campaign_report,
    classify_trial,
    draw_plans,
    execute_trial,
    run_campaign,
    run_single_fault,
)
from .injector import TARGETS, FaultHook, FaultPlan, InjectionRecord, random_plan
from .validation import (
    ValidationReport,
    bucket_sdc_rates,
    merge_bucket_outcomes,
    spearman,
    validate_predictions,
)

__all__ = [
    "CampaignResult",
    "DEFAULT_RECORD_CAP",
    "FaultHook",
    "FaultPlan",
    "InjectionRecord",
    "OUTCOMES",
    "TARGETS",
    "TrialRecord",
    "ValidationReport",
    "bucket_sdc_rates",
    "campaign_report",
    "classify_trial",
    "draw_plans",
    "execute_trial",
    "merge_bucket_outcomes",
    "random_plan",
    "run_campaign",
    "run_single_fault",
    "spearman",
    "validate_predictions",
]
