"""Transient-fault injection: SEU models and campaigns."""

from .campaign import OUTCOMES, CampaignResult, run_campaign, run_single_fault
from .injector import TARGETS, FaultHook, FaultPlan, InjectionRecord, random_plan

__all__ = [
    "CampaignResult",
    "FaultHook",
    "FaultPlan",
    "InjectionRecord",
    "OUTCOMES",
    "TARGETS",
    "random_plan",
    "run_campaign",
    "run_single_fault",
]
