"""Transient-fault (SEU) injection into simulated GPU state.

The paper argues coverage from the sphere of replication; simulation
lets us *test* it.  An injection plan picks one dynamic point in one
wavefront and flips one bit in a chosen structure:

* ``vgpr`` — one lane of one live vector register (inside every SoR);
* ``sgpr`` — a wavefront-uniform register, flipped across all lanes,
  modelling an SRF upset shared by an Intra-Group redundant pair
  (outside the Intra-Group SoR, inside the Inter-Group SoR);
* ``lds``  — one word of the work-group's LDS (inside the SoR only for
  Intra-Group+LDS and Inter-Group).

Outcomes are classified against the benchmark's oracle: ``masked``
(architecturally invisible), ``detected`` (the RMT output comparison
flagged it), or ``sdc`` (silent data corruption — wrong output, no flag).

Wave identity is the engine-stamped creation ordinal (``wave.ordinal``,
assigned by the timing engine the first time a wavefront is popped from
the event queue — the order the old hook observed first-executed waves
in, so plans target the same victims as before).  The hook therefore
keeps **no** per-wave state: earlier revisions pinned ``id(wave)`` keys
alive with strong references to every wavefront ever seen, which made
long multi-launch campaigns accumulate dead waves without bound.

``window()`` is the fast-path query API: the fused fault-window
executor (:mod:`repro.gpu.fused`) asks each wave for its trigger
watermark and only drops to per-instruction stepping when a fused
block could cross it; non-victim waves always get ``None`` and never
leave the block-fused fast path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

import numpy as np

TARGETS = ("vgpr", "sgpr", "lds")


@dataclass
class FaultPlan:
    """One single-event-upset to inject during a run."""

    target: str                 # 'vgpr' | 'sgpr' | 'lds'
    wave_ordinal: int           # n-th wavefront created during the run
    trigger_instr: int          # dynamic instruction count within that wave
    bit: int                    # bit position to flip (0..31)
    lane: int                   # lane for vgpr faults (0..63)
    victim_index: int           # register / LDS word selector

    def __post_init__(self):
        if self.target not in TARGETS:
            raise ValueError(f"unknown fault target {self.target!r}")


@dataclass
class InjectionRecord:
    """What the hook actually did (for reporting and debugging).

    ``bucket`` is the static protection-priority quartile of the victim
    register (see :mod:`repro.compiler.analysis.vulnerability`), stamped
    at flip time when the hook was given a bucket map — so campaign
    records join fault outcomes to static predictions without re-running
    the analysis per worker.  ``-1`` means unknown (no map supplied, or
    an LDS fault, which has no per-register bucket).
    """

    fired: bool = False
    description: str = ""
    bucket: int = -1


class FaultHook:
    """Callable installed as the launch context's per-instruction hook."""

    #: Declares the window query API: the device may run fused (and,
    #: where the geometry allows, vectorized) executors around this hook
    #: instead of forcing the reference interpreter.  Plain callables
    #: (ad-hoc test hooks, the model checker's marker probes) lack the
    #: attribute and always get the per-instruction reference path.
    supports_window = True

    def __init__(self, plan: FaultPlan, scalar_reg_ids: Optional[Set[int]] = None,
                 priority_buckets: Optional[Dict[int, int]] = None):
        self.plan = plan
        self.scalar_reg_ids = scalar_reg_ids or set()
        self.priority_buckets = priority_buckets or {}
        self.record = InjectionRecord()

    @property
    def fired(self) -> bool:
        return self.record.fired

    def window(self, wave) -> Optional[int]:
        """Trigger watermark for ``wave``, or ``None`` off the victim.

        Returns the plan's ``trigger_instr`` only while the upset is
        still pending *and* ``wave`` is the victim (by engine-stamped
        creation ordinal).  A fused executor may run any block whose
        instructions all complete strictly below the watermark without
        consulting the hook; ``None`` means the whole wave is safe.
        """
        if self.record.fired or wave.ordinal != self.plan.wave_ordinal:
            return None
        return self.plan.trigger_instr

    def __call__(self, wave, instr) -> None:
        if self.record.fired:
            return
        plan = self.plan
        if wave.ordinal != plan.wave_ordinal:
            return
        if wave.dyn_instrs < plan.trigger_instr:
            return
        if plan.target == "lds":
            self._flip_lds(wave)
        else:
            self._flip_register(wave, instr)

    # -- flips -----------------------------------------------------------

    def _flip_register(self, wave, instr) -> None:
        plan = self.plan
        want_scalar = plan.target == "sgpr"

        def eligible(rid: int) -> bool:
            return (rid in self.scalar_reg_ids) == want_scalar

        # Prefer an operand of the instruction about to execute — a live
        # value, the way an SEU matters — falling back to any resident
        # register of the right class.
        candidates = [
            id(src) for src in instr.sources()
            if id(src) in wave.regs and eligible(id(src))
        ]
        if not candidates:
            candidates = [rid for rid in wave.regs if eligible(rid)]
        if not candidates:
            return
        rid = candidates[plan.victim_index % len(candidates)]
        arr = wave.regs[rid]
        if arr.dtype == np.bool_:
            if plan.target == "sgpr":
                arr[:] = ~arr
            else:
                arr[plan.lane] = not arr[plan.lane]
        else:
            view = arr.view(np.uint32)
            mask = np.uint32(1 << (plan.bit & 31))
            if plan.target == "sgpr":
                # A scalar-register upset corrupts the value every lane of
                # the wavefront observes.
                view ^= mask
            else:
                view[plan.lane] ^= mask
        self.record.fired = True
        self.record.bucket = self.priority_buckets.get(rid, -1)
        self.record.description = (
            f"{plan.target} flip bit {plan.bit} wave {plan.wave_ordinal} "
            f"@instr {plan.trigger_instr}"
        )

    def _flip_lds(self, wave) -> None:
        plan = self.plan
        arrays = list(wave.group.lds.values())
        if not arrays:
            return
        arr = arrays[plan.victim_index % len(arrays)]
        if arr.size == 0:
            return
        word = plan.lane % arr.size
        view = arr.view(np.uint32) if arr.dtype != np.bool_ else None
        if view is None:
            return
        view[word] ^= np.uint32(1 << (plan.bit & 31))
        self.record.fired = True
        self.record.description = (
            f"lds flip bit {plan.bit} word {word} wave {plan.wave_ordinal} "
            f"@instr {plan.trigger_instr}"
        )


def random_plan(rng: np.random.Generator, target: str,
                max_wave: int = 16, max_instr: int = 120) -> FaultPlan:
    """Draw a random injection plan (for campaigns)."""
    return FaultPlan(
        target=target,
        wave_ordinal=int(rng.integers(0, max_wave)),
        trigger_instr=int(rng.integers(1, max_instr)),
        bit=int(rng.integers(0, 32)),
        lane=int(rng.integers(0, 64)),
        victim_index=int(rng.integers(0, 64)),
    )
