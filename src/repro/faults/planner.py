"""Vectorized fault-plan generation for campaigns.

``draw_plans`` promises that plan *i* is a pure function of
``(seed, i)`` — drawn from ``numpy``'s ``SeedSequence(seed,
spawn_key=(i,))`` child stream — so serial, sharded, and resumed
campaigns agree bit-for-bit.  The straightforward implementation pays
for that promise per trial: constructing a ``SeedSequence``, seeding a
fresh ``PCG64``, and making five bounded ``Generator.integers`` calls
costs ~20 µs of Python/numpy dispatch per plan, which at fault-window
campaign rates (hundreds of trials/sec across many shards) is real
planning latency before any simulation starts.

This module draws the *same* plans with one batch of numpy array ops
across all trials.  It reimplements, vectorized across the trial axis,
exactly the pipeline ``default_rng(child_sequence(seed, i)).integers``
executes:

1. **Entropy assembly** — the campaign seed as little-endian uint32
   words, zero-padded to the pool size (numpy does this whenever a
   spawn key is present, so short seeds still produce distinct
   children), then the trial index word.
2. **Entropy-pool mixing** — ``SeedSequence``'s four-word pool mix
   (O'Neill's ``seed_seq_fe`` hash: INIT_A/MULT_A multiply-xorshift
   rounds plus the L/R mix) where only the trial-index word varies, so
   the pool becomes four uint32 arrays over trials.
3. **State generation** — eight uint32 words per trial via the
   INIT_B/MULT_B cycle, paired little-endian into the four uint64
   seeding words ``PCG64`` consumes.
4. **PCG64** — the 128-bit LCG (multiplier ``0x2360ed05...``) kept as
   hi/lo uint64 limb arrays with explicit carry/64×64→128 products,
   XSL-RR output, and the generator's lo-then-hi uint32 double
   buffering.
5. **Bounded draws** — Lemire multiply-shift rejection per field
   (wave, trigger, bit, lane, victim in plan order).  Fields whose
   range is a single value consume no stream words, matching numpy.

Rejection in step 5 is possible only for non-power-of-two ranges and
has probability < 2⁻³² per draw; any trial that would reject (and any
parameterization outside the fast path's envelope) is recomputed with
the reference per-trial generator, so the batch is exact rather than
approximate.  A runtime probe additionally spot-checks a few trials
against the reference path on every batch — if a future numpy changes
any of the internals above, the module silently degrades to the
reference loop instead of producing different plans.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .injector import FaultPlan, random_plan

# seed_seq_fe mixing constants (numpy's SeedSequence).
_INIT_A = np.uint32(0x43B0D7E5)
_MULT_A = np.uint32(0x931E8875)
_INIT_B = np.uint32(0x8B51F9DD)
_MULT_B = np.uint32(0x58F38DED)
_MIX_L = np.uint32(0xCA01F9DD)
_MIX_R = np.uint32(0x4973F715)
_XSHIFT = np.uint32(16)
_POOL_SIZE = 4

# PCG64's default 128-bit LCG multiplier, split into uint64 limbs.
_PCG_MULT_HI = np.uint64(0x2360ED051FC65DA4)
_PCG_MULT_LO = np.uint64(0x4385DF649FCCF645)

_M32 = np.uint64(0xFFFFFFFF)
_U64_1 = np.uint64(1)
_U64_32 = np.uint64(32)
_U64_58 = np.uint64(58)
_U64_63 = np.uint64(63)
_U64_64 = np.uint64(64)


def _uint32_words(value: int) -> List[int]:
    """Little-endian uint32 words of a non-negative int (0 -> [0])."""
    if value < 0:
        raise ValueError("seed must be non-negative")
    if value == 0:
        return [0]
    words = []
    while value:
        words.append(value & 0xFFFFFFFF)
        value >>= 32
    return words


def _hashmix(value: np.ndarray, hash_const: List[int]) -> np.ndarray:
    # hash_const evolves as a masked Python int: scalar numpy uint32
    # multiplies warn on overflow under NEP 50, array ones wrap silently.
    value = value ^ np.uint32(hash_const[0])
    hash_const[0] = (hash_const[0] * 0x931E8875) & 0xFFFFFFFF
    value = value * np.uint32(hash_const[0])
    return value ^ (value >> _XSHIFT)


def _mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    result = x * _MIX_L - y * _MIX_R
    return result ^ (result >> _XSHIFT)


def _seed_pool(seed: int, trials: int) -> List[np.ndarray]:
    """The mixed SeedSequence pool of every trial's child stream.

    Returns four uint32 arrays of shape ``(trials,)`` equal to
    ``SeedSequence(seed, spawn_key=(i,)).pool`` for each trial ``i``.
    """
    seed_words = _uint32_words(seed)
    if len(seed_words) < _POOL_SIZE:
        # numpy zero-pads the run entropy to the pool size whenever a
        # spawn key is present, so the spawn word always lands in the
        # "extra entropy" mixing loop.
        seed_words = seed_words + [0] * (_POOL_SIZE - len(seed_words))
    trial_word = np.arange(trials, dtype=np.uint32)
    entropy: List[np.ndarray] = [
        np.full(trials, w, dtype=np.uint32) for w in seed_words
    ]
    entropy.append(trial_word)

    hash_const = [int(_INIT_A)]
    pool = [_hashmix(entropy[i], hash_const) for i in range(_POOL_SIZE)]
    for i_src in range(_POOL_SIZE):
        for i_dst in range(_POOL_SIZE):
            if i_src != i_dst:
                pool[i_dst] = _mix(pool[i_dst], _hashmix(pool[i_src], hash_const))
    for i_src in range(_POOL_SIZE, len(entropy)):
        for i_dst in range(_POOL_SIZE):
            pool[i_dst] = _mix(pool[i_dst], _hashmix(entropy[i_src], hash_const))
    return pool


def _generate_state(pool: List[np.ndarray]) -> List[np.ndarray]:
    """The four uint64 PCG64 seeding words of every trial."""
    hash_const = [int(_INIT_B)]
    words = []
    for i in range(2 * _POOL_SIZE):
        value = pool[i % _POOL_SIZE] ^ np.uint32(hash_const[0])
        hash_const[0] = (hash_const[0] * 0x58F38DED) & 0xFFFFFFFF
        value = value * np.uint32(hash_const[0])
        value = value ^ (value >> _XSHIFT)
        words.append(value.astype(np.uint64))
    return [words[2 * i] | (words[2 * i + 1] << _U64_32) for i in range(4)]


def _umul128(a: np.ndarray, b_hi: np.uint64, b_lo: np.uint64):
    """(hi, lo) limbs of a * b for uint64 arrays, b a 128-bit constant."""
    a_lo = a & _M32
    a_hi = a >> _U64_32
    bl_lo = b_lo & _M32
    bl_hi = b_lo >> _U64_32
    p0 = a_lo * bl_lo
    p1 = a_lo * bl_hi
    p2 = a_hi * bl_lo
    p3 = a_hi * bl_hi
    carry = ((p0 >> _U64_32) + (p1 & _M32) + (p2 & _M32)) >> _U64_32
    lo = p0 + (p1 << _U64_32) + (p2 << _U64_32)
    hi = p3 + (p1 >> _U64_32) + (p2 >> _U64_32) + carry
    # the b_hi cross term only contributes to the high limb (mod 2^128)
    hi = hi + a * b_hi
    return hi, lo


class _VecPcg64:
    """All trials' PCG64 streams as parallel uint64 limb arrays."""

    def __init__(self, seed_words: List[np.ndarray]):
        init_hi, init_lo = seed_words[0], seed_words[1]
        seq_hi, seq_lo = seed_words[2], seed_words[3]
        self.inc_hi = (seq_hi << _U64_1) | (seq_lo >> _U64_63)
        self.inc_lo = (seq_lo << _U64_1) | _U64_1
        self.hi = np.zeros_like(init_hi)
        self.lo = np.zeros_like(init_lo)
        self._step()
        new_lo = self.lo + init_lo
        carry = (new_lo < init_lo).astype(np.uint64)
        self.hi = self.hi + init_hi + carry
        self.lo = new_lo
        self._step()

    def _step(self) -> None:
        mul_hi, mul_lo = _umul128(self.lo, _PCG_MULT_HI, _PCG_MULT_LO)
        mul_hi = mul_hi + self.hi * _PCG_MULT_LO
        new_lo = mul_lo + self.inc_lo
        carry = (new_lo < self.inc_lo).astype(np.uint64)
        self.hi = mul_hi + self.inc_hi + carry
        self.lo = new_lo

    def next64(self) -> np.ndarray:
        self._step()
        rot = self.hi >> _U64_58
        xored = self.hi ^ self.lo
        return (xored >> rot) | (xored << ((_U64_64 - rot) & _U64_63))


def _plan_fields(target: str, max_wave: int, max_instr: int):
    """(name, low, high) in the exact order random_plan draws them."""
    del target  # the target does not consume stream words
    return (
        ("wave_ordinal", 0, max_wave),
        ("trigger_instr", 1, max_instr),
        ("bit", 0, 32),
        ("lane", 0, 64),
        ("victim_index", 0, 64),
    )


def _draw_batch_fast(
    seed: int,
    trials: int,
    target: str,
    max_wave: int,
    max_instr: int,
) -> Optional[List[FaultPlan]]:
    """Vectorized batch, or ``None`` when outside the fast envelope."""
    fields = _plan_fields(target, max_wave, max_instr)
    ranges = []
    for _name, low, high in fields:
        rng = high - 1 - low
        if rng < 0 or rng > 0xFFFFFFFE:
            # invalid range (let the reference path raise numpy's error)
            # or a 64-bit Lemire draw — both off the fast path.
            return None
        ranges.append(rng)

    pool = _seed_pool(seed, trials)
    pcg = _VecPcg64(_generate_state(pool))

    # Fields with a single-value range consume no stream words; the rest
    # consume one buffered uint32 each (low half first, then high).
    consuming = [k for k, rng in enumerate(ranges) if rng > 0]
    stream: List[np.ndarray] = []
    for _ in range((len(consuming) + 1) // 2):
        word = pcg.next64()
        stream.append(word & _M32)
        stream.append(word >> _U64_32)

    values = [np.full(trials, low, dtype=np.int64) for _n, low, _h in fields]
    reject = np.zeros(trials, dtype=bool)
    for pos, k in enumerate(consuming):
        rng = ranges[k]
        excl = np.uint64(rng + 1)
        m = stream[pos] * excl
        # Lemire rejection: possible only when (2^32 % excl) != 0, and
        # then with probability < 2^-32 per draw — rejected trials are
        # recomputed exactly on the reference path below.
        threshold = ((1 << 32) - (rng + 1)) % (rng + 1)
        if threshold:
            reject |= (m & _M32) < np.uint64(threshold)
        values[k] = values[k] + (m >> _U64_32).astype(np.int64)

    plans = [
        FaultPlan(
            target=target,
            wave_ordinal=int(values[0][i]),
            trigger_instr=int(values[1][i]),
            bit=int(values[2][i]),
            lane=int(values[3][i]),
            victim_index=int(values[4][i]),
        )
        for i in range(trials)
    ]
    if reject.any():
        from ..orchestrator.seeding import trial_rng

        for i in np.flatnonzero(reject):
            plans[int(i)] = random_plan(
                trial_rng(seed, int(i)), target,
                max_wave=max_wave, max_instr=max_instr,
            )
    return plans


def _reference_batch(
    seed: int, trials: int, target: str, max_wave: int, max_instr: int,
) -> List[FaultPlan]:
    from ..orchestrator.seeding import trial_rng

    return [
        random_plan(trial_rng(seed, i), target,
                    max_wave=max_wave, max_instr=max_instr)
        for i in range(trials)
    ]


def draw_plan_batch(
    seed: int,
    trials: int,
    target: str,
    max_wave: int = 8,
    max_instr: int = 100,
) -> List[FaultPlan]:
    """Every trial's fault plan, bit-identical to the per-trial path.

    Uses the vectorized pipeline when the parameters fit its envelope,
    spot-checking a few trials against the reference generator (first,
    middle, last) so a drifting numpy implementation downgrades to the
    reference loop rather than changing which faults a seed denotes.
    """
    if trials <= 0:
        return []
    plans = None
    try:
        plans = _draw_batch_fast(seed, trials, target, max_wave, max_instr)
    except (OverflowError, ValueError):
        plans = None
    if plans is None:
        return _reference_batch(seed, trials, target, max_wave, max_instr)

    from ..orchestrator.seeding import trial_rng

    for probe in sorted({0, trials // 2, trials - 1}):
        want = random_plan(trial_rng(seed, probe), target,
                           max_wave=max_wave, max_instr=max_instr)
        if plans[probe] != want:
            return _reference_batch(seed, trials, target, max_wave, max_instr)
    return plans
