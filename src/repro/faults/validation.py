"""Validation of static vulnerability predictions against fault injection.

The ACE/AVF pass (:mod:`repro.compiler.analysis.vulnerability`) claims
that def sites in higher protection-priority buckets are more likely to
corrupt architectural output when upset.  This module tests the claim
the only way that matters — empirically: run a fault campaign on the
*unprotected* kernel, join each fired trial to the static bucket of the
register it flipped (stamped on the record by the injection hook), and
correlate predicted bucket against observed SDC rate.

The headline statistic is Spearman rank correlation across buckets,
hand-rolled with average ranks for ties (no SciPy dependency).  CI runs
``python -m repro.faults.validation`` on a fixed seed and gates on a
minimum correlation, so a regression that scrambles the static ranking
(a broken masking proof, a liveness bug) fails loudly.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .campaign import CampaignResult, run_campaign

DEFAULT_TARGETS = ("vgpr", "sgpr")


# ---------------------------------------------------------------------------
# Rank correlation (no SciPy)
# ---------------------------------------------------------------------------


def _ranks(values: Sequence[float]) -> List[float]:
    """1-based ranks with ties sharing their average rank."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        avg = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = avg
        i = j + 1
    return ranks


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation (Pearson over average ranks)."""
    if len(xs) != len(ys):
        raise ValueError("spearman needs paired samples")
    n = len(xs)
    if n < 2:
        return 0.0
    rx, ry = _ranks(xs), _ranks(ys)
    mx, my = sum(rx) / n, sum(ry) / n
    num = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    dx = math.sqrt(sum((a - mx) ** 2 for a in rx))
    dy = math.sqrt(sum((b - my) ** 2 for b in ry))
    if dx == 0.0 or dy == 0.0:
        return 0.0
    return num / (dx * dy)


# ---------------------------------------------------------------------------
# Bucket joins
# ---------------------------------------------------------------------------


def merge_bucket_outcomes(
    parts: Sequence[CampaignResult],
) -> Dict[int, Dict[str, int]]:
    """Sum per-bucket outcome histograms across campaign results."""
    merged: Dict[int, Dict[str, int]] = {}
    for res in parts:
        for bucket, hist in res.bucket_outcomes.items():
            m = merged.setdefault(bucket, {})
            for outcome, count in hist.items():
                m[outcome] = m.get(outcome, 0) + count
    return merged


def bucket_sdc_rates(
    bucket_outcomes: Dict[int, Dict[str, int]],
) -> Dict[int, Tuple[float, int]]:
    """Bucket → (SDC rate, fired-trial count) over joined histograms."""
    out: Dict[int, Tuple[float, int]] = {}
    for bucket in sorted(bucket_outcomes):
        hist = bucket_outcomes[bucket]
        n = sum(hist.values())
        out[bucket] = (hist.get("sdc", 0) / n if n else 0.0, n)
    return out


# ---------------------------------------------------------------------------
# The validation run
# ---------------------------------------------------------------------------


@dataclass
class ValidationReport:
    """Static-prediction vs. fault-outcome comparison for one benchmark."""

    benchmark: str
    variant: str
    targets: Tuple[str, ...]
    trials_per_target: int
    seed: int
    bucket_outcomes: Dict[int, Dict[str, int]] = field(default_factory=dict)
    sdc_rates: Dict[int, Tuple[float, int]] = field(default_factory=dict)
    rank_correlation: float = 0.0

    def to_json(self) -> Dict:
        return {
            "benchmark": self.benchmark,
            "variant": self.variant,
            "targets": list(self.targets),
            "trials_per_target": self.trials_per_target,
            "seed": self.seed,
            "bucket_outcomes": {
                str(b): dict(sorted(self.bucket_outcomes[b].items()))
                for b in sorted(self.bucket_outcomes)
            },
            "sdc_rates": {
                str(b): {"rate": round(rate, 6), "fired": n}
                for b, (rate, n) in sorted(self.sdc_rates.items())
            },
            "rank_correlation": round(self.rank_correlation, 6),
        }

    def summary(self) -> str:
        rates = " ".join(
            f"b{b}={rate:.2f}({n})"
            for b, (rate, n) in sorted(self.sdc_rates.items())
        )
        return (
            f"{self.benchmark}/{self.variant}: per-bucket SDC {rates} -> "
            f"spearman {self.rank_correlation:+.3f}"
        )


def validate_predictions(
    abbrev: str,
    variant: str = "original",
    targets: Sequence[str] = DEFAULT_TARGETS,
    trials: int = 120,
    seed: int = 11,
    scale: str = "small",
    workers: int = 1,
    max_instr: int = 40,
) -> ValidationReport:
    """Run fixed-seed campaigns and correlate buckets with SDC rates.

    Campaigns run on the untransformed kernel by default, so every
    upset's architectural fate is decided by the kernel's own masking
    behaviour — exactly what the static analysis models.  Register
    targets only: LDS words carry no per-register bucket.
    """
    from ..kernels.suite import make_benchmark

    parts = [
        run_campaign(
            lambda: make_benchmark(abbrev, scale=scale), variant, target,
            trials=trials, seed=seed, max_instr=max_instr, workers=workers,
        )
        for target in targets
    ]
    joined = merge_bucket_outcomes(parts)
    rates = bucket_sdc_rates(joined)
    buckets = sorted(rates)
    corr = spearman(
        [float(b) for b in buckets], [rates[b][0] for b in buckets])
    return ValidationReport(
        benchmark=abbrev, variant=variant, targets=tuple(targets),
        trials_per_target=trials, seed=seed, bucket_outcomes=joined,
        sdc_rates=rates, rank_correlation=corr,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.validation",
        description="Correlate static vulnerability predictions with "
                    "fault-injection outcomes.",
    )
    parser.add_argument("--benchmark", default="FWT",
                        help="suite abbreviation (default: FWT)")
    parser.add_argument("--variant", default="original")
    parser.add_argument("--targets", default=",".join(DEFAULT_TARGETS),
                        help="comma-separated register fault targets")
    parser.add_argument("--trials", type=int, default=120,
                        help="trials per target (default: 120)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--scale", choices=("small", "paper"),
                        default="small")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--max-instr", type=int, default=40)
    parser.add_argument("--min-spearman", type=float, default=None,
                        help="fail (exit 1) when the rank correlation "
                             "falls below this value")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the report JSON to PATH ('-' = stdout)")
    args = parser.parse_args(argv)

    targets = [t.strip() for t in args.targets.split(",") if t.strip()]
    report = validate_predictions(
        args.benchmark, variant=args.variant, targets=targets,
        trials=args.trials, seed=args.seed, scale=args.scale,
        workers=args.workers, max_instr=args.max_instr,
    )
    print(report.summary())
    if args.json:
        doc = json.dumps(report.to_json(), indent=2, sort_keys=True)
        if args.json == "-":
            print(doc)
        else:
            with open(args.json, "w") as fh:
                fh.write(doc + "\n")
    if args.min_spearman is not None \
            and report.rank_correlation < args.min_spearman:
        print(
            f"rank correlation {report.rank_correlation:+.3f} below the "
            f"required {args.min_spearman:+.3f}", file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
