"""Fault-injection campaigns over benchmark kernels.

A campaign replays one benchmark many times, each run with a single
random SEU, and tallies the outcome distribution.  The headline check —
used by the property tests — is the paper's SoR contract:

* a structure *inside* a flavor's sphere of replication never produces
  silent data corruption (every upset is masked or detected);
* structures *outside* the SoR can (and do) produce SDCs, which is why
  the paper is careful to enumerate them in Tables 2 and 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..gpu.config import HD7790
from ..gpu.engine import SimulationError
from ..kernels.base import Benchmark
from ..runtime.api import Session
from .injector import FaultHook, FaultPlan, random_plan

OUTCOMES = ("masked", "detected", "sdc", "hang")


@dataclass
class CampaignResult:
    """Outcome histogram of one campaign."""

    benchmark: str
    variant: str
    target: str
    outcomes: Dict[str, int] = field(default_factory=lambda: {o: 0 for o in OUTCOMES})
    trials: int = 0
    fired: int = 0
    records: List[str] = field(default_factory=list)

    @property
    def sdc_count(self) -> int:
        return self.outcomes["sdc"]

    @property
    def detected_count(self) -> int:
        return self.outcomes["detected"]

    @property
    def coverage(self) -> float:
        """Fraction of *visible* faults that were detected."""
        visible = self.outcomes["detected"] + self.outcomes["sdc"]
        return self.outcomes["detected"] / visible if visible else 1.0

    def summary(self) -> str:
        return (
            f"{self.benchmark}/{self.variant}/{self.target}: "
            f"{self.trials} trials ({self.fired} fired) -> "
            + ", ".join(f"{k}={v}" for k, v in self.outcomes.items())
        )


def run_single_fault(
    bench: Benchmark,
    variant: str,
    plan: FaultPlan,
    cycle_budget: Optional[float] = None,
) -> str:
    """Run one benchmark once with one injected fault; classify it."""
    compiled = bench.compile(variant)
    scalar_regs = compiled.uniformity.uniform_regs
    hook = FaultHook(plan, scalar_reg_ids=scalar_regs)
    session = _fault_session(cycle_budget)
    try:
        result = bench.run(session, compiled, fault_hook=hook)
    except SimulationError:
        # A corrupted loop bound or lock word wedged the kernel: a
        # detectable-unrecoverable event (watchdog timeout), not an SDC.
        return "hang"
    detected = bool(result.detections)
    correct = bench.check(result)
    if detected:
        return "detected"
    if correct:
        return "masked"
    return "sdc"


def _fault_session(cycle_budget: Optional[float]) -> Session:
    if cycle_budget is None:
        return Session()
    return Session(config=HD7790.with_(max_cycles=int(cycle_budget)))


def run_campaign(
    make_bench: Callable[[], Benchmark],
    variant: str,
    target: str,
    trials: int = 32,
    seed: int = 1234,
    max_wave: int = 8,
    max_instr: int = 100,
) -> CampaignResult:
    """Inject ``trials`` independent random SEUs and tally outcomes."""
    rng = np.random.default_rng(seed)
    probe = make_bench()
    result = CampaignResult(
        benchmark=probe.abbrev, variant=variant, target=target
    )
    # Golden run establishes a watchdog budget so corrupted spin locks or
    # loop bounds terminate as "hang" instead of running to the horizon.
    golden = probe.execute(variant)
    budget = 25.0 * max(golden.cycles, 1.0) + 2_000_000
    for _ in range(trials):
        bench = make_bench()
        plan = random_plan(rng, target, max_wave=max_wave, max_instr=max_instr)
        compiled = bench.compile(variant)
        hook = FaultHook(plan, scalar_reg_ids=compiled.uniformity.uniform_regs)
        try:
            run = bench.run(_fault_session(budget), compiled, fault_hook=hook)
        except SimulationError:
            outcome = "hang"
            run = None
        if run is not None:
            detected = bool(run.detections)
            correct = bench.check(run)
            if detected:
                outcome = "detected"
            elif correct:
                outcome = "masked"
            else:
                outcome = "sdc"
        result.outcomes[outcome] += 1
        result.trials += 1
        if hook.record.fired:
            result.fired += 1
            result.records.append(f"{hook.record.description} -> {outcome}")
    return result
