"""Fault-injection campaigns over benchmark kernels.

A campaign replays one benchmark many times, each run with a single
random SEU, and tallies the outcome distribution.  The headline check —
used by the property tests — is the paper's SoR contract:

* a structure *inside* a flavor's sphere of replication never produces
  silent data corruption (every upset is masked or detected);
* structures *outside* the SoR can (and do) produce SDCs, which is why
  the paper is careful to enumerate them in Tables 2 and 3.

Campaigns are embarrassingly parallel and route through the
``repro.orchestrator`` subsystem: every trial's fault plan is drawn from
its own ``SeedSequence`` child stream (so ``workers=1`` and ``workers=8``
produce bit-identical histograms), completed trials stream into an
optional JSONL journal (``resume=True`` skips them on a re-run), and a
worker crash or per-trial timeout is recorded as an ``infra_error``
outcome instead of losing the campaign.

Two fast paths keep the per-trial cost low without changing a single
outcome bit (both gated on :func:`repro.gpu.fused.fault_window_enabled`
so the reference configuration remains one toggle away):

* *fault-window execution* — window-capable hooks run the fused
  engines, dropping to per-instruction stepping only around the victim
  wave's trigger (see :mod:`repro.gpu.fused`);
* *no-fire elision* — the golden run's per-wave dynamic instruction
  totals (the :class:`FaultEnvelope`) prove that a plan whose victim
  ordinal was never created, or whose trigger exceeds the victim's
  lifetime instruction count, can never fire; such a trial is
  bit-identical to the golden run by induction, so its record is
  synthesized from the envelope without simulating anything.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..gpu.engine import SimulationError
from ..gpu.fused import fault_window_enabled
from ..kernels.base import Benchmark, BenchResult
from ..runtime.api import Session
from .injector import FaultHook, FaultPlan

#: Trial classifications.  The first four are architectural outcomes of
#: the simulated upset; ``infra_error`` marks a trial the orchestration
#: layer could not complete (worker crash / timeout after retries).
OUTCOMES = ("masked", "detected", "sdc", "hang", "infra_error")

#: Default in-memory cap on per-trial records kept by a CampaignResult.
DEFAULT_RECORD_CAP = 256


@dataclass
class TrialRecord:
    """One trial's structured outcome (journaled and tallied)."""

    index: int
    outcome: str
    plan: Optional[FaultPlan] = None
    fired: bool = False
    description: str = ""
    cycles: float = 0.0
    error: str = ""
    #: Static protection-priority bucket of the flipped register (-1 when
    #: unknown: no bucket map, LDS faults, or pre-bucket journals).
    bucket: int = -1
    #: Execution-path metadata: which engine simulated the trial
    #: ("standard" | "vectorized"), or "elided" when the fault envelope
    #: proved the plan could never fire.  Never part of outcome identity
    #: — two records that differ only here describe the same trial.
    engine: str = ""

    def to_json(self) -> Dict:
        return {
            "index": self.index,
            "outcome": self.outcome,
            "plan": asdict(self.plan) if self.plan is not None else None,
            "fired": self.fired,
            "description": self.description,
            "cycles": self.cycles,
            "error": self.error,
            "bucket": self.bucket,
            "engine": self.engine,
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "TrialRecord":
        plan = payload.get("plan")
        return cls(
            index=int(payload["index"]),
            outcome=payload["outcome"],
            plan=FaultPlan(**plan) if plan else None,
            fired=bool(payload.get("fired", False)),
            description=payload.get("description", ""),
            cycles=float(payload.get("cycles", 0.0)),
            error=payload.get("error", ""),
            bucket=int(payload.get("bucket", -1)),
            engine=payload.get("engine", ""),
        )


@dataclass
class CampaignResult:
    """Outcome histogram of one campaign (or one merged set of shards)."""

    benchmark: str
    variant: str
    target: str
    outcomes: Dict[str, int] = field(default_factory=lambda: {o: 0 for o in OUTCOMES})
    trials: int = 0
    fired: int = 0
    records: List[TrialRecord] = field(default_factory=list)
    infra: List[TrialRecord] = field(default_factory=list)
    record_cap: int = DEFAULT_RECORD_CAP
    dropped_records: int = 0
    #: Outcome histogram per static priority bucket (fired trials with a
    #: known bucket only) — the join the vulnerability-validation harness
    #: correlates against static predictions.
    bucket_outcomes: Dict[int, Dict[str, int]] = field(default_factory=dict)

    @property
    def sdc_count(self) -> int:
        return self.outcomes["sdc"]

    @property
    def detected_count(self) -> int:
        return self.outcomes["detected"]

    @property
    def coverage(self) -> float:
        """Fraction of *visible* faults that were detected."""
        visible = self.outcomes["detected"] + self.outcomes["sdc"]
        return self.outcomes["detected"] / visible if visible else 1.0

    def add(self, record: TrialRecord) -> None:
        """Tally one trial; keep fired records up to ``record_cap``."""
        self.outcomes[record.outcome] = self.outcomes.get(record.outcome, 0) + 1
        self.trials += 1
        if record.outcome == "infra_error" and len(self.infra) < self.record_cap:
            self.infra.append(record)
        if record.fired:
            self.fired += 1
            if record.bucket >= 0:
                hist = self.bucket_outcomes.setdefault(record.bucket, {})
                hist[record.outcome] = hist.get(record.outcome, 0) + 1
            if len(self.records) < self.record_cap:
                self.records.append(record)
            else:
                self.dropped_records += 1

    @classmethod
    def merged(cls, parts: Sequence["CampaignResult"]) -> "CampaignResult":
        """Merge shard results of one campaign into a single histogram."""
        if not parts:
            raise ValueError("nothing to merge")
        first = parts[0]
        out = cls(benchmark=first.benchmark, variant=first.variant,
                  target=first.target, record_cap=first.record_cap)
        for part in parts:
            identity = (part.benchmark, part.variant, part.target)
            if identity != (first.benchmark, first.variant, first.target):
                raise ValueError(
                    f"cannot merge shards of different campaigns: "
                    f"{identity} vs {(first.benchmark, first.variant, first.target)}"
                )
            for outcome, count in part.outcomes.items():
                out.outcomes[outcome] = out.outcomes.get(outcome, 0) + count
            out.trials += part.trials
            out.fired += part.fired
            out.dropped_records += part.dropped_records
            for b, hist in part.bucket_outcomes.items():
                merged_hist = out.bucket_outcomes.setdefault(b, {})
                for outcome, count in hist.items():
                    merged_hist[outcome] = merged_hist.get(outcome, 0) + count
            for rec in part.records:
                if len(out.records) < out.record_cap:
                    out.records.append(rec)
                else:
                    out.dropped_records += 1
            for rec in part.infra:
                if len(out.infra) < out.record_cap:
                    out.infra.append(rec)
        return out

    def to_json(self) -> Dict:
        """Deterministic report payload (no wall-clock fields).

        This is the one campaign-report schema: ``repro.campaign
        --json`` and the serve daemon's ``campaign`` job responses both
        serialise through it, so a daemon result is comparable
        bit-for-bit with a batch run of the same spec.
        """
        doc = {
            "benchmark": self.benchmark,
            "variant": self.variant,
            "target": self.target,
            "trials": self.trials,
            "fired": self.fired,
            "outcomes": dict(self.outcomes),
            "coverage": round(self.coverage, 4),
        }
        if self.bucket_outcomes:
            doc["bucket_outcomes"] = {
                str(b): dict(sorted(self.bucket_outcomes[b].items()))
                for b in sorted(self.bucket_outcomes)
            }
        return doc

    def summary(self) -> str:
        return (
            f"{self.benchmark}/{self.variant}/{self.target}: "
            f"{self.trials} trials ({self.fired} fired) -> "
            + ", ".join(f"{k}={v}" for k, v in self.outcomes.items())
        )


def campaign_report(result: CampaignResult, telemetry=None) -> Dict:
    """One report schema for batch CLI and daemon campaign responses.

    The deterministic histogram comes from :meth:`CampaignResult.to_json`;
    infrastructure failures (worker crashes / deadline kills after
    retries) are rendered through the shared
    :meth:`~repro.compiler.lint.diagnostics.Diagnostic.to_json`
    serializer — the same record shape ``repro.lint``, ``repro.tv`` and
    ``repro.mc`` emit — so every surface reports problems identically.
    ``telemetry`` optionally attaches the run's wall-clock digest, which
    is *not* part of the deterministic payload.
    """
    from ..compiler.lint.diagnostics import WARNING, Diagnostic

    diagnostics = [
        Diagnostic(
            checker="campaign",
            severity=WARNING,
            kernel=result.benchmark,
            loc=f"trial[{rec.index}]",
            message=rec.error or "infra_error",
        ).to_json()
        for rec in result.infra
    ]
    doc = result.to_json()
    doc["diagnostics"] = diagnostics
    if telemetry is not None:
        doc["telemetry"] = telemetry.summary()
    return doc


# -- single-trial execution (shared by serial path, workers, tests) -------


@dataclass
class FaultEnvelope:
    """What the golden (fault-free) run proves about every trial.

    ``wave_instrs[o]`` is the lifetime dynamic instruction count of the
    wave with execution-start ordinal ``o``, concatenated across the
    benchmark's launches.  The fault hook fires on the first call where
    the victim's post-increment count reaches the trigger, and it is
    called for every count ``1..wave_instrs[o]`` — so a plan *can* fire
    iff its ordinal exists and ``trigger_instr <= wave_instrs[o]``.
    Until the instant a hook fires, a trial's execution is bit-identical
    to the golden run (the hook is pure observation); by induction a
    trial that can never fire *is* the golden run, and its record can be
    synthesized without simulating.
    """

    wave_instrs: List[int]
    outcome: str
    cycles: float

    def can_fire(self, plan: FaultPlan) -> bool:
        o = plan.wave_ordinal
        return (0 <= o < len(self.wave_instrs)
                and plan.trigger_instr <= self.wave_instrs[o])


def classify_trial(bench: Benchmark, run: BenchResult,
                   reference=None) -> str:
    """Classify one *completed* fault run against the benchmark oracle.

    ``reference`` optionally supplies precomputed golden outputs so a
    deterministic benchmark's host model is evaluated once per campaign
    instead of once per trial.
    """
    if run.detections:
        return "detected"
    if bench.check(run, ref=reference):
        return "masked"
    return "sdc"


def execute_trial(
    bench: Benchmark,
    compiled,
    plan: FaultPlan,
    cycle_budget: Optional[float] = None,
    index: int = -1,
    reference=None,
    priority_buckets: Optional[Dict[int, int]] = None,
    envelope: Optional[FaultEnvelope] = None,
) -> TrialRecord:
    """Run one benchmark once with one injected fault; record the outcome.

    ``priority_buckets`` (``id(reg)`` → static priority bucket, from
    :func:`repro.compiler.analysis.vulnerability.register_buckets` over
    the *compiled* kernel) lets the hook stamp each fired record with
    the victim's predicted vulnerability bucket.

    ``envelope`` enables no-fire elision: a plan the golden run proves
    can never fire returns the golden outcome directly (marked
    ``engine="elided"``).  The elision is skipped when fault-window
    execution is globally disabled, so the reference configuration
    simulates every trial.
    """
    if (envelope is not None and not envelope.can_fire(plan)
            and fault_window_enabled()):
        return TrialRecord(
            index=index, outcome=envelope.outcome, plan=plan,
            cycles=envelope.cycles, engine="elided",
        )
    hook = FaultHook(plan, scalar_reg_ids=compiled.uniformity.uniform_regs,
                     priority_buckets=priority_buckets)
    session = Session.with_cycle_budget(cycle_budget)
    try:
        run = bench.run(session, compiled, fault_hook=hook)
    except SimulationError:
        # A corrupted loop bound or lock word wedged the kernel: a
        # detectable-unrecoverable event (watchdog timeout), not an SDC.
        outcome, cycles = "hang", 0.0
    else:
        outcome, cycles = classify_trial(bench, run, reference), run.cycles
    launches = session.device.stats.launch_results
    return TrialRecord(
        index=index, outcome=outcome, plan=plan,
        fired=hook.record.fired, description=hook.record.description,
        cycles=cycles, bucket=hook.record.bucket,
        engine=launches[-1].engine_kind if launches else "",
    )


def run_single_fault(
    bench: Benchmark,
    variant: str,
    plan: FaultPlan,
    cycle_budget: Optional[float] = None,
) -> str:
    """Run one benchmark once with one injected fault; classify it."""
    return execute_trial(bench, bench.compile(variant), plan, cycle_budget).outcome


# -- plan derivation -------------------------------------------------------


def draw_plans(
    seed: int,
    trials: int,
    target: str,
    max_wave: int = 8,
    max_instr: int = 100,
) -> List[FaultPlan]:
    """Draw every trial's fault plan from its own child seed stream.

    Plan *i* depends only on ``(seed, i)`` — not on how many plans were
    drawn before it or which shard executes it — which is what makes
    serial and sharded campaigns bit-identical.  The draws are batched
    through :func:`repro.faults.planner.draw_plan_batch`, a vectorized
    reimplementation of the per-trial child-stream derivation that is
    bit-identical to instantiating ``trial_rng(seed, i)`` per trial
    (and self-validates against it at runtime).
    """
    from .planner import draw_plan_batch

    return draw_plan_batch(seed, trials, target,
                           max_wave=max_wave, max_instr=max_instr)


# -- campaign driver -------------------------------------------------------


def run_campaign(
    make_bench: Callable[[], Benchmark],
    variant: str,
    target: str,
    trials: int = 32,
    seed: int = 1234,
    max_wave: int = 8,
    max_instr: int = 100,
    *,
    scale: Optional[str] = None,
    workers: int = 1,
    timeout_s: Optional[float] = None,
    max_retries: int = 1,
    journal: Union[str, "Journal", None] = None,
    resume: bool = False,
    telemetry=None,
    record_cap: int = DEFAULT_RECORD_CAP,
    should_stop: Optional[Callable[[], bool]] = None,
) -> CampaignResult:
    """Inject ``trials`` independent random SEUs and tally outcomes.

    ``workers > 1`` shards trials across forked worker processes with
    identical results.  ``journal`` names a JSONL file — or passes an
    already-open :class:`~repro.orchestrator.Journal` (the serve daemon
    injects one with a streaming ``on_append`` sink) — that receives
    every completed trial; with ``resume=True`` an existing journal's
    trials are skipped, so a killed campaign continues where it died.
    ``scale`` (``"small"``/``"paper"``) records which suite table built
    the kernel in the journal identity, so a resume at the wrong scale
    is rejected instead of silently mixing trials.
    ``timeout_s`` bounds each trial's wall clock (parallel mode only);
    a trial that keeps crashing or deadlining its shard is recorded as
    ``infra_error`` after ``max_retries`` re-attempts.

    ``should_stop`` is polled between trial dispatches; once true the
    campaign checkpoints: in-flight trials finish and are journaled,
    undispatched ones are abandoned, and the partial result returns with
    ``result.trials < trials`` — re-running with ``resume=True``
    completes it.  The journal is closed on *every* exit path, including
    KeyboardInterrupt, so an interrupted campaign is always resumable.
    """
    from ..orchestrator import Journal, Telemetry, run_tasks

    probe = make_bench()
    result = CampaignResult(
        benchmark=probe.abbrev, variant=variant, target=target,
        record_cap=record_cap,
    )
    # Open the journal first so an identity mismatch fails before any
    # simulation work is spent.
    meta = {
        "kind": "fault-campaign",
        "benchmark": probe.abbrev, "variant": variant, "target": target,
        "trials": trials, "seed": seed,
        "max_wave": max_wave, "max_instr": max_instr,
    }
    # ``scale`` names which suite table built the kernel (small vs paper
    # differ structurally, so their trials must never mix).  Optional for
    # callers with a bespoke make_bench; the identity checks only compare
    # keys present on both sides, so older journals stay resumable.
    if scale is not None:
        meta["scale"] = scale
    done: Dict[int, TrialRecord] = {}
    if isinstance(journal, Journal):
        jnl = journal
        mismatch = {k: (jnl.meta.get(k), v) for k, v in meta.items()
                    if k in jnl.meta and jnl.meta[k] != v}
        if mismatch:
            raise ValueError(
                f"injected journal belongs to a different campaign: {mismatch}")
    elif journal is not None:
        jnl = Journal(journal, resume=resume, meta=meta)
    else:
        jnl = None
    try:
        if jnl is not None:
            for entry in jnl.entries("trial"):
                rec = TrialRecord.from_json(entry)
                if 0 <= rec.index < trials:
                    done[rec.index] = rec

        # Compile exactly once, before fan-out: every trial reuses this
        # artifact (workers inherit it through the fork), so the lint + TV
        # certification cost is paid once per campaign, not once per trial.
        compiled = probe.compile(variant)

        # Static priority buckets are keyed by id(reg) of the compiled
        # kernel, which forked workers inherit — the analysis runs once
        # per campaign and every trial record joins to it for free.
        from ..compiler.analysis.vulnerability import register_buckets

        buckets = register_buckets(compiled.kernel)

        # Golden run establishes a watchdog budget so corrupted spin locks
        # or loop bounds terminate as "hang" instead of running to the
        # horizon; its host-side reference outputs are reused by every
        # trial's oracle check (benchmark inputs are deterministic per
        # instance seed).
        golden_session = Session()
        golden = probe.run(golden_session, compiled)
        reference = probe.reference()
        budget = 25.0 * max(golden.cycles, 1.0) + 2_000_000

        # The golden run's per-wave instruction totals bound every
        # trial: plans that provably cannot fire reuse its outcome
        # instead of re-simulating (see FaultEnvelope).
        envelope = FaultEnvelope(
            wave_instrs=[
                n for r in golden_session.device.stats.launch_results
                for n in r.wave_instrs
            ],
            outcome=classify_trial(probe, golden, reference),
            cycles=golden.cycles,
        )

        plans = draw_plans(seed, trials, target, max_wave=max_wave,
                           max_instr=max_instr)

        tel = telemetry if telemetry is not None else Telemetry(
            label=f"{probe.abbrev}/{variant}/{target}")
        tel.start(trials, skipped=len(done))

        def run_one(index: int) -> TrialRecord:
            # Fresh benchmark instance per trial (deterministic input rng);
            # the compiled artifact and golden reference are shared.
            bench = make_bench()
            return execute_trial(bench, compiled, plans[index], budget,
                                 index=index, reference=reference,
                                 priority_buckets=buckets, envelope=envelope)

        def on_result(task_result) -> None:
            if task_result.ok:
                rec = task_result.value
            else:
                rec = TrialRecord(
                    index=task_result.task_id, outcome="infra_error",
                    plan=plans[task_result.task_id],
                    error=f"{task_result.status}: {task_result.error}",
                )
            done[rec.index] = rec
            tel.note_outcome(rec.outcome, shard=task_result.shard)
            if jnl is not None:
                jnl.append("trial", **rec.to_json())

        tasks = [(i, i) for i in range(trials) if i not in done]
        run_tasks(tasks, run_one, workers=workers, timeout_s=timeout_s,
                  max_retries=max_retries, telemetry=tel, on_result=on_result,
                  should_stop=should_stop)
        tel.finish()

        for index in sorted(done):
            result.add(done[index])
        if jnl is not None and result.trials >= trials:
            jnl.append("campaign", outcomes=dict(result.outcomes),
                       trials=result.trials, fired=result.fired,
                       telemetry=tel.summary())
    finally:
        if jnl is not None:
            jnl.close()
    return result
