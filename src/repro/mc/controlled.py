"""Schedule-controlled wavefront scheduler for model checking.

The :class:`ControlledScheduler` drives the timing engine one *turn* at
a time: at each decision point it picks a runnable wavefront (replaying
a choice prefix, then following a deterministic default policy) and lets
it run until it completes one **visible operation** — a global-memory
load/store/atomic or a barrier arrival.  Purely local work (ALU, LDS)
is folded into the turn: it commutes with anything another work-group
can do, so giving it schedule choices would only inflate the search
space without adding behaviours.

Spin loops get special treatment so the schedule space stays finite: a
wavefront whose visible operation is a *read* that repeats its
predecessor exactly (same location, same value — e.g. the inter-group
consumer polling its slot flag) is **parked** and removed from the
enabled set until some other wavefront writes one of the addresses it
is spinning on.  If every unfinished wavefront ends up parked, no
future step can change the values being polled, and the scheduler
raises :class:`~repro.gpu.schedule.ScheduleDeadlock` — the lock-
liveness failure the model checker is hunting.

The recorded :class:`Turn` list is the execution trace the DPOR driver
and the happens-before tracker consume; ``enabled`` snapshots at each
decision are what make stateless backtracking possible.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..gpu.schedule import OpInfo, ScheduleDeadlock, Scheduler, classify

#: A stable wavefront identity across replays: (flat_group, wave_idx).
WaveKey = Tuple[int, int]


class ReplayDivergence(Exception):
    """A replayed choice named a wavefront that is not enabled.

    Executions are deterministic given the choice sequence, so this
    only fires on a malformed schedule (hand-edited witness, or a
    corpus entry for a workload that has since changed shape).
    """


class Turn:
    """One scheduling decision and the visible operation it led to."""

    __slots__ = ("index", "wave", "enabled", "op", "spin")

    def __init__(self, index: int, wave: WaveKey, enabled: Tuple[WaveKey, ...]):
        self.index = index
        self.wave = wave
        self.enabled = enabled
        #: the turn's visible OpInfo; None if the wavefront finished (or
        #: the launch ended) before reaching one
        self.op: Optional[OpInfo] = None
        #: True when the op was a no-progress spin re-read (the wave was
        #: parked afterwards)
        self.spin = False

    def __repr__(self) -> str:
        return (f"Turn({self.index}: wave{list(self.wave)} "
                f"{self.op!r}{' spin' if self.spin else ''})")


def _result_sig(result) -> Optional[bytes]:
    if result is None:
        return None
    return np.asarray(result).tobytes()


class ControlledScheduler(Scheduler):
    """Replay a choice prefix, then run the deterministic default policy.

    ``choices`` is a sequence of :data:`WaveKey`; each is consumed by one
    decision point.  Once exhausted, the lowest enabled key is chosen —
    so any prefix extends to a complete, deterministic execution, which
    is what lets the DPOR driver restart exploration from a backtrack
    point with a plain prefix instead of a full schedule.
    """

    observes = True

    def __init__(self, choices: Sequence[WaveKey] = ()):
        self.choices: List[WaveKey] = [tuple(c) for c in choices]
        self.turns: List[Turn] = []
        self._runnable: Dict[WaveKey, tuple] = {}
        self._parked: Dict[WaveKey, Tuple[tuple, str, Set[int]]] = {}
        self._last_sig: Dict[WaveKey, tuple] = {}
        self._current: Optional[WaveKey] = None
        self._consumed = 0
        self.ctx = None

    # -- bookkeeping -------------------------------------------------------

    @staticmethod
    def key_of(wave) -> WaveKey:
        return (wave.group.flat_group, wave.wave_idx)

    @property
    def parked_waves(self) -> Dict[WaveKey, Tuple[str, Tuple[int, ...]]]:
        return {k: (buf, tuple(sorted(addrs)))
                for k, (_e, buf, addrs) in self._parked.items()}

    # -- Scheduler interface ----------------------------------------------

    def begin(self, ctx) -> None:
        if self.ctx is not None:
            raise RuntimeError(
                "ControlledScheduler drives exactly one launch; "
                "create a fresh instance per execution")
        self.ctx = ctx

    def push(self, entry: tuple) -> None:
        self._runnable[self.key_of(entry[2])] = entry

    def __len__(self) -> int:
        return len(self._runnable) + len(self._parked)

    def pop(self) -> tuple:
        cur = self._current
        if cur is not None:
            entry = self._runnable.pop(cur, None)
            if entry is not None:
                return entry
            # The current wave finished or blocked at a barrier without a
            # fresh continuation — its turn is over.
            self._current = None

        candidates = sorted(self._runnable)
        if not candidates:
            # Only parked waves remain: nothing can ever change the
            # values they are spinning on.
            raise ScheduleDeadlock(self.parked_waves)
        if self._consumed < len(self.choices):
            chosen = self.choices[self._consumed]
            if chosen not in candidates:
                raise ReplayDivergence(
                    f"choice #{self._consumed} wants wave {list(chosen)} but "
                    f"enabled set is {[list(c) for c in candidates]}")
        else:
            chosen = candidates[0]
        self._consumed += 1
        self.turns.append(Turn(len(self.turns), chosen, tuple(candidates)))
        self._current = chosen
        return self._runnable.pop(chosen)

    def observe(self, wave, req, t: float, result) -> None:
        key = self.key_of(wave)
        if req is None:               # wavefront completed
            if self._current == key:
                self._current = None
            self._last_sig.pop(key, None)
            return
        op = classify(req)
        if op is None:                # ErrorReq: detection, not a sync op
            return
        if op.kind == "barrier":
            turn = self.turns[-1]
            if turn.wave == key and turn.op is None:
                turn.op = op
            if self._current == key:
                self._current = None
            self._last_sig.pop(key, None)
            return

        # A global-memory operation ends the current turn.
        sig = (op.kind, op.buf, op.addrs, op.write, _result_sig(result))
        spin_repeat = (not op.write) and self._last_sig.get(key) == sig
        self._last_sig[key] = sig
        turn = self.turns[-1]
        if turn.wave == key and turn.op is None:
            turn.op = op
            turn.spin = spin_repeat
        if self._current == key:
            self._current = None

        if spin_repeat:
            entry = self._runnable.pop(key, None)
            if entry is not None:
                self._parked[key] = (entry, op.buf, set(op.addrs))

        if op.write:
            addrs = set(op.addrs)
            for k in [k for k, (_e, buf, spin_addrs) in self._parked.items()
                      if buf == op.buf and spin_addrs & addrs]:
                entry, _buf, _a = self._parked.pop(k)
                self._runnable[k] = entry
