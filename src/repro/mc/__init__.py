"""Schedule-space model checking for the Inter-Group RMT protocol.

``python -m repro.mc`` sweeps wavefront interleavings of small
inter-group dispatches through the controlled scheduler
(:mod:`repro.mc.controlled`) with DPOR reduction
(:mod:`repro.mc.explore`), checking every execution for comm-buffer
races, lock-liveness/deadlock failures, silent output corruption, and
— with ``--faults`` — detection completeness under an injected
register flip.

Exit status: 0 when every sweep is clean, 1 on any violation (or a
failed ``--selftest``), 2 on usage errors.  Failing schedules are
serialized as runnable reproducer scripts (see :mod:`repro.mc.witness`).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..compiler.lint.diagnostics import Diagnostic
from .controlled import ControlledScheduler, ReplayDivergence, Turn, WaveKey
from .explore import (
    MarkerFault,
    RunOutcome,
    SweepReport,
    Violation,
    classify_outcome,
    explore,
    minimize_witness,
    run_schedule,
)
from .hb import Race, TraceClocks, compute_clocks, find_races
from .witness import load_schedule, replay, write_reproducer
from .workloads import WORKLOADS, Workload, get_workload

__all__ = [
    "ControlledScheduler",
    "MarkerFault",
    "Race",
    "ReplayDivergence",
    "RunOutcome",
    "SweepReport",
    "TraceClocks",
    "Turn",
    "Violation",
    "WaveKey",
    "Workload",
    "WORKLOADS",
    "classify_outcome",
    "compute_clocks",
    "explore",
    "find_races",
    "get_workload",
    "main",
    "minimize_witness",
    "run_schedule",
]

DEFAULT_WORKLOADS = ("handshake1", "lock2")


def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.mc",
        description="Sweep inter-group RMT schedules for races, "
                    "deadlocks, and missed detections.",
    )
    parser.add_argument(
        "--workloads", default=",".join(DEFAULT_WORKLOADS),
        help=f"comma-separated workload names, or 'all' "
             f"(default: {','.join(DEFAULT_WORKLOADS)}; "
             f"known: {', '.join(sorted(WORKLOADS))})",
    )
    parser.add_argument(
        "--max-schedules", type=int, default=256,
        help="bound on executions per sweep (default: 256)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="fan workload sweeps over an orchestrator process pool",
    )
    parser.add_argument(
        "--faults", action="store_true",
        help="also sweep each workload under an injected register flip "
             "and require a detection on every schedule",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit one JSON document (violations as lint-style "
             "diagnostics) instead of text",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the JSON report to FILE (CI artifact)",
    )
    parser.add_argument(
        "--witness-dir", default="mc_witnesses", metavar="DIR",
        help="directory for failing-schedule reproducer scripts "
             "(default: mc_witnesses)",
    )
    parser.add_argument(
        "--no-minimize", action="store_true",
        help="serialize raw witnesses without delta-debugging them",
    )
    parser.add_argument(
        "--replay", nargs="+", default=None, metavar="SCRIPT",
        help="replay reproducer/corpus scripts instead of sweeping",
    )
    parser.add_argument(
        "--selftest", action="store_true",
        help="plant a lock-liveness bug and a comm-buffer race; both "
             "must be caught with minimized witnesses",
    )
    return parser.parse_args(argv)


def _sweep_payload(payload: dict) -> dict:
    """Worker body for one (workload, fault-mode) sweep."""
    report = explore(
        get_workload(payload["workload"]),
        max_schedules=payload["max_schedules"],
        fault=payload["fault"],
    )
    d = report.to_dict()
    d["fault"] = payload["fault"]
    return d


def _violation_diag(v: dict) -> Diagnostic:
    return Diagnostic(
        checker=f"mc-{v['kind']}",
        severity="ERROR",
        kernel=v["workload"],
        loc=(f"schedule[{v['turn']}]" if v.get("turn") is not None
             else "schedule[]"),
        message=v["message"],
    )


def _write_witnesses(reports: List[dict], witness_dir: Path,
                     minimize: bool, log) -> List[str]:
    written: List[str] = []
    for rep in reports:
        for n, v in enumerate(rep["violations"]):
            choices = [tuple(c) for c in v["choices"]]
            if minimize and not rep["fault"]:
                choices = minimize_witness(
                    get_workload(v["workload"]), choices, v["kind"])
            path = write_reproducer(
                witness_dir / f"{v['workload']}_{v['kind']}_{n}.py",
                v["workload"], choices, v["kind"], v["message"])
            written.append(str(path))
            log(f"  witness: {path}")
    return written


def _run_selftest(args: argparse.Namespace) -> int:
    from .selftest import run_selftest

    log = (lambda msg: None) if args.json else print
    result = run_selftest(max_schedules=args.max_schedules, log=log)
    doc = result.to_dict()
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        for leg in result.legs:
            verdict = "ok" if leg.caught else "FAILED"
            print(f"selftest {leg.label}: {verdict}")
        print(f"selftest: {'ok' if result.ok else 'FAILED'}")
    if args.out:
        Path(args.out).write_text(json.dumps(doc, indent=2))
    return 0 if result.ok else 1


def _run_replay(args: argparse.Namespace) -> int:
    status = 0
    for script in args.replay:
        print(f"replaying {script}")
        workload, choices, kind = load_schedule(Path(script))
        status |= replay(workload, choices, expect=kind, log=print)
    return status


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parse_args(argv)
    if args.selftest:
        return _run_selftest(args)
    if args.replay:
        return _run_replay(args)

    names = ([*sorted(WORKLOADS)] if args.workloads.strip() == "all"
             else [w.strip() for w in args.workloads.split(",") if w.strip()])
    unknown = [n for n in names if n not in WORKLOADS]
    if unknown:
        print(f"unknown workload(s): {', '.join(unknown)}; "
              f"known: {', '.join(sorted(WORKLOADS))}", file=sys.stderr)
        return 2

    payloads = [{"workload": n, "max_schedules": args.max_schedules,
                 "fault": fault}
                for n in names
                for fault in ((False, True) if args.faults else (False,))]
    tasks = [((p["workload"], p["fault"]), p) for p in payloads]

    if args.workers > 1:
        from ..orchestrator.pool import run_tasks

        results = run_tasks(tasks, _sweep_payload, workers=args.workers)
        failed = [r for r in results.values() if not r.ok]
        if failed:
            for r in failed:
                print(f"sweep {r.task_id} crashed: {r.error}",
                      file=sys.stderr)
            return 2
        reports = [results[tid].value for tid, _ in tasks]
    else:
        reports = [_sweep_payload(p) for p in payloads]

    log = (lambda msg: None) if args.json else print
    total_violations: List[dict] = []
    for rep in reports:
        mode = "faults" if rep["fault"] else "sweep"
        log(f"{rep['workload']} [{mode}]: {rep['explored']} schedules "
            f"explored, {rep['hb_pruned']} pruned by happens-before, "
            f"{rep['dup_pruned']} duplicate prefixes"
            f"{', truncated' if rep['truncated'] else ''}, "
            f"{len(rep['violations'])} violations")
        for v in rep["violations"]:
            log(f"  {v['kind']}: {v['message']}")
        total_violations.extend(rep["violations"])

    witnesses: List[str] = []
    if total_violations:
        witnesses = _write_witnesses(
            reports, Path(args.witness_dir), not args.no_minimize, log)

    doc = {
        "reports": reports,
        "violations": [_violation_diag(v).to_json()
                       for v in total_violations],
        "witnesses": witnesses,
        "ok": not total_violations,
    }
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        explored = sum(r["explored"] for r in reports)
        pruned = sum(r["pruned"] for r in reports)
        print(f"total: {len(reports)} sweeps, {explored} schedules "
              f"explored, {pruned} pruned, "
              f"{len(total_violations)} violations")
    if args.out:
        Path(args.out).write_text(json.dumps(doc, indent=2))
    return 0 if not total_violations else 1
