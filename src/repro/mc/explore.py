"""Stateless DPOR exploration of inter-group RMT schedules.

The driver enumerates wavefront interleavings of one small Inter-Group
dispatch.  Each *execution* replays a choice prefix through a fresh
:class:`~repro.mc.controlled.ControlledScheduler` on a fresh simulated
device (stateless model checking: nothing persists between executions
except the prefix queue).  From each completed trace it derives
backtrack points with a dynamic partial-order-reduction rule in the
Flanagan–Godefroid style:

* two turns *conflict* when their visible operations touch overlapping
  elements of the same buffer and at least one writes;
* a conflicting pair already ordered by happens-before (through a
  barrier, or an atomic chain on *another* address) cannot be reversed
  by any schedule — reversing it is pruned (``hb_pruned``);
* otherwise the earlier turn is a backtrack point: a new prefix that
  runs the later turn's wavefront there instead.  Prefixes already
  queued are pruned (``dup_pruned``).

Orderedness is judged against the acting wavefront's clock *before*
the later operation (``C_pre``), so the synchronization edge an
atomic pair creates by executing does not suppress exploring its own
reversal — which atomic wins the ticket counter is exactly the kind of
nondeterminism the sweep must cover.

Every execution is checked for four violation classes: comm-buffer
**races** (vector-clock happens-before, :mod:`repro.mc.hb`),
**deadlock/liveness** failures (every unfinished wavefront parked in a
spin loop), output **mismatches** the RMT protocol failed to flag, and
— under ``fault=True`` — **missed detections** (an injected register
flip that some schedule lets escape).  Fault-free sweeps additionally
flag spurious detections (``cry-wolf``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compiler.pipeline import CompiledKernel, compile_kernel
from ..gpu import fused
from ..gpu.engine import SimulationError
from ..gpu.schedule import ScheduleDeadlock, conflicts
from ..ir.core import Alu
from ..runtime.api import Session
from .controlled import ControlledScheduler, ReplayDivergence, Turn, WaveKey
from .hb import Race, TraceClocks, compute_clocks, find_races
from .workloads import FAULT_MARKER_OP, Workload

#: Cycle watchdog per execution; parking catches protocol spin loops, the
#: budget catches anything that diverges with ever-changing values.
RUN_CYCLE_BUDGET = 5_000_000


# ---------------------------------------------------------------------------
# Single-execution harness
# ---------------------------------------------------------------------------


class MarkerFault:
    """Deterministic single-event upset for detection-completeness runs.

    Fires once, in wavefront (group 0, wave 0), at its first ``xor`` —
    the marker every MC workload routes its payload through — and flips
    bit 0 of lane 0 of the first writable source register.  One half of
    one producer/consumer pair computes a wrong value, so *every*
    schedule of a correct RMT compile must raise a detection.
    """

    def __init__(self):
        self.fired = False

    def __call__(self, wave, instr) -> None:
        if self.fired:
            return
        if wave.group.flat_group != 0 or wave.wave_idx != 0:
            return
        if not isinstance(instr, Alu) or instr.op != FAULT_MARKER_OP:
            return
        for src in instr.sources():
            arr = wave.regs.get(id(src))
            if arr is None or not arr.flags.writeable or arr.dtype == np.bool_:
                continue
            arr.view(np.uint32)[0] ^= np.uint32(1)
            self.fired = True
            return


@dataclass
class RunOutcome:
    """Everything observed from one controlled execution."""

    turns: List[Turn]
    choices: Tuple[WaveKey, ...]          # full decision sequence taken
    outputs: Dict[str, np.ndarray] = field(default_factory=dict)
    detections: int = 0
    deadlock: Optional[ScheduleDeadlock] = None
    sim_error: Optional[str] = None
    check_failure: Optional[str] = None
    fault_fired: bool = False


_COMPILE_MEMO: Dict[str, CompiledKernel] = {}


def compile_workload(workload: Workload, rmt_pass=None) -> CompiledKernel:
    """Inter-variant compile; stock compiles are memoized per process."""
    if rmt_pass is None and workload.name in _COMPILE_MEMO:
        return _COMPILE_MEMO[workload.name]
    compiled = compile_kernel(
        workload.build(), variant="inter",
        rmt_pass=rmt_pass, lint=False, validate=False, cache=False,
    )
    if rmt_pass is None:
        _COMPILE_MEMO[workload.name] = compiled
    return compiled


def run_schedule(
    workload: Workload,
    choices: Sequence[WaveKey] = (),
    *,
    compiled: Optional[CompiledKernel] = None,
    rmt_pass=None,
    fault: bool = False,
) -> RunOutcome:
    """Execute one schedule of ``workload`` and collect its trace."""
    if compiled is None:
        compiled = compile_workload(workload, rmt_pass)
    sched = ControlledScheduler(choices)
    session = Session.with_cycle_budget(RUN_CYCLE_BUDGET)
    hook = MarkerFault() if fault else None
    deadlock = None
    sim_error = None
    result = None
    with fused.fusion(False):
        buffers = {name: session.upload(name, arr)
                   for name, arr in workload.inputs().items()}
        try:
            result = session.launch(
                compiled, workload.global_size, workload.local_size,
                bindings=buffers, scheduler=sched,
                fault_hook=hook if fault else None,
            )
        except ScheduleDeadlock as exc:
            deadlock = exc
        except SimulationError as exc:
            sim_error = str(exc)

    outcome = RunOutcome(
        turns=sched.turns,
        choices=tuple(t.wave for t in sched.turns),
        deadlock=deadlock,
        sim_error=sim_error,
        fault_fired=bool(hook and hook.fired),
    )
    if result is not None:
        outcome.outputs = {name: session.download(buf)
                           for name, buf in buffers.items()}
        outcome.detections = len(result.detections)
        outcome.check_failure = workload.check(outcome.outputs)
    return outcome


# ---------------------------------------------------------------------------
# Violations
# ---------------------------------------------------------------------------


@dataclass
class Violation:
    """One property failure, with a replayable schedule witness."""

    kind: str                   # 'race' | 'deadlock' | 'mismatch' |
                                # 'missed-detection' | 'cry-wolf' | 'hang'
    workload: str
    message: str
    choices: List[List[int]]    # JSON-friendly [[group, wave], ...]
    turn: Optional[int] = None  # trace position the violation anchors to

    def to_dict(self) -> dict:
        return {"kind": self.kind, "workload": self.workload,
                "message": self.message, "choices": self.choices,
                "turn": self.turn}


def _as_choice_list(choices: Sequence[WaveKey]) -> List[List[int]]:
    return [list(c) for c in choices]


def classify_outcome(workload: Workload, outcome: RunOutcome,
                     *, fault: bool = False) -> List[Violation]:
    """Judge one execution against the swept properties."""
    violations: List[Violation] = []
    witness = _as_choice_list(outcome.choices)

    def add(kind: str, message: str, turn: Optional[int] = None) -> None:
        violations.append(Violation(kind, workload.name, message,
                                    witness, turn))

    if outcome.deadlock is not None:
        parked = getattr(outcome.deadlock, "parked", outcome.deadlock.args)
        add("deadlock",
            f"all unfinished wavefronts parked in spin loops: {parked}",
            len(outcome.turns) - 1 if outcome.turns else None)
        return violations
    if outcome.sim_error is not None:
        add("hang", f"simulation aborted: {outcome.sim_error}")
        return violations

    clocks = compute_clocks(outcome.turns, workload.waves_per_group)
    for race in find_races(outcome.turns, clocks):
        add("race", race.describe(), race.second.index)

    if fault:
        if outcome.fault_fired and outcome.detections == 0:
            add("missed-detection",
                "injected register flip produced no RMT detection")
    else:
        if outcome.check_failure is not None and outcome.detections == 0:
            add("mismatch",
                f"silent output corruption: {outcome.check_failure}")
        if outcome.detections > 0:
            add("cry-wolf",
                f"{outcome.detections} detections in a fault-free run")
    return violations


# ---------------------------------------------------------------------------
# DPOR sweep
# ---------------------------------------------------------------------------


@dataclass
class SweepReport:
    """Summary of one workload's schedule-space sweep."""

    workload: str
    explored: int = 0
    hb_pruned: int = 0
    dup_pruned: int = 0
    truncated: bool = False     # hit max_schedules with prefixes pending
    max_turns: int = 0
    elapsed_s: float = 0.0
    violations: List[Violation] = field(default_factory=list)

    @property
    def pruned(self) -> int:
        return self.hb_pruned + self.dup_pruned

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "explored": self.explored,
            "hb_pruned": self.hb_pruned,
            "dup_pruned": self.dup_pruned,
            "pruned": self.pruned,
            "truncated": self.truncated,
            "max_turns": self.max_turns,
            "elapsed_s": round(self.elapsed_s, 3),
            "violations": [v.to_dict() for v in self.violations],
        }


def _mem_turns(turns: Sequence[Turn]) -> List[Turn]:
    return [t for t in turns
            if t.op is not None and t.op.kind != "barrier" and not t.spin]


def _backtrack_prefixes(
    turns: Sequence[Turn], clocks: TraceClocks,
) -> Tuple[List[Tuple[WaveKey, ...]], int]:
    """Candidate prefixes reversing unordered conflicting pairs."""
    prefixes: List[Tuple[WaveKey, ...]] = []
    hb_pruned = 0
    base = [t.wave for t in turns]
    mem = _mem_turns(turns)
    for n, later in enumerate(mem):
        for earlier in mem[:n]:
            if earlier.wave == later.wave:
                continue
            if not conflicts(earlier.op, later.op):
                continue
            if clocks.ordered(earlier.index, later.index):
                hb_pruned += 1
                continue
            j = earlier.index
            stem = tuple(base[:j])
            if later.wave in turns[j].enabled:
                prefixes.append(stem + (later.wave,))
            else:
                for alt in turns[j].enabled:
                    if alt != earlier.wave:
                        prefixes.append(stem + (alt,))
    return prefixes, hb_pruned


def explore(
    workload: Workload,
    *,
    max_schedules: int = 512,
    rmt_pass=None,
    fault: bool = False,
    stop_on_violation: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepReport:
    """Sweep the schedule space of one workload."""
    t0 = time.monotonic()
    report = SweepReport(workload=workload.name)
    compiled = compile_workload(workload, rmt_pass)
    frontier: List[Tuple[WaveKey, ...]] = [()]
    visited = {()}

    while frontier:
        if report.explored >= max_schedules:
            report.truncated = True
            break
        prefix = frontier.pop()
        try:
            outcome = run_schedule(workload, prefix,
                                   compiled=compiled, fault=fault)
        except ReplayDivergence:
            # A backtrack prefix stopped being feasible (parking can
            # shrink the enabled set relative to the source trace).
            continue
        report.explored += 1
        report.max_turns = max(report.max_turns, len(outcome.turns))
        report.violations.extend(
            classify_outcome(workload, outcome, fault=fault))
        if stop_on_violation and report.violations:
            break

        if outcome.deadlock is None and outcome.sim_error is None:
            clocks = compute_clocks(outcome.turns, workload.waves_per_group)
            candidates, hb = _backtrack_prefixes(outcome.turns, clocks)
            report.hb_pruned += hb
            for cand in candidates:
                if cand in visited:
                    report.dup_pruned += 1
                else:
                    visited.add(cand)
                    frontier.append(cand)
        if progress is not None and report.explored % 16 == 0:
            progress(f"{workload.name}: {report.explored} schedules, "
                     f"{len(frontier)} pending, "
                     f"{len(report.violations)} violations")

    report.elapsed_s = time.monotonic() - t0
    return report


# ---------------------------------------------------------------------------
# Witness minimization
# ---------------------------------------------------------------------------


def minimize_witness(
    workload: Workload,
    choices: Sequence[WaveKey],
    kind: str,
    *,
    compiled: Optional[CompiledKernel] = None,
    rmt_pass=None,
    fault: bool = False,
    max_runs: int = 200,
) -> List[WaveKey]:
    """Shrink a violating schedule while preserving the violation kind.

    Greedy delta-debugging over the choice sequence: first truncate the
    tail (the default policy completes any prefix), then drop interior
    choices one at a time, re-running after each candidate edit.
    """
    if compiled is None:
        compiled = compile_workload(workload, rmt_pass)
    budget = [max_runs]

    def still_fails(cand: Sequence[WaveKey]) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        try:
            outcome = run_schedule(workload, cand,
                                   compiled=compiled, fault=fault)
        except ReplayDivergence:
            return False
        return any(v.kind == kind
                   for v in classify_outcome(workload, outcome, fault=fault))

    best = [tuple(c) for c in choices]
    # Tail truncation by halving.
    while best and still_fails(best[:len(best) // 2]):
        best = best[:len(best) // 2]
    while best and still_fails(best[:-1]):
        best = best[:-1]
    # Interior deletion.
    i = 0
    while i < len(best):
        cand = best[:i] + best[i + 1:]
        if still_fails(cand):
            best = cand
        else:
            i += 1
    return [tuple(c) for c in best]
