"""Small inter-group dispatches sized for exhaustive schedule sweeps.

Every workload here compiles with the Inter-Group RMT variant and is
deliberately tiny: one or two original work-groups (so two or four
wavefronts after the producer/consumer doubling), all resident on the
device at dispatch.  That keeps the visible-operation trace short
enough for the DPOR driver to enumerate every non-equivalent
interleaving, while still covering the protocol features the paper's
hand transformation relies on:

* ``handshake1``/``handshake2`` — the plain produce/consume handshake
  through the ticket counter, slot flags and comm buffers.
* ``lock2`` — two stores per work-item, forcing slot reuse and tier-1
  lock contention between consecutive handshakes on the same slot.
* ``atomic1`` — a user-visible atomic, exercising the guarded-atomic
  reply path (flag state 2) on top of the publish/consume states.
* ``barrier2`` — two wavefronts per group synchronizing through LDS and
  a work-group barrier before the guarded store.

``check`` functions only assert schedule-independent facts (final
output values, permutation invariants), so any failure under a legal
schedule is a genuine protocol bug, not an artifact of reordering.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..ir.builder import KernelBuilder
from ..ir.core import Kernel
from ..ir.types import DType

#: ALU opcode the fault injector targets (see :mod:`repro.mc.explore`);
#: every workload body computes its payload through one ``xor``.
FAULT_MARKER_OP = "xor"
_MASK = 0x2A


class Workload:
    """One model-checking scenario: kernel, inputs, and invariants."""

    def __init__(
        self,
        name: str,
        description: str,
        build: Callable[[], Kernel],
        inputs: Callable[[], Dict[str, np.ndarray]],
        check: Callable[[Dict[str, np.ndarray]], Optional[str]],
        global_size: Tuple[int, int, int],
        local_size: Tuple[int, int, int],
    ):
        self.name = name
        self.description = description
        self.build = build
        self.inputs = inputs
        self.check = check
        self.global_size = global_size
        self.local_size = local_size

    @property
    def waves_per_group(self) -> int:
        return -(-self.local_size[0] * self.local_size[1]
                 * self.local_size[2] // 64)

    def __repr__(self) -> str:
        return f"Workload({self.name!r})"


def _src_values(n: int) -> np.ndarray:
    return (np.arange(n, dtype=np.uint32) * 7 + 3) & 0xFFFF


def _handshake_kernel(name: str, items: int) -> Kernel:
    b = KernelBuilder(name)
    src = b.buffer_param("src", DType.U32)
    dst = b.buffer_param("dst", DType.U32)
    gid = b.global_id(0)
    v = b.load(src, gid)
    b.store(dst, gid, b.xor(v, _MASK))
    k = b.finish()
    k.metadata["local_size"] = (64, 1, 1)
    k.metadata["global_size"] = (items, 1, 1)
    k.metadata["buffer_nelems"] = {"src": items, "dst": items}
    return k


def _handshake_workload(name: str, items: int, doc: str) -> Workload:
    def inputs() -> Dict[str, np.ndarray]:
        return {"src": _src_values(items),
                "dst": np.zeros(items, np.uint32)}

    def check(outputs: Dict[str, np.ndarray]) -> Optional[str]:
        want = _src_values(items) ^ _MASK
        got = outputs["dst"]
        if not np.array_equal(got, want):
            bad = int(np.flatnonzero(got != want)[0])
            return (f"dst[{bad}] = {int(got[bad])}, "
                    f"expected {int(want[bad])}")
        return None

    return Workload(name, doc, lambda: _handshake_kernel(name, items),
                    inputs, check, (items, 1, 1), (64, 1, 1))


def _lock2_kernel() -> Kernel:
    items = 64
    b = KernelBuilder("mc_lock2")
    src = b.buffer_param("src", DType.U32)
    dst = b.buffer_param("dst", DType.U32)
    dst2 = b.buffer_param("dst2", DType.U32)
    gid = b.global_id(0)
    v = b.xor(b.load(src, gid), _MASK)
    b.store(dst, gid, v)
    b.store(dst2, gid, b.add(v, 1))
    k = b.finish()
    k.metadata["local_size"] = (64, 1, 1)
    k.metadata["global_size"] = (items, 1, 1)
    k.metadata["buffer_nelems"] = {"src": items, "dst": items, "dst2": items}
    return k


def _lock2_workload() -> Workload:
    items = 64

    def inputs() -> Dict[str, np.ndarray]:
        return {"src": _src_values(items),
                "dst": np.zeros(items, np.uint32),
                "dst2": np.zeros(items, np.uint32)}

    def check(outputs: Dict[str, np.ndarray]) -> Optional[str]:
        want = _src_values(items) ^ _MASK
        if not np.array_equal(outputs["dst"], want):
            return "dst mismatch"
        if not np.array_equal(outputs["dst2"], want + 1):
            return "dst2 mismatch"
        return None

    return Workload(
        "lock2",
        "two guarded stores per item: slot reuse, tier-1 lock contention",
        _lock2_kernel, inputs, check, (items, 1, 1), (64, 1, 1))


def _atomic1_kernel() -> Kernel:
    items = 64
    b = KernelBuilder("mc_atomic1")
    ctr = b.buffer_param("ctr", DType.U32)
    dst = b.buffer_param("dst", DType.U32)
    gid = b.global_id(0)
    old = b.atomic("add", ctr, 0, 1)
    b.store(dst, gid, b.xor(b.xor(old, _MASK), _MASK))
    k = b.finish()
    k.metadata["local_size"] = (64, 1, 1)
    k.metadata["global_size"] = (items, 1, 1)
    k.metadata["buffer_nelems"] = {"ctr": 1, "dst": items}
    return k


def _atomic1_workload() -> Workload:
    items = 64

    def inputs() -> Dict[str, np.ndarray]:
        return {"ctr": np.zeros(1, np.uint32),
                "dst": np.zeros(items, np.uint32)}

    def check(outputs: Dict[str, np.ndarray]) -> Optional[str]:
        # The ticket each item draws is schedule-dependent; the set of
        # tickets and the final counter are not.
        if int(outputs["ctr"][0]) != items:
            return f"ctr = {int(outputs['ctr'][0])}, expected {items}"
        got = np.sort(outputs["dst"])
        if not np.array_equal(got, np.arange(items, dtype=np.uint32)):
            return "dst is not a permutation of the ticket range"
        return None

    return Workload(
        "atomic1",
        "user atomic add: guarded-atomic reply path (flag state 2)",
        _atomic1_kernel, inputs, check, (items, 1, 1), (64, 1, 1))


def _barrier2_kernel() -> Kernel:
    items = 128
    b = KernelBuilder("mc_barrier2")
    src = b.buffer_param("src", DType.U32)
    dst = b.buffer_param("dst", DType.U32)
    lds = b.local_alloc("stage", DType.U32, items)
    gid = b.global_id(0)
    lid = b.local_id(0)
    b.store_local(lds, lid, b.load(src, gid))
    b.barrier()
    flipped = b.sub(items - 1, lid)
    v = b.load_local(lds, flipped)
    b.store(dst, gid, b.xor(v, _MASK))
    k = b.finish()
    k.metadata["local_size"] = (items, 1, 1)
    k.metadata["global_size"] = (items, 1, 1)
    k.metadata["buffer_nelems"] = {"src": items, "dst": items}
    return k


def _barrier2_workload() -> Workload:
    items = 128

    def inputs() -> Dict[str, np.ndarray]:
        return {"src": _src_values(items),
                "dst": np.zeros(items, np.uint32)}

    def check(outputs: Dict[str, np.ndarray]) -> Optional[str]:
        want = _src_values(items)[::-1] ^ _MASK
        if not np.array_equal(outputs["dst"], want):
            return "dst mismatch after barrier exchange"
        return None

    return Workload(
        "barrier2",
        "two waves per group: LDS exchange and barrier before the store",
        _barrier2_kernel, inputs, check, (items, 1, 1), (items, 1, 1))


def _registry() -> Dict[str, Workload]:
    table = {}
    for wl in (
        _handshake_workload(
            "handshake1", 64,
            "one producer/consumer pair through the comm buffers"),
        _handshake_workload(
            "handshake2", 128,
            "two pairs racing for tickets and slots"),
        _lock2_workload(),
        _atomic1_workload(),
        _barrier2_workload(),
    ):
        table[wl.name] = wl
    return table


WORKLOADS: Dict[str, Workload] = _registry()


def get_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
