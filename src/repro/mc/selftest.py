"""Self-test: plant protocol bugs and prove the checker catches them.

A model checker that has never seen a failing run is indistinguishable
from one that cannot fail.  This module compiles the ``handshake1``
workload through a *sabotaged* Inter-Group RMT pass and asserts the
sweep convicts each bug with a minimized, replayable schedule witness:

* **Lock-liveness bug** — the producer's tier-2 publish writes flag
  state 3 instead of 1.  The consumer's wait loop (``while flag != 1``)
  can never exit; once the producer retires, every unfinished wavefront
  is parked in a spin loop and the controlled scheduler reports a
  schedule deadlock.
* **Comm-buffer race** — the consumer's flag-wait loop is deleted, so
  its atomic read-backs of ``__rmt_comm_addr``/``__rmt_comm_val`` are
  no longer ordered after the producer's plain stores.  The vector-
  clock tracker must flag the store/read pair as a race (the ticket-
  counter edge alone does not order them).

A third leg sweeps the *stock* compile and requires zero violations,
guarding against a checker that convicts everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..compiler.pass_manager import Pass
from ..compiler.passes.rmt_common import INTER_COMM_ADDR, INTER_FLAG
from ..compiler.passes.rmt_inter import InterGroupRmtPass
from ..ir.core import AtomicGlobal, Cmp, Const, If, Kernel, While, walk_instrs
from .explore import SweepReport, Violation, explore, minimize_witness
from .workloads import get_workload

SELFTEST_WORKLOAD = "handshake1"


# ---------------------------------------------------------------------------
# Sabotaged passes
# ---------------------------------------------------------------------------


class SabotagedInterPass(Pass):
    """Run the stock Inter-Group pass, then apply a bug mutator."""

    def __init__(self, label: str, mutate: Callable[[Kernel], int]):
        self.name = f"rmt-inter-sabotage-{label}"
        self._mutate = mutate
        self._inner = InterGroupRmtPass()

    def run(self, kernel: Kernel) -> Kernel:
        kernel = self._inner.run(kernel)
        hits = self._mutate(kernel)
        if hits == 0:
            raise RuntimeError(
                f"{self.name}: mutation found no target; the protocol "
                "shape changed and the selftest needs updating")
        return kernel


def _const_defs(kernel: Kernel) -> dict:
    return {id(i.dst): i for i in walk_instrs(kernel.body)
            if isinstance(i, Const)}


def plant_liveness_bug(kernel: Kernel) -> int:
    """Publish flag state 3 instead of 1 (consumer spins forever)."""
    consts = _const_defs(kernel)
    hits = 0
    for instr in walk_instrs(kernel.body):
        if (isinstance(instr, AtomicGlobal) and instr.op == "xchg"
                and instr.buf.name == INTER_FLAG):
            const = consts.get(id(instr.value))
            if const is not None and const.value == 1:
                const.value = 3
                hits += 1
    return hits


def _is_consumer_wait(stmt) -> bool:
    if not isinstance(stmt, While):
        return False
    has_flag_read = any(
        isinstance(i, AtomicGlobal) and i.buf.name == INTER_FLAG
        for i in stmt.cond_block)
    consts = {id(i.dst): i for i in stmt.cond_block if isinstance(i, Const)}
    waits_for_one = any(
        isinstance(i, Cmp) and i.op == "ne"
        and id(i.b) in consts and consts[id(i.b)].value == 1
        for i in stmt.cond_block)
    return has_flag_read and waits_for_one


def plant_race_bug(kernel: Kernel) -> int:
    """Delete the consumer's flag-wait ahead of the comm read-backs."""
    hits = 0

    def scrub(body: list) -> None:
        nonlocal hits
        doomed = []
        for n, stmt in enumerate(body):
            if isinstance(stmt, If):
                scrub(stmt.then_body)
                scrub(stmt.else_body)
            elif isinstance(stmt, While):
                scrub(stmt.body)
                if _is_consumer_wait(stmt) and any(
                        isinstance(i, AtomicGlobal)
                        and i.buf.name == INTER_COMM_ADDR
                        for s in body[n + 1:]
                        for i in ([s] if not isinstance(s, (If, While))
                                  else walk_instrs([s]))):
                    doomed.append(stmt)
        for stmt in doomed:
            body.remove(stmt)
            hits += 1

    scrub(kernel.body)
    return hits


# ---------------------------------------------------------------------------
# Selftest driver
# ---------------------------------------------------------------------------


@dataclass
class SelftestLeg:
    """Outcome of one planted-bug (or clean-control) sweep."""

    label: str
    expect: Optional[str]           # violation kind required, None = clean
    report: SweepReport
    caught: bool = False
    witness: List[List[int]] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {"label": self.label, "expect": self.expect,
                "caught": self.caught, "witness": self.witness,
                "report": self.report.to_dict()}


@dataclass
class SelftestResult:
    legs: List[SelftestLeg]

    @property
    def ok(self) -> bool:
        return all(leg.caught for leg in self.legs)

    def to_dict(self) -> dict:
        return {"ok": self.ok, "legs": [leg.to_dict() for leg in self.legs]}


def _first_of_kind(violations: List[Violation],
                   kind: str) -> Optional[Violation]:
    for v in violations:
        if v.kind == kind:
            return v
    return None


def run_selftest(max_schedules: int = 64,
                 log: Optional[Callable[[str], None]] = None) -> SelftestResult:
    """Plant both bugs, sweep, and demand a conviction for each."""
    say = log or (lambda msg: None)
    workload = get_workload(SELFTEST_WORKLOAD)
    legs: List[SelftestLeg] = []

    plans = [
        ("lock-liveness", "deadlock",
         SabotagedInterPass("liveness", plant_liveness_bug)),
        ("comm-race", "race",
         SabotagedInterPass("race", plant_race_bug)),
        ("clean-control", None, None),
    ]
    for label, expect, rmt_pass in plans:
        say(f"selftest[{label}]: sweeping {workload.name} "
            f"(expect {expect or 'no violations'})")
        report = explore(workload, max_schedules=max_schedules,
                         rmt_pass=rmt_pass)
        leg = SelftestLeg(label=label, expect=expect, report=report)
        if expect is None:
            leg.caught = not report.violations
            say(f"selftest[{label}]: {report.explored} schedules, "
                f"{len(report.violations)} violations")
        else:
            hit = _first_of_kind(report.violations, expect)
            if hit is not None:
                witness = minimize_witness(
                    workload, [tuple(c) for c in hit.choices], expect,
                    rmt_pass=rmt_pass)
                leg.caught = True
                leg.witness = [list(c) for c in witness]
                say(f"selftest[{label}]: caught {expect} — minimized "
                    f"witness {leg.witness} "
                    f"({len(hit.choices)} -> {len(witness)} choices)")
            else:
                say(f"selftest[{label}]: MISSED — no {expect} violation in "
                    f"{report.explored} schedules")
        legs.append(leg)
    return SelftestResult(legs=legs)
