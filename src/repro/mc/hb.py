"""Vector-clock happens-before tracking over a controlled trace.

Given the :class:`~repro.mc.controlled.Turn` list recorded by one
controlled execution, this module reconstructs the happens-before
partial order of the trace and flags **data races**: pairs of
conflicting global-memory accesses from different wavefronts that are
not ordered by synchronization.

The synchronization model mirrors what the simulated hardware actually
guarantees for the inter-group RMT protocol:

* **Program order** — each wavefront's turns are totally ordered.
* **Atomic release/acquire** — two atomics on the *same element* of the
  same buffer synchronize in trace order.  This covers the ticket
  counter, the two-tier slot flags, and the atomic-add-of-zero reads
  the consumer uses to pull comm-buffer values through the L2.
* **Barrier joins** — a work-group barrier joins the clocks of every
  wavefront in the group; all participants resume with the join.

Plain loads and stores never synchronize.  A conflicting unordered pair
where at least one side is a plain access is a race: on real hardware
nothing forces the consumer to see the producer's comm-buffer store.

Races are judged against ``C_pre(i)`` — the acting wavefront's clock
*before* it executes turn ``i``.  The DPOR driver reuses the same
clocks, but with one deliberate difference: for backtracking it treats
same-address atomic pairs as *reorderable* even though they synchronize
(their order is exactly what the sweep must invert to explore, e.g.
which group wins the ticket counter), so the sync edge created *by the
pair itself* must not suppress its own reversal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..gpu.schedule import OpInfo, conflicts
from .controlled import Turn, WaveKey

Clock = Dict[WaveKey, int]


def _join(a: Clock, b: Clock) -> Clock:
    out = dict(a)
    for k, v in b.items():
        if out.get(k, 0) < v:
            out[k] = v
    return out


def _leq(a: Clock, b: Clock) -> bool:
    return all(b.get(k, 0) >= v for k, v in a.items())


class TraceClocks:
    """Per-turn vector clocks for one recorded execution."""

    def __init__(self, pre: List[Clock], post: List[Clock]):
        #: clock of the acting wavefront just before its turn's op
        self.pre = pre
        #: clock just after (includes any acquire joins and its own tick)
        self.post = post

    def ordered(self, j: int, i: int) -> bool:
        """True when turn ``j`` happens-before turn ``i`` (``j < i``)."""
        return _leq(self.post[j], self.pre[i])


def compute_clocks(turns: Sequence[Turn], waves_per_group: int) -> TraceClocks:
    """Replay the trace's synchronization and produce per-turn clocks."""
    wave_clock: Dict[WaveKey, Clock] = {}
    addr_clock: Dict[Tuple[str, int], Clock] = {}
    barrier_gather: Dict[int, Tuple[Clock, List[int]]] = {}
    pre: List[Clock] = []
    post: List[Clock] = []

    for turn in turns:
        w = turn.wave
        c = wave_clock.get(w)
        if c is None:
            c = {w: 0}
        pre.append(dict(c))

        c = dict(c)
        c[w] = c.get(w, 0) + 1
        op = turn.op
        if op is not None:
            if op.kind == "barrier":
                group = w[0]
                gathered, members = barrier_gather.get(group, ({}, []))
                gathered = _join(gathered, c)
                members.append(turn.index)
                if len(members) >= waves_per_group:
                    # Release: every member's *post* clock becomes the
                    # join.  Earlier arrivals are patched in place; the
                    # current turn's post is appended below.
                    for idx in members[:-1]:
                        post[idx] = dict(gathered)
                        wave_clock[turns[idx].wave] = dict(gathered)
                    barrier_gather.pop(group, None)
                    c = dict(gathered)
                else:
                    barrier_gather[group] = (gathered, members)
            elif op.sync:
                for a in op.addrs:
                    key = (op.buf, a)
                    seen = addr_clock.get(key)
                    if seen is not None:
                        c = _join(c, seen)
                    addr_clock[key] = dict(c)
        post.append(dict(c))
        wave_clock[w] = c

    return TraceClocks(pre, post)


class Race:
    """A conflicting, unsynchronized pair of turns."""

    __slots__ = ("first", "second", "buf", "addrs")

    def __init__(self, first: Turn, second: Turn, buf: str,
                 addrs: Tuple[int, ...]):
        self.first = first
        self.second = second
        self.buf = buf
        self.addrs = addrs

    def describe(self) -> str:
        f, s = self.first, self.second
        return (f"race on {self.buf}[{list(self.addrs)}]: "
                f"turn {f.index} wave{list(f.wave)} {f.op.kind}"
                f"{'(w)' if f.op.write else '(r)'} vs "
                f"turn {s.index} wave{list(s.wave)} {s.op.kind}"
                f"{'(w)' if s.op.write else '(r)'}")


def find_races(turns: Sequence[Turn], clocks: TraceClocks) -> List[Race]:
    """Conflicting cross-wave pairs not ordered by happens-before.

    Same-address atomic/atomic pairs are exempt: they synchronize by
    construction, so their order is a scheduling fact, not a race.
    """
    races: List[Race] = []
    mem_turns = [t for t in turns
                 if t.op is not None and t.op.kind != "barrier" and not t.spin]
    for n, second in enumerate(mem_turns):
        for first in mem_turns[:n]:
            if first.wave == second.wave:
                continue
            if not conflicts(first.op, second.op):
                continue
            if first.op.sync and second.op.sync:
                continue
            if clocks.ordered(first.index, second.index):
                continue
            overlap = tuple(sorted(set(first.op.addrs) & set(second.op.addrs)))
            races.append(Race(first, second, first.op.buf, overlap))
    return races
