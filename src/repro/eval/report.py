"""Command-line report: regenerate every table and figure.

Usage::

    python -m repro.eval.report [--scale paper|small] [--figures fig2,fig6]
"""

from __future__ import annotations

import argparse

from .experiments import ALL_FIGURES
from .harness import Harness
from .render import format_figure


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="paper", choices=["paper", "small"])
    parser.add_argument(
        "--figures", default=",".join(ALL_FIGURES),
        help="comma-separated subset of: " + ", ".join(ALL_FIGURES),
    )
    parser.add_argument("--cache", default="", help="results cache path")
    parser.add_argument(
        "--write-experiments", default="", metavar="PATH",
        help="write the EXPERIMENTS.md paper-vs-measured report to PATH",
    )
    args = parser.parse_args(argv)

    harness = Harness(scale=args.scale, cache_path=args.cache or None)
    if args.write_experiments:
        from .experiments_md import generate

        text = generate(harness)
        with open(args.write_experiments, "w") as fh:
            fh.write(text)
        print(f"wrote {args.write_experiments}")
        return 0
    for name in args.figures.split(","):
        name = name.strip()
        fn = ALL_FIGURES.get(name)
        if fn is None:
            parser.error(f"unknown figure {name!r}")
        print(format_figure(fn(harness)))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
