"""Plain-text rendering of experiment results (figures as tables)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass
class FigureData:
    """One table/figure's regenerated data."""

    figure_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def column_values(self, column: str) -> List[object]:
        return [row.get(column) for row in self.rows]

    def row_for(self, key_column: str, key: object) -> Dict[str, object]:
        for row in self.rows:
            if row.get(key_column) == key:
                return row
        raise KeyError(f"no row with {key_column}={key!r} in {self.figure_id}")


def format_figure(fig: FigureData) -> str:
    """Render a FigureData as an aligned text table."""
    widths = {c: len(c) for c in fig.columns}
    rendered_rows = []
    for row in fig.rows:
        rendered = {}
        for c in fig.columns:
            rendered[c] = _fmt(row.get(c))
            widths[c] = max(widths[c], len(rendered[c]))
        rendered_rows.append(rendered)

    lines = [f"== {fig.figure_id}: {fig.title} =="]
    header = "  ".join(c.ljust(widths[c]) for c in fig.columns)
    lines.append(header)
    lines.append("-" * len(header))
    for rendered in rendered_rows:
        lines.append("  ".join(rendered[c].ljust(widths[c]) for c in fig.columns))
    for note in fig.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
