"""Reference values and qualitative shapes from the paper.

The paper's figures are bar charts; exact values are only quoted in the
text for a few kernels.  We encode what the paper states precisely
(quoted numbers) and what it states qualitatively (the bimodal low/high
split of Figure 2, the winners/losers of Figure 9) so the harness and
the tests can compare *shape* rather than pretend to absolute numbers.
"""

from __future__ import annotations

#: Figure order used throughout the paper's plots.
FIGURE_ORDER = [
    "BinS", "BO", "BitS", "BlkSch", "DCT", "DWT", "FWT", "FW",
    "MM", "NB", "PS", "QRS", "R", "SC", "SF", "URNG",
]

#: Figure 2 (Intra-Group): the paper reports a bimodal split — kernels are
#: either "well" (0-10% overhead; SC is even accelerated) or "poorly"
#: (>= ~2x).  Section 7.5 lists FW among the compute/LDS-saturating
#: kernels with the expected ~2x redundant-computation cost.
INTRA_CATEGORY = {
    "BinS": "low", "BitS": "low", "FWT": "low", "SC": "low", "SF": "low",
    "BO": "high", "BlkSch": "high", "DCT": "high", "DWT": "high",
    "FW": "high", "MM": "high", "NB": "high", "PS": "high", "QRS": "high",
    "R": "high", "URNG": "high",
}

#: Exact Inter-Group slowdowns quoted in Section 7.3/7.4.
INTER_QUOTED = {
    "SC": 1.10,
    "NB": 1.16,
    "PS": 1.59,
    "DWT": 7.35,
    "FWT": 9.37,
    "BitS": 9.48,
}

#: Figure 6 qualitative bands for the rest: kernels that "do well" (<2x)
#: and compute/LDS-bound kernels at the expected ~2x.
INTER_CATEGORY = {
    "BinS": "low", "R": "low", "SF": "low", "SC": "low", "NB": "low",
    "PS": "low",
    "BO": "2x", "BlkSch": "2x", "DCT": "2x", "FW": "2x", "MM": "2x",
    "QRS": "2x", "URNG": "2x",
    "BitS": "extreme", "DWT": "extreme", "FWT": "extreme",
}

#: Figure 9: kernels the FAST (swizzle) communication notably helps / hurts.
FAST_IMPROVES = ["BO", "DWT", "PS", "QRS"]
FAST_REGRESSES = ["FW", "NB"]

#: Figure 4: kernels where communication is more than half of the total
#: Intra-Group overhead for at least one flavor.
COMM_DOMINATED_INTRA = ["BO", "DWT", "PS", "R"]

#: Figure 5 power study: <2% average power increase for all three kernels.
POWER_MAX_INCREASE = 0.02
POWER_BAND_W = (60.0, 74.0)

#: Table 1 quantities (kB except where noted).
TABLE1_PAPER = {
    "Local data share": (64, 14.0),
    "Vector register file": (256, 56.0),
    "Scalar register file": (8, 1.75),
    "R/W L1 cache": (16, 343.75 / 1024.0),
}
TABLE1_TOTAL_OVERHEAD = 0.21

#: Tables 2 and 3: protected structures per flavor.
TABLE2_INTRA_PLUS = ("SIMD ALU", "VRF", "LDS")
TABLE2_INTRA_MINUS = ("SIMD ALU", "VRF")
TABLE3_INTER = ("SIMD ALU", "VRF", "LDS", "SU", "SRF", "ID", "IF/SCHED")


def intra_band(slowdown: float) -> str:
    """Classify a measured Intra-Group slowdown into the paper's bands."""
    return "low" if slowdown <= 1.45 else "high"


def inter_band(slowdown: float) -> str:
    """Classify a measured Inter-Group slowdown into Figure 6's bands."""
    if slowdown < 1.9:
        return "low"
    if slowdown < 4.2:
        return "2x"
    return "extreme"
