"""Experiment harness: runs benchmark × variant combinations with caching.

Every figure in the paper is derived from a grid of runs:

* 16 kernels × {original, intra±lds(±fast), inter}  (Figures 2, 3, 6, 9)
* component-isolation runs — RMT without communication, and the
  original kernel with its CU occupancy capped to what the RMT version
  would achieve ("reserving space for redundant computation") —
  (Figures 4 and 7)
* power summaries for the long-running kernels (Figure 5).

Runs are deterministic, so records are cached (in memory and optionally
on disk) keyed by the full configuration.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from ..compiler.pipeline import compile_kernel
from ..gpu.config import HD7790
from ..gpu.occupancy import KernelResources, compute_occupancy
from ..kernels.suite import make_benchmark
from .paper_data import FIGURE_ORDER

#: Bump when simulator timing semantics change, to invalidate disk caches.
CACHE_VERSION = 5


@dataclass
class RunRecord:
    """One benchmark execution's headline numbers."""

    abbrev: str
    variant: str
    scale: str
    communication: bool
    capped_from: str = ""
    cycles: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)
    power_avg_w: float = 0.0
    power_peak_w: float = 0.0
    occupancy_groups_per_cu: int = 0
    detections: int = 0
    verified: bool = False

    def key(self) -> str:
        return _key(self.abbrev, self.variant, self.scale,
                    self.communication, self.capped_from)


def _key(abbrev, variant, scale, communication, capped_from) -> str:
    return f"v{CACHE_VERSION}/{scale}/{abbrev}/{variant}/comm={communication}/cap={capped_from}"


class Harness:
    """Runs and caches the experiment grid."""

    def __init__(self, scale: str = "paper", cache_path: Optional[str] = None):
        self.scale = scale
        if cache_path is None:
            cache_path = os.environ.get("REPRO_CACHE", "")
        self.cache_path = Path(cache_path) if cache_path else None
        self._cache: Dict[str, RunRecord] = {}
        if self.cache_path and self.cache_path.exists():
            self._load_disk()

    # -- core ---------------------------------------------------------------

    def run(
        self,
        abbrev: str,
        variant: str = "original",
        communication: bool = True,
        capped_from: str = "",
    ) -> RunRecord:
        """Run (or fetch) one benchmark configuration.

        ``capped_from`` requests the occupancy-inflation isolation run:
        the *original* kernel executed with CU occupancy capped to what
        ``capped_from`` (an RMT variant name) would achieve.
        """
        key = _key(abbrev, variant, self.scale, communication, capped_from)
        hit = self._cache.get(key)
        if hit is not None:
            return hit

        bench = make_benchmark(abbrev, self.scale)
        if capped_from:
            if variant != "original":
                raise ValueError("capped runs use the original kernel")
            record = self._run_capped(bench, abbrev, capped_from)
        else:
            compiled = bench.compile(variant, communication=communication)
            result = bench.run(_session(), compiled)
            record = self._record(bench, abbrev, variant, communication,
                                  "", result)
        self._cache[key] = record
        if self.cache_path:
            self._save_disk()
        return record

    def _run_capped(self, bench, abbrev: str, capped_from: str) -> RunRecord:
        original = bench.compile("original")
        rmt = bench.compile(capped_from)
        local = original.kernel.metadata["local_size"]
        flat_local = local[0] * local[1] * local[2]
        occ_orig = compute_occupancy(HD7790, original.resources, flat_local)
        if capped_from == "inter":
            # Doubling the group count halves how many *useful* groups a CU
            # hosts at a time.
            cap = max(1, occ_orig.max_groups_per_cu // 2)
        else:
            rmt_local = rmt.kernel.metadata["local_size"]
            rmt_flat = rmt_local[0] * rmt_local[1] * rmt_local[2]
            occ_rmt = compute_occupancy(HD7790, rmt.resources, rmt_flat)
            cap = min(occ_orig.max_groups_per_cu, occ_rmt.max_groups_per_cu)
        resources = dataclasses.replace(
            original.resources, groups_per_cu_cap=cap
        )
        result = bench.run(_session(), original, resources=resources)
        return self._record(bench, abbrev, "original", True, capped_from, result)

    def _record(self, bench, abbrev, variant, communication, capped_from,
                result) -> RunRecord:
        report = result.merged_counters().report(
            result.cycles, HD7790.num_cus, HD7790.simds_per_cu
        )
        power = result.session.power_report()
        occ = result.launches[0].occupancy
        return RunRecord(
            abbrev=abbrev,
            variant=variant,
            scale=self.scale,
            communication=communication,
            capped_from=capped_from,
            cycles=result.cycles,
            counters=report.as_dict(),
            power_avg_w=power.average_w,
            power_peak_w=power.peak_w,
            occupancy_groups_per_cu=occ.max_groups_per_cu,
            detections=len(result.detections),
            verified=bench.check(result),
        )

    # -- convenience -----------------------------------------------------

    def slowdown(self, abbrev: str, variant: str, **kw) -> float:
        base = self.run(abbrev, "original")
        other = self.run(abbrev, variant, **kw)
        return other.cycles / base.cycles

    def all_kernels(self):
        return list(FIGURE_ORDER)

    # -- disk cache -----------------------------------------------------------

    def _load_disk(self) -> None:
        try:
            raw = json.loads(self.cache_path.read_text())
        except (OSError, ValueError):
            return
        for key, payload in raw.items():
            if not key.startswith(f"v{CACHE_VERSION}/"):
                continue
            self._cache[key] = RunRecord(**payload)

    def _save_disk(self) -> None:
        payload = {
            key: dataclasses.asdict(rec) for key, rec in self._cache.items()
        }
        tmp = self.cache_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
        tmp.replace(self.cache_path)


def _session():
    from ..runtime.api import Session

    return Session()
