"""Experiment harness: runs benchmark × variant combinations with caching.

Every figure in the paper is derived from a grid of runs:

* 16 kernels × {original, intra±lds(±fast), inter}  (Figures 2, 3, 6, 9)
* component-isolation runs — RMT without communication, and the
  original kernel with its CU occupancy capped to what the RMT version
  would achieve ("reserving space for redundant computation") —
  (Figures 4 and 7)
* power summaries for the long-running kernels (Figure 5).

Runs are deterministic, so records are cached (in memory and optionally
on disk) keyed by the full configuration.  The grid is embarrassingly
parallel: :meth:`Harness.run_grid` fans uncached cells out across the
``repro.orchestrator`` worker pool and merges the resulting records
back into the same cache.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..compiler.pipeline import compile_kernel
from ..gpu.config import HD7790
from ..gpu.occupancy import KernelResources, compute_occupancy
from ..kernels.suite import make_benchmark
from .paper_data import FIGURE_ORDER

#: Bump when simulator timing semantics change, to invalidate disk caches.
CACHE_VERSION = 5

#: Variants the overhead figures sweep by default.
DEFAULT_GRID_VARIANTS = ("original", "intra+lds", "intra-lds", "inter")


@dataclass
class RunRecord:
    """One benchmark execution's headline numbers."""

    abbrev: str
    variant: str
    scale: str
    communication: bool
    capped_from: str = ""
    cycles: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)
    power_avg_w: float = 0.0
    power_peak_w: float = 0.0
    occupancy_groups_per_cu: int = 0
    detections: int = 0
    verified: bool = False

    def key(self) -> str:
        return _key(self.abbrev, self.variant, self.scale,
                    self.communication, self.capped_from)


def _key(abbrev, variant, scale, communication, capped_from) -> str:
    return f"v{CACHE_VERSION}/{scale}/{abbrev}/{variant}/comm={communication}/cap={capped_from}"


@dataclass(frozen=True)
class GridCell:
    """One cell of the experiment grid (picklable worker payload)."""

    abbrev: str
    variant: str = "original"
    communication: bool = True
    capped_from: str = ""

    def key(self, scale: str) -> str:
        return _key(self.abbrev, self.variant, scale,
                    self.communication, self.capped_from)


CellLike = Union[GridCell, Tuple, Dict]


def _as_cell(cell: CellLike) -> GridCell:
    if isinstance(cell, GridCell):
        return cell
    if isinstance(cell, dict):
        return GridCell(**cell)
    return GridCell(*cell)


def default_grid(
    kernels: Optional[Sequence[str]] = None,
    variants: Sequence[str] = DEFAULT_GRID_VARIANTS,
) -> List[GridCell]:
    """The kernels × variants product behind the overhead figures."""
    return [
        GridCell(abbrev=abbrev, variant=variant)
        for abbrev in (kernels if kernels is not None else FIGURE_ORDER)
        for variant in variants
    ]


# -- cell execution (module-level so forked grid workers can run it) -------


def _prewarm_cells(cells: Sequence[GridCell], scale: str) -> None:
    """Best-effort compile of each cell's kernels into the process cache.

    Errors are deliberately swallowed: a genuinely broken cell will fail
    inside its worker, where the retry/quarantine machinery and the
    error reporting live.
    """
    from ..compiler.cache import default_cache

    if default_cache() is None:
        return
    for cell in cells:
        try:
            if cell.capped_from:
                make_benchmark(cell.abbrev, scale).compile("original")
                make_benchmark(cell.abbrev, scale).compile(cell.capped_from)
            else:
                make_benchmark(cell.abbrev, scale).compile(
                    cell.variant, communication=cell.communication)
        except Exception:
            pass


def compute_record(cell: GridCell, scale: str) -> RunRecord:
    """Run one grid cell from scratch and produce its record."""
    bench = make_benchmark(cell.abbrev, scale)
    if cell.capped_from:
        if cell.variant != "original":
            raise ValueError("capped runs use the original kernel")
        return _run_capped(bench, cell.abbrev, scale, cell.capped_from)
    compiled = bench.compile(cell.variant, communication=cell.communication)
    result = bench.run(_session(), compiled)
    return _record(bench, cell.abbrev, cell.variant, scale,
                   cell.communication, "", result)


def _run_capped(bench, abbrev: str, scale: str, capped_from: str) -> RunRecord:
    original = bench.compile("original")
    rmt = bench.compile(capped_from)
    local = original.kernel.metadata["local_size"]
    flat_local = local[0] * local[1] * local[2]
    occ_orig = compute_occupancy(HD7790, original.resources, flat_local)
    if capped_from == "inter":
        # Doubling the group count halves how many *useful* groups a CU
        # hosts at a time.
        cap = max(1, occ_orig.max_groups_per_cu // 2)
    else:
        rmt_local = rmt.kernel.metadata["local_size"]
        rmt_flat = rmt_local[0] * rmt_local[1] * rmt_local[2]
        occ_rmt = compute_occupancy(HD7790, rmt.resources, rmt_flat)
        cap = min(occ_orig.max_groups_per_cu, occ_rmt.max_groups_per_cu)
    resources = dataclasses.replace(
        original.resources, groups_per_cu_cap=cap
    )
    result = bench.run(_session(), original, resources=resources)
    return _record(bench, abbrev, "original", scale, True, capped_from, result)


def _record(bench, abbrev, variant, scale, communication, capped_from,
            result) -> RunRecord:
    report = result.merged_counters().report(
        result.cycles, HD7790.num_cus, HD7790.simds_per_cu
    )
    power = result.session.power_report()
    occ = result.launches[0].occupancy
    return RunRecord(
        abbrev=abbrev,
        variant=variant,
        scale=scale,
        communication=communication,
        capped_from=capped_from,
        cycles=result.cycles,
        counters=report.as_dict(),
        power_avg_w=power.average_w,
        power_peak_w=power.peak_w,
        occupancy_groups_per_cu=occ.max_groups_per_cu,
        detections=len(result.detections),
        verified=bench.check(result),
    )


class Harness:
    """Runs and caches the experiment grid.

    ``workers`` sets the default fan-out for :meth:`run_grid` (also
    honoured from the ``REPRO_WORKERS`` environment variable, so test
    fixtures and CI can opt in without code changes).
    """

    def __init__(
        self,
        scale: str = "paper",
        cache_path: Optional[str] = None,
        workers: Optional[int] = None,
    ):
        self.scale = scale
        if cache_path is None:
            cache_path = os.environ.get("REPRO_CACHE", "")
        self.cache_path = Path(cache_path) if cache_path else None
        if workers is None:
            workers = int(os.environ.get("REPRO_WORKERS", "1") or 1)
        self.workers = max(1, workers)
        self._cache: Dict[str, RunRecord] = {}
        if self.cache_path and self.cache_path.exists():
            self._load_disk()

    # -- core ---------------------------------------------------------------

    def run(
        self,
        abbrev: str,
        variant: str = "original",
        communication: bool = True,
        capped_from: str = "",
    ) -> RunRecord:
        """Run (or fetch) one benchmark configuration.

        ``capped_from`` requests the occupancy-inflation isolation run:
        the *original* kernel executed with CU occupancy capped to what
        ``capped_from`` (an RMT variant name) would achieve.
        """
        cell = GridCell(abbrev, variant, communication, capped_from)
        key = cell.key(self.scale)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        record = compute_record(cell, self.scale)
        self._cache[key] = record
        if self.cache_path:
            self._save_disk()
        return record

    def run_grid(
        self,
        cells: Optional[Iterable[CellLike]] = None,
        *,
        workers: Optional[int] = None,
        timeout_s: Optional[float] = None,
        max_retries: int = 1,
        telemetry=None,
    ) -> List[RunRecord]:
        """Run a batch of grid cells, fanning uncached ones out to workers.

        Returns records in ``cells`` order (default: the full kernels ×
        variants figure grid).  Successful cells are merged into the
        in-memory cache and written to disk once at the end; a cell that
        fails even after retries raises ``RuntimeError`` *after* the
        surviving cells have been cached, so a re-run only repeats the
        failures.
        """
        from ..orchestrator import Telemetry, run_tasks

        grid = [_as_cell(c) for c in (cells if cells is not None
                                      else default_grid())]
        if workers is None:
            workers = self.workers
        pending = []
        seen = set()
        for cell in grid:
            key = cell.key(self.scale)
            if key not in self._cache and key not in seen:
                seen.add(key)
                pending.append((key, cell))

        tel = telemetry if telemetry is not None else Telemetry(
            label=f"grid/{self.scale}")
        tel.start(len(grid), skipped=len(grid) - len(pending))
        scale = self.scale
        if workers and workers > 1 and pending:
            # Compile every pending cell in the parent first: the forked
            # workers inherit the warm compile cache, so lint + TV run
            # once per distinct kernel/variant instead of once per worker.
            _prewarm_cells([cell for _, cell in pending], scale)
        results = run_tasks(
            pending,
            lambda cell: compute_record(cell, scale),
            workers=workers, timeout_s=timeout_s, max_retries=max_retries,
            telemetry=tel,
        )
        tel.finish()

        failures = []
        for key, task_result in results.items():
            if task_result.ok:
                self._cache[key] = task_result.value
            else:
                failures.append(
                    f"{key}: {task_result.status} ({task_result.error})")
        if self.cache_path and results:
            self._save_disk()
        if failures:
            raise RuntimeError(
                "grid cells failed after retries:\n  " + "\n  ".join(failures))
        return [self._cache[cell.key(self.scale)] for cell in grid]

    # -- convenience -----------------------------------------------------

    def slowdown(self, abbrev: str, variant: str, **kw) -> float:
        base = self.run(abbrev, "original")
        other = self.run(abbrev, variant, **kw)
        return other.cycles / base.cycles

    def all_kernels(self):
        return list(FIGURE_ORDER)

    # -- disk cache -----------------------------------------------------------

    def _load_disk(self) -> None:
        try:
            raw = json.loads(self.cache_path.read_text())
        except (OSError, ValueError):
            return
        for key, payload in raw.items():
            if not key.startswith(f"v{CACHE_VERSION}/"):
                continue
            self._cache[key] = RunRecord(**payload)

    def _save_disk(self) -> None:
        payload = {
            key: dataclasses.asdict(rec) for key, rec in self._cache.items()
        }
        tmp = self.cache_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
        tmp.replace(self.cache_path)


def _session():
    from ..runtime.api import Session

    return Session()
