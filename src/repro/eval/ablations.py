"""Ablation experiments beyond the paper's main figures.

* **Naive kernel duplication** (Section 3.4 / Dimitrov et al.): run the
  whole kernel twice and let the host compare outputs — the baseline the
  paper's RMT designs improve on.  Its cost is a flat ~2x everywhere
  (plus host-side comparison, which the paper notes stops scaling once
  GPUs talk to I/O directly), where Intra-Group RMT beats it exactly on
  the memory-bound kernels that can hide redundant work.
* **Occupancy sensitivity**: the latency-hiding mechanism behind the
  paper's Figure 2 bimodality, measured directly by capping resident
  work-groups per CU.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..gpu.occupancy import KernelResources
from ..kernels.suite import make_benchmark
from ..runtime.api import Session
from .harness import Harness
from .render import FigureData


def naive_duplication_data(harness: Harness, kernels: List[str]) -> FigureData:
    """Compare naive full-kernel duplication against the RMT flavors."""
    fig = FigureData(
        figure_id="Ablation A",
        title="Naive kernel duplication vs compiler-managed RMT (slowdown)",
        columns=["kernel", "dual_kernel", "intra_best", "inter", "rmt_wins"],
    )
    for ab in kernels:
        dual = run_dual_kernel(harness.scale, ab)
        base = harness.run(ab, "original").cycles
        intra_best = min(
            harness.run(ab, "intra+lds").cycles,
            harness.run(ab, "intra-lds").cycles,
        ) / base
        inter = harness.run(ab, "inter").cycles / base
        dual_slow = dual / base
        fig.rows.append({
            "kernel": ab,
            "dual_kernel": dual_slow,
            "intra_best": intra_best,
            "inter": inter,
            "rmt_wins": intra_best < dual_slow,
        })
    fig.notes.append(
        "dual_kernel re-executes the whole launch sequence and leaves "
        "output comparison to the host (unprotected, and unscalable once "
        "kernels own their I/O — the paper's argument for on-GPU checking)"
    )
    return fig


def run_dual_kernel(scale: str, abbrev: str) -> float:
    """Device cycles for naive duplication: the benchmark executed twice."""
    session = Session()
    bench = make_benchmark(abbrev, scale)
    compiled = bench.compile("original")
    first = bench.run(session, compiled)
    second_bench = make_benchmark(abbrev, scale)
    second = second_bench.run(session, compiled)
    # Host-side output comparison of the two copies (detection coverage
    # equivalent to output comparison, but off-device).
    for key, arr in first.outputs.items():
        if not np.array_equal(arr, second.outputs[key]):
            raise AssertionError(f"naive duplication mismatch in {key}")
    return first.cycles + second.cycles


def occupancy_sweep_data(
    scale: str, abbrev: str, caps: List[int]
) -> FigureData:
    """Runtime of a kernel as resident work-groups per CU are restricted."""
    fig = FigureData(
        figure_id="Ablation B",
        title=f"{abbrev}: latency hiding vs resident work-groups per CU",
        columns=["groups_per_cu", "cycles", "vs_unlimited"],
    )
    bench = make_benchmark(abbrev, scale)
    compiled = bench.compile("original")
    unlimited = bench.run(Session(), compiled).cycles
    for cap in caps:
        bench_c = make_benchmark(abbrev, scale)
        compiled_c = bench_c.compile("original")
        resources = KernelResources(
            vgprs_per_workitem=compiled_c.resources.vgprs_per_workitem,
            sgprs_per_wave=compiled_c.resources.sgprs_per_wave,
            lds_bytes_per_group=compiled_c.resources.lds_bytes_per_group,
            groups_per_cu_cap=cap,
        )
        cycles = bench_c.run(Session(), compiled_c, resources=resources).cycles
        fig.rows.append({
            "groups_per_cu": cap,
            "cycles": cycles,
            "vs_unlimited": cycles / unlimited,
        })
    fig.notes.append(
        "monotone improvement with occupancy is the latency-hiding "
        "mechanism that lets memory-bound kernels absorb RMT's redundant "
        "work (paper Section 6.4)"
    )
    return fig
