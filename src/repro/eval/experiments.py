"""Regeneration of every table and figure in the paper's evaluation.

Each ``table*``/``fig*`` function returns a :class:`FigureData` whose
rows mirror what the paper plots; ``format_figure`` renders it as text.
Figures that need simulation take a :class:`Harness` (which caches), so
regenerating all figures costs one grid of runs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..compiler.analysis.sor import STRUCTURES, analyze_sor
from ..compiler.pipeline import compile_kernel
from ..ir.builder import KernelBuilder
from ..ir.types import DType
from .ecc import table1 as ecc_table1
from .ecc import total_overhead_fraction
from .harness import Harness
from .paper_data import (
    FAST_IMPROVES,
    FAST_REGRESSES,
    FIGURE_ORDER,
    INTER_CATEGORY,
    INTER_QUOTED,
    INTRA_CATEGORY,
    TABLE1_PAPER,
    inter_band,
    intra_band,
)
from .render import FigureData


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------


def table1_data() -> FigureData:
    """Table 1: SEC-DED ECC overheads of GCN CU structures."""
    fig = FigureData(
        figure_id="Table 1",
        title="Estimated SEC-DED ECC overhead per GCN compute unit",
        columns=["structure", "size_kB", "ecc_kB", "overhead", "paper_ecc_kB"],
    )
    entries = ecc_table1()
    for e in entries:
        paper = TABLE1_PAPER.get(e.structure)
        fig.rows.append({
            "structure": e.structure,
            "size_kB": e.size_bytes / 1024,
            "ecc_kB": e.overhead_bytes / 1024,
            "overhead": e.overhead_fraction,
            "paper_ecc_kB": paper[1] if paper else None,
        })
    fig.notes.append(
        f"total overhead {total_overhead_fraction(entries):.1%} "
        "(paper: ~21%)"
    )
    fig.notes.append(
        "L1 row: standard (522,512) SEC-DED gives 352 B; the paper prints "
        "343.75 B"
    )
    return fig


def _sor_rows(variants) -> FigureData:
    fig = FigureData(
        figure_id="",
        title="",
        columns=["flavor"] + list(STRUCTURES),
    )
    kernel = _representative_kernel()
    for variant in variants:
        compiled = compile_kernel(kernel, variant)
        row = {"flavor": variant}
        row.update(compiled.sor.as_row())
        fig.rows.append(row)
    return fig


def table2_data() -> FigureData:
    """Table 2: CU structures protected by Intra-Group RMT."""
    fig = _sor_rows(["intra+lds", "intra-lds"])
    fig.figure_id = "Table 2"
    fig.title = "CU structures protected by Intra-Group RMT"
    return fig


def table3_data() -> FigureData:
    """Table 3: CU structures protected by Inter-Group RMT."""
    fig = _sor_rows(["inter"])
    fig.figure_id = "Table 3"
    fig.title = "CU structures protected by Inter-Group RMT"
    return fig


def _representative_kernel():
    b = KernelBuilder("representative")
    src = b.buffer_param("src", DType.F32)
    dst = b.buffer_param("dst", DType.F32)
    lds = b.local_alloc("tile", DType.F32, 64)
    gid = b.global_id(0)
    lid = b.local_id(0)
    b.store_local(lds, lid, b.load(src, gid))
    b.barrier()
    b.store(dst, gid, b.mul(b.load_local(lds, lid), 2.0))
    k = b.finish()
    k.metadata["local_size"] = (64, 1, 1)
    return k


# ---------------------------------------------------------------------------
# Figures 2 and 6: slowdowns
# ---------------------------------------------------------------------------


def fig2_data(harness: Harness) -> FigureData:
    """Figure 2: Intra-Group ±LDS slowdowns for all 16 kernels."""
    fig = FigureData(
        figure_id="Figure 2",
        title="Intra-Group RMT slowdown (normalized to original kernel)",
        columns=["kernel", "intra+lds", "intra-lds", "paper_band", "measured_band", "band_match"],
    )
    for ab in FIGURE_ORDER:
        plus = harness.slowdown(ab, "intra+lds")
        minus = harness.slowdown(ab, "intra-lds")
        band = intra_band(min(plus, minus))
        fig.rows.append({
            "kernel": ab,
            "intra+lds": plus,
            "intra-lds": minus,
            "paper_band": INTRA_CATEGORY[ab],
            "measured_band": band,
            "band_match": band == INTRA_CATEGORY[ab],
        })
    fig.notes.append(
        "paper: bimodal — overheads of 0-10% (memory-bound kernels) or >=2x "
        "(compute/LDS-bound); SC accelerated"
    )
    return fig


def fig6_data(harness: Harness) -> FigureData:
    """Figure 6: Inter-Group RMT slowdowns."""
    fig = FigureData(
        figure_id="Figure 6",
        title="Inter-Group RMT slowdown (normalized to original kernel)",
        columns=["kernel", "inter", "paper_quoted", "paper_band", "measured_band", "band_match"],
    )
    for ab in FIGURE_ORDER:
        slow = harness.slowdown(ab, "inter")
        band = inter_band(slow)
        fig.rows.append({
            "kernel": ab,
            "inter": slow,
            "paper_quoted": INTER_QUOTED.get(ab),
            "paper_band": INTER_CATEGORY[ab],
            "measured_band": band,
            "band_match": band == INTER_CATEGORY[ab],
        })
    fig.notes.append("paper quotes: SC 1.10x, NB 1.16x, PS 1.59x, DWT 7.35x, FWT 9.37x, BitS 9.48x")
    return fig


# ---------------------------------------------------------------------------
# Figure 3: counters
# ---------------------------------------------------------------------------


def fig3_data(harness: Harness) -> FigureData:
    """Figure 3: VALUBusy / MemUnitBusy / WriteUnitStalled per variant."""
    fig = FigureData(
        figure_id="Figure 3",
        title="Kernel time in vector ALU vs. memory (original, LDS+, LDS-)",
        columns=["kernel", "variant", "VALUBusy", "MemUnitBusy", "WriteUnitStalled"],
    )
    for ab in FIGURE_ORDER:
        for variant, label in (
            ("original", "Original"), ("intra+lds", "LDS+"), ("intra-lds", "LDS-"),
        ):
            rec = harness.run(ab, variant)
            fig.rows.append({
                "kernel": ab,
                "variant": label,
                "VALUBusy": rec.counters["VALUBusy"],
                "MemUnitBusy": rec.counters["MemUnitBusy"],
                "WriteUnitStalled": rec.counters["WriteUnitStalled"],
            })
    fig.notes.append("paper: kernels with low RMT overheads tend to be memory-bound")
    return fig


# ---------------------------------------------------------------------------
# Figures 4 and 7: component isolation
# ---------------------------------------------------------------------------


def _component_rows(harness: Harness, flavor: str):
    rows = []
    for ab in FIGURE_ORDER:
        base = harness.run(ab, "original").cycles
        capped = harness.run(ab, "original", capped_from=flavor).cycles
        nocomm = harness.run(ab, flavor, communication=False).cycles
        full = harness.run(ab, flavor).cycles
        rows.append({
            "kernel": ab,
            "flavor": flavor,
            "doubling": (capped - base) / base,
            "redundant_compute": (nocomm - capped) / base,
            "communication": (full - nocomm) / base,
            "total_overhead": (full - base) / base,
        })
    return rows


def fig4_data(harness: Harness) -> FigureData:
    """Figure 4: relative component overheads of Intra-Group RMT."""
    fig = FigureData(
        figure_id="Figure 4",
        title="Intra-Group RMT overhead components (fraction of original runtime)",
        columns=["kernel", "flavor", "doubling", "redundant_compute",
                 "communication", "total_overhead"],
    )
    for flavor in ("intra+lds", "intra-lds"):
        fig.rows.extend(_component_rows(harness, flavor))
    fig.notes.append(
        "successive augmentation: occupancy reservation -> +redundant "
        "work-items (no comparison) -> +communication; negative components "
        "are speed-ups, as in the paper"
    )
    return fig


def fig7_data(harness: Harness) -> FigureData:
    """Figure 7: relative component overheads of Inter-Group RMT."""
    fig = FigureData(
        figure_id="Figure 7",
        title="Inter-Group RMT overhead components (fraction of original runtime)",
        columns=["kernel", "flavor", "doubling", "redundant_compute",
                 "communication", "total_overhead"],
    )
    fig.rows.extend(_component_rows(harness, "inter"))
    fig.notes.append(
        "paper: communication only dominates for kernels already "
        "bottlenecked on the memory hierarchy (>3x kernels)"
    )
    return fig


# ---------------------------------------------------------------------------
# Figure 5: power
# ---------------------------------------------------------------------------


def fig5_data(harness: Harness) -> FigureData:
    """Figure 5: average/peak power for the long-running kernels."""
    from .paper_data import POWER_MAX_INCREASE

    fig = FigureData(
        figure_id="Figure 5",
        title="Estimated average power, long-running kernels (W)",
        columns=["kernel", "variant", "average_w", "peak_w", "vs_original"],
    )
    for ab in ("BO", "BlkSch", "FW"):
        base = harness.run(ab, "original")
        for variant, label in (
            ("original", "Original"), ("intra+lds", "LDS+"), ("intra-lds", "LDS-"),
        ):
            rec = harness.run(ab, variant)
            fig.rows.append({
                "kernel": ab,
                "variant": label,
                "average_w": rec.power_avg_w,
                "peak_w": rec.power_peak_w,
                "vs_original": rec.power_avg_w / base.power_avg_w - 1.0,
            })
    fig.notes.append(
        f"paper: <{POWER_MAX_INCREASE:.0%} average-power increase for all "
        "three workloads; energy therefore tracks runtime"
    )
    return fig


# ---------------------------------------------------------------------------
# Figure 8: swizzle semantics
# ---------------------------------------------------------------------------


def fig8_data() -> FigureData:
    """Figure 8: the swizzle cross-lane exchange, demonstrated."""
    from ..gpu.wavefront import GroupState, LaunchContext, Wavefront
    from ..gpu.config import HD7790
    from ..ir.core import Swizzle

    b = KernelBuilder("swizzle_demo")
    dummy_kernel = b.finish()
    dummy_kernel.metadata["local_size"] = (64, 1, 1)
    ctx = LaunchContext(dummy_kernel, (64, 1, 1), (64, 1, 1), {}, {}, config=HD7790)
    wave = Wavefront(ctx, GroupState(ctx, 0), 0)

    src = dummy_kernel.new_reg(DType.U32, "v0")
    dst = dummy_kernel.new_reg(DType.U32, "v1")
    wave.regs[id(src)] = np.arange(64, dtype=np.uint32)
    instr = Swizzle(dst, src, and_mask=~0, or_mask=1, xor_mask=0)
    mask = np.ones(64, dtype=bool)
    wave._exec_pure(instr, mask)
    out = wave.regs[id(dst)]

    fig = FigureData(
        figure_id="Figure 8",
        title="swizzle (or_mask=1): odd-lane values duplicated into even lanes",
        columns=["lane", "before", "after"],
    )
    for lane in range(8):
        fig.rows.append({
            "lane": f"t{lane}",
            "before": int(lane),
            "after": int(out[lane]),
        })
    fig.notes.append("lane i reads lane (i | 1): pairs (0,1) both observe lane 1's value")
    return fig


# ---------------------------------------------------------------------------
# Figure 9: FAST register-level communication
# ---------------------------------------------------------------------------


def fig9_data(harness: Harness) -> FigureData:
    """Figure 9: Intra-Group RMT with and without FAST (swizzle) comm."""
    fig = FigureData(
        figure_id="Figure 9",
        title="Intra-Group RMT slowdown with FAST register-level communication",
        columns=["kernel", "intra+lds", "intra+lds FAST", "intra-lds",
                 "intra-lds FAST", "fast_helps"],
    )
    for ab in FIGURE_ORDER:
        plus = harness.slowdown(ab, "intra+lds")
        plus_fast = harness.slowdown(ab, "intra+lds_fast")
        minus = harness.slowdown(ab, "intra-lds")
        minus_fast = harness.slowdown(ab, "intra-lds_fast")
        fig.rows.append({
            "kernel": ab,
            "intra+lds": plus,
            "intra+lds FAST": plus_fast,
            "intra-lds": minus,
            "intra-lds FAST": minus_fast,
            "fast_helps": min(plus_fast, minus_fast) < min(plus, minus),
        })
    fig.notes.append(
        f"paper: FAST notably improves {', '.join(FAST_IMPROVES)}; slightly "
        f"regresses {', '.join(FAST_REGRESSES)} (packing overhead)"
    )
    return fig


ALL_FIGURES = {
    "table1": lambda h: table1_data(),
    "table2": lambda h: table2_data(),
    "table3": lambda h: table3_data(),
    "fig2": fig2_data,
    "fig3": fig3_data,
    "fig4": fig4_data,
    "fig5": fig5_data,
    "fig6": fig6_data,
    "fig7": fig7_data,
    "fig8": lambda h: fig8_data(),
    "fig9": fig9_data,
}
