"""Evaluation: ECC model, experiment harness, figure regeneration."""

from .ecc import EccEntry, ecc_overhead, format_table1, secded_check_bits, table1, total_overhead_fraction
from .harness import (
    CACHE_VERSION,
    GridCell,
    Harness,
    RunRecord,
    compute_record,
    default_grid,
)
from .render import FigureData, format_figure
from . import experiments, paper_data

__all__ = [
    "CACHE_VERSION",
    "EccEntry",
    "FigureData",
    "GridCell",
    "Harness",
    "RunRecord",
    "compute_record",
    "default_grid",
    "ecc_overhead",
    "experiments",
    "format_figure",
    "format_table1",
    "paper_data",
    "secded_check_bits",
    "table1",
    "total_overhead_fraction",
]
