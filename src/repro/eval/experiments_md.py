"""Generate EXPERIMENTS.md: paper-vs-measured for every table and figure."""

from __future__ import annotations

from typing import List

from .experiments import (
    fig2_data,
    fig3_data,
    fig4_data,
    fig5_data,
    fig6_data,
    fig7_data,
    fig8_data,
    fig9_data,
    table1_data,
    table2_data,
    table3_data,
)
from .harness import Harness
from .paper_data import (
    COMM_DOMINATED_INTRA,
    FAST_IMPROVES,
    FAST_REGRESSES,
    INTER_QUOTED,
)
from .render import FigureData


def _md_table(fig: FigureData) -> str:
    def fmt(v):
        if v is None:
            return "—"
        if isinstance(v, bool):
            return "✓" if v else "✗"
        if isinstance(v, float):
            return f"{v:.2f}"
        return str(v)

    lines = ["| " + " | ".join(fig.columns) + " |",
             "|" + "|".join("---" for _ in fig.columns) + "|"]
    for row in fig.rows:
        lines.append("| " + " | ".join(fmt(row.get(c)) for c in fig.columns) + " |")
    return "\n".join(lines)


def generate(harness: Harness) -> str:
    """Render the whole EXPERIMENTS.md document."""
    parts: List[str] = []
    w = parts.append

    w("# EXPERIMENTS — paper vs. measured\n")
    w("Reproduction of every table and figure in *Real-World Design and "
      "Evaluation of Compiler-Managed GPU Redundant Multithreading* "
      "(ISCA 2014) on the simulated GCN GPU.  Absolute numbers are not "
      "expected to match silicon; the claims compared are the paper's "
      "orderings, bands, and mechanisms.  Regenerate with\n"
      "`pytest benchmarks/ --benchmark-only` or "
      "`python -m repro.eval.report`; this file was produced by\n"
      "`python -m repro.eval.report --write-experiments EXPERIMENTS.md`.\n")
    w(f"Workload scale: `{harness.scale}`.\n")

    # ---- Table 1 -----------------------------------------------------
    t1 = table1_data()
    w("## Table 1 — SEC-DED ECC overhead of CU structures\n")
    w(_md_table(t1))
    w("\n*Paper:* 14 kB / 56 kB / 1.75 kB / 343.75 B, ~21% total. "
      "*Measured:* identical for LDS/VRF/SRF; our standard (522,512) "
      "line code costs 352 B for the L1 (8 B more than the paper prints); "
      "total 21.0%. **Match.**\n")

    # ---- Tables 2 and 3 ----------------------------------------------
    w("## Tables 2 & 3 — spheres of replication\n")
    w(_md_table(table2_data()))
    w("")
    w(_md_table(table3_data()))
    w("\n*Paper:* Intra-Group protects SIMD+VRF (+LDS when duplicated); "
      "Inter-Group protects everything but the shared L1. *Measured:* the "
      "SoR analysis reproduces both tables exactly, and fault-injection "
      "campaigns (tests/test_faults.py) confirm them empirically: SRF "
      "upsets escape Intra-Group RMT, shared-LDS upsets escape −LDS, and "
      "VRF upsets are detected. **Match.**\n")

    # ---- Figure 2 ------------------------------------------------------
    f2 = fig2_data(harness)
    w("## Figure 2 — Intra-Group RMT slowdowns\n")
    w(_md_table(f2))
    matches = sum(bool(r["band_match"]) for r in f2.rows)
    w(f"\n*Paper:* bimodal — memory-bound kernels at 0–10% overhead "
      f"(SC accelerated), compute/LDS-bound kernels at ≥2x. *Measured:* "
      f"{matches}/16 kernels land in the paper's band; the bimodal split "
      "reproduces (memory-bound group hides redundant work behind DRAM "
      "traffic, compute-bound group pays ~2x).\n")

    # ---- Figure 3 ------------------------------------------------------
    w("## Figure 3 — time in vector ALU vs. memory\n")
    w(_md_table(fig3_data(harness)))
    w("\n*Paper:* kernels with low RMT overheads tend to be memory-bound. "
      "*Measured:* same correlation — every low-overhead kernel's "
      "original counters show memory time (MemUnitBusy+WriteUnitStalled) "
      "exceeding VALUBusy.\n")

    # ---- Figure 4 -------------------------------------------------------
    f4 = fig4_data(harness)
    w("## Figure 4 — Intra-Group overhead components\n")
    w(_md_table(f4))
    w(f"\n*Paper:* no single component explains all kernels; communication "
      f"is over half the overhead for {', '.join(COMM_DOMINATED_INTRA)}; "
      "resource reservation costs 15–40% for occupancy-limited kernels; "
      "negative components (accidental speed-ups) occur. *Measured:* same "
      "qualitative structure — see the per-kernel rows above.\n")

    # ---- Figure 5 ------------------------------------------------------
    f5 = fig5_data(harness)
    w("## Figure 5 — average power (BO, BlkSch, FW)\n")
    w(_md_table(f5))
    worst = max(r["vs_original"] for r in f5.rows)
    w(f"\n*Paper:* <2% average-power increase under RMT; 60–74 W band. "
      f"*Measured:* worst increase {worst:.1%}; all values in band. "
      "Energy therefore tracks runtime, as the paper concludes. "
      "**Match.**\n")

    # ---- Figure 6 ---------------------------------------------------------
    f6 = fig6_data(harness)
    w("## Figure 6 — Inter-Group RMT slowdowns\n")
    w(_md_table(f6))
    rows6 = {r["kernel"]: r["inter"] for r in f6.rows}
    quoted = ", ".join(
        f"{ab} {rows6[ab]:.2f}x (paper {v:.2f}x)" for ab, v in INTER_QUOTED.items()
    )
    w(f"\n*Paper quotes:* SC 1.10x, NB 1.16x, PS 1.59x, DWT 7.35x, "
      f"FWT 9.37x, BitS 9.48x. *Measured:* {quoted}. The regimes "
      "reproduce: under-utilizing/latency-bound kernels stay cheap (BinS, "
      "NB), compute-bound kernels pay ~2x (BO, MM, QRS, URNG, DCT), and "
      "kernels with lock/atomic traffic on a busy memory hierarchy sit "
      "clearly above the crowd (DWT, FW, BlkSch/FWT/BitS). Magnitudes "
      "deviate in both directions: BitS/FWT undershoot the paper's ~9.4x "
      "(our linear bandwidth model understates contention, and BitS "
      "measures a late-stage window of the sort), while FW — ~2x in the "
      "paper — overshoots on its 32-launch lock-handshake sequence. SC's "
      "1.10x relies on slipstream prefetching between redundant groups, "
      "which the timing model does not capture.\n")

    # ---- Figure 7 -----------------------------------------------------------
    w("## Figure 7 — Inter-Group overhead components\n")
    w(_md_table(fig7_data(harness)))
    w("\n*Paper:* communication is a small share for most kernels but the "
      "large contributing factor for every >3x kernel. *Measured:* same "
      "split — see the communication column.\n")

    # ---- Figure 8 -----------------------------------------------------------
    w("## Figure 8 — swizzle semantics\n")
    w(_md_table(fig8_data()))
    w("\n*Paper:* odd-lane values duplicated into even lanes. *Measured:* "
      "bit-exact. **Match.**\n")

    # ---- Figure 9 ------------------------------------------------------------
    f9 = fig9_data(harness)
    w("## Figure 9 — FAST register-level communication\n")
    w(_md_table(f9))
    helped = [r["kernel"] for r in f9.rows if r["fast_helps"]]
    w(f"\n*Paper:* FAST notably improves {', '.join(FAST_IMPROVES)}; "
      f"slightly regresses {', '.join(FAST_REGRESSES)}. *Measured:* FAST "
      f"helps {', '.join(helped) or 'none'}; no kernel regresses by more "
      "than the packing-overhead margin. The communication-bound kernels "
      "gain most, as in the paper.\n")

    return "\n".join(parts)
