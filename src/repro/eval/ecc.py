"""SEC-DED ECC overhead model (Table 1 of the paper).

The paper motivates software RMT by costing out hardware protection:
SEC-DED ECC on every storage structure of a GCN compute unit adds ~21%
capacity.  Registers and the LDS are protected at 32-bit word
granularity (7 check bits per 32 — (39,32) Hsiao code), caches at
line granularity.

The paper reports 343.75 B for the 16-kB L1 at cache-line granularity;
the standard (522,512) SEC-DED code yields 11 bits per 64-B line = 352 B.
We implement the standard code and record the 8-byte delta in
EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from ..gpu.config import GpuConfig, HD7790


def secded_check_bits(data_bits: int) -> int:
    """Check bits for single-error-correct / double-error-detect.

    Hamming bound: r such that 2**r >= data + r + 1, plus one extra
    parity bit for double-error detection.
    """
    if data_bits <= 0:
        raise ValueError("data_bits must be positive")
    r = 0
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r + 1


@dataclass(frozen=True)
class EccEntry:
    """One row of Table 1."""

    structure: str
    size_bytes: int
    granularity_bits: int
    overhead_bytes: float

    @property
    def overhead_fraction(self) -> float:
        return self.overhead_bytes / self.size_bytes


def ecc_overhead(size_bytes: int, granularity_bits: int) -> float:
    """ECC bytes needed to protect ``size_bytes`` at a given word size."""
    words = size_bytes * 8 / granularity_bits
    return words * secded_check_bits(granularity_bits) / 8


def table1(config: GpuConfig = HD7790) -> List[EccEntry]:
    """Reproduce Table 1 from the machine description.

    Note the table costs the *real* part's structures (256-kB VRF per CU,
    64-kB LDS, 8-kB SRF, 16-kB L1); these are independent of the scaled
    simulation parameters.
    """
    vrf_bytes = config.vgprs_per_simd * config.simds_per_cu * 64 * 4
    srf_bytes = config.sgprs_per_cu * 4
    entries = [
        EccEntry("Local data share", config.lds_bytes_per_cu, 32,
                 ecc_overhead(config.lds_bytes_per_cu, 32)),
        EccEntry("Vector register file", vrf_bytes, 32,
                 ecc_overhead(vrf_bytes, 32)),
        EccEntry("Scalar register file", srf_bytes, 32,
                 ecc_overhead(srf_bytes, 32)),
        EccEntry("R/W L1 cache", config.l1_bytes, config.l1_line_bytes * 8,
                 ecc_overhead(config.l1_bytes, config.l1_line_bytes * 8)),
    ]
    return entries


def total_overhead_fraction(entries: List[EccEntry]) -> float:
    total_size = sum(e.size_bytes for e in entries)
    total_ecc = sum(e.overhead_bytes for e in entries)
    return total_ecc / total_size


def format_table1(entries: List[EccEntry]) -> str:
    """Render Table 1 as text."""
    lines = [
        f"{'Structure':28s} {'Size':>10s} {'ECC overhead':>14s}",
        "-" * 56,
    ]
    for e in entries:
        size = _fmt_bytes(e.size_bytes)
        ecc = _fmt_bytes(e.overhead_bytes)
        lines.append(f"{e.structure:28s} {size:>10s} {ecc:>14s}")
    frac = total_overhead_fraction(entries)
    lines.append("-" * 56)
    lines.append(f"total overhead: {frac:.1%}")
    return "\n".join(lines)


def _fmt_bytes(n: float) -> str:
    if n >= 1024 and float(n) % 1024 == 0:
        return f"{int(n) // 1024} kB"
    if n >= 1024:
        return f"{n / 1024:.2f} kB"
    return f"{n:.2f} B"
