"""Crash-tolerant process pool for embarrassingly parallel trial work.

``multiprocessing.Pool`` is the obvious tool and the wrong one: a worker
that segfaults or wedges takes the whole map() down with it, and there
is no per-task deadline.  Fault-injection campaigns *invite* both
failure modes — we are deliberately corrupting simulator state — so the
orchestrator runs its own small pool with the semantics a campaign
needs:

* each worker process owns a dedicated inbox; the parent assigns one
  task at a time, so it always knows exactly which task a dead or
  deadlined worker was holding;
* a per-task wall-clock ``timeout`` kills the worker and requeues the
  task, up to ``max_retries`` re-attempts;
* a task that keeps crashing its shard is *quarantined*: it is recorded
  as a failed :class:`TaskResult` (the campaign layer turns this into an
  ``infra_error`` outcome) and the worker is respawned — a worker death
  never loses the campaign;
* results stream back through ``on_result`` in completion order, which
  is what lets the journal checkpoint after every trial.

Workers are forked (never spawned), so ``worker_fn`` and task payloads
may close over arbitrary parent state — benchmark factories included —
while *results* must be picklable to cross the queue back.  On platforms
without ``fork`` the pool degrades to the serial path.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .telemetry import Telemetry

#: Task statuses a pool can report.
STATUS_OK = "ok"
STATUS_ERROR = "error"          # worker_fn raised
STATUS_TIMEOUT = "timeout"      # exceeded the per-task deadline
STATUS_CRASH = "crash"          # worker process died under the task


@dataclass
class TaskResult:
    """Outcome of one task after all retry attempts."""

    task_id: Any
    status: str
    value: Any = None
    error: str = ""
    attempts: int = 1
    duration_s: float = 0.0
    shard: int = -1

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


@dataclass
class _Worker:
    index: int
    proc: mp.process.BaseProcess
    inbox: Any
    current: Optional[Tuple[Any, Any]] = None    # (task_id, payload)
    deadline: Optional[float] = None
    started: float = 0.0
    tasks_done: int = 0
    crashes: int = 0


def _worker_main(index: int, inbox, outbox, worker_fn) -> None:
    """Worker loop: pull one task, run it, report, repeat until sentinel."""
    while True:
        item = inbox.get()
        if item is None:
            return
        task_id, payload = item
        try:
            value = worker_fn(payload)
            msg = (index, task_id, STATUS_OK, value, "")
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            msg = (index, task_id, STATUS_ERROR, None, repr(exc))
        try:
            outbox.put(msg)
        except Exception as exc:  # unpicklable result — report that instead
            outbox.put((index, task_id, STATUS_ERROR, None,
                        f"result not transferable: {exc!r}"))


def fork_available() -> bool:
    return "fork" in mp.get_all_start_methods()


def run_tasks(
    tasks: Sequence[Tuple[Any, Any]],
    worker_fn: Callable[[Any], Any],
    *,
    workers: int = 1,
    timeout_s: Optional[float] = None,
    max_retries: int = 1,
    telemetry: Optional[Telemetry] = None,
    on_result: Optional[Callable[[TaskResult], None]] = None,
    should_stop: Optional[Callable[[], bool]] = None,
) -> Dict[Any, TaskResult]:
    """Run ``tasks`` (an iterable of ``(task_id, payload)``) to completion.

    Returns ``{task_id: TaskResult}`` covering every task — failures are
    reported as non-``ok`` results, never raised.  ``on_result`` is
    invoked in the parent, once per task, in completion order.
    Serial mode (``workers <= 1`` or no ``fork`` support) runs in-process;
    there the timeout cannot preempt a wedged task and crashes surface as
    ``error`` results.

    ``should_stop`` is polled between dispatches; once it returns true
    the pool stops handing out new tasks, lets in-flight tasks finish
    (they are reported through ``on_result`` as usual), and returns the
    partial result map.  This is the cooperative-cancellation hook the
    serve daemon uses for job cancellation and graceful drain — a
    journaled consumer resumes exactly at the first undispatched task.
    """
    tasks = list(tasks)
    seen = set()
    for tid, _ in tasks:
        if tid in seen:
            raise ValueError(f"duplicate task id {tid!r}")
        seen.add(tid)
    if workers > 1 and not fork_available():
        workers = 1
    if workers <= 1:
        return _run_serial(tasks, worker_fn, max_retries=max_retries,
                           telemetry=telemetry, on_result=on_result,
                           should_stop=should_stop)
    return _run_pool(tasks, worker_fn, workers=workers, timeout_s=timeout_s,
                     max_retries=max_retries, telemetry=telemetry,
                     on_result=on_result, should_stop=should_stop)


def _finish(results, task_id, result, telemetry, on_result):
    results[task_id] = result
    # Outcome tallies are the consumer's job (via Telemetry.note_outcome);
    # the pool only knows task status, not what the task meant.
    if telemetry is not None:
        telemetry.task_done(task_id=task_id, shard=result.shard,
                            duration=result.duration_s)
    if on_result is not None:
        on_result(result)


def _run_serial(tasks, worker_fn, *, max_retries, telemetry, on_result,
                should_stop=None):
    results: Dict[Any, TaskResult] = {}
    for task_id, payload in tasks:
        if should_stop is not None and should_stop():
            break
        attempts = 0
        while True:
            attempts += 1
            t0 = time.monotonic()
            try:
                value = worker_fn(payload)
                result = TaskResult(task_id, STATUS_OK, value=value,
                                    attempts=attempts,
                                    duration_s=time.monotonic() - t0, shard=0)
                break
            except Exception as exc:  # noqa: BLE001
                if attempts > max_retries:
                    result = TaskResult(task_id, STATUS_ERROR, error=repr(exc),
                                        attempts=attempts,
                                        duration_s=time.monotonic() - t0,
                                        shard=0)
                    break
                if telemetry is not None:
                    telemetry.task_retry(task_id, "error", attempts)
        _finish(results, task_id, result, telemetry, on_result)
    return results


def _run_pool(tasks, worker_fn, *, workers, timeout_s, max_retries,
              telemetry, on_result, should_stop=None):
    ctx = mp.get_context("fork")
    outbox = ctx.Queue()
    results: Dict[Any, TaskResult] = {}
    pending = deque(tasks)
    attempts: Dict[Any, int] = {tid: 0 for tid, _ in tasks}
    pool: List[_Worker] = []

    def spawn(index: int) -> _Worker:
        inbox = ctx.Queue()
        proc = ctx.Process(
            target=_worker_main, args=(index, inbox, outbox, worker_fn),
            daemon=True, name=f"orchestrator-worker-{index}",
        )
        proc.start()
        return _Worker(index=index, proc=proc, inbox=inbox)

    def fail_task(worker: _Worker, status: str, error: str) -> None:
        """A worker died or deadlined while holding a task."""
        task_id, payload = worker.current
        worker.current = None
        worker.deadline = None
        attempts[task_id] += 1
        duration = time.monotonic() - worker.started
        if attempts[task_id] <= max_retries:
            if telemetry is not None:
                telemetry.task_retry(task_id, status, attempts[task_id])
            pending.append((task_id, payload))
        else:
            if telemetry is not None:
                telemetry.worker_quarantined(worker.index, status, task_id)
            _finish(results, task_id,
                    TaskResult(task_id, status, error=error,
                               attempts=attempts[task_id], duration_s=duration,
                               shard=worker.index),
                    telemetry, on_result)

    def retire(worker: _Worker, status: str, error: str) -> None:
        """Kill a misbehaving worker, salvage its task, respawn in place."""
        worker.crashes += 1
        if worker.proc.is_alive():
            worker.proc.terminate()
        worker.proc.join(timeout=5.0)
        if worker.proc.is_alive():  # terminate() ignored — escalate
            worker.proc.kill()
            worker.proc.join(timeout=5.0)
        if worker.current is not None:
            fail_task(worker, status, error)
        fresh = spawn(worker.index)
        fresh.crashes = worker.crashes
        fresh.tasks_done = worker.tasks_done
        pool[worker.index] = fresh

    pool.extend(spawn(i) for i in range(min(workers, max(1, len(tasks)))))
    clean = False
    try:
        while len(results) < len(tasks):
            stopping = should_stop is not None and should_stop()
            if stopping and all(w.current is None for w in pool):
                break  # nothing in flight; abandon the undispatched tail
            # 1. hand work to idle workers
            for worker in pool:
                if worker.current is None and pending and not stopping:
                    task = pending.popleft()
                    worker.current = task
                    worker.started = time.monotonic()
                    worker.deadline = (worker.started + timeout_s
                                       if timeout_s else None)
                    worker.inbox.put(task)
                    if telemetry is not None:
                        telemetry.emit("assign", task=task[0],
                                       shard=worker.index)

            # 2. drain completions (before crash checks, so a result that
            #    raced a worker death is not double-counted)
            drained = False
            try:
                while True:
                    widx, task_id, status, value, error = outbox.get(
                        timeout=0.0 if drained else 0.05)
                    drained = True
                    worker = pool[widx]
                    if task_id in results or worker.current is None or \
                            worker.current[0] != task_id:
                        continue  # stale: task already resolved via retry
                    duration = time.monotonic() - worker.started
                    worker.current = None
                    worker.deadline = None
                    worker.tasks_done += 1
                    attempts[task_id] += 1
                    if status == STATUS_OK:
                        _finish(results, task_id,
                                TaskResult(task_id, STATUS_OK, value=value,
                                           attempts=attempts[task_id],
                                           duration_s=duration, shard=widx),
                                telemetry, on_result)
                    elif attempts[task_id] <= max_retries:
                        if telemetry is not None:
                            telemetry.task_retry(task_id, status,
                                                 attempts[task_id])
                        pending.append(_payload_of(tasks, task_id))
                    else:
                        _finish(results, task_id,
                                TaskResult(task_id, status, error=error,
                                           attempts=attempts[task_id],
                                           duration_s=duration, shard=widx),
                                telemetry, on_result)
            except queue_mod.Empty:
                pass

            # 3. reap dead and deadlined workers
            now = time.monotonic()
            for worker in list(pool):
                if worker.current is None:
                    continue
                if not worker.proc.is_alive():
                    code = worker.proc.exitcode
                    retire(worker, STATUS_CRASH,
                           f"worker exited with code {code}")
                elif worker.deadline is not None and now > worker.deadline:
                    retire(worker, STATUS_TIMEOUT,
                           f"exceeded {timeout_s:.1f}s deadline")
        clean = True
    finally:
        _shutdown_pool(pool, outbox, graceful=clean)
    return results


def _shutdown_pool(pool: List[_Worker], outbox, graceful: bool) -> None:
    """Reap every worker process, on the happy path and the interrupt path.

    ``graceful`` (normal completion, or a cooperative ``should_stop``
    exit) offers each idle worker its shutdown sentinel and gives it a
    moment to exit on its own.  The abnormal path — KeyboardInterrupt,
    SIGTERM translated to an exception, a sink that raised — skips the
    sentinel wait and terminates immediately: a busy worker would hold
    its inbox until the current task finished, which for a wedged trial
    is never.  Either way the escalation ends in ``kill()``, so a
    long-lived parent (the serve daemon) cannot accumulate zombies, and
    the inbox queues have their feeder threads cancelled so interpreter
    shutdown never blocks on an unflushed queue.
    """
    for worker in pool:
        if graceful:
            try:
                worker.inbox.put(None)
            except Exception:
                pass
        elif worker.proc.is_alive():
            worker.proc.terminate()
    for worker in pool:
        worker.proc.join(timeout=2.0 if graceful else 1.0)
        if worker.proc.is_alive():
            worker.proc.terminate()
            worker.proc.join(timeout=1.0)
        if worker.proc.is_alive():  # terminate() ignored — escalate
            worker.proc.kill()
            worker.proc.join(timeout=1.0)
        try:
            worker.inbox.close()
            worker.inbox.cancel_join_thread()
        except Exception:
            pass
    outbox.close()
    outbox.cancel_join_thread()


def _payload_of(tasks, task_id):
    for tid, payload in tasks:
        if tid == task_id:
            return (tid, payload)
    raise KeyError(task_id)


def default_workers() -> int:
    """A sensible worker count for ``workers=0`` ("auto") requests."""
    return max(1, os.cpu_count() or 1)
