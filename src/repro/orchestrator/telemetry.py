"""Structured telemetry for campaign and grid runs.

The orchestrator is built to run thousands of trials; when something
goes wrong mid-campaign you want more than a final histogram.  The
:class:`Telemetry` object collects a bounded stream of structured events
(task assignment, completion, retry, timeout, worker quarantine),
maintains live throughput / ETA estimates and per-shard outcome tallies,
and can optionally paint a single live progress line to a stream.

It is deliberately parent-process-only: workers report results through
the pool, and the pool drives telemetry, so there is exactly one writer
and no cross-process locking.

An ``on_event`` sink makes the stream injectable: the serve daemon
(:mod:`repro.serve`) passes a callback that forwards every event to the
submitting client as it happens, while the batch CLIs keep the default
in-memory ring + progress line.  The sink runs synchronously in the
parent on the emitting thread; a sink that raises aborts the run, so
sinks should be cheap and non-throwing (enqueue and return).
"""

from __future__ import annotations

import sys
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

#: Keep at most this many structured events in memory; older ones are
#: dropped (the count of dropped events is retained).
DEFAULT_EVENT_CAP = 4096


@dataclass
class Event:
    """One structured telemetry event."""

    kind: str
    t: float                      # seconds since telemetry start
    fields: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "t": round(self.t, 4), **self.fields}


class Telemetry:
    """Event sink + live statistics for one orchestrated run."""

    def __init__(
        self,
        label: str = "",
        progress: bool = False,
        stream=None,
        event_cap: int = DEFAULT_EVENT_CAP,
        min_refresh_s: float = 0.2,
        on_event: Optional[Callable[[Event], None]] = None,
    ):
        self.label = label
        self.progress = progress
        self.stream = stream if stream is not None else sys.stderr
        self.event_cap = event_cap
        self.min_refresh_s = min_refresh_s
        self.on_event = on_event
        self.events: List[Event] = []
        self.dropped_events = 0
        self.total = 0
        self.completed = 0
        self.skipped = 0            # satisfied from a journal, not re-run
        self.retries = 0
        self.quarantined = 0
        self.outcomes: Counter = Counter()
        self.shard_outcomes: Dict[int, Counter] = {}
        self._t0 = time.monotonic()
        self._last_paint = 0.0
        self._painted = False

    # -- events ----------------------------------------------------------

    def emit(self, kind: str, **fields) -> None:
        """Record one structured event (bounded in memory)."""
        ev = Event(kind=kind, t=time.monotonic() - self._t0, fields=fields)
        if len(self.events) >= self.event_cap:
            self.events.pop(0)
            self.dropped_events += 1
        self.events.append(ev)
        if self.on_event is not None:
            self.on_event(ev)

    # -- lifecycle hooks called by the pool / campaign -------------------

    def start(self, total: int, skipped: int = 0) -> None:
        self.total = total
        self.skipped = skipped
        self._t0 = time.monotonic()
        self.emit("start", total=total, skipped=skipped, label=self.label)

    def task_done(
        self,
        task_id: Any = None,
        outcome: Optional[str] = None,
        shard: Optional[int] = None,
        duration: Optional[float] = None,
    ) -> None:
        self.completed += 1
        if outcome is not None:
            self.outcomes[outcome] += 1
            if shard is not None:
                self.shard_outcomes.setdefault(shard, Counter())[outcome] += 1
        self.emit("done", task=task_id, outcome=outcome, shard=shard,
                  duration=None if duration is None else round(duration, 4))
        self.maybe_paint()

    def note_outcome(self, outcome: str, shard: Optional[int] = None) -> None:
        """Tally a domain-level outcome (e.g. a trial classification).

        Separate from :meth:`task_done` because the pool only knows task
        status; the campaign layer knows what the task *meant*.
        """
        self.outcomes[outcome] += 1
        if shard is not None and shard >= 0:
            self.shard_outcomes.setdefault(shard, Counter())[outcome] += 1

    def task_retry(self, task_id: Any, reason: str, attempt: int) -> None:
        self.retries += 1
        self.emit("retry", task=task_id, reason=reason, attempt=attempt)

    def worker_quarantined(self, shard: int, reason: str, task_id: Any) -> None:
        self.quarantined += 1
        self.emit("quarantine", shard=shard, reason=reason, task=task_id)

    # -- derived statistics ----------------------------------------------

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self._t0

    def throughput(self) -> float:
        """Completed tasks per second (0 until something finishes)."""
        el = self.elapsed
        return self.completed / el if el > 0 and self.completed else 0.0

    def eta_s(self) -> Optional[float]:
        """Seconds to completion, or None before the first completion."""
        rate = self.throughput()
        if not rate or not self.total:
            return None
        remaining = max(0, self.total - self.skipped - self.completed)
        return remaining / rate

    def progress_line(self) -> str:
        done = self.completed + self.skipped
        parts = [f"[{done}/{self.total}]"]
        if self.label:
            parts.insert(0, self.label)
        rate = self.throughput()
        if rate:
            parts.append(f"{rate:.1f}/s")
        eta = self.eta_s()
        if eta is not None:
            parts.append(f"eta {eta:.0f}s")
        if self.outcomes:
            parts.append(" ".join(
                f"{k}={v}" for k, v in sorted(self.outcomes.items())))
        if self.retries:
            parts.append(f"retries={self.retries}")
        return " ".join(parts)

    # -- live progress line ----------------------------------------------

    def maybe_paint(self, force: bool = False) -> None:
        if not self.progress:
            return
        now = time.monotonic()
        if not force and now - self._last_paint < self.min_refresh_s:
            return
        self._last_paint = now
        self._painted = True
        self.stream.write("\r\x1b[2K" + self.progress_line())
        self.stream.flush()

    def finish(self) -> None:
        """Emit the final event and terminate the progress line."""
        self.emit("finish", completed=self.completed, skipped=self.skipped,
                  retries=self.retries, quarantined=self.quarantined)
        if self.progress and self._painted:
            self.maybe_paint(force=True)
            self.stream.write("\n")
            self.stream.flush()

    # -- reporting -------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """JSON-friendly digest for CLI output and journals."""
        return {
            "label": self.label,
            "total": self.total,
            "completed": self.completed,
            "skipped": self.skipped,
            "retries": self.retries,
            "quarantined": self.quarantined,
            "elapsed_s": round(self.elapsed, 3),
            "throughput_per_s": round(self.throughput(), 3),
            "outcomes": dict(sorted(self.outcomes.items())),
            "shard_outcomes": {
                str(s): dict(sorted(c.items()))
                for s, c in sorted(self.shard_outcomes.items())
            },
        }
