"""Append-only JSONL result journal with checkpoint/resume.

A journal makes a long campaign killable: every completed trial is
flushed as one JSON line, so re-running the same campaign with
``resume=True`` skips everything already on disk and appends only the
missing trials.  The format is deliberately dumb — one object per line —
so it can be tailed, grepped, and merged with standard tools.

Layout::

    {"kind": "header", "schema": 1, "meta": {...campaign identity...}}
    {"kind": "trial", "index": 0, "outcome": "masked", ...}
    {"kind": "trial", "index": 3, "outcome": "detected", ...}
    ...

Lines appear in *completion* order, not index order; consumers key on
``index``.  A process killed mid-write leaves at most one truncated
final line, which the reader tolerates and drops.  Resume refuses to
continue a journal whose header ``meta`` disagrees with the requested
campaign (different seed, trial count, benchmark, ...) — silently mixing
two campaigns would corrupt the histogram.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

SCHEMA_VERSION = 1


class JournalError(RuntimeError):
    """Raised on journal corruption or a resume identity mismatch."""


def read_journal(path: Union[str, Path]) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read ``(header_meta, entries)`` from a journal file.

    Tolerates a truncated final line (crash mid-append).  Raises
    :class:`JournalError` if the file has no valid header line.
    """
    path = Path(path)
    header: Optional[Dict[str, Any]] = None
    entries: List[Dict[str, Any]] = []
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError:
                # Only the final line may legitimately be truncated; a
                # bad line in the middle means real corruption, but we
                # cannot distinguish without buffering, so drop & stop.
                break
            if lineno == 0:
                if obj.get("kind") != "header":
                    raise JournalError(f"{path}: first line is not a journal header")
                header = obj
            else:
                entries.append(obj)
    if header is None:
        raise JournalError(f"{path}: empty journal (no header)")
    return header, entries


class Journal:
    """Single-writer append-only JSONL journal.

    Open with ``resume=False`` (default) to truncate and start fresh, or
    ``resume=True`` to load prior entries (available via
    :meth:`entries`) and append after them.  ``meta`` identifies the
    campaign; on resume it must match the header already on disk.

    ``on_append`` is an injectable sink: it receives every entry written
    through :meth:`append` *after* the line has been flushed to disk, so
    a consumer (the serve daemon streams journal entries to clients this
    way) never observes an entry that could be lost to a crash.
    """

    def __init__(
        self,
        path: Union[str, Path],
        meta: Optional[Dict[str, Any]] = None,
        resume: bool = False,
        on_append: Optional[Callable[[Dict[str, Any]], None]] = None,
    ):
        self.path = Path(path)
        self.meta = dict(meta or {})
        self.on_append = on_append
        self._entries: List[Dict[str, Any]] = []
        self._fh = None

        if resume and self.path.exists():
            header, self._entries = read_journal(self.path)
            on_disk = header.get("meta", {})
            mismatch = {
                k: (on_disk.get(k), v)
                for k, v in self.meta.items()
                if k in on_disk and on_disk[k] != v
            }
            if mismatch:
                raise JournalError(
                    f"{self.path}: journal belongs to a different campaign: "
                    + ", ".join(f"{k}: disk={d!r} requested={r!r}"
                                for k, (d, r) in sorted(mismatch.items()))
                )
            self._fh = self.path.open("a", encoding="utf-8")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("w", encoding="utf-8")
            self._write({"kind": "header", "schema": SCHEMA_VERSION,
                         "meta": self.meta})

    # -- reading what resume loaded --------------------------------------

    def entries(self, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """Entries loaded at open time (resume only), optionally by kind."""
        if kind is None:
            return list(self._entries)
        return [e for e in self._entries if e.get("kind") == kind]

    def completed_indices(self, kind: str = "trial") -> set:
        """Indices of entries already journaled (for skip-on-resume)."""
        return {e["index"] for e in self.entries(kind) if "index" in e}

    # -- writing ----------------------------------------------------------

    def append(self, kind: str, **payload) -> None:
        """Append one entry and flush it to disk immediately."""
        entry = {"kind": kind, **payload}
        self._write(entry)
        if self.on_append is not None:
            self.on_append(entry)

    def _write(self, obj: Dict[str, Any]) -> None:
        if self._fh is None:
            raise JournalError(f"{self.path}: journal is closed")
        self._fh.write(json.dumps(obj, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
