"""Deterministic per-trial seed derivation for sharded campaigns.

The old campaign loop drew every fault plan from one shared
``np.random.Generator``, so plan *i* depended on how many draws happened
before it — fine serially, fatal for sharding (a worker that retries, or
trials landing on different shards, would perturb every later plan).

Here each trial gets its own independent child stream derived with
``np.random.SeedSequence(seed, spawn_key=(index,))``.  Child *i* is a
pure function of ``(seed, index)``: it does not depend on how many other
children were spawned, in what order trials execute, or which shard runs
them.  Serial and parallel runs therefore draw bit-identical plans.
"""

from __future__ import annotations

from typing import List

import numpy as np


def child_sequence(seed: int, index: int) -> np.random.SeedSequence:
    """The ``index``-th child seed stream of a campaign seed.

    Equivalent to ``np.random.SeedSequence(seed).spawn(index + 1)[index]``
    but O(1): NumPy identifies a spawned child purely by its
    ``spawn_key``, so we construct it directly.
    """
    return np.random.SeedSequence(seed, spawn_key=(index,))


def trial_rng(seed: int, index: int) -> np.random.Generator:
    """A fresh generator for trial ``index`` of campaign ``seed``."""
    return np.random.default_rng(child_sequence(seed, index))


def trial_rngs(seed: int, trials: int) -> List[np.random.Generator]:
    """Independent generators for every trial of a campaign."""
    return [trial_rng(seed, i) for i in range(trials)]
