"""Command-line front end for sharded fault-injection campaigns.

``python -m repro.campaign`` sweeps a benchmark × variant × target grid
of SEU campaigns through the orchestrator: trials shard across worker
processes, every completed trial streams to a per-campaign JSONL journal
(``--journal DIR``), and ``--resume`` continues a killed sweep without
re-running finished trials.  The summary prints as a markdown table or a
JSON document (``--format``).

Examples::

    python -m repro.campaign --scale small --benchmarks FWT,R \
        --variants intra+lds,inter --targets vgpr,sgpr --trials 32 \
        --workers 4 --journal .campaigns --progress

    python -m repro.campaign --scale small --benchmarks FWT \
        --trials 64 --workers 0 --format json --out sweep.json
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import List, Optional

from ..compiler.pipeline import RMT_VARIANTS
from ..faults.campaign import (
    OUTCOMES,
    CampaignResult,
    campaign_report,
    run_campaign,
)
from ..faults.injector import TARGETS
from ..kernels.suite import SMALL_SUITE, SUITE
from .journal import JournalError
from .pool import default_workers
from .telemetry import Telemetry

DEFAULT_VARIANTS = "intra+lds,intra-lds,inter"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Sharded SEU fault-injection campaigns "
                    "(benchmark × RMT variant × fault target).",
    )
    parser.add_argument("--benchmarks", default="FWT",
                        help="comma-separated figure abbreviations "
                             f"(choose from {','.join(SUITE)})")
    parser.add_argument("--variants", default=DEFAULT_VARIANTS,
                        help=f"comma-separated RMT variants "
                             f"(choose from {','.join(RMT_VARIANTS)})")
    parser.add_argument("--targets", default="vgpr,sgpr,lds",
                        help=f"comma-separated fault targets "
                             f"(choose from {','.join(TARGETS)})")
    parser.add_argument("--trials", type=int, default=32,
                        help="trials per campaign cell (default 32)")
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--max-wave", type=int, default=8)
    parser.add_argument("--max-instr", type=int, default=24)
    parser.add_argument("--scale", choices=("paper", "small"), default="small",
                        help="benchmark problem sizes (default small)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes per campaign; 0 = one per CPU")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-trial wall-clock limit in seconds")
    parser.add_argument("--max-retries", type=int, default=1,
                        help="re-attempts before a trial becomes infra_error")
    parser.add_argument("--journal", default=None, metavar="DIR",
                        help="directory receiving one JSONL journal per "
                             "campaign cell")
    parser.add_argument("--resume", action="store_true",
                        help="skip trials already present in the journals")
    parser.add_argument("--format", choices=("markdown", "json"),
                        default="markdown", dest="fmt")
    parser.add_argument("--json", action="store_const", const="json",
                        dest="fmt",
                        help="shorthand for --format json (the shared "
                             "report schema the serve daemon also emits)")
    parser.add_argument("--out", default=None,
                        help="write the summary to a file instead of stdout")
    parser.add_argument("--progress", action="store_true",
                        help="paint a live progress line to stderr")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero if any trial ended in infra_error")
    parser.add_argument("--list", action="store_true",
                        help="list benchmarks/variants/targets and exit")
    return parser


def _csv(text: str, valid, label: str) -> List[str]:
    items = [item.strip() for item in text.split(",") if item.strip()]
    for item in items:
        if item not in valid:
            raise SystemExit(
                f"error: unknown {label} {item!r}; choose from {', '.join(valid)}")
    if not items:
        raise SystemExit(f"error: no {label} selected")
    return items


def _journal_path(root: Path, abbrev: str, variant: str, target: str) -> Path:
    stem = re.sub(r"[^A-Za-z0-9_.+-]", "_", f"{abbrev}_{variant}_{target}")
    return root / f"{stem}.jsonl"


def _markdown(results: List[CampaignResult], telemetries: List[Telemetry]) -> str:
    lines = [
        "| benchmark | variant | target | trials | fired | "
        + " | ".join(OUTCOMES) + " | coverage |",
        "|---|---|---|---:|---:|" + "---:|" * len(OUTCOMES) + "---:|",
    ]
    for res in results:
        lines.append(
            f"| {res.benchmark} | {res.variant} | {res.target} "
            f"| {res.trials} | {res.fired} | "
            + " | ".join(str(res.outcomes.get(o, 0)) for o in OUTCOMES)
            + f" | {res.coverage:.2f} |"
        )
    elapsed = sum(t.summary()["elapsed_s"] for t in telemetries)
    trials = sum(r.trials for r in results)
    retries = sum(t.retries for t in telemetries)
    skipped = sum(t.skipped for t in telemetries)
    lines.append("")
    lines.append(
        f"{len(results)} campaigns, {trials} trials "
        f"({skipped} resumed from journal, {retries} retries) "
        f"in {elapsed:.1f}s"
    )
    return "\n".join(lines)


def _json_doc(args, results: List[CampaignResult],
              telemetries: List[Telemetry]) -> str:
    doc = {
        "config": {
            "trials": args.trials, "seed": args.seed, "scale": args.scale,
            "workers": args.workers, "max_wave": args.max_wave,
            "max_instr": args.max_instr,
        },
        # One report schema across surfaces: each campaign entry is the
        # same document a serve-daemon campaign job returns (plus the
        # wall-clock telemetry digest), with infra_error trials rendered
        # through the shared Diagnostic serializer.
        "campaigns": [
            campaign_report(res, tel)
            for res, tel in zip(results, telemetries)
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        print("benchmarks:", ", ".join(SUITE))
        print("variants:  ", ", ".join(RMT_VARIANTS))
        print("targets:   ", ", ".join(TARGETS))
        return 0

    benchmarks = _csv(args.benchmarks, SUITE, "benchmark")
    variants = _csv(args.variants, RMT_VARIANTS, "variant")
    targets = _csv(args.targets, TARGETS, "target")
    workers = args.workers if args.workers > 0 else default_workers()
    suite = SUITE if args.scale == "paper" else SMALL_SUITE
    journal_root = Path(args.journal) if args.journal else None
    if journal_root:
        journal_root.mkdir(parents=True, exist_ok=True)

    results: List[CampaignResult] = []
    telemetries: List[Telemetry] = []
    for abbrev in benchmarks:
        for variant in variants:
            for target in targets:
                tel = Telemetry(label=f"{abbrev}/{variant}/{target}",
                                progress=args.progress)
                journal = (
                    str(_journal_path(journal_root, abbrev, variant, target))
                    if journal_root else None
                )
                try:
                    results.append(run_campaign(
                        suite[abbrev], variant, target,
                        scale=args.scale,
                        trials=args.trials, seed=args.seed,
                        max_wave=args.max_wave, max_instr=args.max_instr,
                        workers=workers, timeout_s=args.timeout,
                        max_retries=args.max_retries,
                        journal=journal, resume=args.resume, telemetry=tel,
                    ))
                except JournalError as exc:
                    print(f"error: {exc}", file=sys.stderr)
                    return 2
                telemetries.append(tel)

    text = (_markdown(results, telemetries) if args.fmt == "markdown"
            else _json_doc(args, results, telemetries))
    if args.out:
        Path(args.out).write_text(text + "\n")
    else:
        print(text)

    infra = sum(r.outcomes.get("infra_error", 0) for r in results)
    if infra:
        print(f"warning: {infra} trials ended in infra_error",
              file=sys.stderr)
        if args.strict:
            return 1
    return 0
