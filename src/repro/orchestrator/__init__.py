"""Parallel campaign orchestrator.

Shards fault-injection campaigns and experiment-grid runs across worker
processes with deterministic per-trial seeding, an append-only JSONL
journal (checkpoint/resume), bounded retry + quarantine of crashing
shards, and structured telemetry.  Consumers:

* ``repro.faults.run_campaign(..., workers=N, journal=..., resume=...)``
* ``repro.eval.Harness.run_grid(..., workers=N)``
* the ``python -m repro.campaign`` CLI.
"""

from .journal import SCHEMA_VERSION, Journal, JournalError, read_journal
from .pool import (
    STATUS_CRASH,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    TaskResult,
    default_workers,
    fork_available,
    run_tasks,
)
from .seeding import child_sequence, trial_rng, trial_rngs
from .telemetry import Event, Telemetry

__all__ = [
    "Event",
    "Journal",
    "JournalError",
    "SCHEMA_VERSION",
    "STATUS_CRASH",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "TaskResult",
    "Telemetry",
    "child_sequence",
    "default_workers",
    "fork_available",
    "read_journal",
    "run_tasks",
    "trial_rng",
    "trial_rngs",
]
