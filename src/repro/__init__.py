"""repro — reproduction of compiler-managed GPU redundant multithreading.

Implements the system from "Real-World Design and Evaluation of
Compiler-Managed GPU Redundant Multithreading" (Wadden et al., ISCA 2014):
a kernel IR and compiler pass framework with three automatic RMT
transformations (Intra-Group +/-LDS, Inter-Group), a register-level fast
communication optimization, a GCN-class GPU timing simulator, the 16
AMD APP SDK benchmark kernels the paper evaluates, transient-fault
injection, and a harness regenerating every table and figure.
"""

__version__ = "1.0.0"
