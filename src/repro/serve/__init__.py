"""repro.serve — the compile/certify/campaign service daemon.

One long-lived asyncio process that owns the process-wide compile cache
and a content-addressed result store, and serves ``compile``,
``certify``, and ``campaign`` jobs to any number of clients over a
local Unix socket (or TCP).  See :mod:`.daemon` for the job lifecycle
and drain semantics, :mod:`.protocol` for the wire format, and
:mod:`.client` for the synchronous client library.

Run the daemon with ``python -m repro.serve`` (console script
``repro-serve``) and talk to it with ``python -m repro.serve.client``
(``repro-serve-client``) or :class:`ServeClient`.
"""

from .daemon import DaemonHandle, ServeConfig, ServeDaemon, start_background
from .jobs import JobError, execute_job
from .protocol import (
    DEFAULT_SOCKET,
    PROTOCOL_VERSION,
    JobSpec,
    ProtocolError,
    job_key,
    parse_job,
)
from .store import ResultStore


def __getattr__(name):
    # Lazy so `python -m repro.serve.client` does not pre-import the
    # client module through the package and trip runpy's double-import
    # warning.
    if name in ("ServeClient", "ServeError"):
        from . import client

        return getattr(client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DEFAULT_SOCKET",
    "PROTOCOL_VERSION",
    "DaemonHandle",
    "JobError",
    "JobSpec",
    "ProtocolError",
    "ResultStore",
    "ServeClient",
    "ServeConfig",
    "ServeDaemon",
    "ServeError",
    "execute_job",
    "job_key",
    "parse_job",
    "start_background",
]
