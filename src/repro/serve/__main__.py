"""``python -m repro.serve`` — run the compile/certify/campaign daemon.

Binds a Unix socket (default ``.repro-serve.sock``; override with
``--socket`` or ``REPRO_SERVE_SOCKET``) or TCP with ``--host``/``--port``.
SIGTERM or SIGINT drains gracefully: queued jobs are cancelled, running
campaigns checkpoint their journals, and the process exits once the
last job has flushed (bounded by ``--drain-grace``).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Optional, Sequence

from .daemon import ServeConfig, ServeDaemon
from .protocol import DEFAULT_SOCKET


def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="RMT compile/certify/campaign service daemon.",
    )
    parser.add_argument("--socket", default=DEFAULT_SOCKET,
                        help=f"Unix socket path (default: {DEFAULT_SOCKET})")
    parser.add_argument("--host", default=None,
                        help="listen on TCP at this host instead of a socket")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = ephemeral; with --host)")
    parser.add_argument("--max-jobs", type=int, default=2,
                        help="concurrent job slots (default: 2)")
    parser.add_argument("--workers", type=int, default=1,
                        help="default fork workers per campaign (default: 1)")
    parser.add_argument("--journal-dir", default=None,
                        help="directory for resumable campaign journals")
    parser.add_argument("--cache-dir", default=None,
                        help="compile-cache disk tier shared by all jobs")
    parser.add_argument("--drain-grace", type=float, default=60.0,
                        help="max seconds to wait for jobs on drain")
    return parser.parse_args(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parse_args(argv)
    config = ServeConfig(
        socket=args.socket, host=args.host, port=args.port,
        max_jobs=args.max_jobs, job_workers=args.workers,
        journal_dir=args.journal_dir, cache_dir=args.cache_dir,
        drain_grace_s=args.drain_grace,
    )
    daemon = ServeDaemon(config)
    if args.host is not None:
        print(f"repro-serve: listening on {args.host}:{args.port}",
              file=sys.stderr)
    else:
        print(f"repro-serve: listening on {args.socket}", file=sys.stderr)
    try:
        asyncio.run(daemon.run())
    except KeyboardInterrupt:
        pass
    print("repro-serve: drained, exiting", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
