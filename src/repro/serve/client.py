"""Client library + CLI for the serve daemon.

:class:`ServeClient` is deliberately synchronous — a blocking socket
wrapped in a file object — because callers are batch scripts, tests,
and the ``repro-serve-client`` CLI, none of which want an event loop of
their own.  One client = one connection = one serial conversation; run
several clients (threads or processes) for concurrency, which is
exactly what the daemon multiplexes.

Typical use::

    with ServeClient(socket_path) as client:
        result = client.compile("FWT", variant="intra+lds")

or streaming a campaign's telemetry as it runs::

    for event in client.iter_submit({"kind": "campaign", "benchmark": "FWT"}):
        ...                      # accepted / telemetry / journal / result

``python -m repro.serve.client`` (console script ``repro-serve-client``)
exposes the same ops as subcommands and prints one JSON line per event.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
from typing import Any, Dict, Iterator, Optional, Sequence

from .protocol import DEFAULT_SOCKET, ProtocolError, decode_line, encode_line

#: Events that end a submission's stream.
TERMINAL_EVENTS = ("result", "checkpointed", "cancelled", "error")


class ServeError(RuntimeError):
    """Terminal ``error`` event from the daemon; ``.payload`` has details."""

    def __init__(self, payload: Dict[str, Any]):
        super().__init__(payload.get("error", "job failed"))
        self.payload = payload


class ServeClient:
    """One blocking connection to a serve daemon (Unix socket or TCP)."""

    def __init__(self, path: Optional[str] = None, host: Optional[str] = None,
                 port: int = 0, timeout: Optional[float] = None):
        if host is not None:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        else:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(path or DEFAULT_SOCKET)
        self._rfile = self._sock.makefile("rb")
        self._next_id = 0

    # -- plumbing ---------------------------------------------------------

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _send(self, msg: Dict[str, Any]) -> None:
        self._sock.sendall(encode_line(msg))

    def _recv(self) -> Dict[str, Any]:
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return decode_line(line)

    def _fresh_id(self) -> str:
        self._next_id += 1
        return f"c{self._next_id}"

    # -- ops --------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        self._send({"op": "ping"})
        return self._recv()

    def status(self) -> Dict[str, Any]:
        self._send({"op": "status"})
        return self._recv()

    def drain(self) -> Dict[str, Any]:
        self._send({"op": "drain"})
        return self._recv()

    def cancel(self, cid: Optional[str] = None,
               job: Optional[int] = None) -> None:
        """Request cancellation by client tag or server job id.

        Fire-and-forget: the acknowledgement (``cancelling`` or
        ``error``) arrives in the event stream the caller is already
        iterating — reading it here would steal stream events.
        """
        msg: Dict[str, Any] = {"op": "cancel"}
        if job is not None:
            msg["job"] = job
        if cid is not None:
            msg["id"] = cid
        self._send(msg)

    def iter_submit(self, job: Dict[str, Any], priority: int = 0,
                    deadline_s: Optional[float] = None,
                    cid: Optional[str] = None) -> Iterator[Dict[str, Any]]:
        """Submit a job; yield every event through the terminal one."""
        cid = cid or self._fresh_id()
        msg: Dict[str, Any] = {"op": "submit", "id": cid, "job": job,
                               "priority": priority}
        if deadline_s is not None:
            msg["deadline_s"] = deadline_s
        self._send(msg)
        while True:
            event = self._recv()
            if event.get("id") != cid:
                continue   # event for another in-flight submission
            yield event
            if event.get("event") in TERMINAL_EVENTS:
                return

    def submit(self, job: Dict[str, Any], priority: int = 0,
               deadline_s: Optional[float] = None) -> Dict[str, Any]:
        """Submit and block until the terminal event; raise on ``error``."""
        last: Dict[str, Any] = {}
        for event in self.iter_submit(job, priority=priority,
                                      deadline_s=deadline_s):
            last = event
        if last.get("event") == "error":
            raise ServeError(last)
        return last

    # -- convenience wrappers --------------------------------------------

    def compile(self, benchmark: str, variant: str = "original",
                opt: int = 0, scale: str = "small", **kw) -> Dict[str, Any]:
        return self.submit({"kind": "compile", "benchmark": benchmark,
                            "variant": variant, "opt": opt, "scale": scale},
                           **kw)

    def certify(self, benchmark: str, scale: str = "small",
                **kw) -> Dict[str, Any]:
        return self.submit({"kind": "certify", "benchmark": benchmark,
                            "scale": scale}, **kw)

    def campaign(self, benchmark: str, **params) -> Dict[str, Any]:
        priority = params.pop("priority", 0)
        deadline_s = params.pop("deadline_s", None)
        return self.submit({"kind": "campaign", "benchmark": benchmark,
                            **params},
                           priority=priority, deadline_s=deadline_s)


# -- CLI ---------------------------------------------------------------------


def _add_conn_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--socket", default=DEFAULT_SOCKET,
                        help=f"daemon Unix socket (default: {DEFAULT_SOCKET})")
    parser.add_argument("--host", default=None,
                        help="connect over TCP to this host instead")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (with --host)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="socket timeout in seconds")


def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-serve-client",
        description="Submit jobs to a running repro serve daemon.",
    )
    _add_conn_args(parser)
    sub = parser.add_subparsers(dest="cmd", required=True)

    for name in ("ping", "status", "drain"):
        sub.add_parser(name)

    def job_parser(name: str) -> argparse.ArgumentParser:
        p = sub.add_parser(name)
        p.add_argument("benchmark")
        p.add_argument("--scale", choices=("small", "paper"), default="small")
        p.add_argument("--priority", type=int, default=0)
        p.add_argument("--deadline", type=float, default=None,
                       help="fail the job after this many seconds")
        p.add_argument("--quiet", action="store_true",
                       help="print only the terminal event")
        return p

    p = job_parser("compile")
    p.add_argument("--variant", default="original")
    p.add_argument("--opt", type=int, choices=(0, 1), default=0)

    p = job_parser("certify")
    p.add_argument("--variants", default=None,
                   help="comma-separated variant list")
    p.add_argument("--opt", default=None,
                   help="comma-separated opt levels from {0,1}")

    p = job_parser("campaign")
    p.add_argument("--variant", default="intra+lds")
    p.add_argument("--target", default="vgpr")
    p.add_argument("--trials", type=int, default=32)
    p.add_argument("--seed", type=int, default=1234)
    p.add_argument("--max-wave", type=int, default=8)
    p.add_argument("--max-instr", type=int, default=24)
    p.add_argument("--workers", type=int, default=0,
                   help="fork workers (0 = daemon default)")

    return parser.parse_args(argv)


def _build_job(args: argparse.Namespace) -> Dict[str, Any]:
    job: Dict[str, Any] = {"kind": args.cmd, "benchmark": args.benchmark,
                           "scale": args.scale}
    if args.cmd == "compile":
        job.update(variant=args.variant, opt=args.opt)
    elif args.cmd == "certify":
        if args.variants:
            job["variants"] = [v.strip() for v in args.variants.split(",")
                               if v.strip()]
        if args.opt:
            job["opt_levels"] = [int(o) for o in args.opt.split(",")]
    else:
        job.update(variant=args.variant, target=args.target,
                   trials=args.trials, seed=args.seed,
                   max_wave=args.max_wave, max_instr=args.max_instr,
                   workers=args.workers)
    return job


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parse_args(argv)
    try:
        client = ServeClient(path=args.socket, host=args.host,
                             port=args.port, timeout=args.timeout)
    except OSError as exc:
        print(f"cannot connect to daemon: {exc}", file=sys.stderr)
        return 2

    with client:
        try:
            if args.cmd in ("ping", "status", "drain"):
                print(json.dumps(getattr(client, args.cmd)(), indent=2,
                                 sort_keys=True))
                return 0
            last: Dict[str, Any] = {}
            for event in client.iter_submit(
                    _build_job(args), priority=args.priority,
                    deadline_s=args.deadline):
                last = event
                if not args.quiet or event.get("event") in TERMINAL_EVENTS:
                    print(json.dumps(event, sort_keys=True))
            return 0 if last.get("event") in ("result", "checkpointed") else 1
        except (ConnectionError, ProtocolError, OSError) as exc:
            print(f"connection failed: {exc}", file=sys.stderr)
            return 2


if __name__ == "__main__":
    sys.exit(main())
