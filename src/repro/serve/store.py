"""Result store: finished job responses keyed by content-addressed job key.

The store is the multi-tenant memo on top of the compile cache: where
the compile cache dedups *pipeline work* inside one process, the result
store dedups whole *job responses* across clients — a second tenant
submitting a structurally identical request is answered from here
without touching the queue at all.

Deliberately tiny and event-loop-confined: the daemon is the only
reader and writer, always from the asyncio thread, so there is no
locking.  Entries are plain JSON-safe dicts; lookups return deep copies
so a client-side (or daemon-side) mutation can never poison the memo.
Only *complete* successful results are stored — a checkpointed or
cancelled campaign must re-run (resuming its journal), not be replayed
as if finished.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Optional


class ResultStore:
    """Bounded in-memory map of job key → finished response payload."""

    def __init__(self, max_entries: int = 1024):
        self.max_entries = max_entries
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._order: List[str] = []
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return copy.deepcopy(entry)

    def put(self, key: str, result: Dict[str, Any]) -> None:
        if key not in self._entries and len(self._order) >= self.max_entries:
            oldest = self._order.pop(0)
            self._entries.pop(oldest, None)
        if key not in self._entries:
            self._order.append(key)
        self._entries[key] = copy.deepcopy(result)
        self.stores += 1

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }
