"""Job executors: one blocking function per job kind.

These run in a worker thread of the daemon (``asyncio.to_thread``), so
they are ordinary synchronous code over the existing subsystems —
``compile_kernel`` + lint for ``compile``, ``repro.tv.certify_matrix``
for ``certify``, and ``repro.faults.run_campaign`` for ``campaign``.
The daemon's responsibilities (queueing, deadlines, dedup, streaming)
stay out of this module; the executors only take two injection points:

* ``on_event(payload)`` — called with ``{"stream": ..., "data": ...}``
  progress payloads as they happen.  Campaign jobs wire it into the
  injectable :class:`~repro.orchestrator.Telemetry` and
  :class:`~repro.orchestrator.Journal` sinks, so the submitting client
  watches the same events the batch CLI would journal.
* ``should_stop()`` — cooperative cancellation, polled between trial
  dispatches.  A stopped campaign checkpoints (journal flushed,
  ``complete: False``) instead of finishing.

Every executor returns a JSON-safe response dict; a job that cannot
produce one raises :class:`JobError` whose payload becomes the client's
``error`` event.  Responses embed exactly the serializers the batch
CLIs print — ``campaign_report``, ``certify_matrix`` rows,
``Diagnostic.to_json`` — which is what makes a daemon answer comparable
bit-for-bit with a batch run.
"""

from __future__ import annotations

import os
from dataclasses import asdict
from typing import Any, Callable, Dict, Optional

from ..compiler.cache import kernel_fingerprint
from ..compiler.lint import run_lints
from ..compiler.lint.diagnostics import LintError
from ..compiler.pipeline import compile_kernel
from ..ir.verify import VerificationError
from ..kernels.suite import make_benchmark
from ..orchestrator import Journal, Telemetry
from ..faults.campaign import campaign_report, run_campaign
from .protocol import JobSpec

EventSink = Callable[[Dict[str, Any]], None]


def campaign_journal_stem(p: Dict[str, Any]) -> str:
    """Journal filename stem carrying the campaign's full identity.

    Every parameter that changes trial outcomes must appear here —
    notably ``scale`` (small vs paper kernels) and the fault-plan bounds
    ``max_wave``/``max_instr`` — or two different campaigns would map to
    the same ``resume=True`` journal and silently mix their trials.
    """
    return (f"{p['benchmark']}_{p['variant']}_{p['target']}_{p['scale']}"
            f"_t{p['trials']}_s{p['seed']}"
            f"_w{p['max_wave']}_i{p['max_instr']}").replace("+", "p")


class JobError(RuntimeError):
    """A job failed; ``payload`` is the structured error response."""

    def __init__(self, message: str, **payload):
        super().__init__(message)
        self.payload = {"error": message, **payload}


def _emit(on_event: Optional[EventSink], stream: str, data: Dict[str, Any]) -> None:
    if on_event is not None:
        on_event({"stream": stream, "data": data})


def execute_job(
    spec: JobSpec,
    *,
    should_stop: Optional[Callable[[], bool]] = None,
    on_event: Optional[EventSink] = None,
    journal_dir: Optional[str] = None,
    default_workers: int = 1,
) -> Dict[str, Any]:
    """Run one job to completion (or checkpoint); return its response."""
    if spec.kind == "compile":
        return run_compile_job(spec, on_event=on_event)
    if spec.kind == "certify":
        return run_certify_job(spec, on_event=on_event)
    return run_campaign_job(spec, should_stop=should_stop, on_event=on_event,
                            journal_dir=journal_dir,
                            default_workers=default_workers)


def run_compile_job(spec: JobSpec, on_event: Optional[EventSink] = None) -> Dict:
    """Kernel spec → variant/opt build through the full default pipeline.

    The compile goes through the process-wide compile cache: on a hit
    the lint + TV cost was paid when the artifact was first built (the
    pipeline rejects uncertified compiles), so ``certified`` is sound
    for cached artifacts too.  Residual warning-severity diagnostics are
    re-derived from the compiled kernel — ``run_lints`` is pure
    analysis — and serialised through the shared ``Diagnostic.to_json``.
    """
    p = spec.as_dict()
    bench = make_benchmark(p["benchmark"], scale=p["scale"])
    kernel = bench.build()
    fingerprint = kernel_fingerprint(kernel)
    _emit(on_event, "compile", {"stage": "build", "kernel": kernel.name,
                                "fingerprint": fingerprint})
    try:
        compiled = compile_kernel(kernel, p["variant"], optimize=bool(p["opt"]))
    except LintError as exc:
        raise JobError(str(exc),
                       diagnostics=[d.to_json() for d in exc.diagnostics])
    except VerificationError as exc:
        raise JobError(str(exc))
    warnings = [d.to_json() for d in run_lints(compiled.kernel)]
    return {
        "fingerprint": fingerprint,
        "benchmark": p["benchmark"],
        "scale": p["scale"],
        "variant": p["variant"],
        "opt": p["opt"],
        "kernel": compiled.kernel.name,
        "certified": True,
        "diagnostics": warnings,
        "resources": asdict(compiled.resources),
        "scalar_instrs": len(compiled.scalar_instrs),
    }


def run_certify_job(spec: JobSpec, on_event: Optional[EventSink] = None) -> Dict:
    """TV matrix for one kernel — the daemon face of ``repro.tv``."""
    from ..tv import certify_matrix

    p = spec.as_dict()

    def on_row(target: str, row: Dict) -> None:
        _emit(on_event, "row", {"target": target,
                                "ok": bool(row.get("ok", False))})

    rows, summary = certify_matrix(
        [p["benchmark"]], p["variants"], p["opt_levels"], scale=p["scale"],
        on_row=on_row)
    return {
        "fingerprint": kernel_fingerprint(
            make_benchmark(p["benchmark"], scale=p["scale"]).build()),
        "results": rows,
        "summary": summary,
        "ok": summary["certified"] == summary["total"],
    }


def run_campaign_job(
    spec: JobSpec,
    *,
    should_stop: Optional[Callable[[], bool]] = None,
    on_event: Optional[EventSink] = None,
    journal_dir: Optional[str] = None,
    default_workers: int = 1,
) -> Dict:
    """Fault-injection sweep with streaming telemetry + journal events.

    The journal lives under ``journal_dir`` named by the job's full
    identity (:func:`campaign_journal_stem`), opened with
    ``resume=True``: a checkpointed or killed campaign job that is
    resubmitted picks up exactly where the journal ends, and a job with
    different parameters can never adopt this journal's trials.
    """
    p = spec.as_dict()
    workers = p["workers"] if p["workers"] > 0 else default_workers

    tel = Telemetry(
        label=spec.label,
        on_event=None if on_event is None else (
            lambda ev: _emit(on_event, "telemetry", ev.as_dict())),
    )

    jnl = None
    journal_path = None
    if journal_dir is not None:
        os.makedirs(journal_dir, exist_ok=True)
        stem = campaign_journal_stem(p)
        journal_path = os.path.join(journal_dir, f"{stem}.jsonl")
        jnl = Journal(
            journal_path, resume=True,
            meta={
                "kind": "fault-campaign",
                "benchmark": p["benchmark"], "variant": p["variant"],
                "target": p["target"], "scale": p["scale"],
                "trials": p["trials"], "seed": p["seed"],
                "max_wave": p["max_wave"], "max_instr": p["max_instr"],
            },
            on_append=None if on_event is None else (
                lambda entry: _emit(on_event, "journal", entry)),
        )

    result = run_campaign(
        lambda: make_benchmark(p["benchmark"], scale=p["scale"]),
        p["variant"], p["target"],
        scale=p["scale"],
        trials=p["trials"], seed=p["seed"],
        max_wave=p["max_wave"], max_instr=p["max_instr"],
        workers=workers, timeout_s=p["timeout_s"],
        max_retries=p["max_retries"],
        journal=jnl, telemetry=tel, should_stop=should_stop,
    )
    complete = result.trials >= p["trials"]
    doc = {
        "campaign": campaign_report(result, tel),
        "complete": complete,
    }
    if journal_path is not None:
        doc["journal"] = journal_path
    return doc
