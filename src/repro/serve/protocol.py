"""Wire protocol for the serve daemon: JSON lines, job specs, job keys.

Everything on the socket is newline-delimited JSON (one object per
line, UTF-8) — the same deliberately dumb framing as the orchestrator
journal, so a session can be driven by ``nc`` and inspected with
``jq``.  Client → server messages carry an ``op``; server → client
messages carry an ``event`` plus the client's job tag ``id`` when they
belong to a submission.

Client ops::

    {"op": "submit", "id": "c1", "priority": 0, "deadline_s": 30.0,
     "job": {"kind": "compile", "benchmark": "FWT", "variant": "intra+lds"}}
    {"op": "cancel", "id": "c1"}          # or {"op": "cancel", "job": 7}
    {"op": "status"} | {"op": "ping"} | {"op": "drain"}

Server events: ``accepted``, ``telemetry`` / ``journal`` / ``row``
(streamed progress), and exactly one terminal event per submission —
``result``, ``checkpointed``, ``cancelled``, or ``error``.

This module also owns the two identity notions the daemon multiplexes
on:

* :func:`parse_job` validates and *canonicalises* a job payload — every
  parameter is defaulted and type-checked here, so the daemon and the
  result store only ever see fully-resolved specs and two spellings of
  the same request cannot diverge;
* :func:`job_key` is the multi-tenant dedup key: the structural kernel
  fingerprint of :func:`repro.compiler.cache.kernel_fingerprint` (so
  the key names the *kernel content*, not the submission) combined with
  the canonical job parameters.  Identical submissions from different
  clients share one key, which is what lets the daemon compile once and
  serve everyone from the result store.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..compiler.cache import kernel_fingerprint
from ..compiler.pipeline import RMT_VARIANTS
from ..faults.injector import TARGETS
from ..kernels.suite import SUITE

PROTOCOL_VERSION = 1

#: Default Unix socket path (override with --socket / REPRO_SERVE_SOCKET).
DEFAULT_SOCKET = os.environ.get("REPRO_SERVE_SOCKET", ".repro-serve.sock")

JOB_KINDS = ("compile", "certify", "campaign")

#: Certify defaults mirror the ``repro.tv`` CLI matrix.
CERTIFY_VARIANTS = ("original", "intra+lds", "intra-lds", "inter")

SCALES = ("small", "paper")


class ProtocolError(ValueError):
    """A malformed message or an invalid job specification."""


def encode_line(obj: Dict[str, Any]) -> bytes:
    """One protocol message as a JSON line (sorted keys, compact)."""
    return (json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n").encode()


def decode_line(line: bytes) -> Dict[str, Any]:
    try:
        obj = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable message: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("message must be a JSON object")
    return obj


@dataclass(frozen=True)
class JobSpec:
    """One fully-resolved, validated job: kind + canonical parameters."""

    kind: str
    params: Tuple[Tuple[str, Any], ...]   # sorted, hashable

    def param(self, name: str) -> Any:
        return dict(self.params)[name]

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, **dict(self.params)}

    @property
    def label(self) -> str:
        p = dict(self.params)
        if self.kind == "compile":
            return f"compile {p['benchmark']}/{p['variant']}@O{p['opt']}"
        if self.kind == "certify":
            return f"certify {p['benchmark']}"
        return (f"campaign {p['benchmark']}/{p['variant']}/{p['target']}"
                f" x{p['trials']}")


def _require(payload: Dict, name: str, choices=None) -> Any:
    value = payload.get(name)
    if value is None:
        raise ProtocolError(f"job is missing required field {name!r}")
    if choices is not None and value not in choices:
        raise ProtocolError(
            f"unknown {name} {value!r}; choose from {', '.join(choices)}")
    return value


def _int_field(payload: Dict, name: str, default: int, lo: int, hi: int) -> int:
    value = payload.get(name, default)
    if not isinstance(value, int) or isinstance(value, bool) or not lo <= value <= hi:
        raise ProtocolError(f"{name} must be an integer in [{lo}, {hi}]")
    return value


def parse_job(payload: Any) -> JobSpec:
    """Validate a job payload and canonicalise every parameter.

    Unknown fields are rejected rather than ignored: a client typo like
    ``"trails"`` silently running a 32-trial default campaign would be
    worse than an error.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("job must be a JSON object")
    kind = _require(payload, "kind", JOB_KINDS)
    benchmark = _require(payload, "benchmark", tuple(SUITE))
    scale = payload.get("scale", "small")
    if scale not in SCALES:
        raise ProtocolError(f"unknown scale {scale!r}; choose from {SCALES}")

    known = {"kind", "benchmark", "scale"}
    params: Dict[str, Any] = {"benchmark": benchmark, "scale": scale}
    if kind == "compile":
        known |= {"variant", "opt"}
        variant = payload.get("variant", "original")
        if variant not in RMT_VARIANTS:
            raise ProtocolError(f"unknown variant {variant!r}")
        params["variant"] = variant
        params["opt"] = _int_field(payload, "opt", 0, 0, 1)
    elif kind == "certify":
        known |= {"variants", "opt_levels"}
        variants = payload.get("variants", list(CERTIFY_VARIANTS))
        if (not isinstance(variants, list) or not variants
                or any(v not in RMT_VARIANTS for v in variants)):
            raise ProtocolError(f"variants must be a non-empty list from "
                                f"{', '.join(RMT_VARIANTS)}")
        opt_levels = payload.get("opt_levels", [0, 1])
        if (not isinstance(opt_levels, list) or not opt_levels
                or any(o not in (0, 1) for o in opt_levels)):
            raise ProtocolError("opt_levels must be a non-empty list from {0,1}")
        # Tuples, not lists: params must stay hashable for the frozen
        # JobSpec (and tuples serialise as JSON arrays anyway).
        params["variants"] = tuple(variants)
        params["opt_levels"] = tuple(opt_levels)
    else:  # campaign
        known |= {"variant", "target", "trials", "seed", "max_wave",
                  "max_instr", "workers", "timeout_s", "max_retries"}
        variant = payload.get("variant", "intra+lds")
        if variant not in RMT_VARIANTS:
            raise ProtocolError(f"unknown variant {variant!r}")
        params["variant"] = variant
        params["target"] = _require(payload, "target", TARGETS) \
            if "target" in payload else "vgpr"
        params["trials"] = _int_field(payload, "trials", 32, 1, 1_000_000)
        params["seed"] = _int_field(payload, "seed", 1234, 0, 2**63 - 1)
        params["max_wave"] = _int_field(payload, "max_wave", 8, 1, 4096)
        params["max_instr"] = _int_field(payload, "max_instr", 24, 1, 1_000_000)
        params["workers"] = _int_field(payload, "workers", 0, 0, 256)
        params["max_retries"] = _int_field(payload, "max_retries", 1, 0, 16)
        timeout_s = payload.get("timeout_s")
        if timeout_s is not None and (
                not isinstance(timeout_s, (int, float))
                or isinstance(timeout_s, bool) or timeout_s <= 0):
            raise ProtocolError("timeout_s must be a positive number")
        params["timeout_s"] = timeout_s

    unknown = set(payload) - known
    if unknown:
        raise ProtocolError(f"unknown job field(s): {', '.join(sorted(unknown))}")
    return JobSpec(kind=kind, params=tuple(sorted(params.items())))


# -- job keys ---------------------------------------------------------------

#: (benchmark, scale) → structural kernel fingerprint.  Kernel builds are
#: deterministic, so memoising per daemon process is sound and keeps key
#: computation off the hot submit path after the first request.
_FP_MEMO: Dict[Tuple[str, str], str] = {}


def benchmark_fingerprint(benchmark: str, scale: str) -> str:
    """Structural fingerprint of one suite benchmark's (original) kernel."""
    memo_key = (benchmark, scale)
    fp = _FP_MEMO.get(memo_key)
    if fp is None:
        from ..kernels.suite import make_benchmark

        fp = kernel_fingerprint(make_benchmark(benchmark, scale=scale).build())
        _FP_MEMO[memo_key] = fp
    return fp


def job_key(spec: JobSpec) -> str:
    """Content-addressed dedup key: kernel fingerprint + canonical params."""
    p = dict(spec.params)
    fp = benchmark_fingerprint(p["benchmark"], p["scale"])
    blob = json.dumps({"kind": spec.kind, "fingerprint": fp, **p},
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(f"serve-v{PROTOCOL_VERSION}|{blob}".encode()).hexdigest()
