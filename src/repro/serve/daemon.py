"""The serve daemon: asyncio front end over the orchestrator subsystems.

One long-lived process owns everything expensive — the process-wide
compile cache (memory + optional disk tier), the result store, and the
bounded job-runner slots — and multiplexes any number of client
connections onto them over a local Unix socket (or TCP for containers
without a shared filesystem).

Job lifecycle::

    submit ──> result-store hit ───────────────────────────> result(cached)
          └──> in-flight key match (coalesced subscriber) ─┐
          └──> priority queue ── runner slot ── executor ──┴─> result
                    │                 │                        checkpointed
                    │ (cancel/drain)  │ (cancel, deadline)     cancelled
                    └─────────────────┴──────────────────────> error

* **Priority queue** — lower number runs first; FIFO within a priority
  (tie-broken by submission sequence).  ``deadline_s`` is a wall-clock
  budget covering queue time *and* run time: a job whose deadline
  expires while queued is failed without running; one that deadlines
  mid-run is stopped cooperatively and reported as a ``deadline`` error
  (campaigns keep their journal, so nothing is lost).
* **Cancellation** — a queued job is dropped; a running job gets its
  stop event and checkpoints at the next trial boundary.
* **Single-flight dedup** — submissions are keyed by the structural
  kernel fingerprint plus canonical parameters (:func:`.protocol.job_key`).
  A key that is already running or queued attaches the new client as a
  subscriber instead of enqueueing a duplicate; a key already in the
  result store is answered immediately.  Either way the expensive work
  happens exactly once per distinct key.
* **Graceful drain** — SIGTERM/SIGINT (or the ``drain`` op): stop
  accepting submissions, cancel the queued tail, signal running jobs to
  checkpoint, wait (bounded) for them to flush their journals, notify
  every subscriber, then exit.  Campaign journals written under
  ``journal_dir`` are ``resume=True``, so resubmitting a drained
  campaign completes it instead of restarting it.

Executors run in threads (``asyncio.to_thread``) with at most
``max_jobs`` in flight; campaign jobs may additionally fork
orchestrator pool workers, which inherit the warm compile cache.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..compiler.cache import CompileCache, default_cache, set_default_cache
from .jobs import JobError, execute_job
from .protocol import (
    DEFAULT_SOCKET,
    PROTOCOL_VERSION,
    JobSpec,
    ProtocolError,
    decode_line,
    encode_line,
    job_key,
    parse_job,
)
from .store import ResultStore

#: Job states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
CANCELLED = "cancelled"
CHECKPOINTED = "checkpointed"
FAILED = "error"


@dataclass
class ServeConfig:
    """Daemon configuration (mirrors the ``python -m repro.serve`` flags)."""

    socket: Optional[str] = DEFAULT_SOCKET   # unix socket path
    host: Optional[str] = None               # set for TCP instead
    port: int = 0
    max_jobs: int = 2                        # concurrent runner slots
    job_workers: int = 1                     # default fork workers/campaign
    journal_dir: Optional[str] = None        # campaign journals (resumable)
    cache_dir: Optional[str] = None          # compile-cache disk tier
    drain_grace_s: float = 60.0              # max wait for jobs to checkpoint


class _Connection:
    """One client connection: serialised writes through a send queue."""

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue()
        self.closed = False

    def send(self, obj: Dict[str, Any]) -> None:
        if not self.closed:
            self.queue.put_nowait(obj)

    async def sender(self) -> None:
        try:
            while True:
                obj = await self.queue.get()
                if obj is None:
                    break
                self.writer.write(encode_line(obj))
                await self.writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.closed = True


@dataclass
class _Job:
    jid: int
    key: str
    spec: JobSpec
    priority: int
    deadline: Optional[float]               # event-loop clock
    state: str = QUEUED
    stop: threading.Event = field(default_factory=threading.Event)
    timed_out: bool = False
    cancel_requested: bool = False
    #: (connection, client job tag) pairs fed every event.
    subscribers: List[Tuple[_Connection, str]] = field(default_factory=list)


class ServeDaemon:
    """Accepts JSON-line jobs, multiplexes them onto runner slots."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.store = ResultStore()
        self.jobs: Dict[int, _Job] = {}
        self.inflight: Dict[str, _Job] = {}
        self.running: Set[int] = set()
        self.connections: Set[_Connection] = set()
        self.draining = False
        self.coalesced = 0
        self.executed = 0
        self._seq = 0
        self._queue: "asyncio.PriorityQueue[Tuple[int, int, int]]" = None  # type: ignore[assignment]
        self._stopped: asyncio.Event = None  # type: ignore[assignment]
        self._server: Optional[asyncio.base_events.Server] = None
        self._runners: List[asyncio.Task] = []
        self._started = threading.Event()    # for start_background()
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle --------------------------------------------------------

    async def run(self) -> None:
        """Serve until drained; returns after the last job checkpointed."""
        cfg = self.config
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.PriorityQueue()
        self._stopped = asyncio.Event()

        if cfg.cache_dir:
            # Upgrade the process-wide cache to the disk tier; all jobs
            # (and their forked campaign workers) share it.
            if default_cache() is None or \
                    getattr(default_cache(), "disk_dir", None) != cfg.cache_dir:
                set_default_cache(CompileCache(disk_dir=cfg.cache_dir))
        if cfg.journal_dir:
            os.makedirs(cfg.journal_dir, exist_ok=True)

        if cfg.host is not None:
            self._server = await asyncio.start_server(
                self._handle_conn, host=cfg.host, port=cfg.port)
        else:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(cfg.socket)
            self._server = await asyncio.start_unix_server(
                self._handle_conn, path=cfg.socket)

        # Signal handlers only exist on the main thread; the background
        # (test) mode drains through the drain op instead.
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                self._loop.add_signal_handler(sig, self.drain)

        self._runners = [asyncio.create_task(self._runner())
                         for _ in range(max(1, cfg.max_jobs))]
        self._started.set()
        try:
            await self._stopped.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            for task in self._runners:
                task.cancel()
            await asyncio.gather(*self._runners, return_exceptions=True)
            if cfg.host is None:
                with contextlib.suppress(FileNotFoundError):
                    os.unlink(cfg.socket)

    def drain(self) -> None:
        """Begin graceful shutdown (idempotent; signal-handler safe)."""
        if self.draining:
            return
        self.draining = True
        for job in list(self.jobs.values()):
            if job.state == QUEUED:
                job.state = CANCELLED
                self.inflight.pop(job.key, None)
                self._notify(job, {"event": "cancelled", "reason": "drain"})
            elif job.state == RUNNING:
                job.stop.set()
        asyncio.ensure_future(self._finish_drain(), loop=self._loop)

    async def _finish_drain(self) -> None:
        deadline = self._loop.time() + self.config.drain_grace_s
        while self.running and self._loop.time() < deadline:
            await asyncio.sleep(0.05)
        # Let every connection's sender flush its queued terminal events
        # before the loop is torn down, or clients would miss the
        # checkpointed/cancelled notifications the drain produced.  The
        # flush gets its own small budget: a job that consumed the whole
        # drain grace must not starve the notifications it just produced.
        flush_deadline = self._loop.time() + min(5.0, self.config.drain_grace_s)
        while (any(not c.queue.empty() for c in self.connections
                   if not c.closed) and self._loop.time() < flush_deadline):
            await asyncio.sleep(0.02)
        await asyncio.sleep(0.05)
        self._stopped.set()

    @property
    def endpoint(self) -> str:
        if self.config.host is not None:
            addr = self._server.sockets[0].getsockname()
            return f"{addr[0]}:{addr[1]}"
        return self.config.socket

    @property
    def port(self) -> int:
        """Bound TCP port (after start; useful with ``port=0``)."""
        return self._server.sockets[0].getsockname()[1]

    # -- connections ------------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        conn = _Connection(writer)
        self.connections.add(conn)
        sender = asyncio.create_task(conn.sender())
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    msg = decode_line(line)
                except ProtocolError as exc:
                    conn.send({"event": "error", "error": str(exc)})
                    continue
                await self._dispatch(conn, msg)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            conn.closed = True
            self.connections.discard(conn)
            # Keep running jobs alive — their results still land in the
            # store — but stop feeding this connection.
            for job in self.jobs.values():
                job.subscribers = [(c, t) for c, t in job.subscribers
                                   if c is not conn]
            sender.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await sender
            with contextlib.suppress(ConnectionError):
                writer.close()

    async def _dispatch(self, conn: _Connection, msg: Dict[str, Any]) -> None:
        op = msg.get("op")
        cid = str(msg.get("id", ""))
        if op == "ping":
            conn.send({"event": "pong", "version": PROTOCOL_VERSION})
        elif op == "status":
            conn.send({"event": "status", **self.status()})
        elif op == "drain":
            conn.send({"event": "draining"})
            self.drain()
        elif op == "submit":
            await self._submit(conn, cid, msg)
        elif op == "cancel":
            self._cancel(conn, cid, msg)
        else:
            conn.send({"event": "error", "id": cid,
                       "error": f"unknown op {op!r}"})

    def status(self) -> Dict[str, Any]:
        states: Dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        cache = default_cache()
        return {
            "version": PROTOCOL_VERSION,
            "draining": self.draining,
            "jobs": states,
            "executed": self.executed,
            "coalesced": self.coalesced,
            "store": self.store.stats(),
            "cache": None if cache is None else cache.stats.as_dict(),
        }

    # -- submission -------------------------------------------------------

    async def _submit(self, conn: _Connection, cid: str,
                      msg: Dict[str, Any]) -> None:
        if self.draining:
            conn.send({"event": "error", "id": cid, "status": "rejected",
                       "error": "daemon is draining"})
            return
        try:
            spec = parse_job(msg.get("job"))
            priority = msg.get("priority", 0)
            if not isinstance(priority, int) or isinstance(priority, bool):
                raise ProtocolError("priority must be an integer")
            deadline_s = msg.get("deadline_s")
            if deadline_s is not None and (
                    not isinstance(deadline_s, (int, float))
                    or isinstance(deadline_s, bool) or deadline_s <= 0):
                raise ProtocolError("deadline_s must be a positive number")
        except ProtocolError as exc:
            conn.send({"event": "error", "id": cid, "status": "rejected",
                       "error": str(exc)})
            return
        # Key computation builds the kernel once per (benchmark, scale);
        # off the event loop because a first-touch build is not free.
        key = await asyncio.to_thread(job_key, spec)
        if self.draining:
            # Drain began while the key was computing; the queued tail has
            # already been cancelled, so enqueueing now would race shutdown.
            conn.send({"event": "error", "id": cid, "status": "rejected",
                       "error": "daemon is draining"})
            return

        hit = self.store.get(key)
        if hit is not None:
            conn.send({"event": "result", "id": cid, "ok": True,
                       "cached": True, "key": key, "result": hit})
            return

        running = self.inflight.get(key)
        if running is not None and running.state in (QUEUED, RUNNING):
            # Single-flight: ride the in-progress job instead of
            # duplicating the work.
            self.coalesced += 1
            running.subscribers.append((conn, cid))
            conn.send({"event": "accepted", "id": cid, "job": running.jid,
                       "key": key, "coalesced": True})
            return

        self._seq += 1
        job = _Job(
            jid=self._seq, key=key, spec=spec, priority=priority,
            deadline=(self._loop.time() + deadline_s) if deadline_s else None,
        )
        job.subscribers.append((conn, cid))
        self.jobs[job.jid] = job
        self.inflight[key] = job
        self._queue.put_nowait((priority, job.jid, job.jid))
        conn.send({"event": "accepted", "id": cid, "job": job.jid,
                   "key": key, "coalesced": False})

    def _cancel(self, conn: _Connection, cid: str, msg: Dict[str, Any]) -> None:
        job = None
        if "job" in msg:
            job = self.jobs.get(msg["job"])
        else:
            for candidate in self.jobs.values():
                if any(c is conn and t == cid for c, t in candidate.subscribers):
                    job = candidate
                    break
        if job is None or job.state not in (QUEUED, RUNNING):
            conn.send({"event": "error", "id": cid,
                       "error": "no such cancellable job"})
            return
        job.cancel_requested = True
        if job.state == QUEUED:
            job.state = CANCELLED
            self.inflight.pop(job.key, None)
            self._notify(job, {"event": "cancelled", "reason": "client"})
        else:
            job.stop.set()   # runner reports "cancelled" when it returns
        conn.send({"event": "cancelling", "id": cid, "job": job.jid})

    # -- execution --------------------------------------------------------

    async def _runner(self) -> None:
        while True:
            _, _, jid = await self._queue.get()
            job = self.jobs.get(jid)
            if job is None or job.state != QUEUED:
                continue   # cancelled (or drained) while queued
            if job.deadline is not None and self._loop.time() > job.deadline:
                job.state = FAILED
                self.inflight.pop(job.key, None)
                self._notify(job, {"event": "error", "status": "deadline",
                                   "error": "deadline expired while queued"})
                continue
            job.state = RUNNING
            self.running.add(job.jid)
            self.executed += 1
            watchdog = (asyncio.create_task(self._deadline_watch(job))
                        if job.deadline is not None else None)
            loop = self._loop

            def on_event(payload: Dict[str, Any], job=job) -> None:
                # Called on the executor thread; hop to the event loop.
                loop.call_soon_threadsafe(self._publish, job, payload)

            try:
                result = await asyncio.to_thread(
                    execute_job, job.spec,
                    should_stop=job.stop.is_set,
                    on_event=on_event,
                    journal_dir=self.config.journal_dir,
                    default_workers=self.config.job_workers,
                )
            except JobError as exc:
                outcome = (FAILED, {"event": "error", "status": "failed",
                                    **exc.payload})
            except asyncio.CancelledError:
                # Shutdown is cancelling this runner task; swallowing the
                # cancellation would leave run()'s gather waiting forever.
                raise
            except BaseException as exc:  # noqa: BLE001 - report, keep serving
                outcome = (FAILED, {"event": "error", "status": "crashed",
                                    "error": repr(exc)})
            else:
                if job.cancel_requested:
                    outcome = (CANCELLED, {"event": "cancelled",
                                           "reason": "client",
                                           "result": result})
                elif job.timed_out:
                    outcome = (FAILED, {"event": "error", "status": "deadline",
                                        "error": "deadline expired",
                                        "result": result})
                elif not result.get("complete", True):
                    # Drain checkpoint: journal flushed, resumable.
                    outcome = (CHECKPOINTED, {"event": "checkpointed",
                                              "result": result})
                else:
                    self.store.put(job.key, result)
                    outcome = (DONE, {"event": "result", "ok": True,
                                      "cached": False, "key": job.key,
                                      "result": result})
            finally:
                if watchdog is not None:
                    watchdog.cancel()
                self.running.discard(job.jid)
            job.state = outcome[0]
            self.inflight.pop(job.key, None)
            self._notify(job, outcome[1])

    async def _deadline_watch(self, job: _Job) -> None:
        delay = job.deadline - self._loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        job.timed_out = True
        job.stop.set()

    # -- event fan-out ----------------------------------------------------

    def _publish(self, job: _Job, payload: Dict[str, Any]) -> None:
        event = {"event": payload.get("stream", "progress"), "job": job.jid,
                 "data": payload.get("data", payload)}
        for conn, cid in job.subscribers:
            conn.send({**event, "id": cid})

    def _notify(self, job: _Job, payload: Dict[str, Any]) -> None:
        for conn, cid in job.subscribers:
            conn.send({**payload, "id": cid, "job": job.jid})


# -- background helper (tests, examples) ------------------------------------


class DaemonHandle:
    """A daemon running on a private event loop in a background thread."""

    def __init__(self, daemon: ServeDaemon, thread: threading.Thread):
        self.daemon = daemon
        self.thread = thread

    def drain(self) -> None:
        loop = self.daemon._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.daemon.drain)

    def join(self, timeout: Optional[float] = None) -> None:
        self.thread.join(timeout)

    @property
    def alive(self) -> bool:
        return self.thread.is_alive()


def start_background(config: Optional[ServeConfig] = None,
                     ready_timeout: float = 10.0) -> DaemonHandle:
    """Run a :class:`ServeDaemon` in a daemon thread; wait until bound."""
    daemon = ServeDaemon(config)
    failure: List[BaseException] = []

    def runner() -> None:
        try:
            asyncio.run(daemon.run())
        except BaseException as exc:  # noqa: BLE001 - surfaced to starter
            failure.append(exc)
            daemon._started.set()

    thread = threading.Thread(target=runner, name="repro-serve", daemon=True)
    thread.start()
    if not daemon._started.wait(ready_timeout):
        raise RuntimeError("serve daemon did not start in time")
    if failure:
        raise RuntimeError(f"serve daemon failed to start: {failure[0]!r}")
    # _started is set just before the listen loop parks; give the loop
    # one scheduling quantum to actually accept connections.
    deadline = time.monotonic() + ready_timeout
    while daemon._server is None and time.monotonic() < deadline:
        time.sleep(0.01)
    return DaemonHandle(daemon, thread)
