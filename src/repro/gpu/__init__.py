"""GCN-class GPU simulator substrate.

Cycle-approximate model of the paper's AMD Radeon HD 7790 test platform:
compute units with four 16-wide SIMDs, 64-wide wavefronts, VGPR/SGPR/LDS
occupancy limits, a scalar unit, write-through L1s over a banked shared
L2, DRAM bandwidth accounting, L2 atomics, CodeXL-style performance
counters, and an activity-based power monitor.
"""

from .config import DEFAULT_POWER, HD7790, GpuConfig, PowerConfig
from .counters import CounterReport, KernelCounters, merge_counters
from .device import Device, DeviceRunStats
from .engine import Engine, LaunchResult, SimulationError
from .memory import CacheModel, DeviceBuffer, GlobalMemory, coalesce_lines
from .occupancy import KernelResources, Occupancy, SchedulingError, compute_occupancy
from .power import PowerReport, estimate_power
from .schedule import (
    DefaultScheduler,
    OpInfo,
    ReorderScheduler,
    ScheduleDeadlock,
    Scheduler,
)
from .wavefront import LaunchContext, Wavefront

__all__ = [
    "CacheModel",
    "CounterReport",
    "DEFAULT_POWER",
    "DefaultScheduler",
    "Device",
    "DeviceBuffer",
    "DeviceRunStats",
    "Engine",
    "GlobalMemory",
    "GpuConfig",
    "HD7790",
    "KernelCounters",
    "KernelResources",
    "LaunchContext",
    "LaunchResult",
    "Occupancy",
    "OpInfo",
    "PowerConfig",
    "PowerReport",
    "ReorderScheduler",
    "ScheduleDeadlock",
    "Scheduler",
    "SchedulingError",
    "SimulationError",
    "Wavefront",
    "coalesce_lines",
    "compute_occupancy",
    "estimate_power",
    "merge_counters",
]
