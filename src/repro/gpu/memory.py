"""Functional global memory and cache tag models.

Data lives in flat numpy arrays owned by :class:`DeviceBuffer`.  Buffers
are assigned disjoint base addresses in a flat byte address space so the
set-associative tag models (write-through per-CU L1, shared L2) can
classify each 64-byte line transaction as an L1 hit, L2 hit, or DRAM
access — the classification the timing engine turns into latency and
bandwidth consumption.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..ir.core import BufferParam
from ..ir.types import DType
from .config import GpuConfig


class DeviceBuffer:
    """A global-memory allocation bound to a kernel buffer parameter."""

    def __init__(self, name: str, data: np.ndarray, base_addr: int):
        if data.ndim != 1:
            raise ValueError("device buffers are 1-D")
        self.name = name
        self.data = data
        self.base_addr = base_addr
        self.elem_bytes = data.dtype.itemsize

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def addresses(self, indices: np.ndarray) -> np.ndarray:
        """Byte addresses for element indices."""
        return self.base_addr + indices.astype(np.int64) * self.elem_bytes

    def __repr__(self) -> str:
        return f"DeviceBuffer({self.name!r}, n={self.data.size}, base={self.base_addr:#x})"


class GlobalMemory:
    """Allocator + functional access for the flat global address space."""

    _LINE_ALIGN = 256

    def __init__(self):
        self._next_base = 0x1000
        self.buffers: Dict[str, DeviceBuffer] = {}

    def alloc(self, name: str, data: np.ndarray) -> DeviceBuffer:
        """Bind host data as a device buffer (copy-in)."""
        data = np.ascontiguousarray(data).reshape(-1)
        buf = DeviceBuffer(name, data.copy(), self._next_base)
        step = -(-data.nbytes // self._LINE_ALIGN) * self._LINE_ALIGN
        self._next_base += max(step, self._LINE_ALIGN)
        self.buffers[name] = buf
        return buf

    def read(self, buf: DeviceBuffer, indices: np.ndarray) -> np.ndarray:
        self._bounds_check(buf, indices)
        return buf.data[indices]

    def write(self, buf: DeviceBuffer, indices: np.ndarray, values: np.ndarray) -> None:
        self._bounds_check(buf, indices)
        buf.data[indices] = values

    def atomic(
        self,
        op: str,
        buf: DeviceBuffer,
        indices: np.ndarray,
        values: np.ndarray,
        compares: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Apply a lane-ordered atomic RMW; returns old values per lane."""
        self._bounds_check(buf, indices)
        old = np.empty_like(values)
        data = buf.data
        for i in range(indices.size):
            idx = indices[i]
            prev = data[idx]
            old[i] = prev
            if op == "add":
                data[idx] = prev + values[i]
            elif op == "or":
                data[idx] = prev | values[i]
            elif op == "max":
                data[idx] = max(prev, values[i])
            elif op == "xchg":
                data[idx] = values[i]
            elif op == "cmpxchg":
                if prev == compares[i]:
                    data[idx] = values[i]
            else:  # pragma: no cover - guarded by IR validation
                raise ValueError(f"unknown atomic op {op!r}")
        return old

    @staticmethod
    def _bounds_check(buf: DeviceBuffer, indices: np.ndarray) -> None:
        if indices.size == 0:
            return
        lo = int(indices.min())
        hi = int(indices.max())
        if lo < 0 or hi >= buf.data.size:
            raise IndexError(
                f"out-of-bounds access to buffer {buf.name!r}: "
                f"indices in [{lo}, {hi}], size {buf.data.size}"
            )


def coalesce_lines(addresses: np.ndarray, line_bytes: int) -> np.ndarray:
    """Unique cache-line addresses touched by a vector memory operation.

    This is the GCN coalescing model: a 64-lane access to consecutive
    32-bit elements touches 4 lines; a fully scattered access touches up
    to 64.
    """
    return np.unique(addresses // line_bytes)


class CacheModel:
    """Set-associative LRU writeback tag array.

    Tags only — data lives in :class:`GlobalMemory`.  ``access`` returns
    the hit/miss outcome plus the address of any dirty line evicted by
    the allocation, which the timing engine turns into a DRAM writeback.
    (The per-CU L1s in GCN are write-through and never hold dirty lines;
    the shared L2 is writeback, which is why streaming stores reach DRAM
    while hot lines — like the Inter-Group RMT communication buffers —
    stay on chip.)
    """

    def __init__(self, size_bytes: int, line_bytes: int, ways: int):
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = max(1, size_bytes // (line_bytes * ways))
        # Each set is an LRU-ordered list of line tags (most recent last).
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self._dirty: set = set()
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def access(
        self, line_addr: int, allocate: bool = True, write: bool = False
    ) -> Tuple[bool, Optional[int]]:
        """Probe (and update) the cache for one line.

        Returns ``(hit, evicted_dirty_line)``; the second element is
        ``None`` unless the allocation evicted a dirty line.
        """
        s = self._sets[line_addr % self.num_sets]
        if line_addr in s:
            s.remove(line_addr)
            s.append(line_addr)
            self.hits += 1
            if write:
                self._dirty.add(line_addr)
            return True, None
        self.misses += 1
        victim = None
        if allocate:
            if len(s) >= self.ways:
                evicted = s.pop(0)
                if evicted in self._dirty:
                    self._dirty.discard(evicted)
                    self.writebacks += 1
                    victim = evicted
            s.append(line_addr)
            if write:
                self._dirty.add(line_addr)
        return False, victim

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
