"""Vectorized multi-wavefront engine: run-ahead over stacked registers.

The fused lane (:mod:`repro.gpu.fused`) removed per-instruction dispatch
but still executes every straight-line block once *per wavefront*, on
64-lane vectors — so a 64-wave dispatch pays the numpy call overhead of
each block 64 times.  This module batches those executions: all resident
wavefronts of a dispatch share one *stacked register file* (one
``(capacity, WAVE)`` array per virtual register, one row per wave slot),
and a whole-CU's worth of waves parked at the same program point execute
each :class:`~repro.gpu.fused.FusedBlock` through a single 2-D closure
over ``(n_waves, 64)`` arrays.

**Why this preserves bitwise and cycle identity.**  The timing engine is
not changed at all — :class:`VecEngine` inherits the event loop, every
resource model, and all counter accounting from
:class:`~repro.gpu.engine.Engine`.  What changes is *when the functional
work between two engine events is computed*.  The engine computes a
continuation's resume value (load data, atomic old value) at the moment
it processes the request — *before* pushing ``(ready, seq, wave,
result)`` onto the event queue.  From that push onward, the wave's next
functional segment is fully determined:

* pure blocks touch only the wave's private registers;
* global-memory effects are never applied by the wave — it only *yields*
  ``GlobalReq``/``BarrierReq``/... which the unchanged engine applies in
  pop order, exactly as before;
* LDS accesses are applied functionally at walker time (as in the
  reference interpreter); their order against *other* waves of the group
  may shift within a barrier interval, which is observable only for
  intra-interval LDS races — and the compile pipeline's lds-race lint
  proves compiled kernels race-free, so the early application is
  value-identical.

So the coordinator may *run ahead*: the :class:`EventScheduler
<repro.gpu.schedule.EventScheduler>` reports every push, and when the
engine pops a continuation whose next request has not been computed yet,
the coordinator fast-forwards **all** staged waves one segment each,
round by round, executing each shared block once over the stacked rows
of every wave parked at it.  The request each wave would have yielded is
cached and handed to the engine at its pop — the engine observes the
identical request sequence, so cycles, counters, event counts, memory
effects, and detections are identical by construction (pinned by
``tests/test_vectorized_equivalence.py`` and the schedule-identity
goldens).

**When the engine falls back.**  The device routes a launch here only
when the global toggle is on (``REPRO_VECTOR`` / :func:`vector`) and
the requested scheduler declares ``supports_vectorized`` (the default
time-ordered/FIFO order does; adversarial and model-checking
schedulers do not, so ``repro.mc`` keeps the standard engine).
Fault-hooked launches are admitted only in fault-window mode under the
default scheduler with no group redispatch: the victim wave's *group*
is then statically predictable from the plan's ordinal, and
:meth:`VecEngine._spawn_wave` carves that one group out as reference
:class:`~repro.gpu.wavefront.Wavefront` objects (whose per-wave
register dicts the flip machinery depends on) while every other group
runs stacked.  Plain callable hooks observe every instruction of the
reference interpreter and always fall back.
``LaunchResult.engine_kind`` records which engine ran, making the
fallback provable in tests.
"""

from __future__ import annotations

import contextlib
import os
from typing import Dict, List, Optional

import numpy as np

from ..ir.core import (
    Alu,
    Cmp,
    Const,
    LoadParam,
    PredOp,
    Select,
    SpecialId,
    Swizzle,
    VReg,
)
from .engine import Engine, SimulationError
from .fused import (
    _INFIX_ALU,
    _INFIX_CMP,
    FusedBlock,
    LoweredIf,
    LoweredWhile,
    _block_costs,
    lower_kernel,
)
from .schedule import DefaultScheduler, EventScheduler
from .wavefront import (
    _ALU_FUNCS,
    _LANES,
    _SPIN_FLUSH_CYCLES,
    WAVE,
    Wavefront,
)

# ---------------------------------------------------------------------------
# Global enable switch (opt-in, mirroring REPRO_FUSION)
# ---------------------------------------------------------------------------

_enabled = os.environ.get("REPRO_VECTOR", "0").lower() in ("1", "true", "on")


def vector_enabled() -> bool:
    """Whether eligible launches run on the vectorized engine."""
    return _enabled


def set_vector_enabled(on: bool) -> None:
    global _enabled
    _enabled = bool(on)


@contextlib.contextmanager
def vector(on: bool):
    """Temporarily force the vectorized engine on or off."""
    prev = _enabled
    set_vector_enabled(on)
    try:
        yield
    finally:
        set_vector_enabled(prev)


# ---------------------------------------------------------------------------
# Stacked register store
# ---------------------------------------------------------------------------


class VecStore:
    """One ``(capacity, WAVE)`` array per virtual register, row per wave.

    Rows are recycled as waves complete, so capacity tracks *resident*
    waves (bounded by occupancy), not the dispatch size.  Views are
    never cached by callers — :meth:`row` re-indexes on every call — so
    growth (which reallocates) is safe between block executions.
    """

    def __init__(self):
        self.capacity = 0
        self.arrays: Dict[int, np.ndarray] = {}
        self.free: List[int] = []
        self.dirty: set = set()

    def alloc(self) -> int:
        if not self.free:
            grow = max(16, self.capacity)
            for rid, arr in self.arrays.items():
                self.arrays[rid] = np.concatenate(
                    [arr, np.zeros((grow, WAVE), arr.dtype)])
            self.free.extend(
                range(self.capacity + grow - 1, self.capacity - 1, -1))
            self.capacity += grow
        slot = self.free.pop()
        if slot in self.dirty:
            # A recycled row must present the lazily-zeroed register
            # semantics of a fresh Wavefront.
            self.dirty.discard(slot)
            for arr in self.arrays.values():
                arr[slot] = 0
        return slot

    def release(self, slot: int) -> None:
        self.dirty.add(slot)
        self.free.append(slot)

    def ensure(self, rid: int, dt) -> np.ndarray:
        arr = self.arrays.get(rid)
        if arr is None:
            arr = self.arrays[rid] = np.zeros((self.capacity, WAVE), dt)
        return arr

    def row(self, rid: int, dt, slot: int) -> np.ndarray:
        return self.ensure(rid, dt)[slot]


def _gather(store: VecStore, rid: int, dt, rows: np.ndarray) -> np.ndarray:
    return store.ensure(rid, dt)[rows]


def _scatter(store: VecStore, rid: int, dt, rows: np.ndarray, vals) -> None:
    store.ensure(rid, dt)[rows] = vals


# ---------------------------------------------------------------------------
# Block liveness
# ---------------------------------------------------------------------------

#: Pseudo-owner marking a register as referenced outside any fused block
#: (If/While conditions, memory-op operands) — always store-resident.
_EXTERNAL = 0

_REG_ATTRS = ("dst", "a", "b", "pred", "src", "index", "value", "compare")


def _instr_regs(ins):
    for attr in _REG_ATTRS:
        v = getattr(ins, attr, None)
        if isinstance(v, VReg):
            yield v


def _collect_refs(items, refs: Dict[int, set]) -> None:
    """Map register id -> set of referencing owners (block ids/_EXTERNAL).

    A register written by block B lives purely in B's locals unless some
    *other* owner references it — then the block must scatter it back to
    the store (and gather it when partially-masked writes need the
    previous values).  This is what makes long FMA chains cheap: their
    temporaries never touch the stacked store at all.
    """
    for item in items:
        cls = item.__class__
        if cls is FusedBlock:
            bid = id(item)
            for ins in item.instrs:
                for r in _instr_regs(ins):
                    refs.setdefault(id(r), set()).add(bid)
        elif cls is LoweredIf:
            refs.setdefault(id(item.cond), set()).add(_EXTERNAL)
            _collect_refs(item.then_items, refs)
            _collect_refs(item.else_items, refs)
        elif cls is LoweredWhile:
            refs.setdefault(id(item.cond), set()).add(_EXTERNAL)
            _collect_refs(item.cond_items, refs)
            _collect_refs(item.body_items, refs)
        else:
            for r in _instr_regs(item):
                refs.setdefault(id(r), set()).add(_EXTERNAL)


# ---------------------------------------------------------------------------
# 2-D code generation
# ---------------------------------------------------------------------------


def _codegen2d(instrs, label: str, full_mask: bool,
               refs: Dict[int, set], bid: int):
    """Compile one pure-op run into ``fn(store, rows, masks, waves)``.

    The 2-D twin of :func:`repro.gpu.fused._codegen`: registers a block
    *reads first* are gathered once into ``(k, WAVE)`` arrays (``rows``
    selects the k wave slots), the block's updates run full-array, and
    registers that escape the block (referenced by another block, a
    branch condition, or a memory op — per ``refs``) or carry values
    across executions (read-before-written here) scatter back at the
    end.  Everything else is block-local and never touches the store.

    Two variants exist per block: ``full_mask=True`` assumes every lane
    of every wave is active (writes are plain rebindings — no masked
    copyto, no gathers for write-first registers), which is the common
    convergent case; the general variant replicates the reference
    masked-write semantics exactly.  Elementwise numpy ops are
    per-element bit-deterministic regardless of array shape, so both
    variants match the 1-D path bitwise.
    """
    env: Dict[str, object] = {
        "_cp": np.copyto, "_where": np.where, "_stack": np.stack,
        "_gat": _gather, "_sca": _scatter, "_zeros": np.zeros,
    }
    reg_names: Dict[int, str] = {}
    reg_dts: Dict[int, str] = {}
    read_first: set = set()
    written: List[int] = []
    prologue: List[str] = []
    lines: List[str] = []

    def escapes(rid: int) -> bool:
        return bool(refs.get(rid, set()) - {bid})

    def declare(reg, is_read: bool) -> str:
        rid = id(reg)
        n = len(reg_names)
        nm = f"g{n}"
        dt = f"d{n}"
        reg_names[rid] = nm
        reg_dts[rid] = dt
        env[dt] = reg.dtype.np_dtype
        if is_read:
            read_first.add(rid)
            prologue.append(f"    {nm} = _gat(store, {rid}, {dt}, rows)")
        elif not full_mask:
            # Write-first under a partial mask: masked copyto needs the
            # previous values for inactive lanes — real ones if the
            # register escapes, placeholders if it is block-local.
            if escapes(rid):
                prologue.append(f"    {nm} = _gat(store, {rid}, {dt}, rows)")
            else:
                prologue.append(
                    f"    {nm} = _zeros((rows.shape[0], {WAVE}), {dt})")
        return nm

    def rref(reg) -> str:
        nm = reg_names.get(id(reg))
        return nm if nm is not None else declare(reg, is_read=True)

    def wref(reg) -> str:
        rid = id(reg)
        nm = reg_names.get(rid)
        if nm is None:
            nm = declare(reg, is_read=False)
        if rid not in written:
            written.append(rid)
        return nm

    def emit(dst, expr: str, checked: bool = True) -> None:
        dn = wref(dst)
        dt = reg_dts[id(dst)]
        if full_mask:
            lines.append(f"    {dn} = {expr}")
            if checked:
                lines.append(
                    f"    if {dn}.dtype != {dt}: {dn} = {dn}.astype({dt})")
        else:
            lines.append(f"    _v = {expr}")
            if checked:
                lines.append(f"    if _v.dtype != {dt}: _v = _v.astype({dt})")
            lines.append(f"    _cp({dn}, _v, where=masks)")

    for k, ins in enumerate(instrs):
        cls = ins.__class__
        if cls is Alu:
            a = rref(ins.a)
            if ins.b is None:
                if ins.op == "mov":
                    emit(ins.dst, a)
                elif ins.op == "not":
                    emit(ins.dst, f"~{a}")
                else:
                    env[f"f{k}"] = _ALU_FUNCS[ins.op]
                    emit(ins.dst, f"f{k}({a})")
            else:
                b = rref(ins.b)
                infix = _INFIX_ALU.get(ins.op)
                if infix is not None:
                    emit(ins.dst, f"({a} {infix} {b})")
                else:
                    env[f"f{k}"] = _ALU_FUNCS[ins.op]
                    emit(ins.dst, f"f{k}({a}, {b})")
        elif cls is Cmp:
            a, b = rref(ins.a), rref(ins.b)
            emit(ins.dst, f"({a} {_INFIX_CMP[ins.op]} {b})")
        elif cls is Const:
            arr = np.full(WAVE, ins.value, dtype=ins.dst.dtype.np_dtype)
            arr.flags.writeable = False
            env[f"C{k}"] = arr
            emit(ins.dst, f"C{k}", checked=False)
        elif cls is LoadParam:
            env[f"i{k}"] = ins
            emit(ins.dst, f"waves[0]._broadcast_value(i{k})", checked=False)
        elif cls is PredOp:
            a = rref(ins.a)
            if ins.op == "not":
                emit(ins.dst, f"~{a}")
            else:
                b = rref(ins.b)
                emit(ins.dst, f"({a} {_INFIX_ALU[ins.op]} {b})")
        elif cls is Select:
            p, a, b = rref(ins.pred), rref(ins.a), rref(ins.b)
            emit(ins.dst, f"_where({p}, {a}, {b})")
        elif cls is SpecialId:
            env[f"i{k}"] = ins
            emit(ins.dst, f"_stack([_w._special_value(i{k}) for _w in waves])")
        elif cls is Swizzle:
            src_lanes = (
                ((_LANES & ins.and_mask) | ins.or_mask) ^ ins.xor_mask
            ) % WAVE
            env[f"L{k}"] = src_lanes
            # ``...`` keeps the index on the lane axis whether the bound
            # name is a stacked (k, WAVE) array or a (WAVE,) broadcast.
            emit(ins.dst, f"{rref(ins.src)}[..., L{k}]")
        else:  # pragma: no cover - lowering only collects _PURE_OPS
            raise TypeError(f"cannot vectorize {ins!r}")

    epilogue = [
        f"    _sca(store, {rid}, {reg_dts[rid]}, rows, {reg_names[rid]})"
        for rid in written
        if escapes(rid) or rid in read_first
    ]
    src = "\n".join(
        ["def _vec(store, rows, masks, waves):"] + prologue + lines + epilogue
    )
    code = compile(src, f"<vec:{label}>", "exec")
    exec(code, env)  # noqa: S102 - source is generated from trusted IR
    return env["_vec"]


def _vec_info(kernel, prog) -> Dict[str, object]:
    """Per-kernel memo: register cross-references + compiled 2-D closures.

    Like ``kernel._fused_program``, keyed to the kernel instance (block
    ids are stable because the lowered program is memoized there too);
    the compile cache strips it before pickling.
    """
    info = getattr(kernel, "_vec_fns", None)
    if info is None:
        refs: Dict[int, set] = {}
        _collect_refs(prog.items, refs)
        info = kernel._vec_fns = {"refs": refs, "fns": {}}
    return info


# ---------------------------------------------------------------------------
# Run-ahead wavefront
# ---------------------------------------------------------------------------

#: ``wave._next`` states: no cached continuation / walker exhausted.
_PENDING = object()
_DONE = object()


class VecWave(Wavefront):
    """A wavefront whose registers live in the shared stacked store.

    Control flow runs through an explicit walker generator that yields
    ``(FusedBlock, mask)`` tuples for pure blocks — executed by the
    coordinator, possibly batched with other waves — and raw engine
    requests for everything else (memory ops, barriers, detections),
    reusing the reference ``_exec_instr`` verbatim so non-pure semantics
    cannot drift.
    """

    def __init__(self, ctx, group, wave_idx: int, coord: "_Coordinator"):
        super().__init__(ctx, group, wave_idx)
        self._coord = coord
        self._vstore = coord.store
        self._slot = coord.store.alloc()
        self._walker = self._vrun()
        self._next = _PENDING

    def read(self, reg) -> np.ndarray:
        # Row views are re-indexed on every call (never cached) so store
        # growth cannot invalidate them; zeros-on-first-touch semantics
        # match the reference lazy register creation.
        return self._vstore.row(id(reg), reg.dtype.np_dtype, self._slot)

    # ``write`` is inherited: it calls ``read`` and masked-copies into
    # the row view, which writes through to the stacked array.

    def _vrun(self):
        with np.errstate(all="ignore"):
            yield from self._walk(self._coord.prog.items, self.active0.copy())
            if self._has_pending():
                yield self._flush()

    def _walk(self, items, mask: np.ndarray):
        """Mirror of ``fused._exec_fused`` with deferred block execution.

        Branch/loop accounting (``n_branch``/``n_div_branch``/
        ``branch_cycles`` and the ``_SPIN_FLUSH_CYCLES`` back-edge
        flush) is replicated line for line — any edit here must be made
        in lockstep with ``_exec_body``/``_exec_fused``.
        """
        cfg = self.ctx.config
        for item in items:
            cls = item.__class__
            if cls is FusedBlock:
                yield (item, mask)
            elif cls is LoweredIf:
                cond = self.read(item.cond)
                then_mask = mask & cond
                inv_mask = mask & ~cond
                t_any = bool(then_mask.any())
                i_any = bool(inv_mask.any())
                self._pend.n_branch += 1
                self._pend.valu_cycles += cfg.branch_cycles
                if t_any and i_any:
                    self._pend.n_div_branch += 1
                if t_any:
                    yield from self._walk(item.then_items, then_mask)
                if item.has_else and i_any:
                    yield from self._walk(item.else_items, inv_mask)
            elif cls is LoweredWhile:
                live = mask.copy()
                while True:
                    yield from self._walk(item.cond_items, live)
                    cond = self.read(item.cond)
                    live &= cond
                    self._pend.n_branch += 1
                    self._pend.valu_cycles += cfg.branch_cycles
                    if not live.any():
                        break
                    if not live.all() and mask.any():
                        self._pend.n_div_branch += 1
                    yield from self._walk(item.body_items, live)
                    if (self._pend.valu_cycles + self._pend.salu_cycles
                            > _SPIN_FLUSH_CYCLES):
                        yield self._flush()
            else:
                yield from self._exec_instr(item, mask)


class _VecDriver:
    """Generator-protocol adapter the engine drives via ``gen.send``.

    Returns the wave's cached next request when run-ahead already
    computed it; otherwise triggers a batched advance of every staged
    wave (including this one) first.
    """

    __slots__ = ("wave",)

    def __init__(self, wave: VecWave):
        self.wave = wave

    def send(self, sendval):
        wave = self.wave
        nxt = wave._next
        if nxt is _PENDING:
            wave._coord.advance()
            nxt = wave._next
            if nxt is _PENDING:  # pragma: no cover - engine invariant
                raise SimulationError(
                    "vectorized: popped wave has no staged continuation")
        if nxt is _DONE:
            raise StopIteration
        wave._next = _PENDING
        return nxt


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


class _Coordinator:
    """Per-launch run-ahead state: staged waves + stacked store.

    ``staged`` holds ``(wave, sendval)`` for every continuation pushed
    onto the event queue whose functional segment has not run yet; the
    engine's resume value is final at push time, so each entry can be
    advanced at any moment before its pop.  :meth:`advance` drains the
    whole set in lockstep rounds, batching same-block waves through one
    2-D closure call.
    """

    def __init__(self, kernel):
        self.store = VecStore()
        self.prog = lower_kernel(kernel)
        info = _vec_info(kernel, self.prog)
        self.refs = info["refs"]
        self.fns = info["fns"]
        self.staged: List[tuple] = []

    def on_push(self, entry: tuple) -> None:
        # entry = (time, seq, wave, sendval) — the engine's event tuple.
        # Fault-window launches mix in reference Wavefronts (the victim
        # group); those run real generators driven by the engine and are
        # never staged for run-ahead.
        if isinstance(entry[2], VecWave):
            self.staged.append((entry[2], entry[3]))

    def advance(self) -> None:
        staged = self.staged
        if not staged:
            return
        self.staged = []
        groups: Dict[int, tuple] = {}
        for wave, sendval in staged:
            self._step(wave, sendval, groups)
        while groups:
            current, groups = groups, {}
            for block, entries in current.values():
                self._run_block(block, entries)
                for wave, _mask in entries:
                    self._step(wave, None, groups)

    def _step(self, wave: VecWave, sendval, groups: Dict[int, tuple]) -> None:
        try:
            item = wave._walker.send(sendval)
        except StopIteration:
            wave._next = _DONE
            self.store.release(wave._slot)
            return
        if type(item) is tuple:
            block, mask = item
            g = groups.get(id(block))
            if g is None:
                groups[id(block)] = (block, [(wave, mask)])
            else:
                g[1].append((wave, mask))
        else:
            wave._next = item

    def _run_block(self, block: FusedBlock, entries: List[tuple]) -> None:
        bid = id(block)
        waves = [w for w, _m in entries]
        rows = np.array([w._slot for w in waves], dtype=np.intp)
        masks = np.stack([m for _w, m in entries])
        full = bool(masks.all())
        key = (bid, full)
        fn = self.fns.get(key)
        if fn is None:
            fn = self.fns[key] = _codegen2d(
                block.instrs, f"b{bid}", full, self.refs, bid)
        fn(self.store, rows, masks, waves)
        # Aggregate cost accounting, identical to FusedBlock.execute.
        ctx = waves[0].ctx
        costs = ctx.fused_costs
        c = costs.get(bid)
        if c is None:
            c = costs[bid] = _block_costs(block.instrs, ctx)
        n = block.n
        for w in waves:
            w.dyn_instrs += n
            p = w._pend
            p.valu_cycles += c[0]
            p.salu_cycles += c[1]
            p.n_valu += c[2]
            p.n_salu += c[3]


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


class VecEngine(Engine):
    """The timing engine with run-ahead functional execution.

    Every timing decision — resource next-free times, event ordering,
    barrier release, counters, watchdogs — is inherited unchanged; only
    wave spawning (stacked-store :class:`VecWave`) and the scheduler
    (wrapped in an :class:`~repro.gpu.schedule.EventScheduler` that
    feeds the coordinator) differ.
    """

    def _make_scheduler(self, ctx):
        inner = self.scheduler if self.scheduler is not None else DefaultScheduler()
        if not getattr(inner, "supports_vectorized", False):
            raise SimulationError(
                f"scheduler {type(inner).__name__} does not support the "
                f"vectorized engine (the device should have fallen back)")
        self._coord = _Coordinator(ctx.kernel)
        return EventScheduler(inner, sink=self._coord.on_push)

    def _spawn_wave(self, ctx, group, wave_idx: int):
        if group.flat_group == self._victim_group:
            # The victim's whole group runs as reference wavefronts:
            # FaultHook._flip_register walks the wave's private ``regs``
            # dict (contents *and* insertion order), which the stacked
            # store cannot reproduce.  Non-victim groups never call the
            # hook, so stacking them is observationally identical.
            wave = Wavefront(ctx, group, wave_idx)
            wave.gen = wave.run()
            return wave
        wave = VecWave(ctx, group, wave_idx, self._coord)
        wave.gen = _VecDriver(wave)
        return wave

    def run(self, ctx, resources):
        hook = ctx.fault_hook
        if hook is not None and not ctx.fault_window:
            raise SimulationError(
                "vectorized engine cannot run non-window fault-hook "
                "launches (the device should have fallen back)")
        self._victim_group = None
        if hook is not None:
            # Under the default scheduler with no group redispatch
            # (guaranteed by the device's routing), execution-start
            # ordinals follow wave-stagger order: ordinal = base +
            # wave_idx * total_groups + flat_group.  That pins the
            # victim's group at spawn time.
            rel = hook.plan.wave_ordinal - self._ordinal_base
            n_waves = (ctx.flat_local + WAVE - 1) // WAVE
            if 0 <= rel < ctx.total_groups * n_waves:
                self._victim_group = rel % ctx.total_groups
        # The reference interpreter enters np.errstate inside each wave
        # generator; here block execution happens outside walker frames,
        # so the whole run is wrapped instead (errstate only affects
        # warnings, never computed values).
        with np.errstate(all="ignore"):
            result = super().run(ctx, resources)
        result.engine_kind = "vectorized"
        return result
