"""Machine description for the simulated GCN-class GPU.

Defaults approximate the AMD Radeon HD 7790 used in the paper: 12 active
compute units (per the paper's text), four 16-wide SIMDs per CU issuing
64-wide wavefronts over 4 cycles, a 256-kB vector register file per CU
(64 kB / 256 VGPRs per SIMD), 64 kB LDS, an 8-kB scalar register file, a
16-kB write-through R/W L1 per CU, a shared L2, and ~96 GB/s of DRAM
bandwidth at a 1-GHz core clock (so ~96 bytes/cycle).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class GpuConfig:
    """Structural and timing parameters of the simulated device."""

    # --- topology -------------------------------------------------------
    num_cus: int = 12
    simds_per_cu: int = 4
    wavefront_size: int = 64
    max_waves_per_simd: int = 10
    max_groups_per_cu: int = 16

    # --- storage (per Table 1 of the paper) ------------------------------
    vgprs_per_simd: int = 256          # 64 lanes x 256 regs x 4 B = 64 kB/SIMD
    sgprs_per_cu: int = 2048           # 8 kB scalar register file
    lds_bytes_per_cu: int = 64 * 1024
    l1_bytes: int = 16 * 1024
    l1_line_bytes: int = 64
    l1_ways: int = 4
    # Scaled to 192 kB (the real part has 512 kB) so that the suite's
    # simulation-tractable working sets still exceed it the way the
    # paper's full-size inputs exceeded the real L2, while in-flight RMT
    # communication lines stay resident; see DESIGN.md.
    l2_bytes: int = 192 * 1024
    l2_line_bytes: int = 64
    l2_ways: int = 16
    l2_banks: int = 16

    # --- issue / execution latencies (cycles) ----------------------------
    valu_issue_cycles: int = 4         # 64-wide op over a 16-wide SIMD
    valu_latency: int = 8
    trans_issue_cycles: int = 16       # quarter-rate transcendental
    salu_latency: int = 4
    branch_cycles: int = 4

    # --- LDS --------------------------------------------------------------
    lds_latency: int = 32
    lds_issue_cycles: int = 4          # per wavefront access, conflict-free
    lds_banks: int = 32

    # --- memory hierarchy ---------------------------------------------------
    l1_hit_latency: int = 120
    l2_hit_latency: int = 220
    dram_latency: int = 380
    mem_issue_cycles_per_instr: int = 4  # vector memory front-end per instruction
    mem_issue_cycles_per_tx: int = 1     # L1-bandwidth occupancy per 64-B line
    # Achievable bandwidth at our (scaled-down) problem sizes; the board's
    # peak is 96 GB/s at 1 GHz but small surfaces reach roughly two thirds.
    dram_bytes_per_cycle: float = 64.0
    l2_bytes_per_cycle_per_bank: float = 64.0
    atomic_issue_cycles: int = 8       # CU memory-unit occupancy per vector atomic
    atomic_op_cycles: int = 2          # same-line serialization per atomic lane
    atomic_serial_cycles: int = 8      # same-address atomic serialization
    atomic_latency: int = 260
    # Aggregate atomic-ALU throughput of the L2 (lane-ops per cycle).
    # This is the shared resource that lets spin-lock traffic from the
    # Inter-Group RMT handshakes degrade already-memory-bound kernels.
    atomic_chip_ops_per_cycle: float = 24.0

    # --- watchdog ----------------------------------------------------------
    max_cycles: int = 2_000_000_000

    def waves_per_group(self, local_size: int) -> int:
        """Wavefronts needed for one work-group."""
        return -(-local_size // self.wavefront_size)

    def with_(self, **kwargs) -> "GpuConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


#: Configuration modelling the paper's Radeon HD 7790 test board.
HD7790 = GpuConfig()


@dataclass(frozen=True)
class PowerConfig:
    """Activity-based average-power model parameters (watts).

    Calibrated so that typical kernels land in the 60–74 W band of the
    paper's Figure 5: a large idle/static floor plus per-unit dynamic
    contributions proportional to measured busy fractions.
    """

    static_w: float = 52.0
    valu_w: float = 16.0               # all SIMDs fully busy
    salu_w: float = 1.5
    lds_w: float = 4.0
    mem_w: float = 6.0                 # vector memory units fully busy
    dram_w: float = 8.0                # DRAM interface at full bandwidth
    window_cycles: int = 1_000_000     # 1 ms at 1 GHz, the monitor interval


DEFAULT_POWER = PowerConfig()
