"""Performance-counter accounting for the timing engine.

Mirrors the CodeXL counters the paper analyzes (Figure 3):

* ``VALUBusy``       — fraction of kernel time the vector ALUs are issuing,
* ``MemUnitBusy``    — fraction of kernel time the vector memory units are
  busy fetching,
* ``WriteUnitStalled`` — fraction of kernel time the store path is stalled
  on downstream bandwidth,

plus LDS, scalar-unit, and cache statistics used in the analysis sections.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List


class BusyTracker:
    """Accumulates busy intervals of one resource.

    Tracks a total and per-window subtotals (the window mirrors the 1-ms
    sampling interval of the on-chip power monitor, so peak power can be
    derived from the busiest window).
    """

    __slots__ = ("total", "windows", "window_cycles")

    def __init__(self, window_cycles: int = 1_000_000):
        self.total = 0.0
        self.windows: Dict[int, float] = defaultdict(float)
        self.window_cycles = window_cycles

    def add(self, start: float, end: float) -> None:
        """Record the resource busy over ``[start, end)``."""
        if end <= start:
            return
        self.total += end - start
        w0 = int(start // self.window_cycles)
        w1 = int(end // self.window_cycles)
        if w0 == w1:
            self.windows[w0] += end - start
            return
        # Split the interval across window boundaries.
        self.windows[w0] += (w0 + 1) * self.window_cycles - start
        for w in range(w0 + 1, w1):
            self.windows[w] += self.window_cycles
        self.windows[w1] += end - w1 * self.window_cycles

    def window_fraction(self, window: int) -> float:
        return self.windows.get(window, 0.0) / self.window_cycles


@dataclass
class KernelCounters:
    """Raw counter totals for one kernel launch."""

    window_cycles: int = 1_000_000
    valu: BusyTracker = None
    salu: BusyTracker = None
    lds: BusyTracker = None
    mem: BusyTracker = None
    write_stall: BusyTracker = None
    dram: BusyTracker = None

    # scalar tallies
    valu_instructions: int = 0
    salu_instructions: int = 0
    mem_transactions: int = 0
    lds_accesses: int = 0
    lds_bank_conflict_passes: int = 0
    atomic_transactions: int = 0
    global_load_bytes: int = 0
    global_store_bytes: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    branch_instructions: int = 0
    divergent_branches: int = 0
    detections: List[tuple] = field(default_factory=list)

    def __post_init__(self):
        for name in ("valu", "salu", "lds", "mem", "write_stall", "dram"):
            if getattr(self, name) is None:
                setattr(self, name, BusyTracker(self.window_cycles))

    # -- derived CodeXL-style percentages ---------------------------------

    def report(self, kernel_cycles: float, num_cus: int, simds_per_cu: int) -> "CounterReport":
        """Summarize into the normalized percentages the paper plots."""
        kernel_cycles = max(kernel_cycles, 1.0)
        simd_total = kernel_cycles * num_cus * simds_per_cu
        cu_total = kernel_cycles * num_cus
        l1_total = self.l1_hits + self.l1_misses
        l2_total = self.l2_hits + self.l2_misses
        return CounterReport(
            kernel_cycles=kernel_cycles,
            valu_busy=min(1.0, self.valu.total / simd_total),
            salu_busy=min(1.0, self.salu.total / cu_total),
            lds_busy=min(1.0, self.lds.total / cu_total),
            mem_unit_busy=min(1.0, self.mem.total / cu_total),
            write_unit_stalled=min(1.0, self.write_stall.total / cu_total),
            dram_busy=min(1.0, self.dram.total / kernel_cycles),
            valu_instructions=self.valu_instructions,
            salu_instructions=self.salu_instructions,
            mem_transactions=self.mem_transactions,
            atomic_transactions=self.atomic_transactions,
            lds_accesses=self.lds_accesses,
            global_load_bytes=self.global_load_bytes,
            global_store_bytes=self.global_store_bytes,
            l1_hit_rate=self.l1_hits / l1_total if l1_total else 0.0,
            l2_hit_rate=self.l2_hits / l2_total if l2_total else 0.0,
            branch_instructions=self.branch_instructions,
            divergent_branches=self.divergent_branches,
            detection_count=len(self.detections),
        )


@dataclass(frozen=True)
class CounterReport:
    """Normalized per-launch counter report (fractions in [0, 1])."""

    kernel_cycles: float
    valu_busy: float
    salu_busy: float
    lds_busy: float
    mem_unit_busy: float
    write_unit_stalled: float
    dram_busy: float
    valu_instructions: int
    salu_instructions: int
    mem_transactions: int
    atomic_transactions: int
    lds_accesses: int
    global_load_bytes: int
    global_store_bytes: int
    l1_hit_rate: float
    l2_hit_rate: float
    branch_instructions: int
    divergent_branches: int
    detection_count: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "kernel_cycles": self.kernel_cycles,
            "VALUBusy": self.valu_busy,
            "SALUBusy": self.salu_busy,
            "LDSBusy": self.lds_busy,
            "MemUnitBusy": self.mem_unit_busy,
            "WriteUnitStalled": self.write_unit_stalled,
            "DRAMBusy": self.dram_busy,
            "L1HitRate": self.l1_hit_rate,
            "L2HitRate": self.l2_hit_rate,
        }


def merge_counters(parts: List[KernelCounters], window_cycles: int) -> KernelCounters:
    """Merge counters from multiple launches of a multi-pass benchmark."""
    merged = KernelCounters(window_cycles=window_cycles)
    for part in parts:
        for name in ("valu", "salu", "lds", "mem", "write_stall", "dram"):
            src: BusyTracker = getattr(part, name)
            dst: BusyTracker = getattr(merged, name)
            dst.total += src.total
            for w, v in src.windows.items():
                dst.windows[w] += v
        for name in (
            "valu_instructions", "salu_instructions", "mem_transactions",
            "lds_accesses", "lds_bank_conflict_passes", "atomic_transactions",
            "global_load_bytes", "global_store_bytes",
            "l1_hits", "l1_misses", "l2_hits", "l2_misses",
            "branch_instructions", "divergent_branches",
        ):
            setattr(merged, name, getattr(merged, name) + getattr(part, name))
        merged.detections.extend(part.detections)
    return merged
