"""Top-level simulated device.

Owns the global memory, the per-CU L1s and the shared L2, and runs
kernel launches through the timing engine.  Caches stay warm across
launches of a multi-pass benchmark (BitonicSort, FloydWarshall, ...),
matching real hardware behaviour; time accumulates across launches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..ir.core import Kernel
from .config import DEFAULT_POWER, GpuConfig, HD7790, PowerConfig
from .counters import KernelCounters, merge_counters
from .engine import Engine, LaunchResult
from .memory import CacheModel, DeviceBuffer, GlobalMemory
from .occupancy import KernelResources, compute_occupancy
from .fused import fault_window_enabled, maybe_lower
from .power import PowerReport, estimate_power
from .vectorized import VecEngine, vector_enabled
from .wavefront import LaunchContext


def _normalize_size(size) -> Tuple[int, int, int]:
    if isinstance(size, int):
        return (size, 1, 1)
    size = tuple(size)
    return size + (1,) * (3 - len(size))


@dataclass
class DeviceRunStats:
    """Aggregate statistics across all launches on a device."""

    total_cycles: float = 0.0
    launches: int = 0
    launch_results: List[LaunchResult] = field(default_factory=list)


class Device:
    """A simulated GCN GPU with persistent memory and caches."""

    def __init__(self, config: GpuConfig = HD7790, power: PowerConfig = DEFAULT_POWER):
        self.config = config
        self.power_config = power
        self.memory = GlobalMemory()
        self.l1s = [
            CacheModel(config.l1_bytes, config.l1_line_bytes, config.l1_ways)
            for _ in range(config.num_cus)
        ]
        self.l2 = CacheModel(config.l2_bytes, config.l2_line_bytes, config.l2_ways)
        self.clock = 0.0
        self.stats = DeviceRunStats()
        # Waves are numbered continuously across launches (execution-start
        # ordinals) so fault plans against multi-launch benchmarks keep
        # their historical victim numbering.
        self._wave_ordinals = 0

    # -- buffers ----------------------------------------------------------

    def alloc(self, name: str, data: np.ndarray) -> DeviceBuffer:
        """Copy host data into a fresh device buffer."""
        return self.memory.alloc(name, data)

    def alloc_zeros(self, name: str, nelems: int, dtype) -> DeviceBuffer:
        return self.memory.alloc(name, np.zeros(nelems, dtype=dtype))

    # -- launches ----------------------------------------------------------

    def launch(
        self,
        kernel: Kernel,
        global_size,
        local_size,
        buffers: Dict[str, DeviceBuffer],
        scalars: Optional[Dict[str, object]] = None,
        resources: Optional[KernelResources] = None,
        scalar_instrs: Optional[set] = None,
        fault_hook=None,
        scheduler=None,
    ) -> LaunchResult:
        """Run one NDRange launch; advances the device clock.

        ``scheduler`` substitutes a :class:`~repro.gpu.schedule.Scheduler`
        for the engine's default time-ordered/FIFO event order.
        """
        ctx = LaunchContext(
            kernel=kernel,
            global_size=_normalize_size(global_size),
            local_size=_normalize_size(local_size),
            buffers=buffers,
            scalars=scalars or {},
            scalar_instrs=scalar_instrs,
            config=self.config,
        )
        # Window-capable hooks (FaultHook) name one victim wave and one
        # trigger watermark, so fused execution stays legal everywhere
        # except a short per-instruction window around the trigger.
        # Plain callable hooks observe every instruction and keep the
        # reference interpreter.
        windowable = (
            fault_hook is not None
            and getattr(fault_hook, "supports_window", False)
            and fault_window_enabled()
        )
        if fault_hook is not None:
            ctx.fault_hook = fault_hook
        if fault_hook is None or windowable:
            # Lowered once per kernel instance and memoized on it.
            ctx.fused = maybe_lower(kernel)
            ctx.fault_window = windowable
        if resources is None:
            resources = KernelResources(
                vgprs_per_workitem=32, sgprs_per_wave=32,
                lds_bytes_per_group=kernel.lds_bytes(),
            )
        # The vectorized engine batches resident wavefronts through
        # stacked-register closures; it is bitwise- and cycle-identical
        # under the default event order, so the launches routed away
        # from it are schedulers that permute pop order and fault hooks
        # it cannot carve a victim group out for (the victim's group
        # runs as standard wavefronts; predicting which group that is
        # requires the default no-redispatch dispatch geometry).
        occ = compute_occupancy(self.config, resources, ctx.flat_local)
        no_redispatch = (
            ctx.total_groups <= occ.max_groups_per_cu * self.config.num_cus
        )
        use_vec = (
            vector_enabled()
            and (scheduler is None
                 or getattr(scheduler, "supports_vectorized", False))
            and (fault_hook is None
                 or (windowable and scheduler is None and no_redispatch))
        )
        engine_cls = VecEngine if use_vec else Engine
        engine = engine_cls(self.config, self.memory, self.l1s, self.l2,
                            start_time=self.clock, scheduler=scheduler,
                            wave_ordinal_base=self._wave_ordinals)
        result = engine.run(ctx, resources)
        self._wave_ordinals += result.waves_launched
        self.clock += result.cycles
        self.stats.total_cycles += result.cycles
        self.stats.launches += 1
        self.stats.launch_results.append(result)
        return result

    # -- aggregate reporting -------------------------------------------------

    def merged_counters(self) -> KernelCounters:
        parts = [r.counters for r in self.stats.launch_results]
        return merge_counters(parts, window_cycles=1_000_000)

    def power_report(self) -> PowerReport:
        """Power over everything run on this device so far."""
        return estimate_power(
            self.merged_counters(), self.stats.total_cycles,
            self.config, self.power_config,
        )

    def read_buffer(self, buf: DeviceBuffer) -> np.ndarray:
        """Copy-out: current contents of a device buffer."""
        return buf.data.copy()
