"""Top-level simulated device.

Owns the global memory, the per-CU L1s and the shared L2, and runs
kernel launches through the timing engine.  Caches stay warm across
launches of a multi-pass benchmark (BitonicSort, FloydWarshall, ...),
matching real hardware behaviour; time accumulates across launches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..ir.core import Kernel
from .config import DEFAULT_POWER, GpuConfig, HD7790, PowerConfig
from .counters import KernelCounters, merge_counters
from .engine import Engine, LaunchResult
from .memory import CacheModel, DeviceBuffer, GlobalMemory
from .occupancy import KernelResources
from .fused import maybe_lower
from .power import PowerReport, estimate_power
from .vectorized import VecEngine, vector_enabled
from .wavefront import LaunchContext


def _normalize_size(size) -> Tuple[int, int, int]:
    if isinstance(size, int):
        return (size, 1, 1)
    size = tuple(size)
    return size + (1,) * (3 - len(size))


@dataclass
class DeviceRunStats:
    """Aggregate statistics across all launches on a device."""

    total_cycles: float = 0.0
    launches: int = 0
    launch_results: List[LaunchResult] = field(default_factory=list)


class Device:
    """A simulated GCN GPU with persistent memory and caches."""

    def __init__(self, config: GpuConfig = HD7790, power: PowerConfig = DEFAULT_POWER):
        self.config = config
        self.power_config = power
        self.memory = GlobalMemory()
        self.l1s = [
            CacheModel(config.l1_bytes, config.l1_line_bytes, config.l1_ways)
            for _ in range(config.num_cus)
        ]
        self.l2 = CacheModel(config.l2_bytes, config.l2_line_bytes, config.l2_ways)
        self.clock = 0.0
        self.stats = DeviceRunStats()

    # -- buffers ----------------------------------------------------------

    def alloc(self, name: str, data: np.ndarray) -> DeviceBuffer:
        """Copy host data into a fresh device buffer."""
        return self.memory.alloc(name, data)

    def alloc_zeros(self, name: str, nelems: int, dtype) -> DeviceBuffer:
        return self.memory.alloc(name, np.zeros(nelems, dtype=dtype))

    # -- launches ----------------------------------------------------------

    def launch(
        self,
        kernel: Kernel,
        global_size,
        local_size,
        buffers: Dict[str, DeviceBuffer],
        scalars: Optional[Dict[str, object]] = None,
        resources: Optional[KernelResources] = None,
        scalar_instrs: Optional[set] = None,
        fault_hook=None,
        scheduler=None,
    ) -> LaunchResult:
        """Run one NDRange launch; advances the device clock.

        ``scheduler`` substitutes a :class:`~repro.gpu.schedule.Scheduler`
        for the engine's default time-ordered/FIFO event order.
        """
        ctx = LaunchContext(
            kernel=kernel,
            global_size=_normalize_size(global_size),
            local_size=_normalize_size(local_size),
            buffers=buffers,
            scalars=scalars or {},
            scalar_instrs=scalar_instrs,
            config=self.config,
        )
        if fault_hook is not None:
            ctx.fault_hook = fault_hook
        else:
            # Lowered once per kernel instance and memoized on it; the
            # reference interpreter remains the fault-injection path.
            ctx.fused = maybe_lower(kernel)
        if resources is None:
            resources = KernelResources(
                vgprs_per_workitem=32, sgprs_per_wave=32,
                lds_bytes_per_group=kernel.lds_bytes(),
            )
        # The vectorized engine batches resident wavefronts through
        # stacked-register closures; it is bitwise- and cycle-identical
        # under the default event order, so the only launches routed
        # away from it are fault-hooked ones (hooks must observe every
        # instruction) and schedulers that permute pop order.
        use_vec = (
            vector_enabled()
            and fault_hook is None
            and (scheduler is None
                 or getattr(scheduler, "supports_vectorized", False))
        )
        engine_cls = VecEngine if use_vec else Engine
        engine = engine_cls(self.config, self.memory, self.l1s, self.l2,
                            start_time=self.clock, scheduler=scheduler)
        result = engine.run(ctx, resources)
        self.clock += result.cycles
        self.stats.total_cycles += result.cycles
        self.stats.launches += 1
        self.stats.launch_results.append(result)
        return result

    # -- aggregate reporting -------------------------------------------------

    def merged_counters(self) -> KernelCounters:
        parts = [r.counters for r in self.stats.launch_results]
        return merge_counters(parts, window_cycles=1_000_000)

    def power_report(self) -> PowerReport:
        """Power over everything run on this device so far."""
        return estimate_power(
            self.merged_counters(), self.stats.total_cycles,
            self.config, self.power_config,
        )

    def read_buffer(self, buf: DeviceBuffer) -> np.ndarray:
        """Copy-out: current contents of a device buffer."""
        return buf.data.copy()
