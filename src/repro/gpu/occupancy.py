"""Work-group occupancy model.

RMT's doubled register/LDS footprint lowers the number of work-groups a
CU can host, which is the "Costs of Doubling the Size of Work-groups"
effect isolated in Figures 4 and 7 of the paper.  This module computes
the limits exactly the way the GCN scheduler does: VGPR budget per SIMD,
SGPR budget per CU, LDS budget per CU, wave slots per SIMD.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import GpuConfig


@dataclass(frozen=True)
class KernelResources:
    """Per-kernel resource footprint (from the compiler, or inflated).

    ``groups_per_cu_cap`` implements the paper's resource-inflation
    isolation experiment: it reserves CU space as if the RMT version's
    larger footprint were allocated, without executing redundant work.
    """

    vgprs_per_workitem: int
    sgprs_per_wave: int
    lds_bytes_per_group: int
    groups_per_cu_cap: int = 0  # 0 = no cap

    def inflated(self, other: "KernelResources") -> "KernelResources":
        """Component-wise max — used for the paper's resource-inflation
        isolation experiments (run original code with RMT footprint)."""
        return KernelResources(
            vgprs_per_workitem=max(self.vgprs_per_workitem, other.vgprs_per_workitem),
            sgprs_per_wave=max(self.sgprs_per_wave, other.sgprs_per_wave),
            lds_bytes_per_group=max(self.lds_bytes_per_group, other.lds_bytes_per_group),
        )


@dataclass(frozen=True)
class Occupancy:
    """Resolved occupancy limits for one launch."""

    waves_per_group: int
    max_waves_per_simd: int
    max_groups_per_cu: int
    limiting_resource: str

    @property
    def max_waves_per_cu(self) -> int:
        return self.max_waves_per_simd * 4


class SchedulingError(Exception):
    """The kernel cannot be scheduled on the device at all."""


def compute_occupancy(
    config: GpuConfig, resources: KernelResources, local_size: int
) -> Occupancy:
    """Resolve how many groups of ``local_size`` work-items fit on a CU."""
    waves_per_group = config.waves_per_group(local_size)

    vgprs = max(1, resources.vgprs_per_workitem)
    waves_by_vgpr = config.vgprs_per_simd // vgprs
    if waves_by_vgpr == 0:
        raise SchedulingError(
            f"kernel needs {vgprs} VGPRs/work-item, SIMD has {config.vgprs_per_simd}"
        )
    waves_per_simd = min(config.max_waves_per_simd, waves_by_vgpr)
    cu_wave_slots = waves_per_simd * config.simds_per_cu

    limits = {}
    limits["wave_slots"] = cu_wave_slots // waves_per_group
    if resources.lds_bytes_per_group > 0:
        if resources.lds_bytes_per_group > config.lds_bytes_per_cu:
            raise SchedulingError(
                f"kernel needs {resources.lds_bytes_per_group} B LDS/group, "
                f"CU has {config.lds_bytes_per_cu}"
            )
        limits["lds"] = config.lds_bytes_per_cu // resources.lds_bytes_per_group
    sgprs = max(1, resources.sgprs_per_wave)
    waves_by_sgpr = config.sgprs_per_cu // sgprs
    limits["sgprs"] = max(0, waves_by_sgpr // waves_per_group)
    limits["group_cap"] = config.max_groups_per_cu
    if resources.groups_per_cu_cap:
        limits["inflation_cap"] = resources.groups_per_cu_cap

    limiter = min(limits, key=lambda k: limits[k])
    groups_per_cu = limits[limiter]
    if groups_per_cu == 0:
        raise SchedulingError(
            f"no work-group of {local_size} work-items fits on a CU "
            f"(limited by {limiter}; resources={resources})"
        )
    # Report the wave-slot ceiling actually reachable given group count.
    return Occupancy(
        waves_per_group=waves_per_group,
        max_waves_per_simd=waves_per_simd,
        max_groups_per_cu=groups_per_cu,
        limiting_resource=limiter,
    )
