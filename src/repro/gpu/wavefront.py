"""Lockstep wavefront interpreter.

Each wavefront executes the kernel IR 64 lanes at a time over numpy
vectors, maintaining a SIMT execution mask through structured control
flow.  The interpreter is a generator: it performs functional computation
locally and *yields* timed resource requests (:class:`ExecReq`,
:class:`LdsReq`, :class:`GlobalReq`, :class:`BarrierReq`, ...) that the
timing engine satisfies; for loads and atomics the engine sends the data
back into the generator, so global-memory effects are applied in global
time order — which is what makes the Inter-Group RMT handshake protocols
(two-tier locks, atomic polling) causally consistent in simulation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.core import (
    Alu,
    AtomicGlobal,
    Barrier,
    Cmp,
    Const,
    If,
    Instr,
    Kernel,
    LoadGlobal,
    LoadLocal,
    LoadParam,
    PredOp,
    ReportError,
    Select,
    SpecialId,
    Stmt,
    StoreGlobal,
    StoreLocal,
    Swizzle,
    VReg,
    While,
)
from ..ir.core import TRANSCENDENTAL_OPS
from ..ir.types import DType
from .memory import DeviceBuffer

WAVE = 64
_LANES = np.arange(WAVE)

#: Side-effect-free instruction classes executed on the interpreter's
#: fast path (no generator round-trip, timing batched into one ExecReq).
_PURE_OPS = frozenset(
    {Alu, Const, Cmp, PredOp, Select, SpecialId, LoadParam, Swizzle}
)

#: A loop made purely of batched ALU work never reaches a natural yield
#: point, so without a periodic flush the timing engine — and therefore
#: the cycle-budget watchdog — would never see time advance (a host-side
#: livelock on e.g. a fault-corrupted loop bound).  Flushing is timing-
#: neutral (ExecReq accounting is additive), so only pathological spin
#: loops ever hit this threshold.
_SPIN_FLUSH_CYCLES = 4096


# ---------------------------------------------------------------------------
# Requests yielded to the timing engine
# ---------------------------------------------------------------------------


class ExecReq:
    """Batched ALU work: VALU issue cycles + scalar-unit cycles."""

    __slots__ = ("valu_cycles", "salu_cycles", "n_valu", "n_salu", "n_branch", "n_div_branch")

    def __init__(self, valu_cycles=0, salu_cycles=0, n_valu=0, n_salu=0,
                 n_branch=0, n_div_branch=0):
        self.valu_cycles = valu_cycles
        self.salu_cycles = salu_cycles
        self.n_valu = n_valu
        self.n_salu = n_salu
        self.n_branch = n_branch
        self.n_div_branch = n_div_branch


class LdsReq:
    """A wavefront LDS access (already applied functionally)."""

    __slots__ = ("op", "passes", "active")

    def __init__(self, op: str, passes: int, active: int):
        self.op = op            # 'load' | 'store'
        self.passes = passes    # serialized bank-conflict passes
        self.active = active


class GlobalReq:
    """A vector global-memory operation, applied by the engine."""

    __slots__ = ("op", "buf", "indices", "values", "compares", "atomic_op")

    def __init__(self, op, buf, indices, values=None, compares=None, atomic_op=None):
        self.op = op            # 'load' | 'store' | 'atomic'
        self.buf = buf          # DeviceBuffer
        self.indices = indices  # int64 element indices (active lanes only)
        self.values = values
        self.compares = compares
        self.atomic_op = atomic_op


class BarrierReq:
    """Work-group barrier."""

    __slots__ = ()


class ErrorReq:
    """RMT detection event raised by ``report_error``."""

    __slots__ = ("code", "lanes")

    def __init__(self, code: int, lanes: int):
        self.code = code
        self.lanes = lanes


# ---------------------------------------------------------------------------
# Launch / group context
# ---------------------------------------------------------------------------


class LaunchContext:
    """Immutable per-launch state shared by all wavefronts."""

    def __init__(
        self,
        kernel: Kernel,
        global_size: Tuple[int, int, int],
        local_size: Tuple[int, int, int],
        buffers: Dict[str, DeviceBuffer],
        scalars: Dict[str, object],
        scalar_instrs: Optional[set] = None,
        config=None,
    ):
        self.kernel = kernel
        self.global_size = global_size
        self.local_size = local_size
        self.buffers = buffers
        self.scalars = scalars
        self.scalar_instrs = scalar_instrs or set()
        self.config = config
        #: optional fault-injection hook: fn(wave, instr) -> None
        self.fault_hook: Optional[Callable] = None
        #: True when the hook supports the window query API and the
        #: launch should use fault-window execution (fused fast path with
        #: per-instruction stepping only near the victim's trigger).
        #: Plain callable hooks keep the reference per-instruction path.
        self.fault_window: bool = False
        #: per-launch cache of broadcast immediates (shared by all waves)
        self.broadcast_cache: Dict[int, np.ndarray] = {}
        #: lowered fused program (see :mod:`repro.gpu.fused`), or None to
        #: interpret per-instruction
        self.fused = None
        #: per-launch aggregate ExecReq cost per fused block (id -> tuple);
        #: launch-scoped because scalar-unit placement varies per compile
        self.fused_costs: Dict[int, tuple] = {}
        for d in range(3):
            if global_size[d] % local_size[d] != 0:
                raise ValueError(
                    f"global size {global_size} not divisible by local {local_size}"
                )
        self.num_groups = tuple(global_size[d] // local_size[d] for d in range(3))
        self.flat_local = local_size[0] * local_size[1] * local_size[2]
        self.total_groups = self.num_groups[0] * self.num_groups[1] * self.num_groups[2]

    def group_coords(self, flat_group: int) -> Tuple[int, int, int]:
        gx = flat_group % self.num_groups[0]
        gy = (flat_group // self.num_groups[0]) % self.num_groups[1]
        gz = flat_group // (self.num_groups[0] * self.num_groups[1])
        return (gx, gy, gz)


class GroupState:
    """Mutable per-work-group state: LDS contents and barrier bookkeeping."""

    def __init__(self, ctx: LaunchContext, flat_group: int):
        self.ctx = ctx
        self.flat_group = flat_group
        self.coords = ctx.group_coords(flat_group)
        self.lds: Dict[str, np.ndarray] = {
            alloc.name: np.zeros(alloc.nelems, dtype=alloc.dtype.np_dtype)
            for alloc in ctx.kernel.locals
        }
        self.n_waves = -(-ctx.flat_local // WAVE)
        self.waves_done = 0
        self.barrier_waiting: List = []


# ---------------------------------------------------------------------------
# Wavefront
# ---------------------------------------------------------------------------


class Wavefront:
    """One 64-lane wavefront's functional state and interpreter."""

    def __init__(self, ctx: LaunchContext, group: GroupState, wave_idx: int):
        self.ctx = ctx
        self.group = group
        self.wave_idx = wave_idx
        self.regs: Dict[int, np.ndarray] = {}
        self.dyn_instrs = 0
        # assigned by the engine at dispatch:
        self.cu = -1
        self.simd = -1
        self.gen = None
        #: execution-start ordinal, stamped by the timing engine the
        #: first time this wave is popped from the event queue (the same
        #: numbering the fault hook historically derived from first-call
        #: order).  -1 until stamped.
        self.ordinal = -1
        #: the per-instruction hook this wave actually calls.  Set by
        #: ``run()``: the launch hook on the reference path; on the
        #: fault-window path only the victim wave keeps it (the hook is
        #: a guaranteed no-op for every other wave, so skipping the
        #: calls is observationally identical and much cheaper).
        self._ihook: Optional[Callable] = None
        # precompute lane IDs
        flat_lid = wave_idx * WAVE + _LANES
        self.active0 = flat_lid < ctx.flat_local
        lx, ly, _lz = ctx.local_size
        self.lid = (
            (flat_lid % lx).astype(np.uint32),
            ((flat_lid // lx) % ly).astype(np.uint32),
            (flat_lid // (lx * ly)).astype(np.uint32),
        )
        gx, gy, gz = group.coords
        self.gid = (
            (gx * lx + self.lid[0]).astype(np.uint32),
            (gy * ly + self.lid[1]).astype(np.uint32),
            (gz * ctx.local_size[2] + self.lid[2]).astype(np.uint32),
        )
        # pending batched ALU work
        self._pend = ExecReq()

    # -- register access ----------------------------------------------------

    def read(self, reg: VReg) -> np.ndarray:
        arr = self.regs.get(id(reg))
        if arr is None:
            arr = np.zeros(WAVE, dtype=reg.dtype.np_dtype)
            self.regs[id(reg)] = arr
        return arr

    def write(self, reg: VReg, values: np.ndarray, mask: np.ndarray) -> None:
        arr = self.read(reg)
        if values.dtype != arr.dtype:
            values = values.astype(arr.dtype)
        np.copyto(arr, values, where=mask)

    # -- interpreter ---------------------------------------------------------

    def run(self):
        """Generator executing the whole kernel body.

        When the launch carries a lowered program (``ctx.fused``) and no
        fault hook is installed, straight-line pure-op runs execute
        through the block-fused executors in :mod:`repro.gpu.fused` —
        bitwise and timing identical, just without per-instruction
        dispatch.

        Hooked launches come in two flavours.  A *window-capable* hook
        (``ctx.fault_window``, see :class:`repro.faults.injector
        .FaultHook`) names one victim wave and one trigger watermark, so
        the wave runs the fused fast path and only drops to
        per-instruction stepping when a block could cross the victim's
        watermark (``_exec_fused_window``); non-victim waves never call
        the hook at all.  A plain callable hook needs to observe every
        instruction and keeps the reference interpreter.

        The generator body first executes at the first ``send`` — after
        the engine popped (and therefore ordinal-stamped) the wave — so
        the victim test below always sees the final ordinal.
        """
        with np.errstate(all="ignore"):
            ctx = self.ctx
            hook = ctx.fault_hook
            fused = ctx.fused
            if hook is not None and ctx.fault_window:
                # Only the (unfired) victim ever needs hook calls; the
                # hook is a no-op for every other wave by construction.
                self._ihook = hook if hook.window(self) is not None else None
                if fused is not None:
                    if self._ihook is None:
                        # window(self) is None for good (the victim test
                        # is pure in the stamped ordinal), so the window
                        # path would never step: take the plain fast
                        # path and skip its per-block window probes.
                        yield from self._exec_fused(fused.items,
                                                    self.active0.copy())
                    else:
                        yield from self._exec_fused_window(
                            fused.items, self.active0.copy())
                else:
                    yield from self._exec_body(ctx.kernel.body,
                                               self.active0.copy())
            else:
                self._ihook = hook
                if fused is not None and hook is None:
                    yield from self._exec_fused(fused.items,
                                                self.active0.copy())
                else:
                    yield from self._exec_body(ctx.kernel.body,
                                               self.active0.copy())
            if self._has_pending():
                yield self._flush()

    def _has_pending(self) -> bool:
        p = self._pend
        return p.valu_cycles or p.salu_cycles or p.n_branch

    def _flush(self) -> ExecReq:
        req = self._pend
        self._pend = ExecReq()
        return req

    def _exec_body(self, body: Sequence[Stmt], mask: np.ndarray):
        cfg = self.ctx.config
        hook = self._ihook
        exec_pure = self._exec_pure
        for stmt in body:
            cls = stmt.__class__
            if cls in _PURE_OPS:
                # Hot path: straight-line ALU work executes without the
                # per-instruction generator round-trip.
                self.dyn_instrs += 1
                if hook is not None:
                    hook(self, stmt)
                exec_pure(stmt, mask)
            elif isinstance(stmt, If):
                cond = self.read(stmt.cond)
                then_mask = mask & cond
                inv_mask = mask & ~cond
                t_any = bool(then_mask.any())
                i_any = bool(inv_mask.any())
                self._pend.n_branch += 1
                self._pend.valu_cycles += cfg.branch_cycles
                if t_any and i_any:
                    self._pend.n_div_branch += 1
                if t_any:
                    yield from self._exec_body(stmt.then_body, then_mask)
                if stmt.else_body and i_any:
                    yield from self._exec_body(stmt.else_body, inv_mask)
            elif isinstance(stmt, While):
                live = mask.copy()
                while True:
                    yield from self._exec_body(stmt.cond_block, live)
                    cond = self.read(stmt.cond)
                    live &= cond
                    self._pend.n_branch += 1
                    self._pend.valu_cycles += cfg.branch_cycles
                    if not live.any():
                        break
                    if not live.all() and mask.any():
                        self._pend.n_div_branch += 1
                    yield from self._exec_body(stmt.body, live)
                    if (self._pend.valu_cycles + self._pend.salu_cycles
                            > _SPIN_FLUSH_CYCLES):
                        yield self._flush()
            else:
                yield from self._exec_instr(stmt, mask)

    # -- instruction semantics -------------------------------------------

    def _exec_pure(self, instr: Instr, mask: np.ndarray) -> None:
        """Execute one side-effect-free instruction (no timing yield)."""
        cls = instr.__class__
        if cls is Alu:
            self._do_alu(instr, mask)
            self._charge_alu(instr, in_trans=instr.op in TRANSCENDENTAL_OPS)
            return
        if cls is Cmp:
            a = self.read(instr.a)
            b = self.read(instr.b)
            res = _CMP_FUNCS[instr.op](a, b)
            self.write(instr.dst, res, mask)
        elif cls is Const or cls is LoadParam:
            self.write(instr.dst, self._broadcast_value(instr), mask)
        elif cls is PredOp:
            a = self.read(instr.a)
            if instr.op == "not":
                res = ~a
            else:
                b = self.read(instr.b)
                res = {"and": a & b, "or": a | b, "xor": a ^ b}[instr.op]
            self.write(instr.dst, res, mask)
        elif cls is Select:
            pred = self.read(instr.pred)
            res = np.where(pred, self.read(instr.a), self.read(instr.b))
            self.write(instr.dst, res, mask)
        elif cls is SpecialId:
            self.write(instr.dst, self._special_value(instr), mask)
        else:  # Swizzle
            src = self.read(instr.src)
            src_lanes = (((_LANES & instr.and_mask) | instr.or_mask) ^ instr.xor_mask) % WAVE
            self.write(instr.dst, src[src_lanes], mask)
        self._charge_alu(instr)

    def _broadcast_value(self, instr) -> np.ndarray:
        """Cached 64-lane broadcast of a Const/LoadParam value."""
        cache = self.ctx.broadcast_cache
        arr = cache.get(id(instr))
        if arr is None:
            if instr.__class__ is Const:
                value = instr.value
            else:
                value = self.ctx.scalars[instr.param.name]
            arr = np.full(WAVE, value, dtype=instr.dst.dtype.np_dtype)
            arr.flags.writeable = False
            cache[id(instr)] = arr
        return arr

    def _exec_instr(self, instr: Instr, mask: np.ndarray):
        self.dyn_instrs += 1
        hook = self._ihook
        if hook is not None:
            hook(self, instr)
        cls = type(instr)

        # Dispatch ordered by dynamic frequency (LDS traffic and barriers
        # dominate the non-pure stream of every LDS-blocked kernel).
        if cls is LoadLocal:
            if mask.any():
                arr = self.group.lds[instr.lds.name]
                idx = self.read(instr.index)[mask].astype(np.int64)
                idx = self._lds_bounds(instr.lds.name, arr, idx)
                out = np.zeros(WAVE, dtype=instr.dst.dtype.np_dtype)
                out[mask] = arr[idx]
                self.write(instr.dst, out, mask)
                if self._has_pending():
                    yield self._flush()
                yield LdsReq("load", self._bank_passes(idx), int(mask.sum()))
        elif cls is StoreLocal:
            if mask.any():
                arr = self.group.lds[instr.lds.name]
                idx = self.read(instr.index)[mask].astype(np.int64)
                idx = self._lds_bounds(instr.lds.name, arr, idx)
                arr[idx] = self.read(instr.value)[mask].astype(arr.dtype)
                if self._has_pending():
                    yield self._flush()
                yield LdsReq("store", self._bank_passes(idx), int(mask.sum()))
        elif cls is Barrier:
            if self._has_pending():
                yield self._flush()
            yield BarrierReq()
        elif cls is LoadGlobal:
            if mask.any():
                buf = self.ctx.buffers[instr.buf.name]
                idx = self.read(instr.index)[mask].astype(np.int64)
                if self._has_pending():
                    yield self._flush()
                op = "sload" if id(instr) in self.ctx.scalar_instrs else "load"
                data = yield GlobalReq(op, buf, idx)
                out = np.zeros(WAVE, dtype=instr.dst.dtype.np_dtype)
                out[mask] = data
                self.write(instr.dst, out, mask)
        elif cls is StoreGlobal:
            if mask.any():
                buf = self.ctx.buffers[instr.buf.name]
                idx = self.read(instr.index)[mask].astype(np.int64)
                vals = self.read(instr.value)[mask]
                if self._has_pending():
                    yield self._flush()
                yield GlobalReq("store", buf, idx, vals)
        elif cls is AtomicGlobal:
            if mask.any():
                buf = self.ctx.buffers[instr.buf.name]
                idx = self.read(instr.index)[mask].astype(np.int64)
                vals = self.read(instr.value)[mask]
                cmps = None if instr.compare is None else self.read(instr.compare)[mask]
                if self._has_pending():
                    yield self._flush()
                old = yield GlobalReq("atomic", buf, idx, vals, cmps, instr.op)
                if instr.dst is not None:
                    out = np.zeros(WAVE, dtype=instr.dst.dtype.np_dtype)
                    out[mask] = old
                    self.write(instr.dst, out, mask)
        elif cls is ReportError:
            if mask.any():
                if self._has_pending():
                    yield self._flush()
                yield ErrorReq(instr.code, int(mask.sum()))
        else:  # pragma: no cover
            raise TypeError(f"unknown instruction {instr!r}")

    def _charge_alu(self, instr: Instr, in_trans: bool = False) -> None:
        cfg = self.ctx.config
        if id(instr) in self.ctx.scalar_instrs:
            self._pend.salu_cycles += cfg.salu_latency
            self._pend.n_salu += 1
        elif in_trans:
            self._pend.valu_cycles += cfg.trans_issue_cycles
            self._pend.n_valu += 1
        else:
            self._pend.valu_cycles += cfg.valu_issue_cycles
            self._pend.n_valu += 1

    def _special_value(self, instr: SpecialId) -> np.ndarray:
        d = instr.dim
        kind = instr.kind
        if kind == "global_id":
            return self.gid[d]
        if kind == "local_id":
            return self.lid[d]
        if kind == "group_id":
            return np.full(WAVE, self.group.coords[d], dtype=np.uint32)
        if kind == "global_size":
            return np.full(WAVE, self.ctx.global_size[d], dtype=np.uint32)
        if kind == "local_size":
            return np.full(WAVE, self.ctx.local_size[d], dtype=np.uint32)
        if kind == "num_groups":
            return np.full(WAVE, self.ctx.num_groups[d], dtype=np.uint32)
        raise ValueError(kind)  # pragma: no cover

    def _bank_passes(self, indices: np.ndarray) -> int:
        """Serialized LDS passes due to bank conflicts (32 banks, 4 B wide).

        Broadcasts (same address) do not conflict, so the pass count is
        the largest number of *distinct* addresses mapping to one bank.

        LDS indices are bounds-checked (or fault-wrapped) before this is
        called, so they are small non-negative ints: two ``bincount``
        passes find the distinct addresses and their per-bank
        multiplicity without ``np.unique``'s sort machinery.
        """
        if not indices.size:
            return 1
        distinct = np.flatnonzero(np.bincount(indices))
        return int(np.bincount(distinct % self.ctx.config.lds_banks).max())

    def _lds_bounds(self, name: str, arr: np.ndarray, idx: np.ndarray) -> np.ndarray:
        if idx.size and (idx.min() < 0 or idx.max() >= arr.size):
            if self.ctx.fault_hook is not None:
                # Wild LDS access caused by an injected upset: wrap it the
                # way the hardware's address masking would.
                return idx % arr.size
            raise IndexError(
                f"out-of-bounds LDS access to {name!r}: "
                f"indices in [{idx.min()}, {idx.max()}], size {arr.size}"
            )
        return idx


# ---------------------------------------------------------------------------
# ALU semantics
# ---------------------------------------------------------------------------


def _shift_amount(b: np.ndarray) -> np.ndarray:
    amount = (b.view(np.uint32) if b.dtype != np.uint32 else b) & np.uint32(31)
    return amount.astype(np.uint8)  # avoid int64 promotion in mixed shifts


_CMP_FUNCS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}


def _trunc_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if a.dtype == np.float32:
        return a / b
    safe_b = np.where(b == 0, 1, b)
    q = np.trunc(a.astype(np.float64) / safe_b.astype(np.float64))
    return np.where(b == 0, 0, q).astype(a.dtype)


def _trunc_rem(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    q = _trunc_div(a, b)
    if a.dtype == np.float32:
        return a - np.trunc(q) * b
    return (a - q * b).astype(a.dtype)


class _AluSemantics:
    """Dispatch table for ALU opcodes over numpy lane vectors."""

    @staticmethod
    def apply(op: str, a: np.ndarray, b: Optional[np.ndarray]) -> np.ndarray:
        fn = _ALU_FUNCS.get(op)
        if fn is None:  # pragma: no cover - guarded at build time
            raise ValueError(f"unknown ALU op {op!r}")
        return fn(a) if b is None else fn(a, b)


_ALU_FUNCS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": _trunc_div,
    "rem": _trunc_rem,
    "min": np.minimum,
    "max": np.maximum,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: (a.view(np.uint32) << _shift_amount(b)).view(a.dtype),
    "shr": lambda a, b: (a.view(np.uint32) >> _shift_amount(b)).view(a.dtype),
    "ashr": lambda a, b: (a.view(np.int32) >> _shift_amount(b)).view(a.dtype),
    "pow": lambda a, b: np.power(a, b),
    "neg": lambda a: -a if a.dtype != np.uint32 else (~a + np.uint32(1)),
    "not": lambda a: ~a,
    "abs": np.abs,
    "sqrt": lambda a: np.sqrt(a),
    "rsqrt": lambda a: (1.0 / np.sqrt(a)).astype(np.float32),
    "exp": lambda a: np.exp(a),
    "log": lambda a: np.log(a),
    "sin": lambda a: np.sin(a),
    "cos": lambda a: np.cos(a),
    "floor": np.floor,
    "f2i": lambda a: np.clip(np.nan_to_num(a), -2**31, 2**31 - 1).astype(np.int32),
    "f2u": lambda a: np.clip(np.nan_to_num(a), 0, 2**32 - 1).astype(np.uint32),
    "i2f": lambda a: a.astype(np.float32),
    "u2f": lambda a: a.astype(np.float32),
    "bitcast_u32": lambda a: a.view(np.uint32) if a.dtype != np.bool_ else a.astype(np.uint32),
    "bitcast_i32": lambda a: a.view(np.int32) if a.dtype != np.bool_ else a.astype(np.int32),
    "bitcast_f32": lambda a: a.view(np.float32),
    "mov": lambda a: a,
}


def _do_alu(self: Wavefront, instr: Alu, mask: np.ndarray) -> None:
    a = self.read(instr.a)
    b = None if instr.b is None else self.read(instr.b)
    res = _AluSemantics.apply(instr.op, a, b)
    self.write(instr.dst, res, mask)


Wavefront._do_alu = _do_alu
