"""Block-fused kernel executors.

The reference interpreter in :mod:`repro.gpu.wavefront` dispatches every
instruction through an ``isinstance`` chain and a pair of method calls —
fine for correctness work, but the dominant Python hot path once fault
campaigns and fuzz sweeps run thousands of launches.  This module lowers
a compiled kernel's statement tree once per kernel: every maximal
straight-line run of side-effect-free instructions (``_PURE_OPS``) is
compiled — via ``exec`` of generated source — into a single *fused
block executor* that evaluates the whole run over the 64-lane numpy
vectors with no per-instruction dispatch, then charges one aggregate
cost into the pending :class:`~repro.gpu.wavefront.ExecReq`.

Timing neutrality is by construction:

* the reference path charges each pure instruction into the *pending*
  ``ExecReq`` and only yields at a non-pure boundary (memory op,
  barrier, loop back-edge, spin-flush) — exactly the block boundaries
  of the lowered tree, so the aggregate charge observed by the timing
  engine at every yield point is identical;
* all per-instruction cycle costs are integers, so summing them per
  block is exact;
* branch accounting (``n_branch``/``n_div_branch``/``branch_cycles``)
  and the ``_SPIN_FLUSH_CYCLES`` back-edge flush are replicated verbatim
  in :func:`_exec_fused`.

Fault injection needs to observe (and corrupt) state *between*
instructions — but a :class:`~repro.faults.injector.FaultHook` names
exactly one victim wave and one dynamic trigger watermark, so almost
all of a hooked launch is provably hook-free.  *Fault-window execution*
(:func:`_exec_fused_window`, on by default, ``REPRO_FAULT_WINDOW`` to
disable) exploits that: every wave runs the fused fast path, tracking
its dynamic instruction count block-at-a-time, and only when a block of
the victim wave could cross the trigger watermark does execution drop
to per-instruction stepping — calling the hook exactly where the
reference interpreter would — before resuming fused blocks.  Non-victim
waves never leave the fast path and never call the hook (it is a no-op
for them by construction).  Outcomes, injection records, cycles, and
counters are bit-identical to the reference fault path, pinned by
``tests/test_fault_window.py``'s seeded identity sweep.  Plain callable
hooks (no ``supports_window`` attribute) still force the reference
interpreter.  Bitwise equivalence of the fault-free paths is pinned by
``tests/test_fused_equivalence.py`` and guarded in CI by
``python -m repro.bench --quick``.
"""

from __future__ import annotations

import contextlib
import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.core import (
    Alu,
    Cmp,
    Const,
    If,
    Instr,
    Kernel,
    LoadParam,
    PredOp,
    Select,
    SpecialId,
    Stmt,
    Swizzle,
    While,
)
from ..ir.core import TRANSCENDENTAL_OPS
from .wavefront import (
    _ALU_FUNCS,
    _CMP_FUNCS,
    _LANES,
    _PURE_OPS,
    _SPIN_FLUSH_CYCLES,
    WAVE,
    Wavefront,
)

# ---------------------------------------------------------------------------
# Global enable switch
# ---------------------------------------------------------------------------

_enabled = os.environ.get("REPRO_FUSION", "1").lower() not in ("0", "false", "off")


def fusion_enabled() -> bool:
    """Whether launches lower kernels to fused executors by default."""
    return _enabled


def set_fusion_enabled(on: bool) -> None:
    global _enabled
    _enabled = bool(on)


@contextlib.contextmanager
def fusion(on: bool):
    """Temporarily force fusion on or off (tests, benchmarks)."""
    prev = _enabled
    set_fusion_enabled(on)
    try:
        yield
    finally:
        set_fusion_enabled(prev)


_window_enabled = os.environ.get(
    "REPRO_FAULT_WINDOW", "1").lower() not in ("0", "false", "off")


def fault_window_enabled() -> bool:
    """Whether window-capable fault hooks use fault-window execution."""
    return _window_enabled


def set_fault_window_enabled(on: bool) -> None:
    global _window_enabled
    _window_enabled = bool(on)


@contextlib.contextmanager
def fault_window(on: bool):
    """Temporarily force fault-window execution on or off."""
    prev = _window_enabled
    set_fault_window_enabled(on)
    try:
        yield
    finally:
        set_fault_window_enabled(prev)


# ---------------------------------------------------------------------------
# Lowered statement tree
# ---------------------------------------------------------------------------


def _reg_arr(regs: Dict[int, np.ndarray], rid: int, dt) -> np.ndarray:
    """Fetch-or-create one lane vector (mirrors ``Wavefront.read``)."""
    arr = regs.get(rid)
    if arr is None:
        arr = regs[rid] = np.zeros(WAVE, dt)
    return arr


#: Binary ALU/predicate opcodes rendered as infix operators in generated
#: source (everything else calls the shared semantic function table).
_INFIX_ALU = {"add": "+", "sub": "-", "mul": "*", "and": "&", "or": "|", "xor": "^"}
_INFIX_CMP = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}


class FusedBlock:
    """One straight-line run of pure instructions, compiled to a closure.

    ``fn(wave, mask)`` performs every register update of the run (masked
    writes, dtype casts, lazy register materialisation) with the same
    observable semantics as the reference ``_exec_pure`` loop.  Cycle
    accounting is aggregated per launch context in :meth:`execute`.
    """

    __slots__ = ("instrs", "n", "fn", "fn_full", "label")

    def __init__(self, instrs: Sequence[Instr], label: str):
        self.instrs = tuple(instrs)
        self.n = len(self.instrs)
        self.label = label
        self.fn = _codegen(self.instrs, label)
        #: all-lanes-active variant (lazy): plain local rebinding with one
        #: write-back per register instead of a masked copyto per instr.
        self.fn_full = None

    def execute(self, wave: Wavefront, mask: np.ndarray,
                full: Optional[bool] = None) -> None:
        wave.dyn_instrs += self.n
        if mask.all() if full is None else full:
            fn = self.fn_full
            if fn is None:
                fn = self.fn_full = _codegen(self.instrs, self.label,
                                             full_mask=True)
            fn(wave, mask)
        else:
            self.fn(wave, mask)
        costs = wave.ctx.fused_costs
        c = costs.get(id(self))
        if c is None:
            c = costs[id(self)] = _block_costs(self.instrs, wave.ctx)
        p = wave._pend
        p.valu_cycles += c[0]
        p.salu_cycles += c[1]
        p.n_valu += c[2]
        p.n_salu += c[3]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FusedBlock n={self.n}>"


class LoweredIf:
    """Structured branch over lowered bodies."""

    __slots__ = ("cond", "then_items", "else_items", "has_else")

    def __init__(self, cond, then_items, else_items, has_else):
        self.cond = cond
        self.then_items = then_items
        self.else_items = else_items
        self.has_else = has_else


class LoweredWhile:
    """Structured loop over lowered condition/body item lists."""

    __slots__ = ("cond_items", "cond", "body_items")

    def __init__(self, cond_items, cond, body_items):
        self.cond_items = cond_items
        self.cond = cond
        self.body_items = body_items


class FusedProgram:
    """The lowered form of one kernel body."""

    __slots__ = ("items", "n_blocks", "n_fused_instrs")

    def __init__(self, items):
        self.items = items
        blocks = list(self._walk_blocks(items))
        self.n_blocks = len(blocks)
        self.n_fused_instrs = sum(b.n for b in blocks)

    @staticmethod
    def _walk_blocks(items):
        for item in items:
            if isinstance(item, FusedBlock):
                yield item
            elif isinstance(item, LoweredIf):
                yield from FusedProgram._walk_blocks(item.then_items)
                yield from FusedProgram._walk_blocks(item.else_items)
            elif isinstance(item, LoweredWhile):
                yield from FusedProgram._walk_blocks(item.cond_items)
                yield from FusedProgram._walk_blocks(item.body_items)


def _block_costs(instrs: Sequence[Instr], ctx) -> Tuple[int, int, int, int]:
    """Aggregate ExecReq contribution, mirroring ``_charge_alu``."""
    cfg = ctx.config
    scalar = ctx.scalar_instrs
    vc = sc = nv = ns = 0
    for instr in instrs:
        if id(instr) in scalar:
            sc += cfg.salu_latency
            ns += 1
        elif instr.__class__ is Alu and instr.op in TRANSCENDENTAL_OPS:
            vc += cfg.trans_issue_cycles
            nv += 1
        else:
            vc += cfg.valu_issue_cycles
            nv += 1
    return vc, sc, nv, ns


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------


def _codegen(instrs: Sequence[Instr], label: str, full_mask: bool = False):
    """Compile one pure-op run into a ``fn(wave, mask)`` closure.

    Registers are fetched once into locals (they are mutated in place by
    masked ``np.copyto``, so the locals stay valid across the block);
    every write replicates the reference ``Wavefront.write`` semantics:
    cast to the destination dtype when needed, then masked copy.

    With ``full_mask=True`` the closure assumes every lane is active and
    writes become plain local rebindings, with a single unmasked
    write-back per register at the end of the block.  Write-backs are
    emitted in first-write order, which makes them alias-safe: a local
    can only alias another register's backing array via an assignment
    made *before* that register's first in-block write, so the aliased
    array is always flushed after its reader.  Register materialisation
    order (hence ``wave.regs`` dict insertion order, which fault
    injection's register enumeration depends on) is first-reference
    order in both variants, identical to the reference interpreter.
    """
    env: Dict[str, object] = {"_cp": np.copyto, "_reg": _reg_arr, "_where": np.where}
    reg_names: Dict[int, str] = {}
    reg_dts: Dict[int, str] = {}
    prologue: List[str] = []
    lines: List[str] = []
    written: List[str] = []
    written_seen: set = set()

    def rname(reg) -> str:
        rid = id(reg)
        nm = reg_names.get(rid)
        if nm is None:
            nm = f"r{len(reg_names)}"
            dt = f"d{len(reg_names)}"
            reg_names[rid] = nm
            reg_dts[rid] = dt
            env[dt] = reg.dtype.np_dtype
            if full_mask:
                prologue.append(f"    g{nm} = {nm} = _reg(regs, {rid}, {dt})")
            else:
                prologue.append(f"    {nm} = _reg(regs, {rid}, {dt})")
        return nm

    def emit(dst, expr: str, checked: bool = True) -> None:
        dn = rname(dst)
        dt = reg_dts[id(dst)]
        lines.append(f"    _v = {expr}")
        if checked:
            lines.append(f"    if _v.dtype != {dt}: _v = _v.astype({dt})")
        if full_mask:
            lines.append(f"    {dn} = _v")
            if dn not in written_seen:
                written_seen.add(dn)
                written.append(dn)
        else:
            lines.append(f"    _cp({dn}, _v, where=mask)")

    for k, ins in enumerate(instrs):
        cls = ins.__class__
        if cls is Alu:
            a = rname(ins.a)
            if ins.b is None:
                if ins.op == "mov":
                    emit(ins.dst, a)
                elif ins.op == "not":
                    emit(ins.dst, f"~{a}")
                else:
                    env[f"f{k}"] = _ALU_FUNCS[ins.op]
                    emit(ins.dst, f"f{k}({a})")
            else:
                b = rname(ins.b)
                infix = _INFIX_ALU.get(ins.op)
                if infix is not None:
                    emit(ins.dst, f"({a} {infix} {b})")
                else:
                    env[f"f{k}"] = _ALU_FUNCS[ins.op]
                    emit(ins.dst, f"f{k}({a}, {b})")
        elif cls is Cmp:
            a, b = rname(ins.a), rname(ins.b)
            emit(ins.dst, f"({a} {_INFIX_CMP[ins.op]} {b})")
        elif cls is Const:
            # A Const broadcast depends only on the instruction, so the
            # 64-lane vector is materialised once at codegen time.
            arr = np.full(WAVE, ins.value, dtype=ins.dst.dtype.np_dtype)
            arr.flags.writeable = False
            env[f"C{k}"] = arr
            emit(ins.dst, f"C{k}", checked=False)
        elif cls is LoadParam:
            # LoadParam depends on the launch's scalar bindings; the
            # per-launch broadcast cache keeps it to one np.full.
            env[f"i{k}"] = ins
            emit(ins.dst, f"wave._broadcast_value(i{k})", checked=False)
        elif cls is PredOp:
            a = rname(ins.a)
            if ins.op == "not":
                emit(ins.dst, f"~{a}")
            else:
                b = rname(ins.b)
                emit(ins.dst, f"({a} {_INFIX_ALU[ins.op]} {b})")
        elif cls is Select:
            p, a, b = rname(ins.pred), rname(ins.a), rname(ins.b)
            emit(ins.dst, f"_where({p}, {a}, {b})")
        elif cls is SpecialId:
            env[f"i{k}"] = ins
            emit(ins.dst, f"wave._special_value(i{k})")
        elif cls is Swizzle:
            src_lanes = (
                ((_LANES & ins.and_mask) | ins.or_mask) ^ ins.xor_mask
            ) % WAVE
            env[f"L{k}"] = src_lanes
            emit(ins.dst, f"{rname(ins.src)}[L{k}]")
        else:  # pragma: no cover - lowering only collects _PURE_OPS
            raise TypeError(f"cannot fuse {ins!r}")

    epilogue = [f"    g{nm}[:] = {nm}" for nm in written] if full_mask else []
    src = "\n".join(
        ["def _fused(wave, mask):", "    regs = wave.regs"]
        + prologue + lines + epilogue
    )
    code = compile(src, f"<fused:{label}>", "exec")
    exec(code, env)  # noqa: S102 - source is generated from trusted IR
    return env["_fused"]


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------


def _lower_body(body: Sequence[Stmt], label: str) -> List[object]:
    items: List[object] = []
    run: List[Instr] = []

    def flush() -> None:
        if run:
            items.append(FusedBlock(run, f"{label}#{len(items)}"))
            run.clear()

    for stmt in body:
        cls = stmt.__class__
        if cls in _PURE_OPS:
            run.append(stmt)
        elif cls is If:
            flush()
            items.append(
                LoweredIf(
                    stmt.cond,
                    _lower_body(stmt.then_body, label),
                    _lower_body(stmt.else_body, label),
                    bool(stmt.else_body),
                )
            )
        elif cls is While:
            flush()
            items.append(
                LoweredWhile(
                    _lower_body(stmt.cond_block, label),
                    stmt.cond,
                    _lower_body(stmt.body, label),
                )
            )
        else:
            flush()
            items.append(stmt)
    flush()
    return items


def lower_kernel(kernel: Kernel) -> FusedProgram:
    """Lower (and memoize on the kernel object) one kernel body.

    The lowered program is keyed to the kernel *instance*: compiler
    passes clone kernels before mutating them, so a compiled kernel's
    body is stable for its lifetime and the memo stays valid.
    """
    cached = getattr(kernel, "_fused_program", None)
    if cached is None:
        cached = FusedProgram(_lower_body(kernel.body, kernel.name))
        kernel._fused_program = cached
    return cached


def maybe_lower(kernel: Kernel):
    """Lower ``kernel`` if fusion is globally enabled, else ``None``."""
    if not _enabled:
        return None
    return lower_kernel(kernel)


# ---------------------------------------------------------------------------
# Fused interpreter loop (attached to Wavefront)
# ---------------------------------------------------------------------------


def _exec_fused(self: Wavefront, items, mask: np.ndarray,
                full: Optional[bool] = None):
    """Lowered-tree twin of ``Wavefront._exec_body`` (timing-identical).

    ``full`` caches ``mask.all()`` so the all-lanes-active block variant
    is selected without a per-block reduction; it is recomputed only
    where the mask itself changes (branch splits, loop back-edges).
    """
    cfg = self.ctx.config
    if full is None:
        full = bool(mask.all())
    for item in items:
        cls = item.__class__
        if cls is FusedBlock:
            item.execute(self, mask, full)
        elif cls is LoweredIf:
            cond = self.read(item.cond)
            then_mask = mask & cond
            inv_mask = mask & ~cond
            t_any = bool(then_mask.any())
            i_any = bool(inv_mask.any())
            self._pend.n_branch += 1
            self._pend.valu_cycles += cfg.branch_cycles
            if t_any and i_any:
                self._pend.n_div_branch += 1
            if t_any:
                # then_mask == mask when the else side is empty.
                yield from self._exec_fused(item.then_items, then_mask,
                                            full and not i_any)
            if item.has_else and i_any:
                yield from self._exec_fused(item.else_items, inv_mask,
                                            full and not t_any)
        elif cls is LoweredWhile:
            live = mask.copy()
            l_full = full
            while True:
                yield from self._exec_fused(item.cond_items, live, l_full)
                cond = self.read(item.cond)
                live &= cond
                self._pend.n_branch += 1
                self._pend.valu_cycles += cfg.branch_cycles
                if not live.any():
                    break
                l_full = bool(live.all())
                if not l_full and (full or mask.any()):
                    self._pend.n_div_branch += 1
                yield from self._exec_fused(item.body_items, live, l_full)
                if (self._pend.valu_cycles + self._pend.salu_cycles
                        > _SPIN_FLUSH_CYCLES):
                    yield self._flush()
        else:
            yield from self._exec_instr(item, mask)


def _exec_fused_window(self: Wavefront, items, mask: np.ndarray,
                       full: Optional[bool] = None):
    """Fault-window twin of ``_exec_fused``.

    Identical control flow, except each :class:`FusedBlock` first asks
    the fault hook for the wave's trigger watermark.  A block whose
    instructions all complete strictly below the watermark (or any
    block on a non-victim / already-fired wave, where ``window()`` is
    ``None``) runs as one compiled closure; otherwise the block is
    stepped instruction-by-instruction with the exact reference
    sequence ``dyn_instrs += 1; hook(...); _exec_pure(...)``, so the
    flip lands at the same dynamic point, against the same register
    file, as the reference interpreter.  Per-instruction
    ``_charge_alu`` calls sum to the same pending-cost aggregates as
    ``FusedBlock.execute``, so timing is bit-identical either way.
    Non-pure instructions always take ``_exec_instr``, which consults
    ``self._ihook`` (the hook on the victim, ``None`` elsewhere).
    """
    cfg = self.ctx.config
    hook = self.ctx.fault_hook
    if full is None:
        full = bool(mask.all())
    for item in items:
        cls = item.__class__
        if cls is FusedBlock:
            w = hook.window(self)
            if w is None or self.dyn_instrs + item.n < w:
                item.execute(self, mask, full)
            else:
                for ins in item.instrs:
                    self.dyn_instrs += 1
                    hook(self, ins)
                    self._exec_pure(ins, mask)
        elif cls is LoweredIf:
            cond = self.read(item.cond)
            then_mask = mask & cond
            inv_mask = mask & ~cond
            t_any = bool(then_mask.any())
            i_any = bool(inv_mask.any())
            self._pend.n_branch += 1
            self._pend.valu_cycles += cfg.branch_cycles
            if t_any and i_any:
                self._pend.n_div_branch += 1
            if t_any:
                yield from self._exec_fused_window(item.then_items, then_mask,
                                                   full and not i_any)
            if item.has_else and i_any:
                yield from self._exec_fused_window(item.else_items, inv_mask,
                                                   full and not t_any)
        elif cls is LoweredWhile:
            live = mask.copy()
            l_full = full
            while True:
                yield from self._exec_fused_window(item.cond_items, live,
                                                   l_full)
                cond = self.read(item.cond)
                live &= cond
                self._pend.n_branch += 1
                self._pend.valu_cycles += cfg.branch_cycles
                if not live.any():
                    break
                l_full = bool(live.all())
                if not l_full and (full or mask.any()):
                    self._pend.n_div_branch += 1
                yield from self._exec_fused_window(item.body_items, live,
                                                   l_full)
                if (self._pend.valu_cycles + self._pend.salu_cycles
                        > _SPIN_FLUSH_CYCLES):
                    yield self._flush()
        else:
            yield from self._exec_instr(item, mask)


Wavefront._exec_fused = _exec_fused
Wavefront._exec_fused_window = _exec_fused_window
