"""Pluggable wavefront event scheduling for the timing engine.

Every interleaving-relevant decision the simulator makes — which
wavefront issues first out of a barrier, which wavefront's atomic wins a
lock word, the order communication-buffer accesses hit the L2 — reduces
to one mechanism: the order wavefront continuations are popped from the
engine's event queue.  This module turns that order into a policy
object, the :class:`Scheduler`, so callers can substitute adversarial or
exploration policies without touching the engine:

* :class:`DefaultScheduler` is the engine's historical behaviour — a
  time-ordered heap with FIFO sequence tie-break — and is required to be
  bitwise- and cycle-identical to the pre-refactor engine (pinned by
  ``tests/test_scheduler_identity.py`` against goldens captured before
  the refactor).
* :class:`ReorderScheduler` keeps time-monotonic processing but permutes
  (reverses/rotates) the tie-break among same-timestamp continuations —
  a cheap adversarial lane for the inter-group protocol's ticket
  virtualization and two-tier lock.
* :mod:`repro.mc` plugs in a fully controlled scheduler that treats
  shared-memory operations as schedule decision points and drives a
  DPOR model-checking sweep.

Pop order also defines wave identity for fault injection: the engine
stamps each wavefront's execution-start *ordinal* the first time it is
popped, so a :class:`~repro.faults.injector.FaultPlan`'s victim
numbering is exactly the order this module's policy first runs waves —
under :class:`DefaultScheduler` that matches the historical hook-observed
numbering bit for bit.

A scheduler that sets ``observes = True`` additionally receives an
``observe(wave, req, t, result)`` callback after the engine applies each
*synchronization-relevant* request (global memory operations, barrier
arrivals, detection events) and an ``observe(wave, None, t, None)`` when
a wavefront's generator completes.  Purely local work (``ExecReq``,
``LdsReq``) is never reported — those requests commute with everything
another work-group can do.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from .wavefront import BarrierReq, ErrorReq, GlobalReq


class ScheduleDeadlock(Exception):
    """Every remaining wavefront is parked on a spin that cannot advance.

    Raised by schedulers that track spin progress (the model checker's
    controlled scheduler) when all unfinished wavefronts are blocked
    re-reading values no runnable wavefront can ever change — the
    schedule-space analogue of a lock-liveness failure.
    """

    def __init__(self, parked: Dict[Tuple[int, int], Tuple[str, Tuple[int, ...]]]):
        self.parked = dict(parked)
        spots = ", ".join(
            f"wave{list(k)} on {buf}[{','.join(str(a) for a in sorted(addrs)[:4])}"
            f"{',...' if len(addrs) > 4 else ''}]"
            for k, (buf, addrs) in sorted(self.parked.items())
        )
        super().__init__(
            f"schedule deadlock: {len(self.parked)} wavefront(s) spinning on "
            f"values nothing can change ({spots})"
        )


# ---------------------------------------------------------------------------
# Operation classification
# ---------------------------------------------------------------------------


class OpInfo:
    """Classification of one synchronization-relevant request.

    ``addrs`` are element indices into the named buffer, so a shared
    location is the pair ``(buf, addr)``.  ``sync`` marks atomics — the
    hardware serializes them at the L2, so two atomics on one address
    are ordered (they synchronize) and never *race*, though their order
    still matters for exploration.  An atomic that cannot change memory
    (``add`` of all-zero operands — the paper's read-through-L2 trick)
    is classified as a read.
    """

    __slots__ = ("kind", "buf", "addrs", "write", "sync")

    def __init__(self, kind: str, buf: str, addrs: Tuple[int, ...],
                 write: bool, sync: bool):
        self.kind = kind        # 'load' | 'store' | 'atomic' | 'barrier'
        self.buf = buf
        self.addrs = addrs
        self.write = write
        self.sync = sync

    def __repr__(self) -> str:
        rw = "w" if self.write else "r"
        return f"OpInfo({self.kind}:{rw} {self.buf}{list(self.addrs[:4])})"


def classify(req) -> Optional[OpInfo]:
    """Map an engine request to an :class:`OpInfo` (None if purely local)."""
    cls = type(req)
    if cls is GlobalReq:
        addrs = tuple(int(i) for i in np.asarray(req.indices).ravel())
        if req.op == "atomic":
            pure_read = req.atomic_op == "add" and not np.any(req.values)
            return OpInfo("atomic", req.buf.name, addrs,
                          write=not pure_read, sync=True)
        if req.op in ("load", "sload"):
            return OpInfo("load", req.buf.name, addrs, write=False, sync=False)
        return OpInfo("store", req.buf.name, addrs, write=True, sync=False)
    if cls is BarrierReq:
        return OpInfo("barrier", "", (), write=False, sync=True)
    if cls is ErrorReq:
        return None
    return None


def conflicts(a: OpInfo, b: OpInfo) -> bool:
    """Do two operations fail to commute (same location, one writes)?"""
    if a.kind == "barrier" or b.kind == "barrier":
        return False
    if a.buf != b.buf or not (a.write or b.write):
        return False
    if len(a.addrs) == 1 and len(b.addrs) == 1:
        return a.addrs[0] == b.addrs[0]
    return not set(a.addrs).isdisjoint(b.addrs)


# ---------------------------------------------------------------------------
# Schedulers
# ---------------------------------------------------------------------------


class Scheduler:
    """Owns the engine's pending-continuation queue.

    Entries are the engine's event tuples ``(time, seq, wave, sendval)``;
    the engine pushes continuations and pops the next one to run.  The
    scheduler decides the pop order — everything else (request
    semantics, resource timing, barrier bookkeeping) stays in the
    engine.
    """

    #: When True the engine calls :meth:`observe` after applying each
    #: synchronization-relevant request.
    observes = False

    #: Whether the vectorized engine (:mod:`repro.gpu.vectorized`) may
    #: run ahead of this scheduler's pop order.  Run-ahead preserves the
    #: event sequence only for the default time-ordered/FIFO policy;
    #: adversarial and model-checking schedulers leave this False and
    #: the device falls back to the standard engine.
    supports_vectorized = False

    def begin(self, ctx) -> None:
        """Reset for one launch; ``ctx`` is the LaunchContext."""

    def push(self, entry: tuple) -> None:
        raise NotImplementedError

    def pop(self) -> tuple:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def observe(self, wave, req, t: float, result) -> None:
        """One request was applied (``req is None`` = wavefront done)."""


class DefaultScheduler(Scheduler):
    """The engine's historical order: time-ordered, FIFO tie-break."""

    supports_vectorized = True

    def __init__(self):
        self._heap: List[tuple] = []

    def begin(self, ctx) -> None:
        self._heap = []

    def push(self, entry: tuple) -> None:
        heapq.heappush(self._heap, entry)

    def pop(self) -> tuple:
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)


class EventScheduler(Scheduler):
    """Delegating event-queue scheduler with a push-notification lane.

    Wraps an inner scheduler (default: :class:`DefaultScheduler`) and
    reports every pushed continuation to ``sink`` *before* enqueueing
    it.  The engine's event queue already jumps directly from one ready
    time to the next — what the sink adds is the fast-forward trigger:
    at push time a continuation's resume value is final, so a consumer
    (the vectorized engine's run-ahead coordinator) learns the complete
    set of advanceable waves without changing pop order at all.  Pop
    order, ``begin``/``observe`` semantics, and length are delegated
    verbatim, so wrapping is timing-neutral by construction.
    """

    supports_vectorized = True

    def __init__(self, inner: Optional[Scheduler] = None, sink=None):
        self.inner = DefaultScheduler() if inner is None else inner
        self.sink = sink
        self.observes = self.inner.observes

    def begin(self, ctx) -> None:
        self.inner.begin(ctx)

    def push(self, entry: tuple) -> None:
        if self.sink is not None:
            self.sink(entry)
        self.inner.push(entry)

    def pop(self) -> tuple:
        return self.inner.pop()

    def __len__(self) -> int:
        return len(self.inner)

    def observe(self, wave, req, t: float, result) -> None:
        self.inner.observe(wave, req, t, result)


class ReorderScheduler(Scheduler):
    """Adversarial same-timestamp permutations, still time-monotonic.

    Pops proceed in non-decreasing time order (so resource accounting
    stays coherent), but whenever several continuations share the
    minimal timestamp the batch is served in ``reversed`` or
    ``rotate=k`` order instead of FIFO.  Reversal flips, for example,
    which work-group's wavefront acquires the inter-group ticket counter
    first — turning the deterministic producer-then-consumer dispatch
    into consumer-first contention without a full model-checking sweep.

    Continuations pushed while a batch is being served (at the same or a
    later timestamp) wait for the next batch, which keeps the policy
    well-defined; functional outputs must be unaffected, cycle counts
    may legitimately differ from the default order.
    """

    def __init__(self, policy: str = "reverse", rotate: int = 1):
        if policy not in ("reverse", "rotate"):
            raise ValueError(f"unknown reorder policy {policy!r}")
        self.policy = policy
        self.rotate = rotate
        self._heap: List[tuple] = []
        self._batch: List[tuple] = []
        self.batches_permuted = 0

    def begin(self, ctx) -> None:
        self._heap = []
        self._batch = []
        self.batches_permuted = 0

    def push(self, entry: tuple) -> None:
        heapq.heappush(self._heap, entry)

    def __len__(self) -> int:
        return len(self._heap) + len(self._batch)

    def pop(self) -> tuple:
        if not self._batch:
            t0 = self._heap[0][0]
            while self._heap and self._heap[0][0] == t0:
                self._batch.append(heapq.heappop(self._heap))
            if len(self._batch) > 1:
                self.batches_permuted += 1
                if self.policy == "reverse":
                    self._batch.reverse()
                else:
                    k = self.rotate % len(self._batch)
                    self._batch = self._batch[k:] + self._batch[:k]
        return self._batch.pop(0)
