"""Activity-based power model.

The HD 7790 estimates average ASIC power with an on-chip monitor sampled
every 1 ms (Section 5 of the paper).  We model chip power as a static
floor plus per-unit dynamic terms proportional to measured busy
fractions, and reproduce the monitor by evaluating the model over 1-ms
(1 M-cycle) windows: *average* power is the time-weighted mean over
windows, *peak* power is the busiest window.

This structure is what yields the paper's Figure 5 finding: RMT doubles
the work-items but not the activity *rate* of a saturated unit, so
average power moves by only a percent or two while runtime absorbs the
cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .config import GpuConfig, PowerConfig
from .counters import KernelCounters


@dataclass(frozen=True)
class PowerReport:
    """Average and peak power over a kernel's execution."""

    average_w: float
    peak_w: float
    static_w: float
    dynamic_avg_w: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "average_w": self.average_w,
            "peak_w": self.peak_w,
            "static_w": self.static_w,
            "dynamic_avg_w": self.dynamic_avg_w,
        }


def estimate_power(
    counters: KernelCounters,
    kernel_cycles: float,
    gpu: GpuConfig,
    power: PowerConfig,
) -> PowerReport:
    """Evaluate the power model over the counter windows."""
    kernel_cycles = max(kernel_cycles, 1.0)
    window = counters.valu.window_cycles
    n_windows = max(1, -(-int(kernel_cycles) // window))

    simd_capacity = gpu.num_cus * gpu.simds_per_cu
    cu_capacity = gpu.num_cus

    def window_power(w: int, span: float) -> float:
        if span <= 0:
            return power.static_w
        valu = counters.valu.windows.get(w, 0.0) / (span * simd_capacity)
        salu = counters.salu.windows.get(w, 0.0) / (span * cu_capacity)
        lds = counters.lds.windows.get(w, 0.0) / (span * cu_capacity)
        mem = counters.mem.windows.get(w, 0.0) / (span * cu_capacity)
        dram = counters.dram.windows.get(w, 0.0) / span
        return (
            power.static_w
            + power.valu_w * min(1.0, valu)
            + power.salu_w * min(1.0, salu)
            + power.lds_w * min(1.0, lds)
            + power.mem_w * min(1.0, mem)
            + power.dram_w * min(1.0, dram)
        )

    total_energy = 0.0
    peak = power.static_w
    remaining = kernel_cycles
    for w in range(n_windows):
        span = min(float(window), remaining)
        remaining -= span
        p = window_power(w, span)
        total_energy += p * span
        if p > peak:
            peak = p
    average = total_energy / kernel_cycles
    return PowerReport(
        average_w=average,
        peak_w=peak,
        static_w=power.static_w,
        dynamic_avg_w=average - power.static_w,
    )
