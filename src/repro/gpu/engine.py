"""Discrete-event timing engine.

Wavefront interpreters yield timed resource requests; the engine resolves
them against a next-free-time model of every contended resource:

* per-SIMD issue ports (VALU occupancy — 4 cycles per 64-wide op),
* the CU scalar unit,
* the CU LDS port (serialized bank-conflict passes),
* the CU vector memory unit (per-64B-transaction occupancy),
* shared L2 banks and DRAM bandwidth (bytes/cycle tokens),
* per-address atomic serialization at the L2.

A single global event queue applies functional global-memory effects in
processing order, which keeps cross-work-group protocols (the
Inter-Group RMT locks) causally consistent.  The queue's pop order is a
pluggable :class:`~repro.gpu.schedule.Scheduler` policy; the default is
a time-ordered heap with FIFO tie-break (the historical behaviour),
while adversarial and model-checking schedulers may legally permute
continuations to explore other interleavings.  Latency hiding emerges
naturally: a wavefront blocked on memory leaves its SIMD free for the
other resident wavefronts — the mechanism behind the paper's headline
finding that memory-bound kernels hide the cost of redundant computation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .config import GpuConfig
from .counters import KernelCounters
from .memory import CacheModel, GlobalMemory, coalesce_lines
from .occupancy import KernelResources, Occupancy, compute_occupancy
from .schedule import DefaultScheduler, Scheduler
from .wavefront import (
    BarrierReq,
    ErrorReq,
    ExecReq,
    GlobalReq,
    GroupState,
    LaunchContext,
    LdsReq,
    Wavefront,
)


class SimulationError(Exception):
    """Deadlock/livelock watchdog or internal inconsistency."""


@dataclass
class LaunchResult:
    """Outcome of a single kernel launch."""

    cycles: float
    counters: KernelCounters
    occupancy: Occupancy
    detections: List[Tuple[float, int, int]] = field(default_factory=list)
    groups_launched: int = 0
    waves_launched: int = 0
    events_processed: int = 0
    #: final dynamic instruction count of each wave, indexed by ordinal
    #: minus this launch's ordinal base — the *fault envelope* campaigns
    #: use to prove a plan can never fire without simulating the trial.
    wave_instrs: List[int] = field(default_factory=list)
    #: which engine produced this result ("standard" | "vectorized") —
    #: lets tests prove the vectorized engine's fallback paths fired.
    engine_kind: str = "standard"

    @property
    def detected(self) -> bool:
        return bool(self.detections)


class _CuState:
    """Per-CU next-free-time bookkeeping."""

    __slots__ = ("simd_free", "simd_waves", "mem_free", "lds_free", "salu_free",
                 "resident_groups")

    def __init__(self, num_simds: int):
        self.simd_free = [0.0] * num_simds
        self.simd_waves = [0] * num_simds
        self.mem_free = 0.0
        self.lds_free = 0.0
        self.salu_free = 0.0
        self.resident_groups = 0


#: Cycles of store-queue decoupling before the write unit stalls.
_STORE_QUEUE_SLACK = 1024.0
#: Cycles between a group finishing and the next being dispatched.
_DISPATCH_LATENCY = 64.0
#: Stagger between wave launches of one group.
_WAVE_STAGGER = 4.0


class Engine:
    """Executes one kernel launch over the device timing model."""

    def __init__(
        self,
        config: GpuConfig,
        global_mem: GlobalMemory,
        l1s: List[CacheModel],
        l2: CacheModel,
        start_time: float = 0.0,
        scheduler: Optional[Scheduler] = None,
        wave_ordinal_base: int = 0,
    ):
        self.config = config
        self.mem = global_mem
        self.l1s = l1s
        self.l2 = l2
        self.start_time = start_time
        self.scheduler = scheduler
        # Execution-start ordinals: stamped on each wave the first time
        # it is popped from the event queue — the exact order the fault
        # hook used to observe first-executed waves in, so existing
        # campaign journals keep targeting the same victims.  The base
        # is carried across launches by the device so multi-launch
        # benchmarks number waves continuously.
        self._ordinal_base = wave_ordinal_base
        self._next_ordinal = wave_ordinal_base
        self._wave_instrs_done: Dict[int, int] = {}
        self.counters = KernelCounters(window_cycles=1_000_000)
        self._dram_free = start_time
        self._l2_bank_free = [start_time] * config.l2_banks
        self._atomic_free: Dict[int, float] = {}
        self._atomic_line_free: Dict[int, float] = {}
        self._atomic_unit_free = start_time
        self.oob_events = 0

    # -- subclass hooks (see repro.gpu.vectorized) ---------------------

    def _make_scheduler(self, ctx: LaunchContext) -> Scheduler:
        """The scheduler instance this run pops continuations from."""
        return self.scheduler if self.scheduler is not None else DefaultScheduler()

    def _spawn_wave(self, ctx: LaunchContext, group: GroupState, wave_idx: int):
        """Create one wavefront with its continuation generator."""
        wave = Wavefront(ctx, group, wave_idx)
        wave.gen = wave.run()
        return wave

    # ------------------------------------------------------------------

    def run(self, ctx: LaunchContext, resources: KernelResources) -> LaunchResult:
        cfg = self.config
        occ = compute_occupancy(cfg, resources, ctx.flat_local)

        cus = [_CuState(cfg.simds_per_cu) for _ in range(cfg.num_cus)]
        self._cus = cus
        pending_groups = list(range(ctx.total_groups))
        pending_groups.reverse()  # pop() yields group 0 first

        sched = self._make_scheduler(ctx)
        sched.begin(ctx)
        observe = sched.observe if sched.observes else None
        seq = itertools.count()
        t0 = self.start_time
        end_time = t0
        events = 0
        waves_launched = 0
        waves_completed = 0
        groups_launched = 0
        detections: List[Tuple[float, int, int]] = []

        def dispatch(cu_idx: int, when: float) -> None:
            nonlocal waves_launched, groups_launched
            flat_group = pending_groups.pop()
            group = GroupState(ctx, flat_group)
            cu = cus[cu_idx]
            cu.resident_groups += 1
            groups_launched += 1
            for w in range(group.n_waves):
                wave = self._spawn_wave(ctx, group, w)
                wave.cu = cu_idx
                simd = min(range(cfg.simds_per_cu), key=lambda s: cu.simd_waves[s])
                cu.simd_waves[simd] += 1
                wave.simd = simd
                sched.push((when + w * _WAVE_STAGGER, next(seq), wave, None))
                waves_launched += 1

        # Initial fill: round-robin groups over CUs up to the occupancy cap.
        for _round in range(occ.max_groups_per_cu):
            for cu_idx in range(cfg.num_cus):
                if not pending_groups:
                    break
                dispatch(cu_idx, t0)

        max_events = 200_000_000
        while sched:
            t, _s, wave, sendval = sched.pop()
            if wave.ordinal < 0:
                wave.ordinal = self._next_ordinal
                self._next_ordinal += 1
            events += 1
            if events > max_events or t > cfg.max_cycles:
                raise SimulationError(
                    f"watchdog: events={events}, t={t:.0f} "
                    f"(kernel {ctx.kernel.name!r} — possible deadlock/livelock)"
                )
            try:
                req = wave.gen.send(sendval)
            except StopIteration:
                end_time = max(end_time, t)
                self._wave_instrs_done[wave.ordinal] = wave.dyn_instrs
                # Break the wave <-> generator reference cycle so finished
                # waves (and their register files) free by refcount instead
                # of waiting for a gc pass — campaigns churn thousands of
                # launches and the cycle collector pauses were measurable.
                wave.gen = None
                group = wave.group
                cu = cus[wave.cu]
                cu.simd_waves[wave.simd] -= 1
                group.waves_done += 1
                waves_completed += 1
                if group.waves_done == group.n_waves:
                    cu.resident_groups -= 1
                    if pending_groups:
                        dispatch(wave.cu, t + _DISPATCH_LATENCY)
                if observe is not None:
                    observe(wave, None, t, None)
                continue

            kind = type(req)
            if kind is ExecReq:
                ready = self._do_exec(wave, req, t)
                sched.push((ready, next(seq), wave, None))
            elif kind is GlobalReq:
                ready, result = self._do_global(wave, req, t)
                sched.push((ready, next(seq), wave, result))
                if observe is not None:
                    observe(wave, req, t, result)
            elif kind is LdsReq:
                ready = self._do_lds(wave, req, t)
                sched.push((ready, next(seq), wave, None))
            elif kind is BarrierReq:
                group = wave.group
                group.barrier_waiting.append((t, wave))
                if len(group.barrier_waiting) == group.n_waves:
                    release = max(bt for bt, _w in group.barrier_waiting)
                    release += self.config.branch_cycles
                    for _bt, w in group.barrier_waiting:
                        sched.push((release, next(seq), w, None))
                    group.barrier_waiting = []
                if observe is not None:
                    observe(wave, req, t, None)
            elif kind is ErrorReq:
                detections.append((t, req.code, req.lanes))
                sched.push((t, next(seq), wave, None))
                if observe is not None:
                    observe(wave, req, t, None)
            else:  # pragma: no cover
                raise SimulationError(f"unknown request {req!r}")
            end_time = max(end_time, t)

        if pending_groups:
            raise SimulationError(
                f"{len(pending_groups)} groups never dispatched "
                f"(kernel {ctx.kernel.name!r})"
            )
        if waves_completed != waves_launched:
            # Waves parked at a barrier that was never fully reached —
            # a barrier-divergence deadlock (possible under fault injection).
            raise SimulationError(
                f"barrier deadlock: {waves_launched - waves_completed} of "
                f"{waves_launched} waves never finished "
                f"(kernel {ctx.kernel.name!r})"
            )

        self.counters.detections.extend(detections)
        return LaunchResult(
            cycles=end_time - t0,
            counters=self.counters,
            occupancy=occ,
            detections=detections,
            groups_launched=groups_launched,
            waves_launched=waves_launched,
            events_processed=events,
            wave_instrs=[
                self._wave_instrs_done.get(self._ordinal_base + i, 0)
                for i in range(waves_launched)
            ],
        )

    # -- request handlers ------------------------------------------------

    def _do_exec(self, wave: Wavefront, req: ExecReq, t: float) -> float:
        cu = self._cu(wave)
        c = self.counters
        ready = t
        if req.valu_cycles:
            start = max(t, cu.simd_free[wave.simd])
            end = start + req.valu_cycles
            cu.simd_free[wave.simd] = end
            c.valu.add(start, end)
            ready = end
        if req.salu_cycles:
            start = max(ready, cu.salu_free)
            end = start + req.salu_cycles
            cu.salu_free = end
            c.salu.add(start, end)
            ready = end
        c.valu_instructions += req.n_valu
        c.salu_instructions += req.n_salu
        c.branch_instructions += req.n_branch
        c.divergent_branches += req.n_div_branch
        return ready

    def _do_lds(self, wave: Wavefront, req: LdsReq, t: float) -> float:
        cfg = self.config
        cu = self._cu(wave)
        start = max(t, cu.lds_free)
        busy = req.passes * cfg.lds_issue_cycles
        cu.lds_free = start + busy
        c = self.counters
        c.lds.add(start, start + busy)
        c.lds_accesses += 1
        c.lds_bank_conflict_passes += req.passes
        if req.op == "load":
            return start + busy + cfg.lds_latency
        return start + busy

    def _do_global(self, wave: Wavefront, req: GlobalReq, t: float):
        if wave.ctx.fault_hook is not None:
            # Under fault injection a flipped address register may point
            # anywhere; real hardware would issue the wild access.  Model
            # it as a wrap within the buffer and record the event so
            # campaigns can classify the run.
            size = req.buf.data.size
            wrapped = req.indices % size
            if not np.array_equal(wrapped, req.indices):
                self.oob_events += 1
                req.indices = wrapped
        if req.op == "load":
            return self._do_load(wave, req, t)
        if req.op == "sload":
            return self._do_scalar_load(wave, req, t)
        if req.op == "store":
            return self._do_store(wave, req, t)
        return self._do_atomic(wave, req, t)

    def _do_scalar_load(self, wave: Wavefront, req: GlobalReq, t: float):
        """Wavefront-uniform load through the scalar unit / constant cache.

        One 4-byte fetch serves the whole wavefront: it occupies the SU
        briefly and bypasses the vector memory unit entirely — the GCN
        scalarization the paper's Section 3.3 describes.
        """
        cfg = self.config
        cu = self._cu(wave)
        c = self.counters
        start = max(t, cu.salu_free)
        cu.salu_free = start + cfg.salu_latency
        c.salu.add(start, start + cfg.salu_latency)
        c.salu_instructions += 1
        data = self.mem.read(req.buf, req.indices)
        return start + cfg.salu_latency + cfg.l1_hit_latency / 2.0, data

    def _do_load(self, wave: Wavefront, req: GlobalReq, t: float):
        cfg = self.config
        cu = self._cu(wave)
        c = self.counters
        addrs = req.buf.addresses(req.indices)
        lines = coalesce_lines(addrs, cfg.l1_line_bytes)
        ntx = len(lines)
        start = max(t, cu.mem_free)
        issue = cfg.mem_issue_cycles_per_instr + ntx * cfg.mem_issue_cycles_per_tx
        cu.mem_free = start + issue
        c.mem.add(start, start + issue)
        c.mem_transactions += ntx
        c.global_load_bytes += int(req.indices.size) * req.buf.elem_bytes

        l1 = self.l1s[wave.cu]
        max_done = start + issue
        for line in lines:
            line = int(line)
            hit, _ = l1.access(line)
            if hit:
                c.l1_hits += 1
                done = start + cfg.l1_hit_latency
            else:
                c.l1_misses += 1
                bank = line % cfg.l2_banks
                bstart = max(start, self._l2_bank_free[bank])
                self._l2_bank_free[bank] = bstart + (
                    cfg.l2_line_bytes / cfg.l2_bytes_per_cycle_per_bank
                )
                l2_hit, writeback = self.l2.access(line)
                if l2_hit:
                    c.l2_hits += 1
                    done = bstart + cfg.l2_hit_latency
                else:
                    c.l2_misses += 1
                    dstart = max(bstart, self._dram_free)
                    self._dram_free = dstart + cfg.l2_line_bytes / cfg.dram_bytes_per_cycle
                    if writeback is not None:
                        self._dram_free += cfg.l2_line_bytes / cfg.dram_bytes_per_cycle
                    c.dram.add(dstart, self._dram_free)
                    done = dstart + cfg.dram_latency
            if done > max_done:
                max_done = done
        data = self.mem.read(req.buf, req.indices)
        return max_done, data

    def _do_store(self, wave: Wavefront, req: GlobalReq, t: float):
        cfg = self.config
        cu = self._cu(wave)
        c = self.counters
        addrs = req.buf.addresses(req.indices)
        lines = coalesce_lines(addrs, cfg.l1_line_bytes)
        ntx = len(lines)
        start = max(t, cu.mem_free)
        issue = cfg.mem_issue_cycles_per_instr + ntx * cfg.mem_issue_cycles_per_tx
        c.mem_transactions += ntx
        c.global_store_bytes += int(req.indices.size) * req.buf.elem_bytes

        # Stores write through the L1 into the writeback L2; DRAM traffic
        # happens only when allocation evicts a dirty victim — so streaming
        # stores saturate DRAM while hot lines (e.g. RMT communication
        # buffers) stay on chip.
        drain = start
        for line in lines:
            line = int(line)
            bank = line % cfg.l2_banks
            bstart = max(start, self._l2_bank_free[bank])
            self._l2_bank_free[bank] = bstart + (
                cfg.l2_line_bytes / cfg.l2_bytes_per_cycle_per_bank
            )
            hit, writeback = self.l2.access(line, write=True)
            if hit:
                c.l2_hits += 1
            else:
                c.l2_misses += 1
            drain = max(drain, bstart)
            if writeback is not None:
                dstart = max(bstart, self._dram_free)
                self._dram_free = dstart + cfg.l2_line_bytes / cfg.dram_bytes_per_cycle
                c.dram.add(dstart, self._dram_free)
                drain = max(drain, self._dram_free)

        # The store queue decouples the wavefront from the drain unless the
        # downstream path is saturated — that residual is WriteUnitStalled.
        stall = max(0.0, (drain - (start + issue)) - _STORE_QUEUE_SLACK)
        end = start + issue + stall
        cu.mem_free = end
        c.mem.add(start, start + issue)
        if stall > 0:
            c.write_stall.add(start + issue, end)
        self.mem.write(req.buf, req.indices, req.values)
        return end, None

    def _do_atomic(self, wave: Wavefront, req: GlobalReq, t: float):
        cfg = self.config
        cu = self._cu(wave)
        c = self.counters
        addrs = req.buf.addresses(req.indices)
        nlanes = len(addrs)
        lines = coalesce_lines(addrs, cfg.l2_line_bytes)
        start = max(t, cu.mem_free)
        # The memory unit issues one vector-atomic instruction; the L2's
        # atomic units unroll it lane by lane.
        issue = cfg.atomic_issue_cycles
        cu.mem_free = start + issue
        c.mem.add(start, start + issue)
        c.atomic_transactions += nlanes

        # Cold atomic targets fill from (and eventually write back to)
        # DRAM like any other dirty line.
        for line in lines:
            hit, writeback = self.l2.access(int(line), write=True)
            if hit:
                c.l2_hits += 1
            else:
                c.l2_misses += 1
                dstart = max(start, self._dram_free)
                self._dram_free = dstart + cfg.l2_line_bytes / cfg.dram_bytes_per_cycle
                if writeback is not None:
                    self._dram_free += cfg.l2_line_bytes / cfg.dram_bytes_per_cycle
                c.dram.add(dstart, self._dram_free)

        # Serialization at the L2 atomic units: lanes touching one cache
        # line process back-to-back, and lanes to the same *address* (lock
        # words contended across wavefronts) serialize more strongly.
        max_done = start + issue
        per_op = 1.0 / cfg.atomic_chip_ops_per_cycle
        for i in range(nlanes):
            addr = int(addrs[i])
            line = addr // cfg.l2_line_bytes
            # Chip-wide atomic-ALU throughput: a pure rate token, consumed
            # at issue so one contended line cannot stall the pipeline.
            ustart = max(start, self._atomic_unit_free)
            self._atomic_unit_free = ustart + per_op
            astart = max(
                ustart,
                self._atomic_free.get(addr, 0.0),
                self._atomic_line_free.get(line, 0.0),
            )
            self._atomic_free[addr] = astart + cfg.atomic_serial_cycles
            self._atomic_line_free[line] = astart + cfg.atomic_op_cycles
            done = astart + cfg.atomic_latency
            if done > max_done:
                max_done = done
        old = self.mem.atomic(req.atomic_op, req.buf, req.indices, req.values, req.compares)
        return max_done, old

    def _cu(self, wave: Wavefront) -> _CuState:
        return self._cus[wave.cu]
