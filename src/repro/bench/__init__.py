"""Performance microbenchmarks — the standing ``BENCH_*.json`` trajectory.

``python -m repro.bench`` measures the hot paths this repo's evaluation
machinery lives on and writes ``BENCH_7.json``:

* **interp** — simulated cycles/sec of the wavefront interpreter on an
  ALU-dense kernel, reference per-instruction dispatch vs the
  block-fused executors (:mod:`repro.gpu.fused`), with a bitwise
  output/cycle-count cross-check;
* **vector** — the vectorized run-ahead engine
  (:mod:`repro.gpu.vectorized`) vs the fused baseline on a
  multi-workgroup dispatch: all resident wavefronts batched through
  stacked ``(waves, lanes)`` closures, cross-checked bitwise- and
  cycle-identical against both other engines;
* **campaign** — fault-campaign trials/sec, the pre-PR-5 shape (full
  recompile + host-reference recomputation per trial) vs the current
  compile-once/cached path;
* **faults** — the same campaign configuration with fault-window
  execution (:mod:`repro.gpu.fused` + ``FaultEnvelope`` elision, see
  DESIGN.md §15) toggled off vs on, cross-checking every trial record
  field between the two fault paths;
* **compile** — cold vs warm ``compile_kernel`` latency through the
  content-addressed cache (:mod:`repro.compiler.cache`);
* **equivalence** — the correctness guard: the committed fuzz corpus
  and the small benchmark suite replayed fused vs reference, asserting
  bit-identical memory, cycles, and counters.

Speedups are *recorded*, not gated: wall-clock assertions would make CI
flaky, so the only failing condition is a correctness divergence
(non-zero exit).  The perf trajectory lives in the committed
``BENCH_5.json`` and its successors.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from ..compiler import cache as compile_cache
from ..compiler.pipeline import compile_kernel
from ..faults.campaign import draw_plans, execute_trial
from ..gpu import fused, vectorized
from ..gpu.counters import BusyTracker
from ..ir.builder import KernelBuilder
from ..ir.types import DType
from ..kernels.suite import SMALL_SUITE, make_benchmark
from ..runtime.api import Session

SCHEMA = 1
BENCH_ID = 7
SECTIONS = ("interp", "vector", "campaign", "faults", "compile",
            "equivalence")

#: Acceptance targets recorded alongside the measurements (ISSUE 5/8).
INTERP_TARGET = 2.0
CAMPAIGN_TARGET = 3.0
VECTOR_TARGET = 10.0
FAULTS_TARGET = 5.0

#: BENCH_6.json's measured ``campaign.cached_trials_per_sec`` — the
#: pre-fault-window throughput the ``faults`` section is gated against
#: (ISSUE 10 asks for 5x over this pinned number, not over a same-run
#: re-measurement, so the comparison can't drift with box speed).
BENCH6_CAMPAIGN_RATE = 99.84


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _counters_dict(counters) -> Dict[str, object]:
    out = {}
    for k, v in vars(counters).items():
        out[k] = v.total if isinstance(v, BusyTracker) else v
    return out


def _same_counters(a, b) -> bool:
    da, db = _counters_dict(a), _counters_dict(b)
    if da.keys() != db.keys():
        return False
    for k in da:
        va, vb = da[k], db[k]
        if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
            if not np.array_equal(va, vb):
                return False
        elif va != vb:
            return False
    return True


def build_alu_dense(chain: int = 40, iters: int = 32, nitems: int = 256,
                    local_size: int = 64):
    """A compute-bound kernel: long straight-line FMA runs in a loop.

    This is the shape block fusion targets — the memory system is idle
    and wall-clock is dominated by per-instruction interpreter dispatch.
    """
    kb = KernelBuilder("bench_alu_dense")
    out = kb.buffer_param("out", DType.F32)
    gid = kb.global_id(0)
    x = kb.var(DType.F32, kb.u2f(gid))
    with kb.for_range(0, iters):
        for _ in range(chain):
            kb.set(x, kb.add(kb.mul(x, kb.const(1.0001, DType.F32)),
                             kb.const(0.5, DType.F32)))
    kb.store(out, gid, x)
    kernel = kb.finish()
    kernel.metadata.update({
        "local_size": (local_size, 1, 1),
        "global_size": (nitems, 1, 1),
        "buffer_nelems": {"out": nitems},
    })
    return kernel


# ---------------------------------------------------------------------------
# interp
# ---------------------------------------------------------------------------


def bench_interp(quick: bool = False) -> Dict:
    """Interpreter throughput: reference dispatch vs fused executors."""
    chain, iters, reps = (40, 16, 2) if quick else (40, 32, 4)
    compiled = compile_kernel(build_alu_dense(chain, iters), "original",
                              cache=False)

    def one(on: bool):
        with fused.fusion(on):
            elapsed = 0.0
            cycles = 0.0
            output = None
            for _ in range(reps + 1):          # first rep is warm-up
                session = Session()
                buf = session.zeros("out", 256, np.float32)
                t0 = time.perf_counter()
                result = session.launch(compiled, 256, 64, {"out": buf})
                dt = time.perf_counter() - t0
                if output is None:
                    output = session.download(buf)
                    continue
                elapsed += dt
                cycles += result.cycles
            return cycles / elapsed, output, result.cycles

    ref_rate, ref_out, ref_cycles = one(False)
    fused_rate, fused_out, fused_cycles = one(True)
    bitwise = bool(np.array_equal(ref_out, fused_out)
                   and ref_cycles == fused_cycles)
    speedup = fused_rate / ref_rate
    return {
        "kernel": "bench_alu_dense",
        "reference_cycles_per_sec": round(ref_rate),
        "fused_cycles_per_sec": round(fused_rate),
        "speedup": round(speedup, 3),
        "target_speedup": INTERP_TARGET,
        "meets_target": speedup >= INTERP_TARGET,
        "bitwise_identical": bitwise,
    }


# ---------------------------------------------------------------------------
# vector
# ---------------------------------------------------------------------------


def bench_vector(quick: bool = False) -> Dict:
    """Vectorized run-ahead engine vs the fused baseline (BENCH_6).

    A multi-workgroup dispatch (32 work-groups of 256 work-items — 128
    resident wavefronts) of the ALU-dense kernel: the geometry where the
    vectorized engine's convoys are widest.  All three engines must be
    bitwise- and cycle-identical; the recorded speedup is over the PR-5
    fused baseline, with the reference interpreter rate alongside.
    """
    chain, iters, nitems, reps = (64, 32, 4096, 2) if quick \
        else (64, 32, 8192, 3)
    local_size = 256
    compiled = compile_kernel(
        build_alu_dense(chain, iters, nitems=nitems, local_size=local_size),
        "original", cache=False)

    def one(fusion_on: bool, vector_on: bool):
        with fused.fusion(fusion_on), vectorized.vector(vector_on):
            elapsed = 0.0
            cycles = 0.0
            output = None
            for _ in range(reps + 1):          # first rep is warm-up
                session = Session()
                buf = session.zeros("out", nitems, np.float32)
                t0 = time.perf_counter()
                result = session.launch(compiled, nitems, local_size,
                                        {"out": buf})
                dt = time.perf_counter() - t0
                if output is None:
                    output = session.download(buf)
                    continue
                elapsed += dt
                cycles += result.cycles
            return cycles / elapsed, output, result.cycles, result.engine_kind

    ref_rate, ref_out, ref_cycles, _ = one(False, False)
    fused_rate, fused_out, fused_cycles, _ = one(True, False)
    vec_rate, vec_out, vec_cycles, vec_engine = one(True, True)
    bitwise = bool(
        np.array_equal(ref_out, fused_out)
        and np.array_equal(ref_out, vec_out)
        and ref_cycles == fused_cycles == vec_cycles
        and vec_engine == "vectorized")
    speedup = vec_rate / fused_rate
    return {
        "kernel": "bench_alu_dense",
        "dispatch": f"{nitems}x{local_size}",
        "workgroups": nitems // local_size,
        "wavefronts": nitems // 64,
        "reference_cycles_per_sec": round(ref_rate),
        "fused_cycles_per_sec": round(fused_rate),
        "vectorized_cycles_per_sec": round(vec_rate),
        "speedup": round(speedup, 3),
        "speedup_vs_reference": round(vec_rate / ref_rate, 3),
        "target_speedup": VECTOR_TARGET,
        "meets_target": speedup >= VECTOR_TARGET,
        "bitwise_identical": bitwise,
    }


# ---------------------------------------------------------------------------
# campaign
# ---------------------------------------------------------------------------


def bench_campaign(quick: bool = False) -> Dict:
    """Fault-campaign trials/sec: per-trial recompile vs compile-once.

    The probe is DWT-Haar at a reduced problem size — a realistic
    campaign configuration (short trials, many of them) where the
    pre-PR-5 loop's fixed per-trial costs (full recompile with lint +
    TV, host-reference recomputation) dominate the simulated run.
    """
    from ..kernels.dwt_haar import DwtHaar1D

    trials = 3 if quick else 8
    variant, target = "intra+lds", "vgpr"
    make_bench = lambda: DwtHaar1D(n=256, local_size=64)  # noqa: E731

    probe = make_bench()
    golden = probe.execute(variant)
    budget = 25.0 * max(golden.cycles, 1.0) + 2_000_000
    plans = draw_plans(11, trials, target, max_instr=20)

    def baseline() -> tuple:
        """The pre-PR-5 trial loop: recompile + fresh oracle per trial."""
        t0 = time.perf_counter()
        outcomes = []
        for i, plan in enumerate(plans):
            bench = make_bench()
            compiled = bench.compile(variant, cache=False)
            rec = execute_trial(bench, compiled, plan, budget, index=i)
            outcomes.append(rec.outcome)
        return trials / (time.perf_counter() - t0), outcomes

    def cached() -> tuple:
        """The current loop: compile once, shared golden reference."""
        t0 = time.perf_counter()
        probe2 = make_bench()
        compiled = probe2.compile(variant)
        reference = {k: v.copy() for k, v in probe2.reference().items()}
        outcomes = []
        for i, plan in enumerate(plans):
            bench = make_bench()
            rec = execute_trial(bench, compiled, plan, budget, index=i,
                                reference=reference)
            outcomes.append(rec.outcome)
        return trials / (time.perf_counter() - t0), outcomes

    base_rate, base_outcomes = baseline()
    cached_rate, cached_outcomes = cached()
    speedup = cached_rate / base_rate
    return {
        "benchmark": "DWT/n256", "variant": variant, "fault_target": target,
        "trials": trials,
        "baseline_trials_per_sec": round(base_rate, 3),
        "cached_trials_per_sec": round(cached_rate, 3),
        "speedup": round(speedup, 3),
        "target_speedup": CAMPAIGN_TARGET,
        "meets_target": speedup >= CAMPAIGN_TARGET,
        "outcomes_identical": base_outcomes == cached_outcomes,
        "outcomes": cached_outcomes,
    }


# ---------------------------------------------------------------------------
# faults (fault-window execution)
# ---------------------------------------------------------------------------


def bench_faults(quick: bool = False) -> Dict:
    """Fault-window trials/sec: interpreter fault path vs window+elision.

    The headline rates run the *same workload BENCH_6's campaign section
    measured* — DWT-Haar n=256, intra+lds, vgpr, the first ``trials``
    plans of ``draw_plans(11, ..., max_instr=20)`` — so
    ``speedup_vs_bench6`` compares identical trial-by-trial work against
    the pinned pre-fault-window rate.  A larger seeded ``sweep`` is
    reported alongside it because elision is a per-plan property and
    small prefixes of the plan stream can be elision-lucky (the BENCH_6
    eight elide 7/8; the 120-plan sweep sits near the distribution's
    50%).  The off lane pins the PR-9 behaviour
    (``fused.fault_window(False)``: hooked launches run the reference
    interpreter, no elision); the on lane runs the DESIGN.md §15 fast
    path.  Every sweep record field except the ``engine`` tag must agree
    between lanes — that bit feeds ``report_correct`` and the CI gate.
    Rates are best-of-``reps`` (noise on shared runners only ever slows
    a rep down).
    """
    from ..faults.campaign import FaultEnvelope, classify_trial
    from ..kernels.dwt_haar import DwtHaar1D

    trials, sweep_trials, reps = (3, 24, 1) if quick else (8, 120, 3)
    variant, target = "intra+lds", "vgpr"
    make_bench = lambda: DwtHaar1D(n=256, local_size=64)  # noqa: E731

    probe = make_bench()
    compiled = probe.compile(variant)
    golden_session = Session()
    golden = probe.run(golden_session, compiled)
    reference = probe.reference()
    budget = 25.0 * max(golden.cycles, 1.0) + 2_000_000
    envelope = FaultEnvelope(
        wave_instrs=[n for r in golden_session.device.stats.launch_results
                     for n in r.wave_instrs],
        outcome=classify_trial(probe, golden, reference),
        cycles=golden.cycles)
    plans = draw_plans(11, sweep_trials, target, max_instr=20)

    def lane(window: bool, subset, lane_reps: int) -> tuple:
        best, records = 0.0, []
        with fused.fault_window(window):
            for _ in range(lane_reps):
                t0 = time.perf_counter()
                records = []
                for i, plan in enumerate(subset):
                    bench = make_bench()
                    records.append(execute_trial(
                        bench, compiled, plan, budget, index=i,
                        reference=reference,
                        envelope=envelope if window else None))
                best = max(best, len(subset) / (time.perf_counter() - t0))
        return best, records

    # Identity over the full sweep, then rates on both workloads.
    sweep_ref_rate, sweep_ref = lane(False, plans, 1)
    sweep_win_rate, sweep_win = lane(True, plans, reps)
    ref_rate, _ = lane(False, plans[:trials], reps)
    win_rate, win_records = lane(True, plans[:trials], reps)

    def fields(rec) -> tuple:
        return (rec.outcome, rec.fired, rec.description, rec.cycles,
                rec.error, rec.bucket)

    identical = all(fields(a) == fields(b)
                    for a, b in zip(sweep_ref, sweep_win))
    speedup = win_rate / BENCH6_CAMPAIGN_RATE
    return {
        "benchmark": "DWT/n256", "variant": variant, "fault_target": target,
        "trials": trials, "reps": reps,
        "reference_trials_per_sec": round(ref_rate, 3),
        "window_trials_per_sec": round(win_rate, 3),
        "bench6_campaign_rate": BENCH6_CAMPAIGN_RATE,
        "speedup_vs_bench6": round(speedup, 3),
        "target_speedup": FAULTS_TARGET,
        "meets_target": speedup >= FAULTS_TARGET,
        "elided": sum(1 for r in win_records if r.engine == "elided"),
        "fired": sum(1 for r in win_records if r.fired),
        "outcomes_identical": identical,
        "outcomes": [r.outcome for r in win_records],
        "sweep": {
            "trials": sweep_trials,
            "reference_trials_per_sec": round(sweep_ref_rate, 3),
            "window_trials_per_sec": round(sweep_win_rate, 3),
            "speedup_vs_bench6": round(
                sweep_win_rate / BENCH6_CAMPAIGN_RATE, 3),
            "elided": sum(1 for r in sweep_win if r.engine == "elided"),
            "fired": sum(1 for r in sweep_win if r.fired),
        },
    }


# ---------------------------------------------------------------------------
# compile
# ---------------------------------------------------------------------------


def bench_compile(quick: bool = False) -> Dict:
    """Cold vs warm compile latency through the content-addressed cache."""
    cold_reps, warm_reps = (1, 10) if quick else (3, 50)
    bench = make_benchmark("FWT", "small")
    variant = "intra+lds"

    t0 = time.perf_counter()
    for _ in range(cold_reps):
        compile_kernel(bench.build(), variant, cache=False)
    cold_ms = (time.perf_counter() - t0) / cold_reps * 1e3

    private = compile_cache.CompileCache()
    compile_kernel(bench.build(), variant, cache=private)    # store
    t0 = time.perf_counter()
    for _ in range(warm_reps):
        compile_kernel(bench.build(), variant, cache=private)
    warm_ms = (time.perf_counter() - t0) / warm_reps * 1e3

    return {
        "benchmark": "FWT/small", "variant": variant,
        "cold_ms": round(cold_ms, 3),
        "warm_ms": round(warm_ms, 4),
        "speedup": round(cold_ms / warm_ms, 1),
        "cache_stats": private.stats.as_dict(),
    }


# ---------------------------------------------------------------------------
# equivalence (the correctness guard)
# ---------------------------------------------------------------------------


def bench_equivalence(quick: bool = False) -> Dict:
    """Fused vs reference bitwise equivalence over corpus + suite."""
    from ..fuzz.corpus import edge_programs
    from ..fuzz.oracle import RunSpec, run_program

    divergences: List[str] = []

    if quick:
        specs = [RunSpec("original"), RunSpec("intra+lds", optimize=True),
                 RunSpec("inter")]
    else:
        specs = [RunSpec(v, optimize=o)
                 for v in ("original", "intra+lds", "intra-lds", "inter")
                 for o in (False, True)]

    corpus_runs = 0
    for prog in edge_programs():
        for spec in specs:
            with fused.fusion(False):
                ref = run_program(prog, spec, cycle_budget=50_000_000)
            with fused.fusion(True):
                fzd = run_program(prog, spec, cycle_budget=50_000_000)
            corpus_runs += 1
            where = f"corpus/{prog.name}/{spec.label}"
            if ref.status != fzd.status:
                divergences.append(f"{where}: status {ref.status} vs {fzd.status}")
                continue
            if ref.status != "ok":
                continue
            if ref.cycles != fzd.cycles:
                divergences.append(f"{where}: cycles {ref.cycles} vs {fzd.cycles}")
            if ref.detections != fzd.detections:
                divergences.append(f"{where}: detections differ")
            for name in ref.memory:
                if not np.array_equal(
                        ref.memory[name].view(np.uint8),
                        fzd.memory[name].view(np.uint8)):
                    divergences.append(f"{where}: memory {name!r} differs")

    suite_runs = 0
    suite_kernels = ["FWT", "MM"] if quick else sorted(SMALL_SUITE)
    for abbrev in suite_kernels:
        for variant in ("original", "intra+lds", "intra-lds", "inter"):
            def run_once(on: bool):
                with fused.fusion(on):
                    b = make_benchmark(abbrev, "small")
                    compiled = b.compile(variant)
                    return b.run(Session(), compiled)

            ref, fzd = run_once(False), run_once(True)
            suite_runs += 1
            where = f"suite/{abbrev}/{variant}"
            if ref.cycles != fzd.cycles:
                divergences.append(f"{where}: cycles differ")
            for name in ref.outputs:
                if not np.array_equal(ref.outputs[name], fzd.outputs[name]):
                    divergences.append(f"{where}: output {name!r} differs")
            if not _same_counters(ref.merged_counters(),
                                  fzd.merged_counters()):
                divergences.append(f"{where}: counters differ")

    return {
        "corpus_configs": corpus_runs,
        "suite_configs": suite_runs,
        "divergences": divergences,
        "bitwise_identical": not divergences,
    }


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

_SECTION_FNS = {
    "interp": bench_interp,
    "vector": bench_vector,
    "campaign": bench_campaign,
    "faults": bench_faults,
    "compile": bench_compile,
    "equivalence": bench_equivalence,
}


def run_bench(quick: bool = False,
              only: Optional[List[str]] = None) -> Dict:
    """Run the selected sections and assemble the report."""
    names = [s for s in SECTIONS if not only or s in only]
    report = {
        "schema": SCHEMA,
        "bench": BENCH_ID,
        "quick": quick,
        "python": sys.version.split()[0],
        "sections": {},
    }
    for name in names:
        t0 = time.perf_counter()
        report["sections"][name] = _SECTION_FNS[name](quick=quick)
        report["sections"][name]["wall_s"] = round(
            time.perf_counter() - t0, 2)
    report["correct"] = report_correct(report)
    return report


def report_correct(report: Dict) -> bool:
    """The CI gate: every correctness cross-check in the report holds."""
    sections = report.get("sections", {})
    eq = sections.get("equivalence")
    if eq is not None and not eq.get("bitwise_identical"):
        return False
    interp = sections.get("interp")
    if interp is not None and not interp.get("bitwise_identical"):
        return False
    vec = sections.get("vector")
    if vec is not None and not vec.get("bitwise_identical"):
        return False
    camp = sections.get("campaign")
    if camp is not None and not camp.get("outcomes_identical"):
        return False
    flt = sections.get("faults")
    if flt is not None and not flt.get("outcomes_identical"):
        return False
    return True


def format_report(report: Dict) -> str:
    lines = [f"repro.bench (BENCH_{report['bench']}, "
             f"{'quick' if report['quick'] else 'full'})"]
    s = report["sections"]
    if "interp" in s:
        i = s["interp"]
        lines.append(
            f"  interp      {i['reference_cycles_per_sec']:>12,} -> "
            f"{i['fused_cycles_per_sec']:>12,} sim cycles/s   "
            f"{i['speedup']:.2f}x (target {i['target_speedup']}x)  "
            f"bitwise={'ok' if i['bitwise_identical'] else 'DIVERGED'}")
    if "vector" in s:
        v = s["vector"]
        lines.append(
            f"  vector      {v['fused_cycles_per_sec']:>12,} -> "
            f"{v['vectorized_cycles_per_sec']:>12,} sim cycles/s   "
            f"{v['speedup']:.2f}x (target {v['target_speedup']}x)  "
            f"bitwise={'ok' if v['bitwise_identical'] else 'DIVERGED'}")
    if "campaign" in s:
        c = s["campaign"]
        lines.append(
            f"  campaign    {c['baseline_trials_per_sec']:>12.2f} -> "
            f"{c['cached_trials_per_sec']:>12.2f} trials/s       "
            f"{c['speedup']:.2f}x (target {c['target_speedup']}x)  "
            f"outcomes={'ok' if c['outcomes_identical'] else 'DIVERGED'}")
    if "faults" in s:
        f = s["faults"]
        lines.append(
            f"  faults      {f['reference_trials_per_sec']:>12.2f} -> "
            f"{f['window_trials_per_sec']:>12.2f} trials/s       "
            f"{f['speedup_vs_bench6']:.2f}x vs BENCH_6 "
            f"(target {f['target_speedup']}x)  "
            f"outcomes={'ok' if f['outcomes_identical'] else 'DIVERGED'}  "
            f"elided={f['elided']}/{f['trials']}")
    if "compile" in s:
        c = s["compile"]
        lines.append(
            f"  compile     {c['cold_ms']:>10.1f}ms cold -> "
            f"{c['warm_ms']:.3f}ms warm   {c['speedup']:.0f}x")
    if "equivalence" in s:
        e = s["equivalence"]
        status = "bitwise identical" if e["bitwise_identical"] else (
            f"{len(e['divergences'])} DIVERGENCES")
        lines.append(
            f"  equivalence {e['corpus_configs']} corpus + "
            f"{e['suite_configs']} suite configs: {status}")
        for d in e["divergences"][:20]:
            lines.append(f"    ! {d}")
    lines.append(f"  correct: {report['correct']}")
    return "\n".join(lines)


def write_report(report: Dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
