"""CLI: ``python -m repro.bench`` — run the perf microbenchmarks.

Writes ``BENCH_7.json`` (override with ``--out``) and prints a summary.
Exit status is non-zero only on a *correctness* divergence (fused or
vectorized vs reference interpreter, cached vs recompiled campaign
outcomes); the speedup numbers are recorded, never gated, so CI stays
deterministic.
"""

from __future__ import annotations

import argparse
import sys

from . import SECTIONS, format_report, run_bench, write_report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Hot-path microbenchmarks (interpreter fusion, "
                    "compile cache, campaign throughput).",
    )
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads for CI smoke runs")
    parser.add_argument("--only", action="append", choices=SECTIONS,
                        help="run only this section (repeatable)")
    parser.add_argument("--out", default="BENCH_7.json",
                        help="report path (default: %(default)s)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the text summary")
    args = parser.parse_args(argv)

    report = run_bench(quick=args.quick, only=args.only)
    write_report(report, args.out)
    if not args.quiet:
        print(format_report(report))
        print(f"wrote {args.out}")
    return 0 if report["correct"] else 1


if __name__ == "__main__":
    sys.exit(main())
