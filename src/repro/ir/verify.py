"""IR structural verifier.

Run after construction and after every compiler pass; transformation bugs
surface here instead of deep inside the simulator.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from .core import (
    AtomicGlobal,
    Cmp,
    If,
    Instr,
    Kernel,
    LoadGlobal,
    LoadLocal,
    LoadParam,
    PredOp,
    Select,
    Stmt,
    StoreGlobal,
    StoreLocal,
    While,
)
from .types import DType


class VerificationError(Exception):
    """Raised when a kernel fails structural verification.

    ``errors`` holds every individual failure (the message shows only a
    prefix of them, plus the total count).
    """

    def __init__(self, message: str, errors: Optional[Sequence[str]] = None):
        super().__init__(message)
        self.errors: List[str] = list(errors) if errors is not None else []


def verify_kernel(kernel: Kernel) -> None:
    """Check structural invariants; raise :class:`VerificationError`.

    Invariants checked:

    * every register read has a dominating write (conservatively: some
      earlier write in program order at an enclosing-or-earlier position);
    * parameter and LDS references point at objects declared on the kernel;
    * predicate registers only feed control flow, selects and pred-ops;
    * cmp destinations are predicates; memory value operands match buffer
      element types.
    """
    checker = _Checker(kernel)
    checker.check_body(kernel.body, set())
    if checker.errors:
        n = len(checker.errors)
        shown = "; ".join(checker.errors[:10])
        if n > 10:
            shown += f"; ... ({n - 10} more)"
        raise VerificationError(
            f"kernel {kernel.name!r}: {n} error(s): {shown}",
            errors=checker.errors,
        )


class _Checker:
    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.errors: List[str] = []
        self.param_set = set(id(p) for p in kernel.params)
        self.local_set = set(id(a) for a in kernel.locals)

    def _err(self, msg: str) -> None:
        self.errors.append(msg)

    def check_body(self, body: Sequence[Stmt], defined: Set[int]) -> Set[int]:
        """Walk a statement list, returning the updated defined-register set."""
        for stmt in body:
            if isinstance(stmt, If):
                self._check_read(stmt.cond, defined, "if condition")
                if stmt.cond.dtype is not DType.PRED:
                    self._err(f"if condition {stmt.cond!r} is not a predicate")
                # Writes in either arm may or may not happen; treat them as
                # defining (non-SSA IR relies on programmer discipline for
                # conditional initialization, as C does).
                then_defs = self.check_body(stmt.then_body, set(defined))
                else_defs = self.check_body(stmt.else_body, set(defined))
                defined |= then_defs | else_defs
            elif isinstance(stmt, While):
                loop_defs = self.check_body(stmt.cond_block, set(defined))
                self._check_read(stmt.cond, loop_defs, "while condition")
                if stmt.cond.dtype is not DType.PRED:
                    self._err(f"while condition {stmt.cond!r} is not a predicate")
                body_defs = self.check_body(stmt.body, set(loop_defs))
                defined |= loop_defs | body_defs
            else:
                self.check_instr(stmt, defined)
                for dst in stmt.dests():
                    defined.add(id(dst))
        return defined

    def _check_read(self, reg, defined: Set[int], where: str) -> None:
        if id(reg) not in defined:
            self._err(f"{where} reads undefined register {reg!r}")

    def check_instr(self, instr: Instr, defined: Set[int]) -> None:
        for src in instr.sources():
            self._check_read(src, defined, f"{instr!r}")
        if isinstance(instr, LoadParam):
            if id(instr.param) not in self.param_set:
                self._err(f"{instr!r} references undeclared parameter")
        elif isinstance(instr, (LoadGlobal, StoreGlobal, AtomicGlobal)):
            if id(instr.buf) not in self.param_set:
                self._err(f"{instr!r} references undeclared buffer")
        elif isinstance(instr, (LoadLocal, StoreLocal)):
            if id(instr.lds) not in self.local_set:
                self._err(f"{instr!r} references undeclared LDS allocation")
        if isinstance(instr, Cmp) and instr.dst.dtype is not DType.PRED:
            self._err(f"cmp destination {instr.dst!r} is not a predicate")
        if isinstance(instr, PredOp):
            for src in instr.sources():
                if src.dtype is not DType.PRED:
                    self._err(f"pred-op source {src!r} is not a predicate")
        if isinstance(instr, Select) and instr.pred.dtype is not DType.PRED:
            self._err(f"select predicate {instr.pred!r} is not a predicate")
        if isinstance(instr, StoreGlobal) and instr.value.dtype != instr.buf.dtype:
            self._err(
                f"store value type {instr.value.dtype} != buffer "
                f"{instr.buf.name} type {instr.buf.dtype}"
            )
        if isinstance(instr, StoreLocal) and instr.value.dtype != instr.lds.dtype:
            self._err(
                f"local store value type {instr.value.dtype} != LDS "
                f"{instr.lds.name} type {instr.lds.dtype}"
            )
