"""Core kernel IR data structures.

A :class:`Kernel` is a named list of parameters, local (LDS) allocations,
and a body of statements.  Statements are either straight-line
instructions or structured control flow (:class:`If`, :class:`While`).
Virtual registers are *not* SSA: a register may be re-assigned, which
keeps loop-carried values simple for both the interpreter and the RMT
transformation passes.

The structured form mirrors what the paper's pass sees at the LLVM layer
after the OpenCL frontend: explicit work-item ID intrinsics, address-space
separated loads/stores, work-group barriers, and global atomics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .types import DType

# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------


class VReg:
    """A virtual register holding one 32-bit value per work-item lane."""

    __slots__ = ("name", "dtype")

    def __init__(self, name: str, dtype: DType):
        self.name = name
        self.dtype = dtype

    def __repr__(self) -> str:
        return f"%{self.name}:{self.dtype.value}"


@dataclass(frozen=True)
class BufferParam:
    """A kernel parameter bound to a global-memory buffer."""

    name: str
    dtype: DType

    def __repr__(self) -> str:
        return f"global {self.dtype.value}* {self.name}"


@dataclass(frozen=True)
class ScalarParam:
    """A kernel parameter bound to a single host-provided scalar."""

    name: str
    dtype: DType

    def __repr__(self) -> str:
        return f"{self.dtype.value} {self.name}"


Param = Union[BufferParam, ScalarParam]


@dataclass(frozen=True)
class LocalAlloc:
    """A named LDS allocation, sized in elements per work-group."""

    name: str
    dtype: DType
    nelems: int

    @property
    def nbytes(self) -> int:
        return self.nelems * self.dtype.nbytes

    def __repr__(self) -> str:
        return f"local {self.dtype.value} {self.name}[{self.nelems}]"


# ---------------------------------------------------------------------------
# Opcodes
# ---------------------------------------------------------------------------

#: Binary ALU opcodes.  Division/remainder follow C semantics per dtype.
BINARY_OPS = frozenset(
    {
        "add", "sub", "mul", "div", "rem",
        "min", "max",
        "and", "or", "xor", "shl", "shr", "ashr",
        "pow",
    }
)

#: Unary ALU opcodes.  ``f2i``/``i2f``/etc. convert; ``bitcast_*`` reinterpret.
UNARY_OPS = frozenset(
    {
        "neg", "not", "abs",
        "sqrt", "rsqrt", "exp", "log", "sin", "cos", "floor",
        "f2i", "f2u", "i2f", "u2f",
        "bitcast_u32", "bitcast_i32", "bitcast_f32",
        "mov",
    }
)

#: Transcendental opcodes execute on the quarter-rate VALU pipe.
TRANSCENDENTAL_OPS = frozenset({"sqrt", "rsqrt", "exp", "log", "sin", "cos", "pow"})

CMP_OPS = frozenset({"eq", "ne", "lt", "le", "gt", "ge"})

#: Atomic opcodes supported on global memory.
ATOMIC_OPS = frozenset({"add", "xchg", "cmpxchg", "max", "or"})

#: Work-item / launch geometry intrinsics (OpenCL get_* builtins).
ID_KINDS = frozenset(
    {
        "global_id", "local_id", "group_id",
        "global_size", "local_size", "num_groups",
    }
)


# ---------------------------------------------------------------------------
# Instructions
# ---------------------------------------------------------------------------


class Instr:
    """Base class for straight-line instructions."""

    __slots__ = ()

    def dests(self) -> Tuple[VReg, ...]:
        """Registers written by this instruction."""
        return ()

    def sources(self) -> Tuple[VReg, ...]:
        """Registers read by this instruction."""
        return ()

    def clone(self, regmap: Dict[VReg, VReg]) -> "Instr":
        """Return a copy with registers substituted through ``regmap``."""
        raise NotImplementedError


def _m(regmap: Dict[VReg, VReg], reg: VReg) -> VReg:
    return regmap.get(reg, reg)


class Const(Instr):
    """``dst = immediate`` (broadcast to all lanes)."""

    __slots__ = ("dst", "value")

    def __init__(self, dst: VReg, value):
        self.dst = dst
        self.value = value

    def dests(self):
        return (self.dst,)

    def clone(self, regmap):
        return Const(_m(regmap, self.dst), self.value)

    def __repr__(self):
        return f"{self.dst!r} = const {self.value}"


class LoadParam(Instr):
    """``dst = scalar kernel parameter`` (uniform across the NDRange)."""

    __slots__ = ("dst", "param")

    def __init__(self, dst: VReg, param: ScalarParam):
        self.dst = dst
        self.param = param

    def dests(self):
        return (self.dst,)

    def clone(self, regmap):
        return LoadParam(_m(regmap, self.dst), self.param)

    def __repr__(self):
        return f"{self.dst!r} = param {self.param.name}"


class SpecialId(Instr):
    """``dst = get_<kind>(dim)`` — the OpenCL ID intrinsics.

    These are the values the RMT passes rewrite to create redundant
    work-item pairs (Section 6.2 / 7.2 of the paper).
    """

    __slots__ = ("dst", "kind", "dim")

    def __init__(self, dst: VReg, kind: str, dim: int = 0):
        if kind not in ID_KINDS:
            raise ValueError(f"unknown id kind {kind!r}")
        self.dst = dst
        self.kind = kind
        self.dim = dim

    def dests(self):
        return (self.dst,)

    def clone(self, regmap):
        return SpecialId(_m(regmap, self.dst), self.kind, self.dim)

    def __repr__(self):
        return f"{self.dst!r} = get_{self.kind}({self.dim})"


class Alu(Instr):
    """Unary or binary vector ALU operation."""

    __slots__ = ("op", "dst", "a", "b")

    def __init__(self, op: str, dst: VReg, a: VReg, b: Optional[VReg] = None):
        if b is None and op not in UNARY_OPS:
            raise ValueError(f"{op!r} is not a unary op")
        if b is not None and op not in BINARY_OPS:
            raise ValueError(f"{op!r} is not a binary op")
        self.op = op
        self.dst = dst
        self.a = a
        self.b = b

    def dests(self):
        return (self.dst,)

    def sources(self):
        return (self.a,) if self.b is None else (self.a, self.b)

    def clone(self, regmap):
        return Alu(
            self.op,
            _m(regmap, self.dst),
            _m(regmap, self.a),
            None if self.b is None else _m(regmap, self.b),
        )

    def __repr__(self):
        if self.b is None:
            return f"{self.dst!r} = {self.op} {self.a!r}"
        return f"{self.dst!r} = {self.op} {self.a!r}, {self.b!r}"


class Cmp(Instr):
    """``dst(pred) = a <op> b``."""

    __slots__ = ("op", "dst", "a", "b")

    def __init__(self, op: str, dst: VReg, a: VReg, b: VReg):
        if op not in CMP_OPS:
            raise ValueError(f"unknown cmp op {op!r}")
        self.op = op
        self.dst = dst
        self.a = a
        self.b = b

    def dests(self):
        return (self.dst,)

    def sources(self):
        return (self.a, self.b)

    def clone(self, regmap):
        return Cmp(self.op, _m(regmap, self.dst), _m(regmap, self.a), _m(regmap, self.b))

    def __repr__(self):
        return f"{self.dst!r} = cmp.{self.op} {self.a!r}, {self.b!r}"


class PredOp(Instr):
    """Logical operation on predicate registers (``and``/``or``/``not``)."""

    __slots__ = ("op", "dst", "a", "b")

    def __init__(self, op: str, dst: VReg, a: VReg, b: Optional[VReg] = None):
        if op not in ("and", "or", "not", "xor"):
            raise ValueError(f"unknown pred op {op!r}")
        self.op = op
        self.dst = dst
        self.a = a
        self.b = b

    def dests(self):
        return (self.dst,)

    def sources(self):
        return (self.a,) if self.b is None else (self.a, self.b)

    def clone(self, regmap):
        return PredOp(
            self.op,
            _m(regmap, self.dst),
            _m(regmap, self.a),
            None if self.b is None else _m(regmap, self.b),
        )

    def __repr__(self):
        if self.b is None:
            return f"{self.dst!r} = p{self.op} {self.a!r}"
        return f"{self.dst!r} = p{self.op} {self.a!r}, {self.b!r}"


class Select(Instr):
    """``dst = pred ? a : b`` per lane."""

    __slots__ = ("dst", "pred", "a", "b")

    def __init__(self, dst: VReg, pred: VReg, a: VReg, b: VReg):
        self.dst = dst
        self.pred = pred
        self.a = a
        self.b = b

    def dests(self):
        return (self.dst,)

    def sources(self):
        return (self.pred, self.a, self.b)

    def clone(self, regmap):
        return Select(
            _m(regmap, self.dst), _m(regmap, self.pred),
            _m(regmap, self.a), _m(regmap, self.b),
        )

    def __repr__(self):
        return f"{self.dst!r} = select {self.pred!r}, {self.a!r}, {self.b!r}"


class LoadGlobal(Instr):
    """``dst = buf[index]`` from global memory (element index)."""

    __slots__ = ("dst", "buf", "index")

    def __init__(self, dst: VReg, buf: BufferParam, index: VReg):
        self.dst = dst
        self.buf = buf
        self.index = index

    def dests(self):
        return (self.dst,)

    def sources(self):
        return (self.index,)

    def clone(self, regmap):
        return LoadGlobal(_m(regmap, self.dst), self.buf, _m(regmap, self.index))

    def __repr__(self):
        return f"{self.dst!r} = load_global {self.buf.name}[{self.index!r}]"


class StoreGlobal(Instr):
    """``buf[index] = value`` to global memory.

    Global stores are the canonical SoR exit point: every RMT flavor
    inserts an output comparison in front of them.
    """

    __slots__ = ("buf", "index", "value")

    def __init__(self, buf: BufferParam, index: VReg, value: VReg):
        self.buf = buf
        self.index = index
        self.value = value

    def sources(self):
        return (self.index, self.value)

    def clone(self, regmap):
        return StoreGlobal(self.buf, _m(regmap, self.index), _m(regmap, self.value))

    def __repr__(self):
        return f"store_global {self.buf.name}[{self.index!r}] = {self.value!r}"


class LoadLocal(Instr):
    """``dst = lds[index]`` from the work-group's LDS allocation."""

    __slots__ = ("dst", "lds", "index")

    def __init__(self, dst: VReg, lds: LocalAlloc, index: VReg):
        self.dst = dst
        self.lds = lds
        self.index = index

    def dests(self):
        return (self.dst,)

    def sources(self):
        return (self.index,)

    def clone(self, regmap):
        return LoadLocal(_m(regmap, self.dst), self.lds, _m(regmap, self.index))

    def __repr__(self):
        return f"{self.dst!r} = load_local {self.lds.name}[{self.index!r}]"


class StoreLocal(Instr):
    """``lds[index] = value``.

    Under Intra-Group−LDS these are SoR exit points too (the LDS is shared
    between redundant work-items), so the pass inserts output comparisons.
    """

    __slots__ = ("lds", "index", "value")

    def __init__(self, lds: LocalAlloc, index: VReg, value: VReg):
        self.lds = lds
        self.index = index
        self.value = value

    def sources(self):
        return (self.index, self.value)

    def clone(self, regmap):
        return StoreLocal(self.lds, _m(regmap, self.index), _m(regmap, self.value))

    def __repr__(self):
        return f"store_local {self.lds.name}[{self.index!r}] = {self.value!r}"


class AtomicGlobal(Instr):
    """Atomic read-modify-write on global memory, performed at the L2.

    ``dst`` receives the old value.  ``atomic add 0`` is the paper's
    trick for an L2-visible (coherent) read on the write-through L1
    hierarchy.  ``cmpxchg`` additionally takes ``compare``.
    """

    __slots__ = ("op", "dst", "buf", "index", "value", "compare")

    def __init__(
        self,
        op: str,
        dst: Optional[VReg],
        buf: BufferParam,
        index: VReg,
        value: VReg,
        compare: Optional[VReg] = None,
    ):
        if op not in ATOMIC_OPS:
            raise ValueError(f"unknown atomic op {op!r}")
        if op == "cmpxchg" and compare is None:
            raise ValueError("cmpxchg requires a compare operand")
        self.op = op
        self.dst = dst
        self.buf = buf
        self.index = index
        self.value = value
        self.compare = compare

    def dests(self):
        return () if self.dst is None else (self.dst,)

    def sources(self):
        srcs = [self.index, self.value]
        if self.compare is not None:
            srcs.append(self.compare)
        return tuple(srcs)

    def clone(self, regmap):
        return AtomicGlobal(
            self.op,
            None if self.dst is None else _m(regmap, self.dst),
            self.buf,
            _m(regmap, self.index),
            _m(regmap, self.value),
            None if self.compare is None else _m(regmap, self.compare),
        )

    def __repr__(self):
        dst = f"{self.dst!r} = " if self.dst is not None else ""
        extra = f", cmp={self.compare!r}" if self.compare is not None else ""
        return (
            f"{dst}atomic_{self.op} {self.buf.name}[{self.index!r}], "
            f"{self.value!r}{extra}"
        )


class Barrier(Instr):
    """Work-group barrier (OpenCL ``barrier(CLK_LOCAL_MEM_FENCE)``)."""

    __slots__ = ()

    def clone(self, regmap):
        return Barrier()

    def __repr__(self):
        return "barrier"


class Swizzle(Instr):
    """Cross-lane exchange within a wavefront via the VRF (Section 8).

    Models the GCN ``ds_swizzle_b32`` offset mode: the value observed by
    lane ``i`` comes from lane ``(i & and_mask | or_mask) ^ xor_mask``.
    The paper's Figure 8 pattern (odd-lane values duplicated into even
    lanes) is ``and_mask=~0, or_mask=1, xor_mask=0``.
    """

    __slots__ = ("dst", "src", "and_mask", "or_mask", "xor_mask")

    def __init__(self, dst: VReg, src: VReg, and_mask: int, or_mask: int, xor_mask: int):
        self.dst = dst
        self.src = src
        self.and_mask = and_mask
        self.or_mask = or_mask
        self.xor_mask = xor_mask

    def dests(self):
        return (self.dst,)

    def sources(self):
        return (self.src,)

    def clone(self, regmap):
        return Swizzle(
            _m(regmap, self.dst), _m(regmap, self.src),
            self.and_mask, self.or_mask, self.xor_mask,
        )

    def __repr__(self):
        return (
            f"{self.dst!r} = swizzle {self.src!r} "
            f"(and={self.and_mask:#x}, or={self.or_mask:#x}, xor={self.xor_mask:#x})"
        )


class ReportError(Instr):
    """Raise the RMT detection flag for every active lane.

    Inserted by the RMT passes on output-comparison mismatch; the
    simulator records a detection event (and fault-injection campaigns
    classify the run as *detected*).
    """

    __slots__ = ("code",)

    def __init__(self, code: int = 1):
        self.code = code

    def clone(self, regmap):
        return ReportError(self.code)

    def __repr__(self):
        return f"report_error {self.code}"


# ---------------------------------------------------------------------------
# Structured control flow
# ---------------------------------------------------------------------------


class If:
    """Structured two-sided branch predicated on a register."""

    __slots__ = ("cond", "then_body", "else_body")

    def __init__(self, cond: VReg, then_body: List["Stmt"], else_body: Optional[List["Stmt"]] = None):
        self.cond = cond
        self.then_body = then_body
        self.else_body = else_body or []

    def clone(self, regmap):
        return If(
            _m(regmap, self.cond),
            [clone_stmt(s, regmap) for s in self.then_body],
            [clone_stmt(s, regmap) for s in self.else_body],
        )

    def __repr__(self):
        return f"if {self.cond!r} then[{len(self.then_body)}] else[{len(self.else_body)}]"


class While:
    """Structured loop.

    Each iteration evaluates ``cond_block`` under the current mask, then
    lanes where ``cond`` is true execute ``body``; lanes where it is false
    leave the loop.  Iteration repeats until no lane remains active —
    the standard SIMT divergence model.
    """

    __slots__ = ("cond_block", "cond", "body")

    def __init__(self, cond_block: List[Instr], cond: VReg, body: List["Stmt"]):
        self.cond_block = cond_block
        self.cond = cond
        self.body = body

    def clone(self, regmap):
        return While(
            [clone_stmt(s, regmap) for s in self.cond_block],
            _m(regmap, self.cond),
            [clone_stmt(s, regmap) for s in self.body],
        )

    def __repr__(self):
        return f"while {self.cond!r} cond[{len(self.cond_block)}] body[{len(self.body)}]"


Stmt = Union[Instr, If, While]


def clone_stmt(stmt: Stmt, regmap: Dict[VReg, VReg]) -> Stmt:
    """Deep-copy a statement, substituting registers through ``regmap``."""
    return stmt.clone(regmap)


def walk_instrs(body: Sequence[Stmt]) -> Iterator[Instr]:
    """Yield every instruction in a statement tree, in program order."""
    for stmt in body:
        if isinstance(stmt, If):
            yield from walk_instrs(stmt.then_body)
            yield from walk_instrs(stmt.else_body)
        elif isinstance(stmt, While):
            yield from walk_instrs(stmt.cond_block)
            yield from walk_instrs(stmt.body)
        else:
            yield stmt


def walk_stmts(body: Sequence[Stmt]) -> Iterator[Stmt]:
    """Yield every statement (including nested If/While) in program order."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_stmts(stmt.then_body)
            yield from walk_stmts(stmt.else_body)
        elif isinstance(stmt, While):
            yield from walk_stmts(stmt.cond_block)
            yield from walk_stmts(stmt.body)


# ---------------------------------------------------------------------------
# Kernel
# ---------------------------------------------------------------------------


@dataclass
class Kernel:
    """A compiled device kernel: parameters, LDS allocations, and a body."""

    name: str
    params: List[Param] = field(default_factory=list)
    locals: List[LocalAlloc] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    #: Free-form metadata; RMT passes record their configuration here so
    #: the runtime launch adapter knows how to adjust the NDRange and which
    #: hidden parameters to bind.
    metadata: Dict[str, object] = field(default_factory=dict)

    _name_counter: itertools.count = field(
        default_factory=itertools.count, repr=False, compare=False
    )

    def new_reg(self, dtype: DType, hint: str = "t") -> VReg:
        """Allocate a fresh uniquely-named virtual register."""
        return VReg(f"{hint}{next(self._name_counter)}", dtype)

    def buffer(self, name: str) -> BufferParam:
        """Look up a buffer parameter by name."""
        for p in self.params:
            if isinstance(p, BufferParam) and p.name == name:
                return p
        raise KeyError(f"no buffer parameter named {name!r} in kernel {self.name!r}")

    def scalar(self, name: str) -> ScalarParam:
        """Look up a scalar parameter by name."""
        for p in self.params:
            if isinstance(p, ScalarParam) and p.name == name:
                return p
        raise KeyError(f"no scalar parameter named {name!r} in kernel {self.name!r}")

    def local(self, name: str) -> LocalAlloc:
        """Look up an LDS allocation by name."""
        for alloc in self.locals:
            if alloc.name == name:
                return alloc
        raise KeyError(f"no local allocation named {name!r} in kernel {self.name!r}")

    def add_local(self, name: str, dtype: DType, nelems: int) -> LocalAlloc:
        """Add (and return) a new LDS allocation."""
        if any(a.name == name for a in self.locals):
            raise ValueError(f"duplicate local allocation {name!r}")
        alloc = LocalAlloc(name, dtype, nelems)
        self.locals.append(alloc)
        return alloc

    def lds_bytes(self) -> int:
        """Total LDS footprint per work-group in bytes."""
        return sum(a.nbytes for a in self.locals)

    def all_regs(self) -> List[VReg]:
        """Every distinct virtual register referenced by the body."""
        seen: Dict[int, VReg] = {}
        for instr in walk_instrs(self.body):
            for reg in (*instr.dests(), *instr.sources()):
                seen.setdefault(id(reg), reg)
        for stmt in walk_stmts(self.body):
            if isinstance(stmt, If):
                seen.setdefault(id(stmt.cond), stmt.cond)
            elif isinstance(stmt, While):
                seen.setdefault(id(stmt.cond), stmt.cond)
        return list(seen.values())
