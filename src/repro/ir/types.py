"""Scalar types used by the kernel IR.

The IR is deliberately small: 32-bit integer, unsigned integer, and float
lanes plus a boolean predicate type for comparison results and control
flow.  These are the types the paper's RMT transformation has to reason
about (32-bit register lanes on GCN, bit-exact output comparison through
``u32`` reinterpretation).
"""

from __future__ import annotations

import enum

import numpy as np


class DType(enum.Enum):
    """Lane element type of a virtual register or memory buffer."""

    I32 = "i32"
    U32 = "u32"
    F32 = "f32"
    PRED = "pred"

    @property
    def np_dtype(self) -> np.dtype:
        """numpy dtype used to hold lanes of this type."""
        return _NP_DTYPES[self]

    @property
    def nbytes(self) -> int:
        """Size of one lane element in bytes (predicates are register-only)."""
        return 1 if self is DType.PRED else 4

    @property
    def is_float(self) -> bool:
        return self is DType.F32

    @property
    def is_integer(self) -> bool:
        return self in (DType.I32, DType.U32)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_NP_DTYPES = {
    DType.I32: np.dtype(np.int32),
    DType.U32: np.dtype(np.uint32),
    DType.F32: np.dtype(np.float32),
    DType.PRED: np.dtype(np.bool_),
}

#: Types that may live in memory buffers (predicates may not).
MEMORY_DTYPES = (DType.I32, DType.U32, DType.F32)


def bitcast_to_u32(values: np.ndarray) -> np.ndarray:
    """Reinterpret a lane vector as raw 32-bit unsigned bit patterns.

    Output comparison in the RMT transformations is bit-exact: float and
    integer store operands are compared as raw bits, exactly like comparing
    32-bit register lanes on hardware.
    """
    if values.dtype == np.bool_:
        return values.astype(np.uint32)
    return values.view(np.uint32)


def bitcast_from_u32(values: np.ndarray, dtype: DType) -> np.ndarray:
    """Inverse of :func:`bitcast_to_u32` for a given destination type."""
    if dtype is DType.PRED:
        return values != 0
    return values.view(dtype.np_dtype)
