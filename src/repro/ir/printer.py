"""Textual dump of kernels, for debugging and golden tests."""

from __future__ import annotations

from typing import List, Sequence

from .core import If, Kernel, Stmt, While


def format_kernel(kernel: Kernel) -> str:
    """Render a kernel as indented pseudo-assembly text."""
    lines: List[str] = []
    params = ", ".join(repr(p) for p in kernel.params)
    lines.append(f"kernel {kernel.name}({params}) {{")
    for alloc in kernel.locals:
        lines.append(f"  {alloc!r}")
    _format_body(kernel.body, lines, indent=1)
    lines.append("}")
    return "\n".join(lines)


def _format_body(body: Sequence[Stmt], lines: List[str], indent: int) -> None:
    pad = "  " * indent
    for stmt in body:
        if isinstance(stmt, If):
            lines.append(f"{pad}if {stmt.cond!r} {{")
            _format_body(stmt.then_body, lines, indent + 1)
            if stmt.else_body:
                lines.append(f"{pad}}} else {{")
                _format_body(stmt.else_body, lines, indent + 1)
            lines.append(f"{pad}}}")
        elif isinstance(stmt, While):
            lines.append(f"{pad}while {{")
            _format_body(stmt.cond_block, lines, indent + 1)
            lines.append(f"{pad}}} check {stmt.cond!r} {{")
            _format_body(stmt.body, lines, indent + 1)
            lines.append(f"{pad}}}")
        else:
            lines.append(f"{pad}{stmt!r}")
