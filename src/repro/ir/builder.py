"""Fluent builder DSL for authoring kernels in the IR.

The builder plays the role of the OpenCL C frontend in the paper's
toolchain: benchmark kernels are written against it, producing the IR
that the RMT compiler passes then transform.

Example::

    b = KernelBuilder("vec_add")
    a = b.buffer_param("a", DType.F32)
    c = b.buffer_param("c", DType.F32)
    gid = b.global_id(0)
    b.store(c, gid, b.add(b.load(a, gid), 1.0))
    kernel = b.finish()
"""

from __future__ import annotations

import contextlib
from typing import List, Optional, Union

import numpy as np

from .core import (
    Alu,
    AtomicGlobal,
    Barrier,
    BufferParam,
    Cmp,
    Const,
    If,
    Instr,
    Kernel,
    LoadGlobal,
    LoadLocal,
    LoadParam,
    LocalAlloc,
    PredOp,
    ReportError,
    ScalarParam,
    Select,
    SpecialId,
    Stmt,
    StoreGlobal,
    StoreLocal,
    Swizzle,
    VReg,
    While,
)
from .types import DType

Operand = Union[VReg, int, float, bool]


class KernelBuilder:
    """Incrementally constructs a :class:`~repro.ir.core.Kernel`."""

    def __init__(self, name: str):
        self._kernel = Kernel(name)
        self._stack: List[List[Stmt]] = [self._kernel.body]
        self._finished = False
        self._protected: List[tuple] = []

    @classmethod
    def attach(cls, kernel: Kernel, target: List[Stmt]) -> "KernelBuilder":
        """Builder emitting into an existing kernel's statement list.

        Used by compiler passes (notably the RMT transformations) to
        synthesize IR snippets — prologues, output-comparison sequences,
        lock handshakes — sharing the kernel's register namespace.
        """
        self = cls.__new__(cls)
        self._kernel = kernel
        self._stack = [target]
        self._finished = False
        self._protected = []
        return self

    # -- declarations -----------------------------------------------------

    def buffer_param(self, name: str, dtype: DType) -> BufferParam:
        """Declare a global-memory buffer parameter."""
        param = BufferParam(name, dtype)
        self._kernel.params.append(param)
        return param

    def scalar_param(self, name: str, dtype: DType) -> VReg:
        """Declare a scalar parameter and return a register holding it."""
        param = ScalarParam(name, dtype)
        self._kernel.params.append(param)
        dst = self._kernel.new_reg(dtype, hint=name)
        self._emit(LoadParam(dst, param))
        return dst

    def local_alloc(self, name: str, dtype: DType, nelems: int) -> LocalAlloc:
        """Declare an LDS allocation of ``nelems`` elements per group."""
        return self._kernel.add_local(name, dtype, nelems)

    # -- plumbing ----------------------------------------------------------

    @property
    def kernel(self) -> Kernel:
        return self._kernel

    def _emit(self, stmt: Stmt) -> Stmt:
        if self._finished:
            raise RuntimeError("builder already finished")
        self._stack[-1].append(stmt)
        return stmt

    def _reg(self, dtype: DType, hint: str = "t") -> VReg:
        return self._kernel.new_reg(dtype, hint)

    def _coerce(self, value: Operand, dtype: Optional[DType] = None) -> VReg:
        """Materialize Python immediates as Const instructions."""
        if isinstance(value, VReg):
            return value
        if dtype is None:
            if isinstance(value, bool):
                dtype = DType.PRED
            elif isinstance(value, float):
                dtype = DType.F32
            else:
                dtype = DType.I32
        dst = self._reg(dtype, hint="c")
        self._emit(Const(dst, value))
        return dst

    def _pair(self, a: Operand, b: Operand):
        """Coerce a binary-op operand pair, inferring immediate types."""
        if isinstance(a, VReg) and not isinstance(b, VReg):
            return a, self._coerce(b, a.dtype)
        if isinstance(b, VReg) and not isinstance(a, VReg):
            return self._coerce(a, b.dtype), b
        return self._coerce(a), self._coerce(b)

    # -- constants and moves -----------------------------------------------

    def const(self, value, dtype: DType) -> VReg:
        """Materialize an immediate of an explicit type."""
        return self._coerce(value, dtype)

    def var(self, dtype: DType, init: Operand, hint: str = "v") -> VReg:
        """Declare a mutable variable initialised to ``init``.

        Returns a register that may later be re-assigned with :meth:`set`
        (used for loop-carried values).
        """
        dst = self._reg(dtype, hint)
        src = self._coerce(init, dtype)
        self._emit(Alu("mov", dst, src))
        return dst

    def set(self, dst: VReg, value: Operand) -> VReg:
        """Re-assign a variable register."""
        src = self._coerce(value, dst.dtype)
        self._emit(Alu("mov", dst, src))
        return dst

    def mov(self, src: Operand, dtype: Optional[DType] = None) -> VReg:
        """Copy into a fresh register."""
        reg = self._coerce(src, dtype)
        dst = self._reg(reg.dtype)
        self._emit(Alu("mov", dst, reg))
        return dst

    # -- IDs ----------------------------------------------------------------

    def _special(self, kind: str, dim: int) -> VReg:
        dst = self._reg(DType.U32, hint=kind)
        self._emit(SpecialId(dst, kind, dim))
        return dst

    def global_id(self, dim: int = 0) -> VReg:
        return self._special("global_id", dim)

    def local_id(self, dim: int = 0) -> VReg:
        return self._special("local_id", dim)

    def group_id(self, dim: int = 0) -> VReg:
        return self._special("group_id", dim)

    def global_size(self, dim: int = 0) -> VReg:
        return self._special("global_size", dim)

    def local_size(self, dim: int = 0) -> VReg:
        return self._special("local_size", dim)

    def num_groups(self, dim: int = 0) -> VReg:
        return self._special("num_groups", dim)

    # -- ALU -----------------------------------------------------------------

    def _binary(self, op: str, a: Operand, b: Operand, dtype: Optional[DType] = None) -> VReg:
        ra, rb = self._pair(a, b)
        dst = self._reg(dtype or ra.dtype)
        self._emit(Alu(op, dst, ra, rb))
        return dst

    def _unary(self, op: str, a: Operand, dtype: Optional[DType] = None) -> VReg:
        ra = self._coerce(a)
        dst = self._reg(dtype or ra.dtype)
        self._emit(Alu(op, dst, ra))
        return dst

    def add(self, a, b):
        return self._binary("add", a, b)

    def sub(self, a, b):
        return self._binary("sub", a, b)

    def mul(self, a, b):
        return self._binary("mul", a, b)

    def div(self, a, b):
        return self._binary("div", a, b)

    def rem(self, a, b):
        return self._binary("rem", a, b)

    def min(self, a, b):
        return self._binary("min", a, b)

    def max(self, a, b):
        return self._binary("max", a, b)

    def and_(self, a, b):
        return self._binary("and", a, b)

    def or_(self, a, b):
        return self._binary("or", a, b)

    def xor(self, a, b):
        return self._binary("xor", a, b)

    def shl(self, a, b):
        return self._binary("shl", a, b)

    def shr(self, a, b):
        return self._binary("shr", a, b)

    def ashr(self, a, b):
        return self._binary("ashr", a, b)

    def pow(self, a, b):
        return self._binary("pow", a, b)

    def neg(self, a):
        return self._unary("neg", a)

    def abs(self, a):
        return self._unary("abs", a)

    def not_(self, a):
        return self._unary("not", a)

    def sqrt(self, a):
        return self._unary("sqrt", a)

    def rsqrt(self, a):
        return self._unary("rsqrt", a)

    def exp(self, a):
        return self._unary("exp", a)

    def log(self, a):
        return self._unary("log", a)

    def sin(self, a):
        return self._unary("sin", a)

    def cos(self, a):
        return self._unary("cos", a)

    def floor(self, a):
        return self._unary("floor", a)

    def f2i(self, a):
        return self._unary("f2i", a, DType.I32)

    def f2u(self, a):
        return self._unary("f2u", a, DType.U32)

    def i2f(self, a):
        return self._unary("i2f", a, DType.F32)

    def u2f(self, a):
        return self._unary("u2f", a, DType.F32)

    def bitcast(self, a: Operand, dtype: DType) -> VReg:
        """Reinterpret 32-bit lanes as another 32-bit type."""
        op = {DType.U32: "bitcast_u32", DType.I32: "bitcast_i32", DType.F32: "bitcast_f32"}[dtype]
        return self._unary(op, a, dtype)

    def as_u32(self, a: Operand) -> VReg:
        """Convenience bitcast-to-u32 (for address/value comparisons)."""
        reg = self._coerce(a)
        if reg.dtype is DType.U32:
            return reg
        return self.bitcast(reg, DType.U32)

    # -- comparisons and predicates ------------------------------------------

    def _cmp(self, op: str, a: Operand, b: Operand) -> VReg:
        ra, rb = self._pair(a, b)
        dst = self._reg(DType.PRED, hint="p")
        self._emit(Cmp(op, dst, ra, rb))
        return dst

    def eq(self, a, b):
        return self._cmp("eq", a, b)

    def ne(self, a, b):
        return self._cmp("ne", a, b)

    def lt(self, a, b):
        return self._cmp("lt", a, b)

    def le(self, a, b):
        return self._cmp("le", a, b)

    def gt(self, a, b):
        return self._cmp("gt", a, b)

    def ge(self, a, b):
        return self._cmp("ge", a, b)

    def pand(self, a: VReg, b: VReg) -> VReg:
        dst = self._reg(DType.PRED, hint="p")
        self._emit(PredOp("and", dst, a, b))
        return dst

    def por(self, a: VReg, b: VReg) -> VReg:
        dst = self._reg(DType.PRED, hint="p")
        self._emit(PredOp("or", dst, a, b))
        return dst

    def pnot(self, a: VReg) -> VReg:
        dst = self._reg(DType.PRED, hint="p")
        self._emit(PredOp("not", dst, a))
        return dst

    def select(self, pred: VReg, a: Operand, b: Operand) -> VReg:
        ra, rb = self._pair(a, b)
        dst = self._reg(ra.dtype)
        self._emit(Select(dst, pred, ra, rb))
        return dst

    # -- memory ----------------------------------------------------------------

    def load(self, buf: BufferParam, index: Operand) -> VReg:
        idx = self._coerce(index, DType.U32)
        dst = self._reg(buf.dtype, hint="ld")
        self._emit(LoadGlobal(dst, buf, idx))
        return dst

    def store(self, buf: BufferParam, index: Operand, value: Operand) -> None:
        idx = self._coerce(index, DType.U32)
        val = self._coerce(value, buf.dtype)
        self._emit(StoreGlobal(buf, idx, val))

    def load_local(self, lds: LocalAlloc, index: Operand) -> VReg:
        idx = self._coerce(index, DType.U32)
        dst = self._reg(lds.dtype, hint="lld")
        self._emit(LoadLocal(dst, lds, idx))
        return dst

    def store_local(self, lds: LocalAlloc, index: Operand, value: Operand) -> None:
        idx = self._coerce(index, DType.U32)
        val = self._coerce(value, lds.dtype)
        self._emit(StoreLocal(lds, idx, val))

    def atomic(
        self,
        op: str,
        buf: BufferParam,
        index: Operand,
        value: Operand,
        compare: Optional[Operand] = None,
        want_old: bool = True,
    ) -> Optional[VReg]:
        idx = self._coerce(index, DType.U32)
        val = self._coerce(value, buf.dtype)
        cmp_reg = None if compare is None else self._coerce(compare, buf.dtype)
        dst = self._reg(buf.dtype, hint="old") if want_old else None
        self._emit(AtomicGlobal(op, dst, buf, idx, val, cmp_reg))
        return dst

    def barrier(self) -> None:
        self._emit(Barrier())

    def swizzle(self, src: VReg, and_mask: int = ~0, or_mask: int = 0, xor_mask: int = 0) -> VReg:
        dst = self._reg(src.dtype, hint="swz")
        self._emit(Swizzle(dst, src, and_mask, or_mask, xor_mask))
        return dst

    def report_error(self, code: int = 1) -> None:
        self._emit(ReportError(code))

    # -- control flow --------------------------------------------------------

    @contextlib.contextmanager
    def if_(self, cond: VReg):
        """``with b.if_(pred): ...`` — emit a one-sided If."""
        then_body: List[Stmt] = []
        self._stack.append(then_body)
        try:
            yield
        finally:
            self._stack.pop()
        self._emit(If(cond, then_body))

    @contextlib.contextmanager
    def if_else(self, cond: VReg):
        """``with b.if_else(pred) as orelse: ... with orelse: ...``."""
        stmt = If(cond, [], [])

        @contextlib.contextmanager
        def orelse():
            self._stack.append(stmt.else_body)
            try:
                yield
            finally:
                self._stack.pop()

        self._stack.append(stmt.then_body)
        try:
            yield orelse
        finally:
            self._stack.pop()
        self._emit(stmt)

    @contextlib.contextmanager
    def loop(self):
        """General while-loop context.

        Inside the block, call ``loop.break_unless(pred)`` exactly once;
        instructions before it form the condition block, the rest the body::

            with b.loop() as loop:
                c = b.lt(i, n)
                loop.break_unless(c)
                ...
                b.set(i, b.add(i, 1))
        """
        ctx = _LoopContext(self)
        self._stack.append(ctx.cond_block)
        try:
            yield ctx
        finally:
            self._stack.pop()
            if ctx.cond is None:
                raise RuntimeError("loop() block never called break_unless()")
            self._emit(While(ctx.cond_block, ctx.cond, ctx.body))

    @contextlib.contextmanager
    def for_range(self, start: Operand, stop: Operand, step: Operand = 1):
        """Counted loop; yields the (u32) induction variable."""
        i = self.var(DType.U32, start, hint="i")
        stop_reg = self._coerce(stop, DType.U32)
        step_reg = self._coerce(step, DType.U32)
        with self.loop() as lp:
            cond = self.lt(i, stop_reg)
            lp.break_unless(cond)
            yield i
            self.set(i, self.add(i, step_reg))

    @contextlib.contextmanager
    def protect(self, label: str = ""):
        """``with b.protect(): ...`` — mark a selective-RMT protection region.

        Not control flow: the wrapped statements stay in the enclosing
        block (values defined inside remain usable after).  The region —
        a contiguous statement span of the current block, including any
        nested control flow opened inside it — is recorded in
        ``metadata['protect']['regions']`` by :meth:`finish` as a
        structural path plus ``[start, end)`` indices, the form the
        selective RMT pass and the vulnerability analysis consume.
        """
        block = self._stack[-1]
        start = len(block)
        try:
            yield
        finally:
            end = len(block)
            if end > start:
                self._protected.append((block, start, end, label))

    def _resolve_protect_regions(self) -> None:
        if not self._protected:
            return
        # Paths use the same convention as analysis Locs / instr_paths:
        # top level "body", then ".[i]" plus then/else/cond/body arms.
        prefix_of = {id(self._kernel.body): "body"}

        def walk(stmts, prefix: str) -> None:
            for i, stmt in enumerate(stmts):
                at = f"{prefix}.[{i}]"
                if isinstance(stmt, If):
                    prefix_of[id(stmt.then_body)] = f"{at}.then"
                    prefix_of[id(stmt.else_body)] = f"{at}.else"
                    walk(stmt.then_body, f"{at}.then")
                    walk(stmt.else_body, f"{at}.else")
                elif isinstance(stmt, While):
                    prefix_of[id(stmt.cond_block)] = f"{at}.cond"
                    prefix_of[id(stmt.body)] = f"{at}.body"
                    walk(stmt.cond_block, f"{at}.cond")
                    walk(stmt.body, f"{at}.body")

        walk(self._kernel.body, "body")
        regions = []
        for block, start, end, label in self._protected:
            path = prefix_of.get(id(block))
            if path is None:
                raise RuntimeError(
                    "protect() region's block is no longer part of the kernel")
            regions.append({"path": path, "start": start, "end": end,
                            "label": label})
        regions.sort(key=lambda r: (r["path"], r["start"]))
        self._kernel.metadata["protect"] = {"regions": regions}

    def finish(self) -> Kernel:
        """Finalize and return the kernel."""
        if len(self._stack) != 1:
            raise RuntimeError("unbalanced control-flow contexts at finish()")
        self._resolve_protect_regions()
        self._finished = True
        return self._kernel


class _LoopContext:
    """State for an in-progress :meth:`KernelBuilder.loop` block."""

    def __init__(self, builder: KernelBuilder):
        self._builder = builder
        self.cond_block: List[Stmt] = []
        self.body: List[Stmt] = []
        self.cond: Optional[VReg] = None

    def break_unless(self, cond: VReg) -> None:
        """Mark the loop condition; lanes where ``cond`` is false exit."""
        if self.cond is not None:
            raise RuntimeError("break_unless() called twice in one loop()")
        if cond.dtype is not DType.PRED:
            raise TypeError("loop condition must be a predicate register")
        self.cond = cond
        # Everything emitted from here on goes to the body.
        self._builder._stack.pop()
        self._builder._stack.append(self.body)
