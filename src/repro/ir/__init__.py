"""Kernel intermediate representation.

The IR mirrors the abstractions the paper's RMT pass manipulates at the
LLVM layer of AMD's OpenCL toolchain: work-item ID intrinsics, global and
local (LDS) memory operations, work-group barriers, global atomics, and
structured SIMT control flow.
"""

from .builder import KernelBuilder
from .core import (
    Alu,
    AtomicGlobal,
    Barrier,
    BufferParam,
    Cmp,
    Const,
    If,
    Instr,
    Kernel,
    LoadGlobal,
    LoadLocal,
    LoadParam,
    LocalAlloc,
    Param,
    PredOp,
    ReportError,
    ScalarParam,
    Select,
    SpecialId,
    Stmt,
    StoreGlobal,
    StoreLocal,
    Swizzle,
    VReg,
    While,
    clone_stmt,
    walk_instrs,
    walk_stmts,
)
from .printer import format_kernel
from .types import DType, bitcast_from_u32, bitcast_to_u32
from .verify import VerificationError, verify_kernel

__all__ = [
    "Alu",
    "AtomicGlobal",
    "Barrier",
    "BufferParam",
    "Cmp",
    "Const",
    "DType",
    "If",
    "Instr",
    "Kernel",
    "KernelBuilder",
    "LoadGlobal",
    "LoadLocal",
    "LoadParam",
    "LocalAlloc",
    "Param",
    "PredOp",
    "ReportError",
    "ScalarParam",
    "Select",
    "SpecialId",
    "Stmt",
    "StoreGlobal",
    "StoreLocal",
    "Swizzle",
    "VReg",
    "VerificationError",
    "While",
    "bitcast_from_u32",
    "bitcast_to_u32",
    "clone_stmt",
    "format_kernel",
    "verify_kernel",
    "walk_instrs",
    "walk_stmts",
]
