"""Host-side runtime: session, buffers, RMT launch adaptation."""

from .api import Session

__all__ = ["Session"]
