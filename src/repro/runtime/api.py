"""OpenCL-like host runtime.

A :class:`Session` owns one simulated device and provides buffer
management plus kernel launches.  It also implements the host half of
the RMT transformations — the part the paper did by hand ("the host-code
modifications necessary to support RMT were small"):

* Intra-Group kernels launch with work-group size doubled along dim 0;
* Inter-Group kernels launch with the group count doubled along dim 0
  and receive four hidden buffers (ticket counter, slot flags, and the
  address/value communication arrays) sized to the original NDRange.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..compiler.pipeline import CompiledKernel
from ..compiler.passes.rmt_common import (
    INTER_COMM_ADDR,
    INTER_COMM_VAL,
    INTER_COUNTER,
    INTER_FLAG,
)
from ..gpu.config import DEFAULT_POWER, HD7790, GpuConfig, PowerConfig
from ..gpu.device import Device
from ..gpu.engine import LaunchResult
from ..gpu.memory import DeviceBuffer
from ..gpu.occupancy import KernelResources
from ..gpu.power import PowerReport

Size = Union[int, Tuple[int, ...]]


def _norm(size: Size) -> Tuple[int, int, int]:
    if isinstance(size, int):
        return (size, 1, 1)
    t = tuple(int(x) for x in size)
    return t + (1,) * (3 - len(t))


class Session:
    """Host-side context bound to one simulated GPU."""

    def __init__(self, config: GpuConfig = HD7790, power: PowerConfig = DEFAULT_POWER,
                 scheduler=None):
        self.device = Device(config, power)
        self._hidden_serial = 0
        #: default wavefront scheduler for every launch on this session
        #: (see :mod:`repro.gpu.schedule`); per-launch ``scheduler=``
        #: arguments take precedence.  A shared instance is reset by the
        #: engine at the start of each launch.
        self.scheduler = scheduler

    @classmethod
    def with_cycle_budget(cls, max_cycles: Optional[float]) -> "Session":
        """Session whose simulation aborts past a cycle budget.

        Fault campaigns use this as a watchdog: a corrupted loop bound
        or lock word raises ``SimulationError`` at the budget instead of
        running to the device's 2B-cycle horizon, and the campaign
        classifies the trial as a hang.  ``None`` means the default
        (effectively unbounded) horizon.
        """
        if max_cycles is None:
            return cls()
        return cls(config=HD7790.with_(max_cycles=int(max_cycles)))

    # -- buffers -----------------------------------------------------------

    def upload(self, name: str, data: np.ndarray) -> DeviceBuffer:
        """Copy a host array into a new device buffer."""
        return self.device.alloc(name, np.asarray(data))

    def zeros(self, name: str, nelems: int, dtype=np.float32) -> DeviceBuffer:
        return self.device.alloc_zeros(name, nelems, dtype)

    def download(self, buf: DeviceBuffer) -> np.ndarray:
        """Copy a device buffer back to the host."""
        return self.device.read_buffer(buf)

    # -- launches ------------------------------------------------------------

    def launch(
        self,
        compiled: CompiledKernel,
        global_size: Size,
        local_size: Size,
        bindings: Dict[str, DeviceBuffer],
        scalars: Optional[Dict[str, object]] = None,
        resources: Optional[KernelResources] = None,
        fault_hook=None,
        scheduler=None,
    ) -> LaunchResult:
        """Launch a compiled kernel over the *original* NDRange.

        ``global_size``/``local_size`` describe the application's
        NDRange; if the kernel was RMT-transformed, this adapter doubles
        the range the way the matching flavor requires and binds any
        hidden communication buffers.  ``scheduler`` overrides the
        engine's wavefront issue order (see :mod:`repro.gpu.schedule`).
        """
        gsz = _norm(global_size)
        lsz = _norm(local_size)
        bindings = dict(bindings)
        meta = compiled.rmt_metadata

        if meta is not None:
            mode = meta["ndrange"]
            if mode == "double_local_dim0":
                expected = compiled.kernel.metadata.get("local_size")
                if expected is not None and _norm(expected)[0] != lsz[0] * 2:
                    raise ValueError(
                        f"kernel {compiled.kernel.name!r} was transformed for "
                        f"local size {expected}, launch asked for {lsz}"
                    )
                gsz = (gsz[0] * 2, gsz[1], gsz[2])
                lsz = (lsz[0] * 2, lsz[1], lsz[2])
            elif mode == "double_groups_dim0":
                items = gsz[0] * gsz[1] * gsz[2]
                bindings.update(self._alloc_inter_buffers(items))
                gsz = (gsz[0] * 2, gsz[1], gsz[2])
            else:  # pragma: no cover - future flavors
                raise ValueError(f"unknown RMT NDRange mode {mode!r}")

        return self.device.launch(
            compiled.kernel,
            gsz,
            lsz,
            buffers=bindings,
            scalars=scalars,
            resources=resources or compiled.resources,
            scalar_instrs=compiled.scalar_instrs,
            fault_hook=fault_hook,
            scheduler=scheduler if scheduler is not None else self.scheduler,
        )

    def _alloc_inter_buffers(self, total_items: int) -> Dict[str, DeviceBuffer]:
        """Fresh hidden buffers for one Inter-Group launch."""
        self._hidden_serial += 1
        tag = f"#{self._hidden_serial}"
        return {
            INTER_COUNTER: self.device.alloc_zeros(
                INTER_COUNTER + tag, 1, np.uint32),
            INTER_FLAG: self.device.alloc_zeros(
                INTER_FLAG + tag, total_items, np.uint32),
            INTER_COMM_ADDR: self.device.alloc_zeros(
                INTER_COMM_ADDR + tag, total_items, np.uint32),
            INTER_COMM_VAL: self.device.alloc_zeros(
                INTER_COMM_VAL + tag, total_items, np.uint32),
        }

    # -- aggregate results ---------------------------------------------------

    @property
    def elapsed_cycles(self) -> float:
        """Total simulated cycles across every launch so far."""
        return self.device.stats.total_cycles

    def power_report(self) -> PowerReport:
        return self.device.power_report()

    def detections(self):
        """All RMT detection events recorded on this session."""
        out = []
        for r in self.device.stats.launch_results:
            out.extend(r.detections)
        return out
