"""Hand-crafted edge-shape programs for the regression corpus.

Each program isolates one structural shape that has historically been a
soft spot for RMT transformations (empty control arms, barriers inside
uniform loops, communication adjacent to atomics, …).  They run through
the same differential oracle as fuzz-generated programs, and
:func:`write_corpus` renders them as standalone reproducer scripts into
``tests/corpus/`` where ``tests/test_fuzz_corpus.py`` replays them —
alongside any minimized fuzz findings checked in later.
"""

from __future__ import annotations

import os
from typing import List

from .program import BufferSpec, FuzzProgram, LdsSpec, Op, ScalarSpec

#: Bump when edge shapes change so regenerated corpus files are traceable.
CORPUS_VERSION = 1


def _prog(name: str, **kw) -> FuzzProgram:
    kw.setdefault("global_size", 64)
    kw.setdefault("local_size", 16)
    p = FuzzProgram(name=name, **kw)
    p.meta["corpus"] = CORPUS_VERSION
    problems = p.validate()
    if problems:  # pragma: no cover - authoring error
        raise AssertionError(f"corpus program {name}: {problems}")
    return p


def empty_if() -> FuzzProgram:
    """A branch with an empty then-arm; the else-arm stores."""
    return _prog(
        "edge_empty_if",
        buffers=[BufferSpec("in0", "u32", 64, role="in", init="random", seed=11),
                 BufferSpec("out0", "u32", 64, role="out")],
        ops=[
            Op("special", result=1, op="global_id", imm=0),
            Op("const", result=2, dtype="u32", imm=63),
            Op("alu", result=3, dtype="u32", op="and", args=(1, 2)),
            Op("load", result=4, ref="in0", args=(3,)),
            Op("const", result=5, dtype="u32", imm=32),
            Op("cmp", result=6, op="lt", args=(1, 5)),
            Op("if", args=(6,), body=[],
               orelse=[Op("store", ref="out0", args=(1, 4))]),
            Op("if", args=(6,), body=[], orelse=[]),  # fully empty branch
            Op("store", ref="out0", args=(1, 4)),
        ])


def barrier_in_uniform_loop() -> FuzzProgram:
    """A constant-trip loop carrying a full LDS phase each iteration."""
    return _prog(
        "edge_barrier_uniform_loop",
        buffers=[BufferSpec("in0", "u32", 64, role="in", init="iota"),
                 BufferSpec("out0", "u32", 64, role="out")],
        lds=[LdsSpec("tile", "u32", 16)],
        ops=[
            Op("special", result=1, op="global_id", imm=0),
            Op("special", result=2, op="local_id", imm=0),
            Op("const", result=3, dtype="u32", imm=63),
            Op("alu", result=4, dtype="u32", op="and", args=(1, 3)),
            Op("load", result=5, ref="in0", args=(4,)),
            Op("alu", result=20, dtype="u32", op="add", args=(5, 5)),
            Op("for", result=6, imm=(0, 3, 1), body=[
                Op("alu", result=7, dtype="u32", op="add", args=(20, 6)),
                Op("store_local", ref="tile", args=(2, 7)),
                Op("barrier"),
                Op("const", result=8, dtype="u32", imm=1),
                Op("alu", result=9, dtype="u32", op="add", args=(2, 8)),
                Op("const", result=10, dtype="u32", imm=15),
                Op("alu", result=11, dtype="u32", op="and", args=(9, 10)),
                Op("load_local", result=12, ref="tile", args=(11,)),
                Op("barrier"),
            ]),
            Op("store", ref="out0", args=(1, 20)),
        ])


def lds_read_after_atomic() -> FuzzProgram:
    """A global atomic immediately before an LDS phase: the RMT atomic
    handshake and the barrier-delimited LDS traffic must not tangle."""
    return _prog(
        "edge_lds_read_after_atomic",
        buffers=[BufferSpec("in0", "u32", 64, role="in", init="random", seed=3),
                 BufferSpec("out0", "u32", 64, role="out"),
                 BufferSpec("acc0", "u32", 8, role="acc")],
        lds=[LdsSpec("tile", "u32", 16)],
        ops=[
            Op("special", result=1, op="global_id", imm=0),
            Op("special", result=2, op="local_id", imm=0),
            Op("const", result=3, dtype="u32", imm=7),
            Op("alu", result=4, dtype="u32", op="and", args=(1, 3)),
            Op("const", result=5, dtype="u32", imm=63),
            Op("alu", result=6, dtype="u32", op="and", args=(1, 5)),
            Op("load", result=7, ref="in0", args=(6,)),
            Op("atomic", op="add", ref="acc0", args=(4, 7)),
            Op("store_local", ref="tile", args=(2, 7)),
            Op("barrier"),
            Op("const", result=8, dtype="u32", imm=15),
            Op("alu", result=9, dtype="u32", op="and", args=(7, 8)),
            Op("load_local", result=10, ref="tile", args=(9,)),
            Op("barrier"),
            Op("store", ref="out0", args=(1, 10)),
        ])


def both_arms_store() -> FuzzProgram:
    """if/else where each arm stores a different value to the own cell."""
    return _prog(
        "edge_both_arms_store",
        buffers=[BufferSpec("in0", "i32", 64, role="in", init="random", seed=9),
                 BufferSpec("out0", "i32", 64, role="out")],
        ops=[
            Op("special", result=1, op="global_id", imm=0),
            Op("const", result=2, dtype="u32", imm=63),
            Op("alu", result=3, dtype="u32", op="and", args=(1, 2)),
            Op("load", result=4, ref="in0", args=(3,)),
            Op("const", result=5, dtype="i32", imm=0),
            Op("cmp", result=6, op="lt", args=(4, 5)),
            Op("if", args=(6,),
               body=[Op("alu", result=7, dtype="i32", op="sub", args=(5, 4)),
                     Op("store", ref="out0", args=(1, 7))],
               orelse=[Op("store", ref="out0", args=(1, 4))]),
        ])


def divergent_loop_trips() -> FuzzProgram:
    """Per-lane trip counts accumulated into the output."""
    return _prog(
        "edge_divergent_loop",
        buffers=[BufferSpec("out0", "u32", 64, role="out")],
        ops=[
            Op("special", result=1, op="global_id", imm=0),
            Op("const", result=2, dtype="u32", imm=7),
            Op("alu", result=3, dtype="u32", op="and", args=(1, 2)),
            Op("const", result=4, dtype="u32", imm=0),
            Op("alu", result=5, dtype="u32", op="add", args=(4, 4)),
            Op("for", result=6, imm=(0, 0, 1), args=(3,), body=[
                Op("alu", result=7, dtype="u32", op="mul", args=(6, 6)),
            ]),
            Op("store", ref="out0", args=(1, 3)),
        ])


def nested_branch_store() -> FuzzProgram:
    """A store two branches deep — the consumer guard nests under user
    control flow."""
    return _prog(
        "edge_nested_branch_store",
        buffers=[BufferSpec("in0", "u32", 64, role="in", init="random", seed=21),
                 BufferSpec("out0", "u32", 64, role="out")],
        ops=[
            Op("special", result=1, op="global_id", imm=0),
            Op("const", result=2, dtype="u32", imm=63),
            Op("alu", result=3, dtype="u32", op="and", args=(1, 2)),
            Op("load", result=4, ref="in0", args=(3,)),
            Op("const", result=5, dtype="u32", imm=32),
            Op("cmp", result=6, op="ge", args=(1, 5)),
            Op("const", result=7, dtype="u32", imm=1),
            Op("alu", result=8, dtype="u32", op="and", args=(4, 7)),
            Op("cmp", result=9, op="eq", args=(8, 7)),
            Op("if", args=(6,), body=[
                Op("if", args=(9,), body=[
                    Op("store", ref="out0", args=(1, 4)),
                ]),
            ]),
            Op("store", ref="out0", args=(1, 8)),
        ])


def f32_reverse_bijection() -> FuzzProgram:
    """f32 math stored through the reversal bijection (n-1-gid)."""
    return _prog(
        "edge_f32_reverse",
        buffers=[BufferSpec("in0", "f32", 64, role="in", init="random", seed=4),
                 BufferSpec("out0", "f32", 64, role="out")],
        scalars=[ScalarSpec("s0", "f32", 1.5)],
        ops=[
            Op("special", result=1, op="global_id", imm=0),
            Op("scalar", result=2, ref="s0"),
            Op("const", result=3, dtype="u32", imm=63),
            Op("alu", result=4, dtype="u32", op="and", args=(1, 3)),
            Op("load", result=5, ref="in0", args=(4,)),
            Op("alu", result=6, dtype="f32", op="mul", args=(5, 2)),
            Op("alu", result=7, dtype="f32", op="sqrt", args=(6,)),
            Op("alu", result=8, dtype="f32", op="add", args=(7, 5)),
            Op("const", result=9, dtype="u32", imm=63),
            Op("alu", result=10, dtype="u32", op="sub", args=(9, 1)),
            Op("store", ref="out0", args=(10, 8)),
        ])


def select_chain() -> FuzzProgram:
    """Predicate algebra (pand/por/pnot) feeding chained selects."""
    return _prog(
        "edge_select_chain",
        buffers=[BufferSpec("in0", "u32", 64, role="in", init="random", seed=8),
                 BufferSpec("out0", "u32", 64, role="out")],
        ops=[
            Op("special", result=1, op="global_id", imm=0),
            Op("const", result=2, dtype="u32", imm=63),
            Op("alu", result=3, dtype="u32", op="and", args=(1, 2)),
            Op("load", result=4, ref="in0", args=(3,)),
            Op("const", result=5, dtype="u32", imm=100),
            Op("cmp", result=6, op="gt", args=(4, 5)),
            Op("const", result=7, dtype="u32", imm=16),
            Op("cmp", result=8, op="lt", args=(1, 7)),
            Op("predop", result=9, op="and", args=(6, 8)),
            Op("predop", result=10, op="not", args=(9,)),
            Op("predop", result=11, op="or", args=(9, 10)),
            Op("select", result=12, args=(9, 4, 1)),
            Op("select", result=13, args=(11, 12, 5)),
            Op("store", ref="out0", args=(1, 13)),
        ])


def multi_out_acc() -> FuzzProgram:
    """Two out buffers on different bijections plus a max-accumulator."""
    return _prog(
        "edge_multi_out_acc",
        buffers=[BufferSpec("in0", "u32", 64, role="in", init="random", seed=2),
                 BufferSpec("out0", "u32", 64, role="out"),
                 BufferSpec("out1", "u32", 64, role="out"),
                 BufferSpec("acc0", "u32", 16, role="acc")],
        ops=[
            Op("special", result=1, op="global_id", imm=0),
            Op("const", result=2, dtype="u32", imm=63),
            Op("alu", result=3, dtype="u32", op="and", args=(1, 2)),
            Op("load", result=4, ref="in0", args=(3,)),
            Op("const", result=5, dtype="u32", imm=15),
            Op("alu", result=6, dtype="u32", op="and", args=(4, 5)),
            Op("atomic", op="max", ref="acc0", args=(6, 4)),
            Op("const", result=7, dtype="u32", imm=21),
            Op("alu", result=8, dtype="u32", op="xor", args=(1, 7)),
            Op("store", ref="out0", args=(8, 4)),
            Op("const", result=9, dtype="u32", imm=13),
            Op("alu", result=10, dtype="u32", op="mul", args=(1, 9)),
            Op("alu", result=11, dtype="u32", op="and", args=(10, 2)),
            Op("store", ref="out1", args=(11, 6)),
        ])


def trivial_store() -> FuzzProgram:
    """The degenerate minimum: one unconditional constant store."""
    return _prog(
        "edge_trivial_store",
        buffers=[BufferSpec("out0", "u32", 64, role="out")],
        ops=[
            Op("special", result=1, op="global_id", imm=0),
            Op("const", result=2, dtype="u32", imm=7),
            Op("alu", result=3, dtype="u32", op="add", args=(1, 2)),
            Op("store", ref="out0", args=(1, 3)),
        ])


EDGE_SHAPES = (
    empty_if,
    barrier_in_uniform_loop,
    lds_read_after_atomic,
    both_arms_store,
    divergent_loop_trips,
    nested_branch_store,
    f32_reverse_bijection,
    select_chain,
    multi_out_acc,
    trivial_store,
)


def edge_programs() -> List[FuzzProgram]:
    """All hand-crafted edge-shape programs, freshly constructed."""
    return [make() for make in EDGE_SHAPES]


def write_corpus(directory: str) -> List[str]:
    """Render every edge program as a reproducer script; return paths."""
    os.makedirs(directory, exist_ok=True)
    paths = []
    for prog in edge_programs():
        path = os.path.join(directory, f"{prog.name}.py")
        with open(path, "w") as fh:
            fh.write(prog.to_python(
                f"Hand-crafted edge shape (corpus v{CORPUS_VERSION}); "
                "regenerate with `python -m repro.fuzz --write-corpus`."))
        paths.append(path)
    return paths
