"""Seeded random kernel generator.

``generate_program(seed)`` produces a :class:`~repro.fuzz.program.
FuzzProgram` that is **deterministic and lint-clean by construction**,
so that any cross-variant divergence the oracle observes indicts the
compiler/engine, never the program.  The discipline:

* every buffer size is a power of two and every global index is either
  a per-``gid`` bijection or masked with ``size - 1`` — out-of-bounds
  access (which the engine treats as a crash) is impossible;
* each ``out`` buffer has ONE fixed bijective store index over ``gid``
  (identity, reversal, xor, add-mod, or odd-multiplier), so no two
  work-items ever race on a cell, under any scheduling;
* ``in`` buffers are read-only; each ``out`` buffer is either *readable*
  (loads at the owning work-item's own cell; stored only by the final
  epilogue) or *writable* (mid-program stores allowed, never loaded) —
  under Inter-Group RMT the producer replica does not wait for the
  consumer's physical store, so reading back an already-stored cell
  would observe SoR-exited memory at an unsynchronized time;
* each ``acc`` buffer is pinned to ONE commutative integer atomic op
  (``add``/``max``/``or``) for the whole program and never read — ops of
  one kind commute with themselves under any interleaving, but mixed
  kinds on one cell (``or`` then ``max``) are order-dependent;
* LDS follows a write→barrier→read→barrier phase discipline with the
  store index equal to ``lid`` (trivially race-free), and barriers are
  emitted only in uniform control flow (top level or constant-trip-count
  loops);
* data-dependent loop bounds are masked to small trip counts, and all
  float arithmetic stays inside plain IEEE ops the engine evaluates
  identically at O0 and O1 (the optimizer folds integers only).

Reproducibility: the same ``(seed, GenConfig)`` yields the identical
spec, bit for bit (``FuzzProgram.digest()``), on any host — randomness
flows exclusively from ``np.random.SeedSequence(seed)``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .program import BufferSpec, FuzzProgram, LdsSpec, Op, ScalarSpec

#: (global_size, local_size) launch shapes the generator samples.
_SHAPES = ((64, 16), (64, 32), (128, 16), (128, 32), (128, 64), (256, 32))

_INT_BINOPS = ("add", "sub", "mul", "and", "or", "xor", "min", "max",
               "shl", "shr", "div", "rem")
_F32_BINOPS = ("add", "sub", "mul", "div", "min", "max", "pow")
_F32_UNOPS = ("neg", "abs", "sqrt", "floor", "sin")
_CMP_OPS = ("eq", "ne", "lt", "le", "gt", "ge")
_ATOMIC_OPS = ("add", "max", "or")


@dataclass
class GenConfig:
    """Knobs bounding the generated program's size and feature mix."""

    min_ops: int = 10
    max_ops: int = 36
    max_depth: int = 2
    allow_f32: bool = True
    allow_lds: bool = True
    allow_atomics: bool = True
    allow_branches: bool = True
    allow_loops: bool = True
    #: Probability of wrapping a top-level segment (or an epilogue
    #: store) in a ``protect()`` region for selective-RMT testing.  The
    #: gate short-circuits at 0.0 — no rng draw — so the default stream,
    #: and with it every committed corpus digest, is unchanged.
    protect_prob: float = 0.0
    #: Segment-kind weights; zeroing one disables that shape.
    weights: Dict[str, float] = field(default_factory=lambda: {
        "alu": 4.0, "load": 2.0, "select": 1.0, "store": 1.0,
        "atomic": 1.0, "branch": 1.4, "uloop": 0.7, "dloop": 0.7,
        "lds": 1.2,
    })


def generate_program(seed: int, cfg: Optional[GenConfig] = None) -> FuzzProgram:
    """Generate one deterministic, verifier/lint-clean program."""
    return _Gen(seed, cfg or GenConfig()).run()


class _Gen:
    def __init__(self, seed: int, cfg: GenConfig):
        self.seed = seed
        self.cfg = cfg
        self.rng = np.random.default_rng(np.random.SeedSequence(seed))
        self.next_id = 0
        self.block_stack: List[List[Op]] = [[]]
        # Value pools by dtype class; scoped with the block structure so
        # an op never references a value defined on another control path.
        self.pools: Dict[str, List[int]] = {
            "u32": [], "i32": [], "f32": [], "pred": []}
        self.budget = int(self.rng.integers(cfg.min_ops, cfg.max_ops + 1))

    # -- plumbing ----------------------------------------------------------

    def nid(self) -> int:
        self.next_id += 1
        return self.next_id

    def emit(self, op: Op) -> Op:
        self.block_stack[-1].append(op)
        return op

    @contextmanager
    def scope(self, block: List[Op]):
        marks = {k: len(v) for k, v in self.pools.items()}
        self.block_stack.append(block)
        try:
            yield
        finally:
            self.block_stack.pop()
            for k, n in marks.items():
                del self.pools[k][n:]

    def define(self, dtype: str, op: Op) -> int:
        vid = self.nid()
        op.result = vid
        self.emit(op)
        self.pools[dtype].append(vid)
        return vid

    def choice(self, seq):
        return seq[int(self.rng.integers(len(seq)))]

    # -- value sourcing ----------------------------------------------------

    def const(self, dtype: str) -> int:
        if dtype == "f32":
            imm = float(np.float32(self.rng.uniform(-8, 8)))
        elif dtype == "i32":
            imm = int(self.rng.integers(-64, 64))
        else:
            imm = int(self.rng.integers(0, 256))
        return self.define(dtype, Op("const", dtype=dtype, imm=imm))

    def val(self, dtype: str) -> int:
        pool = self.pools[dtype]
        if pool and self.rng.random() < 0.8:
            return self.choice(pool)
        return self.const(dtype)

    def int_val(self) -> Tuple[int, str]:
        dt = "i32" if (self.pools["i32"] and self.rng.random() < 0.3) else "u32"
        return self.val(dt), dt

    def coerce(self, vid: int, src: str, dst: str) -> int:
        """Emit a conversion so ``vid`` becomes usable at dtype ``dst``."""
        if src == dst:
            return vid
        if dst == "f32":
            op = "u2f" if src == "u32" else "i2f"
            return self.define("f32", Op("alu", dtype="f32", op=op, args=(vid,)))
        # Reinterpretation keeps cross-variant bit-determinism even for
        # f32 sources (a value conversion could round, a bitcast cannot).
        return self.define(dst, Op("alu", dtype=dst, op="bitcast", args=(vid,)))

    def value_for(self, dtype: str) -> int:
        """A value of ``dtype``, converting a random pool member if the
        dtype's own pool is empty-ish."""
        if self.pools[dtype] or self.rng.random() < 0.3:
            return self.val(dtype)
        for src in ("u32", "i32", "f32"):
            if self.pools[src]:
                return self.coerce(self.choice(self.pools[src]), src, dtype)
        return self.const(dtype)

    def masked_index(self, nelems: int) -> int:
        """An always-in-bounds index: ``value & (nelems - 1)``."""
        vid, dt = self.int_val()
        if dt == "i32":
            vid = self.coerce(vid, "i32", "u32")
        mask = self.define("u32", Op("const", dtype="u32", imm=nelems - 1))
        return self.define("u32", Op("alu", dtype="u32", op="and",
                                     args=(vid, mask)))

    # -- out-buffer bijections ---------------------------------------------

    def make_bijection(self, n: int):
        """Pick one bijective map gid → [0, n) for an out buffer."""
        kind = self.choice(("identity", "reverse", "xor", "addmod", "mulodd"))
        if kind == "identity":
            return ("identity", 0)
        if kind == "reverse":
            return ("reverse", n - 1)
        if kind == "xor":
            return ("xor", int(self.rng.integers(1, n)))
        if kind == "addmod":
            return ("addmod", int(self.rng.integers(1, n)))
        return ("mulodd", int(self.rng.integers(0, n // 2)) * 2 + 1)

    def emit_bijection(self, bij, n: int) -> int:
        """Emit index ops computing the bijection of ``gid``."""
        kind, c = bij
        if kind == "identity":
            return self.gid
        cid = self.define("u32", Op("const", dtype="u32", imm=c))
        if kind == "reverse":
            return self.define("u32", Op("alu", dtype="u32", op="sub",
                                         args=(cid, self.gid)))
        if kind == "xor":
            return self.define("u32", Op("alu", dtype="u32", op="xor",
                                         args=(self.gid, cid)))
        raw_op = "add" if kind == "addmod" else "mul"
        raw = self.define("u32", Op("alu", dtype="u32", op=raw_op,
                                    args=(self.gid, cid)))
        mask = self.define("u32", Op("const", dtype="u32", imm=n - 1))
        return self.define("u32", Op("alu", dtype="u32", op="and",
                                     args=(raw, mask)))

    # -- segments ----------------------------------------------------------

    def seg_alu(self, depth: int) -> None:
        use_f32 = (self.cfg.allow_f32 and self.pools["f32"]
                   and self.rng.random() < 0.4)
        if use_f32:
            if self.rng.random() < 0.3:
                op = self.choice(_F32_UNOPS)
                self.define("f32", Op("alu", dtype="f32", op=op,
                                      args=(self.val("f32"),)))
            else:
                op = self.choice(_F32_BINOPS)
                self.define("f32", Op("alu", dtype="f32", op=op,
                                      args=(self.val("f32"), self.val("f32"))))
            return
        dt = "i32" if (self.pools["i32"] and self.rng.random() < 0.25) else "u32"
        op = self.choice(_INT_BINOPS)
        self.define(dt, Op("alu", dtype=dt, op=op,
                           args=(self.val(dt), self.val(dt))))

    def seg_load(self, depth: int) -> None:
        # 'in' buffers at any masked index; readable 'out' buffers only
        # at the own cell (and those are never stored before the
        # epilogue, so the read is race-free under every flavor).
        if self.readable_out and self.rng.random() < 0.25:
            buf = self.choice(self.readable_out)
            idx = self.emit_bijection(self.bijections[buf.name], buf.nelems)
        else:
            buf = self.choice(self.in_bufs)
            idx = self.masked_index(buf.nelems)
        self.define(buf.dtype, Op("load", ref=buf.name, args=(idx,)))

    def seg_select(self, depth: int) -> None:
        a, dt = self.int_val()
        b = self.val(dt)
        p = self.define("pred", Op("cmp", op=self.choice(_CMP_OPS),
                                   args=(a, b)))
        if self.rng.random() < 0.4 and len(self.pools["pred"]) >= 2:
            q = self.choice(self.pools["pred"])
            pop = self.choice(("and", "or"))
            p = self.define("pred", Op("predop", op=pop, args=(p, q)))
        dt2 = self.choice([d for d in ("u32", "i32", "f32")
                           if self.pools[d]] or ["u32"])
        self.define(dt2, Op("select",
                            args=(p, self.value_for(dt2), self.value_for(dt2))))

    def seg_store(self, depth: int) -> None:
        buf = self.choice(self.writable_out)
        idx = self.emit_bijection(self.bijections[buf.name], buf.nelems)
        val = self.value_for(buf.dtype)
        self.emit(Op("store", ref=buf.name, args=(idx, val)))

    def seg_atomic(self, depth: int) -> None:
        buf = self.choice(self.acc_bufs)
        idx = self.masked_index(buf.nelems)
        val = self.value_for(buf.dtype)
        self.emit(Op("atomic", op=self.acc_ops[buf.name], ref=buf.name,
                     args=(idx, val)))

    def seg_branch(self, depth: int) -> None:
        a, dt = self.int_val()
        b = self.val(dt)
        p = self.define("pred", Op("cmp", op=self.choice(_CMP_OPS),
                                   args=(a, b)))
        node = self.emit(Op("if", args=(p,)))
        n_then = int(self.rng.integers(0, 4))  # 0 → empty-arm edge shape
        with self.scope(node.body):
            for _ in range(n_then):
                self.segment(depth + 1, uniform=False)
        if self.rng.random() < 0.5:
            with self.scope(node.orelse):
                for _ in range(int(self.rng.integers(1, 3))):
                    self.segment(depth + 1, uniform=False)

    def seg_uloop(self, depth: int, uniform: bool) -> None:
        trips = int(self.rng.integers(2, 5))
        node = self.emit(Op("for", imm=(0, trips, 1)))
        with self.scope(node.body):
            node.result = self.nid()
            self.pools["u32"].append(node.result)
            for _ in range(int(self.rng.integers(1, 3))):
                # A constant-bound loop preserves uniformity: barriers
                # and LDS phases stay legal inside it.
                self.segment(depth + 1, uniform=uniform)

    def seg_dloop(self, depth: int) -> None:
        raw, dt = self.int_val()
        if dt == "i32":
            raw = self.coerce(raw, "i32", "u32")
        mask = self.define("u32", Op("const", dtype="u32", imm=3))
        stop = self.define("u32", Op("alu", dtype="u32", op="and",
                                     args=(raw, mask)))
        node = self.emit(Op("for", imm=(0, 0, 1), args=(stop,)))
        with self.scope(node.body):
            node.result = self.nid()
            self.pools["u32"].append(node.result)
            for _ in range(int(self.rng.integers(1, 3))):
                self.segment(depth + 1, uniform=False)

    def protect_gate(self) -> bool:
        """Draw the protect coin — short-circuits when the feature is off
        so the default-config rng stream is bit-identical to v1."""
        return (self.cfg.protect_prob > 0
                and self.rng.random() < self.cfg.protect_prob)

    def protect_segment(self) -> None:
        """Wrap 1–2 top-level segments in a protect() region marker.

        Unlike branch/loop scopes this pushes the region's op list
        without :meth:`scope`: protect is not control flow, so values
        defined inside stay in the pools for later segments — exactly
        the visibility the builder's ``protect()`` gives them.
        """
        node = self.emit(Op("protect"))
        self.block_stack.append(node.body)
        try:
            for _ in range(int(self.rng.integers(1, 3))):
                self.segment(0, uniform=True)
        finally:
            self.block_stack.pop()
        if not node.body:  # budget ran out before anything landed
            self.block_stack[-1].pop()

    def seg_lds(self, depth: int) -> None:
        """One full write→barrier→read→barrier phase (uniform ctx only)."""
        lds = self.choice(self.lds_bufs)
        val = self.value_for(lds.dtype)
        self.emit(Op("store_local", ref=lds.name, args=(self.lid, val)))
        self.emit(Op("barrier"))
        if self.rng.random() < 0.5:
            idx = self.masked_index(lds.nelems)
        else:
            # Affine neighbour read: (lid + c) & (n - 1).
            c = self.define("u32", Op("const", dtype="u32",
                                      imm=int(self.rng.integers(1, lds.nelems))))
            raw = self.define("u32", Op("alu", dtype="u32", op="add",
                                        args=(self.lid, c)))
            m = self.define("u32", Op("const", dtype="u32", imm=lds.nelems - 1))
            idx = self.define("u32", Op("alu", dtype="u32", op="and",
                                        args=(raw, m)))
        self.define(lds.dtype, Op("load_local", ref=lds.name, args=(idx,)))
        self.emit(Op("barrier"))

    # -- driver ------------------------------------------------------------

    def segment(self, depth: int, uniform: bool) -> None:
        if self.budget <= 0:
            return
        cfg = self.cfg
        kinds, weights = [], []
        for kind, w in cfg.weights.items():
            if w <= 0:
                continue
            if kind == "lds" and not (uniform and cfg.allow_lds
                                      and self.lds_bufs):
                continue
            if kind == "atomic" and not (cfg.allow_atomics and self.acc_bufs):
                continue
            if kind == "store" and not self.writable_out:
                continue
            if kind == "branch" and not (cfg.allow_branches
                                         and depth < cfg.max_depth):
                continue
            if kind in ("uloop", "dloop") and not (cfg.allow_loops
                                                   and depth < cfg.max_depth):
                continue
            kinds.append(kind)
            weights.append(w)
        probs = np.asarray(weights) / sum(weights)
        kind = kinds[int(self.rng.choice(len(kinds), p=probs))]
        self.budget -= 1
        if kind == "uloop":
            self.seg_uloop(depth, uniform)
        else:
            getattr(self, f"seg_{kind}")(depth)

    def run(self) -> FuzzProgram:
        rng, cfg = self.rng, self.cfg
        gsize, lsize = self.choice(_SHAPES)

        buffers: List[BufferSpec] = []
        for i in range(int(rng.integers(1, 3))):
            dt = self.choice(("u32", "i32", "f32") if cfg.allow_f32
                             else ("u32", "i32"))
            n = int(self.choice((32, 64, 128)))
            buffers.append(BufferSpec(f"in{i}", dt, n, role="in",
                                      init=self.choice(("iota", "random")),
                                      seed=int(rng.integers(0, 2**31))))
        for i in range(int(rng.integers(1, 3))):
            dt = self.choice(("u32", "i32", "f32") if cfg.allow_f32
                             else ("u32", "i32"))
            buffers.append(BufferSpec(f"out{i}", dt, gsize, role="out"))
        if cfg.allow_atomics and rng.random() < 0.7:
            buffers.append(BufferSpec("acc0", self.choice(("u32", "i32")),
                                      int(self.choice((8, 16, 32))),
                                      role="acc"))

        self.in_bufs = [b for b in buffers if b.role == "in"]
        self.out_bufs = [b for b in buffers if b.role == "out"]
        self.acc_bufs = [b for b in buffers if b.role == "acc"]
        self.bijections = {b.name: self.make_bijection(b.nelems)
                           for b in self.out_bufs}
        # Readable outs are stored only by the epilogue; writable outs
        # are never loaded (see the module docstring on the Inter-Group
        # producer/consumer store race).
        self.readable_out = [b for b in self.out_bufs if rng.random() < 0.5]
        self.writable_out = [b for b in self.out_bufs
                             if b not in self.readable_out]
        self.acc_ops = {b.name: self.choice(_ATOMIC_OPS)
                        for b in self.acc_bufs}

        lds_bufs: List[LdsSpec] = []
        if cfg.allow_lds and rng.random() < 0.75:
            dt = self.choice(("u32", "i32", "f32") if cfg.allow_f32
                             else ("u32", "i32"))
            lds_bufs.append(LdsSpec("tile0", dt, lsize))
        self.lds_bufs = lds_bufs

        scalars: List[ScalarSpec] = []
        for i in range(int(rng.integers(0, 3))):
            dt = self.choice(("u32", "f32") if cfg.allow_f32 else ("u32",))
            v = (float(np.float32(rng.uniform(-4, 4))) if dt == "f32"
                 else int(rng.integers(0, 1024)))
            scalars.append(ScalarSpec(f"s{i}", dt, v))

        # Preamble: gid/lid and scalar imports seed the value pools.
        self.gid = self.define("u32", Op("special", op="global_id", imm=0))
        self.lid = self.define("u32", Op("special", op="local_id", imm=0))
        for s in scalars:
            self.define(s.dtype, Op("scalar", ref=s.name))

        while self.budget > 0:
            if self.protect_gate():
                self.protect_segment()
            else:
                self.segment(0, uniform=True)

        # Epilogue: every out buffer gets one unconditional store so the
        # differential comparison always has signal.
        for buf in self.out_bufs:
            idx = self.emit_bijection(self.bijections[buf.name], buf.nelems)
            store = Op("store", ref=buf.name,
                       args=(idx, self.value_for(buf.dtype)))
            if self.protect_gate():
                self.emit(Op("protect", body=[store]))
            else:
                self.emit(store)

        prog = FuzzProgram(
            name=f"fuzz_{self.seed}",
            global_size=gsize,
            local_size=lsize,
            buffers=buffers,
            scalars=scalars,
            lds=lds_bufs,
            ops=self.block_stack[0],
            meta={"seed": self.seed, "generator": "v1"},
        )
        problems = prog.validate()
        if problems:  # pragma: no cover - generator invariant
            raise AssertionError(
                f"generator produced invalid spec (seed {self.seed}): "
                + "; ".join(problems))
        return prog
