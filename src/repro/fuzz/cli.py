"""``python -m repro.fuzz`` — the differential fuzzing campaign driver.

Generates ``--count`` seeded programs, fans each one's oracle check
across the orchestrator's crash-tolerant worker pool, journals every
trial to JSONL (resumable with ``--resume``), and optionally shrinks
any error-finding program into a runnable reproducer script.

Typical invocations::

    python -m repro.fuzz --seed 0 --count 300            # acceptance run
    python -m repro.fuzz --count 50 --workers 8 --faults 4
    python -m repro.fuzz --count 200 --time-budget 60 --shrink
    python -m repro.fuzz --write-corpus                  # refresh corpus

Exit status is non-zero iff any *error*-severity finding surfaced
(unfaulted divergence, crash, hang, or an exact-coverage SoR escape).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from .generator import GenConfig, generate_program
from .oracle import RunSpec, check_program, format_findings
from .program import FuzzProgram

#: Variant names accepted by ``--variants`` (each runs at O0 and O1).
VARIANT_CHOICES = ("original", "intra+lds", "intra-lds", "inter")


def build_runs(variants: Optional[Sequence[str]]) -> Optional[List[RunSpec]]:
    """Translate a ``--variants`` filter into a RunSpec matrix.

    ``None`` keeps the oracle's default full matrix.  ``original`` in a
    filter means "also diff original@O1 against the O0 baseline".
    """
    if not variants:
        return None
    runs: List[RunSpec] = []
    for name in variants:
        if name not in VARIANT_CHOICES:
            raise ValueError(f"unknown variant {name!r} "
                             f"(choose from {', '.join(VARIANT_CHOICES)})")
        if name == "original":
            runs.append(RunSpec("original", optimize=True))
        else:
            runs.append(RunSpec(name, optimize=False))
            runs.append(RunSpec(name, optimize=True))
    return runs


def _trial(payload: Dict) -> Dict:
    """Worker body: generate one program, run the oracle, summarize."""
    prog = generate_program(payload["seed"], payload.get("cfg"))
    report = check_program(
        prog,
        runs=payload.get("runs"),
        faults=payload.get("faults", 0),
        fault_seed=payload["seed"],
    )
    return {
        "seed": payload["seed"],
        "program": report.program,
        "digest": report.digest,
        "runs": len(report.runs),
        "findings": [f.to_json() for f in report.findings],
        "n_errors": len(report.errors),
    }


def _shrink_and_dump(seed: int, runs, out_dir: str) -> Optional[str]:
    """Re-check, shrink, and write a reproducer for one error seed."""
    from .shrink import same_errors_predicate, shrink_program

    prog = generate_program(seed)
    report = check_program(prog, runs=runs)
    if not report.errors:
        return None  # raced away (should not happen: trials are deterministic)
    result = shrink_program(prog, same_errors_predicate(report, runs=runs))
    shrunk = result.program
    shrunk.name = f"fuzz_min_{seed}"
    sigs = ", ".join(sorted({f"{f.kind}@{f.run}" for f in report.errors}))
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"{shrunk.name}.py")
    with open(path, "w") as fh:
        fh.write(shrunk.to_python(
            f"Minimized from generate_program({seed}) "
            f"({result.ops_before} -> {result.ops_after} ops); "
            f"original error signature: {sigs}."))
    return path


def make_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential fuzzing of the RMT compiler/engine stack.")
    p.add_argument("--seed", type=int, default=0,
                   help="base seed; trial i uses seed+i (default 0)")
    p.add_argument("--count", type=int, default=100,
                   help="number of programs to generate (default 100)")
    p.add_argument("--time-budget", type=float, default=None, metavar="S",
                   help="stop scheduling new chunks after S seconds")
    p.add_argument("--variants", default=None, metavar="A,B",
                   help="comma list from: " + ", ".join(VARIANT_CHOICES)
                        + " (default: full matrix)")
    p.add_argument("--faults", type=int, default=0, metavar="N",
                   help="also inject N single-bit faults per program "
                        "(SoR-coverage probe; default 0)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (default 1)")
    p.add_argument("--timeout", type=float, default=120.0, metavar="S",
                   help="per-trial wall clock in parallel mode (default 120)")
    p.add_argument("--max-ops", type=int, default=None,
                   help="override the generator's op budget ceiling")
    p.add_argument("--shrink", action="store_true",
                   help="minimize error programs and write reproducers")
    p.add_argument("--repro-dir", default="tests/corpus", metavar="DIR",
                   help="where --shrink writes reproducers "
                        "(default tests/corpus)")
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="JSONL findings journal")
    p.add_argument("--resume", action="store_true",
                   help="skip trials already present in --journal")
    p.add_argument("--progress", action="store_true",
                   help="live progress meter on stderr")
    p.add_argument("--write-corpus", action="store_true",
                   help="regenerate tests/corpus edge-shape scripts and exit")
    return p


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = make_parser().parse_args(argv)

    if args.write_corpus:
        from .corpus import write_corpus
        for path in write_corpus(args.repro_dir):
            print(path)
        return 0

    from ..orchestrator import Journal, Telemetry, run_tasks

    variants = (args.variants.split(",") if args.variants else None)
    try:
        runs = build_runs(variants)
    except ValueError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    cfg = None
    if args.max_ops is not None:
        cfg = GenConfig(max_ops=args.max_ops,
                        min_ops=min(GenConfig.min_ops, args.max_ops))

    journal = None
    done: set = set()
    if args.journal:
        journal = Journal(args.journal, resume=args.resume, meta={
            "campaign": "fuzz", "seed": args.seed, "count": args.count,
            "variants": variants or "all", "faults": args.faults,
        })
        if args.resume:
            done = journal.completed_indices("trial")

    telemetry = Telemetry(label="fuzz", progress=args.progress)
    pending = [
        (i, {"seed": args.seed + i, "runs": runs, "faults": args.faults,
             "cfg": cfg})
        for i in range(args.count) if i not in done
    ]
    telemetry.start(total=args.count, skipped=len(done))

    error_seeds: List[int] = []
    all_findings: List[Dict] = []
    infra_failures: List[str] = []

    def on_result(res) -> None:
        if not res.ok:
            infra_failures.append(f"trial {res.task_id}: {res.status} "
                                  f"{res.error}")
            if journal:
                journal.append("trial", index=res.task_id, status=res.status,
                               error=res.error)
            return
        value = res.value
        if journal:
            journal.append("trial", index=res.task_id, status="ok", **value)
        for f in value["findings"]:
            all_findings.append(f)
            if journal:
                journal.append("finding", index=res.task_id, **f)
        if value["n_errors"]:
            error_seeds.append(value["seed"])

    # Chunked scheduling so --time-budget can stop between chunks while
    # each chunk still saturates the pool.
    t0 = time.monotonic()
    chunk = max(args.workers, 1) * 8
    scheduled = 0
    for start in range(0, len(pending), chunk):
        if (args.time_budget is not None and scheduled
                and time.monotonic() - t0 > args.time_budget):
            break
        batch = pending[start:start + chunk]
        scheduled += len(batch)
        run_tasks(batch, _trial, workers=args.workers,
                  timeout_s=args.timeout, max_retries=1,
                  telemetry=telemetry, on_result=on_result)
    telemetry.finish()

    repro_paths: List[str] = []
    if args.shrink and error_seeds:
        for seed in sorted(set(error_seeds)):
            path = _shrink_and_dump(seed, runs, args.repro_dir)
            if path:
                repro_paths.append(path)
                if journal:
                    journal.append("reproducer", seed=seed, path=path)

    errors = [f for f in all_findings if f["severity"] == "error"]
    infos = [f for f in all_findings if f["severity"] != "error"]
    print(f"fuzz: {scheduled}/{args.count} trials "
          f"(skipped {len(done)} journaled), "
          f"{len(errors)} error finding(s), {len(infos)} info finding(s), "
          f"{len(infra_failures)} infra failure(s)")
    for f in errors:
        print(f"  [error] seed {f['seed']}: {f['kind']} @ {f['run']}: "
              f"{f['detail']}")
    for line in infra_failures:
        print(f"  [infra] {line}")
    for path in repro_paths:
        print(f"  reproducer: {path}")
    if journal:
        journal.append("summary", scheduled=scheduled, errors=len(errors),
                       infos=len(infos), infra=len(infra_failures))
        journal.close()
    return 1 if (errors or infra_failures) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
