"""Multi-way differential oracle over the RMT variants.

``check_program`` runs one :class:`~repro.fuzz.program.FuzzProgram`
through the baseline compiler (``original`` at O0) and a matrix of
RMT/optimizer configurations, then cross-checks:

* **final global memory** must be bit-identical everywhere (raw bytes,
  so NaN payloads count too) — any difference is a ``miscompare``;
* **detection counters** must be zero on every unfaulted run — the RMT
  output comparison crying wolf is a ``false_detection``;
* no run may ``crash`` (verifier/lint/engine exception) or ``hang``
  (cycle-budget watchdog) on a program the generator guarantees clean.

With ``faults > 0`` it additionally injects single-bit upsets (via
:mod:`repro.faults`) into the RMT runs and checks the sphere-of-
replication contract from the paper's Table 4: a corrupted output
should imply a prior detection.  Escapes through the compare-to-store
window are a *measured* property of the design (the paper's ACF is not
100%), so fault findings are ``info`` severity except where the repo's
own campaigns prove exact coverage (LDS upsets under Intra+LDS and
Inter, where the structure is fully inside the SoR).

Programs carrying ``protect`` ops additionally get a region-sourced
*selective* RMT run (see :func:`selective_spec`): unfaulted it must be
bit-identical to baseline with zero detections, certifying the partial
sphere-of-replication machinery on generator-shaped regions.

The per-run compile hooks (``rmt_pass``, ``extra_passes`` on
:class:`RunSpec`) exist so tests can *plant* bugs — a pass that skips an
output comparison, a store off-by-one — and prove the oracle flags
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compiler.pipeline import compile_kernel
from ..faults.injector import FaultHook, random_plan
from ..gpu.engine import SimulationError
from ..orchestrator.seeding import trial_rng
from ..runtime.api import Session
from .program import FuzzProgram

#: Watchdog: unfaulted RMT runs get this many times the baseline's
#: cycles (plus slack) before the engine declares a hang.
HANG_BUDGET_FACTOR = 50
HANG_BUDGET_SLACK = 2_000_000

#: Fault targets cycled through in fault mode.
_FAULT_TARGETS = ("vgpr", "sgpr", "lds")


@dataclass
class RunSpec:
    """One compiler configuration to run differentially."""

    variant: str
    optimize: bool = False
    rmt_pass: object = None          # planted-bug hook: replaces the stock pass
    extra_passes: Tuple = ()         # planted-bug hook: appended after it
    lint: bool = True

    @property
    def label(self) -> str:
        return f"{self.variant}@O{int(self.optimize)}"


def default_runs() -> List[RunSpec]:
    """The standard differential matrix (baseline excluded)."""
    out = [RunSpec("original", optimize=True)]
    for variant in ("intra+lds", "intra-lds", "inter"):
        for optimize in (False, True):
            out.append(RunSpec(variant, optimize=optimize))
    return out


def _has_protect(ops) -> bool:
    return any(op.kind == "protect" or _has_protect(op.body)
               or _has_protect(op.orelse) for op in ops)


def selective_spec() -> RunSpec:
    """A region-sourced selective-RMT run (partial SoR contract).

    Carried as an explicit ``rmt_pass`` so the fault probe skips it —
    a fault at an unprotected exit escaping is the *declared* contract,
    not a finding — while the unfaulted differential checks still apply
    in full: a selective build must be bit-identical to baseline and a
    detection on a clean run is the comparison crying wolf.
    """
    from ..compiler.passes.rmt_selective import (
        SelectiveOptions, SelectiveRmtPass,
    )

    return RunSpec("selective",
                   rmt_pass=SelectiveRmtPass(SelectiveOptions(source="regions")))


@dataclass
class RunResult:
    """Outcome of one compile+launch of the program."""

    label: str
    status: str                      # 'ok' | 'crash' | 'hang'
    error: str = ""
    detections: int = 0
    cycles: float = 0.0
    memory: Optional[Dict[str, np.ndarray]] = None


@dataclass
class Finding:
    """One oracle divergence (or fault-mode observation)."""

    kind: str        # miscompare | false_detection | crash | hang |
                     # baseline_failure | fault_sdc | fault_hang
    severity: str    # 'error' | 'info'
    program: str
    run: str
    detail: str
    seed: Optional[int] = None

    def to_json(self) -> Dict:
        return {"kind": self.kind, "severity": self.severity,
                "program": self.program, "run": self.run,
                "detail": self.detail, "seed": self.seed}


@dataclass
class OracleReport:
    """Everything ``check_program`` learned about one program."""

    program: str
    digest: str
    findings: List[Finding] = field(default_factory=list)
    runs: List[RunResult] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def ok(self) -> bool:
        return not self.errors


# ---------------------------------------------------------------------------
# Single runs
# ---------------------------------------------------------------------------


def run_program(
    prog: FuzzProgram,
    spec: RunSpec,
    cycle_budget: Optional[float] = None,
    fault_hook: Optional[FaultHook] = None,
    fault_plan=None,
) -> RunResult:
    """Compile and launch ``prog`` under one configuration.

    The kernel IR is rebuilt from the spec every time (cheap, and keeps
    each run's provenance independent), but the compile itself is served
    by the content-addressed compile cache: structurally identical
    rebuilds hash to the same key, so the fault probe's repeated
    recompiles of one spec pay lint + TV exactly once.  Planted
    ``rmt_pass``/``extra_passes`` hooks participate in the cache key —
    a buggy-pass run can never be served the stock compile.
    """
    try:
        compiled = compile_kernel(
            prog.build(),
            variant=spec.variant,
            optimize=spec.optimize,
            lint=spec.lint,
            rmt_pass=spec.rmt_pass,
            extra_passes=spec.extra_passes,
        )
    except Exception as e:  # noqa: BLE001 - any compile failure is the finding
        return RunResult(spec.label, "crash", error=f"compile: {e}")

    if fault_plan is not None:
        fault_hook = FaultHook(
            fault_plan, scalar_reg_ids=compiled.uniformity.uniform_regs)
    session = Session.with_cycle_budget(cycle_budget)
    bindings = {
        b.name: session.upload(f"{prog.name}.{b.name}", b.initial_data())
        for b in prog.buffers
    }
    scalars = {s.name: s.value for s in prog.scalars}
    try:
        result = session.launch(
            compiled, prog.global_size, prog.local_size, bindings,
            scalars=scalars, fault_hook=fault_hook,
        )
    except SimulationError as e:
        return RunResult(spec.label, "hang", error=str(e))
    except Exception as e:  # noqa: BLE001 - engine bug == crash finding
        return RunResult(spec.label, "crash", error=f"launch: {e}")

    memory = {name: session.download(buf) for name, buf in bindings.items()}
    return RunResult(
        spec.label, "ok",
        detections=len(result.detections),
        cycles=result.cycles,
        memory=memory,
    )


def _first_diff(a: np.ndarray, b: np.ndarray) -> str:
    au, bu = a.view(np.uint32), b.view(np.uint32)
    idx = np.nonzero(au != bu)[0]
    i = int(idx[0])
    return (f"{len(idx)} word(s) differ, first at [{i}]: "
            f"baseline={a[i]!r} (0x{int(au[i]):08x}) vs "
            f"got={b[i]!r} (0x{int(bu[i]):08x})")


def _diff_memory(base: Dict[str, np.ndarray],
                 other: Dict[str, np.ndarray]) -> List[str]:
    """Bitwise comparison; returns one description per differing buffer."""
    diffs = []
    for name in base:
        a, b = base[name], other[name]
        if a.tobytes() != b.tobytes():
            diffs.append(f"buffer {name!r}: {_first_diff(a, b)}")
    return diffs


# ---------------------------------------------------------------------------
# The oracle
# ---------------------------------------------------------------------------


def check_program(
    prog: FuzzProgram,
    runs: Optional[Sequence[RunSpec]] = None,
    faults: int = 0,
    fault_seed: int = 0,
    max_fault_instr: int = 80,
) -> OracleReport:
    """Differentially test one program; return every divergence found."""
    seed = prog.meta.get("seed")
    report = OracleReport(program=prog.name, digest=prog.digest())

    def found(kind: str, severity: str, run: str, detail: str) -> None:
        report.findings.append(Finding(
            kind=kind, severity=severity, program=prog.name,
            run=run, detail=detail, seed=seed))

    problems = prog.validate()
    if problems:
        found("baseline_failure", "error", "spec", "; ".join(problems))
        return report

    baseline_spec = RunSpec("original", optimize=False)
    baseline = run_program(prog, baseline_spec)
    report.runs.append(baseline)
    if baseline.status != "ok":
        found("baseline_failure", "error", baseline.label,
              f"{baseline.status}: {baseline.error}")
        return report
    if baseline.detections:
        found("false_detection", "error", baseline.label,
              f"{baseline.detections} detection(s) on an unfaulted "
              "untransformed run")

    budget = HANG_BUDGET_FACTOR * baseline.cycles + HANG_BUDGET_SLACK
    specs = list(default_runs() if runs is None else runs)
    if runs is None and _has_protect(prog.ops):
        specs.append(selective_spec())
    for spec in specs:
        run = run_program(prog, spec, cycle_budget=budget)
        report.runs.append(run)
        if run.status != "ok":
            found(run.status, "error", run.label, run.error)
            continue
        if run.detections:
            found("false_detection", "error", run.label,
                  f"{run.detections} detection(s) on an unfaulted run")
        for diff in _diff_memory(baseline.memory, run.memory):
            found("miscompare", "error", run.label, diff)

    if faults > 0:
        _check_faults(prog, report, baseline, budget, specs,
                      faults, fault_seed, max_fault_instr, found)
    return report


def _lds_in_sor(variant: str) -> bool:
    return variant == "inter" or variant == "intra+lds"


def _check_faults(prog, report, baseline, budget, specs, faults,
                  fault_seed, max_fault_instr, found) -> None:
    """SoR-coverage probe: corrupted output should imply detection."""
    rmt_specs = [s for s in specs
                 if s.variant != "original" and s.rmt_pass is None]
    if not rmt_specs:
        return
    for i in range(faults):
        spec = rmt_specs[i % len(rmt_specs)]
        target = _FAULT_TARGETS[(i // len(rmt_specs)) % len(_FAULT_TARGETS)]
        if target == "lds" and not (prog.lds or _lds_in_sor(spec.variant)):
            target = "vgpr"
        plan = random_plan(trial_rng(fault_seed, i), target,
                           max_wave=8, max_instr=max_fault_instr)
        run = run_program(prog, spec, cycle_budget=budget, fault_plan=plan)
        label = f"{run.label}+fault[{i}:{target}]"
        if run.status == "hang":
            # Detectable-unrecoverable: the watchdog fired, no silent lie.
            found("fault_hang", "info", label, run.error)
            continue
        if run.status == "crash":
            found("crash", "error", label, run.error)
            continue
        if run.detections:
            continue                      # detected before any store: fine
        diffs = _diff_memory(baseline.memory, run.memory)
        if not diffs:
            continue                      # masked: fine
        # Silent corruption.  Exact-coverage structures (LDS fully inside
        # the SoR) make this an error; register targets can escape through
        # the compare-to-store window, which the paper itself measures.
        severity = ("error" if target == "lds" and _lds_in_sor(spec.variant)
                    else "info")
        found("fault_sdc", severity, label,
              f"SDC with no detection ({target} upset): " + "; ".join(diffs))


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


def format_findings(report: OracleReport) -> str:
    lines = [f"program {report.program} (digest {report.digest}): "
             f"{len(report.runs)} runs, {len(report.findings)} finding(s), "
             f"{len(report.errors)} error(s)"]
    for f in report.findings:
        lines.append(f"  [{f.severity}] {f.kind} @ {f.run}: {f.detail}")
    if not report.findings:
        lines.append("  all variants bit-identical, zero detections")
    return "\n".join(lines)
