"""Greedy reproducer minimization.

Given a program that makes the oracle report errors, ``shrink_program``
searches for a smaller program that still reports *the same kind* of
error, by repeatedly trying three reductions until a fixpoint:

1. **truncate-tail** — cut the top-level op list at a point (coarse,
   binary-style, tried first because one success removes many ops);
2. **delete-op** — remove one op anywhere in the tree (deepest sites
   first, so block contents drain before their containers);
3. **unwrap-block** — replace an ``if``/``for`` node with its body
   contents spliced inline.

Every candidate must pass :meth:`FuzzProgram.validate` (no dangling
value references) before the expensive oracle predicate runs.  The
predicate sees a deep-copied spec, so rejected candidates leave no
trace.

The default predicate, :func:`same_errors_predicate`, matches on the
``(kind, run)`` signature of the original report's error findings —
shrinking a miscompare must not "succeed" by mutating it into an
unrelated crash.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from .oracle import OracleReport, RunSpec, check_program
from .program import FuzzProgram, Op

Predicate = Callable[[FuzzProgram], bool]
Path = Tuple  # alternating (index, arm) steps into nested op bodies


@dataclass
class ShrinkResult:
    program: FuzzProgram
    ops_before: int
    ops_after: int
    attempts: int
    rounds: int


def count_ops(prog: FuzzProgram) -> int:
    n = 0

    def walk(ops: Sequence[Op]) -> None:
        nonlocal n
        for op in ops:
            n += 1
            walk(op.body)
            walk(op.orelse)

    walk(prog.ops)
    return n


def same_errors_predicate(
    original: OracleReport,
    runs: Optional[Sequence[RunSpec]] = None,
) -> Predicate:
    """Candidate keeps the bug iff it reproduces one of the original
    error signatures (finding kind on the same run label)."""
    wanted = {(f.kind, f.run) for f in original.errors}

    def predicate(prog: FuzzProgram) -> bool:
        report = check_program(prog, runs=runs)
        return any((f.kind, f.run) in wanted for f in report.errors)

    return predicate


# -- tree navigation --------------------------------------------------------


def _resolve(prog: FuzzProgram, path: Path) -> List[Op]:
    """The op list addressed by ``path`` ('' = top level)."""
    ops: List[Op] = prog.ops
    for idx, arm in path:
        ops = getattr(ops[idx], arm)
    return ops


def _sites(prog: FuzzProgram) -> List[Tuple[Path, int, int]]:
    """All (container_path, index, depth) op sites, deepest first."""
    out: List[Tuple[Path, int, int]] = []

    def walk(ops: Sequence[Op], path: Path, depth: int) -> None:
        for i, op in enumerate(ops):
            out.append((path, i, depth))
            walk(op.body, path + ((i, "body"),), depth + 1)
            walk(op.orelse, path + ((i, "orelse"),), depth + 1)

    walk(prog.ops, (), 0)
    out.sort(key=lambda s: -s[2])
    return out


def _try(prog: FuzzProgram, mutate, predicate: Predicate
         ) -> Optional[FuzzProgram]:
    cand = copy.deepcopy(prog)
    mutate(cand)
    if cand.validate():
        return None
    return cand if predicate(cand) else None


# -- the shrinker -----------------------------------------------------------


def shrink_program(
    prog: FuzzProgram,
    predicate: Predicate,
    max_rounds: int = 8,
) -> ShrinkResult:
    """Minimize ``prog`` while ``predicate`` stays true.

    ``predicate(prog)`` must be true for the input program itself;
    raises ``ValueError`` otherwise (a non-reproducing input would
    "shrink" to garbage).
    """
    if not predicate(prog):
        raise ValueError("predicate does not hold on the input program")

    current = copy.deepcopy(prog)
    attempts = 0
    rounds = 0

    for _ in range(max_rounds):
        rounds += 1
        before = count_ops(current)

        # 1. truncate-tail: binary-style cuts of the top-level list.
        cut = len(current.ops) // 2
        while cut >= 1:
            def truncate(p, n=len(current.ops) - cut):
                del p.ops[n:]
            attempts += 1
            cand = _try(current, truncate, predicate)
            if cand is not None:
                current = cand
            cut //= 2

        # 2. delete-op, deepest sites first, until a pass stalls.
        progress = True
        while progress:
            progress = False
            for path, idx, _depth in _sites(current):
                def delete(p, path=path, idx=idx):
                    del _resolve(p, path)[idx]
                attempts += 1
                cand = _try(current, delete, predicate)
                if cand is not None:
                    current = cand
                    progress = True
                    break  # sites are stale after a structural change

        # 3. unwrap blocks once deletes stop helping.
        progress = True
        while progress:
            progress = False
            for path, idx, _depth in _sites(current):
                node = _resolve(current, path)[idx]
                if node.kind not in ("if", "for", "protect"):
                    continue

                def unwrap(p, path=path, idx=idx):
                    lst = _resolve(p, path)
                    n = lst[idx]
                    lst[idx:idx + 1] = list(n.body) + list(n.orelse)
                attempts += 1
                cand = _try(current, unwrap, predicate)
                if cand is not None:
                    current = cand
                    progress = True
                    break

        if count_ops(current) == before:
            break

    current.meta = dict(prog.meta)
    current.meta["shrunk_from"] = prog.digest()
    current.meta["shrink_attempts"] = attempts
    return ShrinkResult(
        program=current,
        ops_before=count_ops(prog),
        ops_after=count_ops(current),
        attempts=attempts,
        rounds=rounds,
    )
