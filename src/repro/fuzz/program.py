"""Serializable fuzz-program representation.

A :class:`FuzzProgram` is a *specification* of one kernel plus its
launch: buffer/scalar declarations, NDRange, and a tree of :class:`Op`
records in an SSA-ish value-id form.  The spec — not the built IR — is
the unit the fuzzing subsystem passes around because it supports the
three operations the differential pipeline needs:

* **replay**: :meth:`FuzzProgram.build` deterministically interprets the
  ops through the builder DSL, so the same spec can be compiled fresh
  for every RMT variant (compiler passes mutate kernels; specs are
  immutable sources of truth);
* **shrinking**: ops form a flat-enough tree that
  :mod:`repro.fuzz.shrink` can delete instructions or unwrap blocks and
  revalidate cheaply;
* **reproduction**: dataclass reprs are valid Python constructor calls,
  so :meth:`FuzzProgram.to_python` can dump any program — fuzz-found or
  hand-written — as a standalone runnable script for ``tests/corpus/``.

Ops reference earlier results by integer value id.  :meth:`validate`
checks referential integrity (defined-before-use, names resolve, index
masks in bounds) without building IR, which is what keeps the shrinker
honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..ir.builder import KernelBuilder
from ..ir.core import Kernel, VReg
from ..ir.types import DType

#: Spec dtype names → IR dtypes (predicates are internal-only).
DTYPES: Dict[str, DType] = {"u32": DType.U32, "i32": DType.I32, "f32": DType.F32}

#: numpy dtypes for host-side buffers.
NP_DTYPES = {"u32": np.uint32, "i32": np.int32, "f32": np.float32}

#: Op kinds a spec may contain (see :class:`Op`).
OP_KINDS = (
    "const", "scalar", "special", "alu", "cmp", "predop", "select",
    "load", "store", "load_local", "store_local", "atomic", "barrier",
    "if", "for", "protect",
)


@dataclass
class BufferSpec:
    """One global buffer: name, dtype, size, role, and initial contents.

    Roles enforce the determinism discipline the differential oracle
    relies on (every run must be bit-reproducible regardless of
    wavefront scheduling):

    * ``in``  — read-only; loads may use arbitrary (masked) indices;
    * ``out`` — stores only at the buffer's fixed per-work-item
      bijection; loads only at the same index (own cell);
    * ``acc`` — accumulator: integer buffers touched only by
      commutative atomics (``add``/``max``/``or``), never loaded.
    """

    name: str
    dtype: str
    nelems: int
    role: str = "in"
    init: str = "zeros"      # 'zeros' | 'iota' | 'random'
    seed: int = 0            # stream for 'random' init

    def initial_data(self) -> np.ndarray:
        npdt = NP_DTYPES[self.dtype]
        if self.init == "zeros":
            return np.zeros(self.nelems, npdt)
        if self.init == "iota":
            return np.arange(self.nelems, dtype=npdt)
        if self.init == "random":
            rng = np.random.default_rng(np.random.SeedSequence(self.seed))
            if self.dtype == "f32":
                return (rng.standard_normal(self.nelems) * 8).astype(npdt)
            return rng.integers(0, 2**32, size=self.nelems,
                                dtype=np.uint32).view(npdt).copy()
        raise ValueError(f"unknown buffer init {self.init!r}")


@dataclass
class ScalarSpec:
    """One scalar kernel parameter with its launch-time value."""

    name: str
    dtype: str
    value: float


@dataclass
class Op:
    """One spec node.  Meaning of the fields by ``kind``:

    ========== ======================================================
    kind       fields used
    ========== ======================================================
    const      result, dtype, imm (the immediate)
    scalar     result, ref (scalar param name)
    special    result, op ('global_id'…), imm (dim)
    alu        result, dtype, op, args (1–2 value ids)
    cmp        result, op ('eq'…), args (2)
    predop     result, op ('and'/'or'/'not'), args (1–2 predicate ids)
    select     result, args (pred, a, b)
    load       result, ref (buffer), args (index id)
    store      ref (buffer), args (index id, value id)
    load_local result, ref (lds name), args (index id)
    store_local ref (lds name), args (index id, value id)
    atomic     op ('add'/'max'/'or'), ref (buffer), args (index, value)
    barrier    —
    if         args (pred id), body, orelse
    for        result (induction var id), imm (start, stop, step) with
               stop overridden by args[0] when args is non-empty, body
    protect    body (NOT control flow: statements stay in the enclosing
               scope; marks a selective-RMT protection region)
    ========== ======================================================
    """

    kind: str
    result: Optional[int] = None
    dtype: Optional[str] = None
    op: Optional[str] = None
    ref: Optional[str] = None
    imm: object = None
    args: Tuple[int, ...] = ()
    body: List["Op"] = field(default_factory=list)
    orelse: List["Op"] = field(default_factory=list)


@dataclass
class LdsSpec:
    """One LDS allocation (elements per work-group)."""

    name: str
    dtype: str
    nelems: int


@dataclass
class FuzzProgram:
    """A complete, launchable program specification."""

    name: str
    global_size: int
    local_size: int
    buffers: List[BufferSpec] = field(default_factory=list)
    scalars: List[ScalarSpec] = field(default_factory=list)
    lds: List[LdsSpec] = field(default_factory=list)
    ops: List[Op] = field(default_factory=list)
    #: Provenance: generator seed, shrink trail, … (never semantic).
    meta: Dict[str, object] = field(default_factory=dict)

    # -- IR construction ---------------------------------------------------

    def build(self) -> Kernel:
        """Interpret the spec into a fresh IR kernel."""
        b = KernelBuilder(self.name)
        env: Dict[int, VReg] = {}
        bufs = {s.name: b.buffer_param(s.name, DTYPES[s.dtype])
                for s in self.buffers}
        for s in self.scalars:
            env[("scalar", s.name)] = b.scalar_param(s.name, DTYPES[s.dtype])  # type: ignore[index]
        allocs = {s.name: b.local_alloc(s.name, DTYPES[s.dtype], s.nelems)
                  for s in self.lds}
        self._build_body(b, self.ops, env, bufs, allocs)
        kernel = b.finish()
        kernel.metadata["local_size"] = (self.local_size, 1, 1)
        kernel.metadata["fuzz"] = dict(self.meta)
        return kernel

    def _build_body(self, b: KernelBuilder, ops: List[Op], env, bufs, allocs) -> None:
        for op in ops:
            self._build_op(b, op, env, bufs, allocs)

    def _build_op(self, b: KernelBuilder, op: Op, env, bufs, allocs) -> None:
        k = op.kind
        if k == "const":
            env[op.result] = b.const(op.imm, DTYPES[op.dtype])
        elif k == "scalar":
            env[op.result] = b.mov(env[("scalar", op.ref)])
        elif k == "special":
            env[op.result] = getattr(b, op.op)(int(op.imm or 0))
        elif k == "alu":
            args = [env[a] for a in op.args]
            if op.op == "bitcast":
                env[op.result] = b.bitcast(args[0], DTYPES[op.dtype])
                return
            method = {"and": "and_", "or": "or_", "not": "not_"}.get(op.op, op.op)
            env[op.result] = getattr(b, method)(*args)
        elif k == "cmp":
            env[op.result] = getattr(b, op.op)(env[op.args[0]], env[op.args[1]])
        elif k == "predop":
            method = {"and": "pand", "or": "por", "not": "pnot"}[op.op]
            env[op.result] = getattr(b, method)(*[env[a] for a in op.args])
        elif k == "select":
            p, a, v = (env[a] for a in op.args)
            env[op.result] = b.select(p, a, v)
        elif k == "load":
            env[op.result] = b.load(bufs[op.ref], env[op.args[0]])
        elif k == "store":
            b.store(bufs[op.ref], env[op.args[0]], env[op.args[1]])
        elif k == "load_local":
            env[op.result] = b.load_local(allocs[op.ref], env[op.args[0]])
        elif k == "store_local":
            b.store_local(allocs[op.ref], env[op.args[0]], env[op.args[1]])
        elif k == "atomic":
            b.atomic(op.op, bufs[op.ref], env[op.args[0]], env[op.args[1]],
                     want_old=False)
        elif k == "barrier":
            b.barrier()
        elif k == "if":
            with b.if_else(env[op.args[0]]) as orelse:
                self._build_body(b, op.body, env, bufs, allocs)
            if op.orelse:
                with orelse():
                    self._build_body(b, op.orelse, env, bufs, allocs)
        elif k == "for":
            start, stop, step = op.imm
            stop_operand = env[op.args[0]] if op.args else stop
            with b.for_range(start, stop_operand, step) as i:
                env[op.result] = i
                self._build_body(b, op.body, env, bufs, allocs)
        elif k == "protect":
            with b.protect():
                self._build_body(b, op.body, env, bufs, allocs)
        else:  # pragma: no cover - validate() rejects unknown kinds
            raise ValueError(f"unknown op kind {k!r}")

    # -- static validation -------------------------------------------------

    def validate(self) -> List[str]:
        """Check spec integrity without building IR; return problems."""
        problems: List[str] = []
        if self.global_size % self.local_size:
            problems.append("global_size not a multiple of local_size")
        buf_names = {s.name for s in self.buffers}
        lds_names = {s.name for s in self.lds}
        scalar_names = {s.name for s in self.scalars}
        if len(buf_names) != len(self.buffers):
            problems.append("duplicate buffer names")

        defined: set = set()

        def walk(ops: List[Op], depth: int) -> None:
            for op in ops:
                if op.kind not in OP_KINDS:
                    problems.append(f"unknown op kind {op.kind!r}")
                    continue
                refs = op.args if op.kind != "for" else op.args[:1]
                for a in refs:
                    if a not in defined:
                        problems.append(f"{op.kind} reads undefined value {a}")
                if op.kind == "scalar" and op.ref not in scalar_names:
                    problems.append(f"scalar op references unknown {op.ref!r}")
                if op.kind in ("load", "store", "atomic") and op.ref not in buf_names:
                    problems.append(f"{op.kind} references unknown buffer {op.ref!r}")
                if op.kind in ("load_local", "store_local") and op.ref not in lds_names:
                    problems.append(f"{op.kind} references unknown lds {op.ref!r}")
                if op.kind == "for":
                    if op.result is not None:
                        defined.add(op.result)
                    walk(op.body, depth + 1)
                elif op.kind == "if":
                    walk(op.body, depth + 1)
                    walk(op.orelse, depth + 1)
                elif op.kind == "protect":
                    # Not a scope: nested definitions stay visible after.
                    walk(op.body, depth)
                elif op.result is not None:
                    defined.add(op.result)

        walk(self.ops, 0)
        return problems

    # -- hashing / serialization -------------------------------------------

    def spec_repr(self) -> str:
        """Canonical textual form (dataclass reprs are deterministic)."""
        return repr((self.name, self.global_size, self.local_size,
                     self.buffers, self.scalars, self.lds, self.ops))

    def digest(self) -> str:
        import hashlib

        return hashlib.sha256(self.spec_repr().encode()).hexdigest()[:16]

    def to_python(self, provenance: str = "") -> str:
        """Render a standalone runnable reproducer script.

        The emitted file defines ``make_program()`` (imported by the
        corpus replay test) and, run as a script, replays the full
        differential oracle and prints its report.
        """
        import pprint

        header = f'"""Fuzz reproducer: {self.name}.\n\n{provenance}\n"""'
        body = pprint.pformat(self, indent=1, width=88, sort_dicts=False)
        return f'''{header}

from repro.fuzz.program import (  # noqa: F401
    BufferSpec, FuzzProgram, LdsSpec, Op, ScalarSpec,
)


def make_program() -> FuzzProgram:
    return {_indent(body, 4)}


if __name__ == "__main__":
    from repro.fuzz.oracle import check_program, format_findings

    report = check_program(make_program())
    print(format_findings(report))
    raise SystemExit(1 if report.errors else 0)
'''


def _indent(text: str, n: int) -> str:
    pad = " " * n
    lines = text.splitlines()
    return "\n".join([lines[0]] + [pad + l for l in lines[1:]])
