"""Differential fuzzing subsystem: random kernel generation plus a
multi-way RMT equivalence oracle (see ``python -m repro.fuzz --help``).

The pieces:

* :mod:`repro.fuzz.program` — serializable program specs (build IR,
  make inputs, render runnable reproducers);
* :mod:`repro.fuzz.generator` — seeded, determinism-by-construction
  random program generation;
* :mod:`repro.fuzz.oracle` — run a program through baseline + every RMT
  variant at O0/O1 and cross-check memory, detections, and (optionally)
  fault-injection SoR coverage;
* :mod:`repro.fuzz.shrink` — greedy reproducer minimization;
* :mod:`repro.fuzz.corpus` — hand-crafted edge-shape regression corpus;
* :mod:`repro.fuzz.cli` — the campaign driver behind ``-m repro.fuzz``.
"""

from .generator import GenConfig, generate_program
from .oracle import (
    Finding,
    OracleReport,
    RunSpec,
    check_program,
    default_runs,
    format_findings,
    run_program,
)
from .program import BufferSpec, FuzzProgram, LdsSpec, Op, ScalarSpec
from .shrink import ShrinkResult, same_errors_predicate, shrink_program

__all__ = [
    "BufferSpec",
    "Finding",
    "FuzzProgram",
    "GenConfig",
    "LdsSpec",
    "Op",
    "OracleReport",
    "RunSpec",
    "ScalarSpec",
    "ShrinkResult",
    "check_program",
    "default_runs",
    "format_findings",
    "generate_program",
    "run_program",
    "same_errors_predicate",
    "shrink_program",
]
