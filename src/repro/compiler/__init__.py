"""Compiler layer: pass framework, analyses, and the RMT transformations.

This package is the paper's primary contribution: automatic compiler
transformations that convert GPGPU kernels into redundantly multithreaded
versions for transient-fault detection, in three flavors with different
spheres of replication (Intra-Group +/-LDS, Inter-Group), plus the
register-level fast-communication optimization of Section 8.
"""

from .pass_manager import Pass, PassManager, clone_kernel
from .pipeline import (
    RMT_VARIANTS,
    CompiledKernel,
    compile_kernel,
    rmt_pass_for,
)
from .analysis.dataflow import build_cfg, definite_assignment, liveness
from .analysis.resources import estimate_resources
from .analysis.sor import STRUCTURES, SorEntry, SorReport, analyze_sor
from .analysis.uniformity import UniformityInfo, analyze_uniformity
from .lint import Diagnostic, LintError, check_kernel, run_lints
from .passes.optimize import (
    CommonSubexpressionPass,
    ConstantFoldingPass,
    DeadCodeEliminationPass,
    optimize,
)
from .passes.rmt_common import RmtOptions
from .passes.rmt_inter import InterGroupRmtPass
from .passes.rmt_intra import IntraGroupRmtPass

__all__ = [
    "CommonSubexpressionPass",
    "CompiledKernel",
    "ConstantFoldingPass",
    "DeadCodeEliminationPass",
    "Diagnostic",
    "InterGroupRmtPass",
    "IntraGroupRmtPass",
    "LintError",
    "Pass",
    "PassManager",
    "RMT_VARIANTS",
    "RmtOptions",
    "STRUCTURES",
    "SorEntry",
    "SorReport",
    "UniformityInfo",
    "analyze_sor",
    "analyze_uniformity",
    "build_cfg",
    "check_kernel",
    "clone_kernel",
    "compile_kernel",
    "definite_assignment",
    "estimate_resources",
    "liveness",
    "optimize",
    "rmt_pass_for",
    "run_lints",
]
