"""Compiler layer: pass framework, analyses, and the RMT transformations.

This package is the paper's primary contribution: automatic compiler
transformations that convert GPGPU kernels into redundantly multithreaded
versions for transient-fault detection, in three flavors with different
spheres of replication (Intra-Group +/-LDS, Inter-Group), plus the
register-level fast-communication optimization of Section 8.
"""

from .pass_manager import Pass, PassManager, clone_kernel
from .pipeline import (
    RMT_VARIANTS,
    CompiledKernel,
    compile_kernel,
    rmt_pass_for,
)
from .analysis.resources import estimate_resources
from .analysis.sor import STRUCTURES, SorEntry, SorReport, analyze_sor
from .analysis.uniformity import UniformityInfo, analyze_uniformity
from .passes.optimize import (
    CommonSubexpressionPass,
    ConstantFoldingPass,
    DeadCodeEliminationPass,
    optimize,
)
from .passes.rmt_common import RmtOptions
from .passes.rmt_inter import InterGroupRmtPass
from .passes.rmt_intra import IntraGroupRmtPass

__all__ = [
    "CommonSubexpressionPass",
    "CompiledKernel",
    "ConstantFoldingPass",
    "DeadCodeEliminationPass",
    "InterGroupRmtPass",
    "IntraGroupRmtPass",
    "Pass",
    "PassManager",
    "RMT_VARIANTS",
    "RmtOptions",
    "STRUCTURES",
    "SorEntry",
    "SorReport",
    "UniformityInfo",
    "analyze_sor",
    "analyze_uniformity",
    "clone_kernel",
    "compile_kernel",
    "estimate_resources",
    "optimize",
    "rmt_pass_for",
]
