"""Content-addressed compile cache.

Fault campaigns, fuzz sweeps, and the figure harness compile the same
kernel/variant pair thousands of times — and since translation
validation landed, every one of those compiles also pays lint + TV.
This module keys ``compile_kernel`` results by a *stable structural
hash* of the kernel IR plus every compile option that can change the
result, so the expensive pipeline runs once per distinct compile.

The fingerprint is content-addressed, not identity-addressed:

* virtual registers are numbered by first occurrence in a canonical
  walk (parameters → locals → metadata → body), so alpha-renaming a
  register does **not** change the key — register names are never
  semantic in this IR;
* buffer/scalar parameter names, LDS allocation names, and metadata
  **do** participate — the runtime binds buffers and LDS by name and
  the range/TV analyses read metadata, so renaming those is a semantic
  change;
* every value is serialised through a canonical encoder (exact float
  hex, sorted dict order, enum values) so the hash is identical across
  process restarts and platforms.

Because metadata participates, builder ``protect()`` region annotations
(``metadata["protect"]``) are part of the kernel fingerprint, and
because a pass's public attributes participate, the selective-RMT
threshold/source (:class:`~repro.compiler.passes.rmt_selective.SelectiveOptions`)
are part of the pass fingerprint — a partially-protected build can
never alias the cache entry of a fully-protected one, even though both
compile the same kernel body under the same variant string.

Compile *options* — variant, communication, optimize, verify/lint, the
resolved validate flag, and the planted-bug hooks ``rmt_pass`` /
``extra_passes`` — are folded into the key.  A pass object whose
configuration cannot be canonically serialised (e.g. one closing over a
lambda) raises :class:`Uncacheable` internally and the compile simply
bypasses the cache; a differential test planting such a pass can never
be served a stale stock compile.

Two tiers:

* **memory** — a process-wide dict of finished
  :class:`~repro.compiler.pipeline.CompiledKernel` objects.  Campaign
  and fuzz workers are *forked* from the orchestrating process, so a
  parent that compiles before fan-out prewarms every worker.
* **disk** (optional) — pickles of the *transformed kernel only*.  The
  backend analyses (uniformity, resources, SoR) hold ``id()``-based
  instruction sets that are meaningless in another process, so a disk
  hit re-runs the cheap annotation tail; lint and TV were already paid
  when the entry was stored.  Any unpickling problem is treated as
  corruption and degrades to a clean full recompile.

The default tier selection reads ``REPRO_COMPILE_CACHE`` once at
import: ``0``/``off`` disables caching, a path enables the disk tier
there, anything else (including unset) means memory-only.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import types
from dataclasses import dataclass, field, fields, is_dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.core import (
    Alu,
    AtomicGlobal,
    Barrier,
    Cmp,
    Const,
    If,
    Kernel,
    LoadGlobal,
    LoadLocal,
    LoadParam,
    PredOp,
    ReportError,
    Select,
    SpecialId,
    StoreGlobal,
    StoreLocal,
    Swizzle,
    While,
)
from ..ir.types import DType


class Uncacheable(Exception):
    """Raised when a compile's inputs have no canonical serialisation."""


# ---------------------------------------------------------------------------
# Canonical value encoding
# ---------------------------------------------------------------------------

_MAX_DEPTH = 12


def _canon(obj, depth: int = 0) -> str:
    """Deterministic, process-independent text encoding of a value."""
    if depth > _MAX_DEPTH:
        raise Uncacheable("value nesting too deep")
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return repr(obj)
    if isinstance(obj, float):
        return obj.hex()
    if isinstance(obj, np.generic):
        return _canon(obj.item(), depth + 1)
    if isinstance(obj, DType):
        return f"dtype:{obj.value}"
    if isinstance(obj, (list, tuple)):
        inner = ",".join(_canon(v, depth + 1) for v in obj)
        return f"[{inner}]"
    if isinstance(obj, dict):
        items = sorted(
            (_canon(k, depth + 1), _canon(v, depth + 1)) for k, v in obj.items()
        )
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(obj, (set, frozenset)):
        return "{" + ",".join(sorted(_canon(v, depth + 1) for v in obj)) + "}"
    if is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        body = ",".join(
            f"{f.name}={_canon(getattr(obj, f.name), depth + 1)}"
            for f in fields(obj)
        )
        return f"{cls.__module__}.{cls.__qualname__}({body})"
    # Functions carry an (empty) __dict__, so without this guard every
    # lambda would canonicalise to the same "builtins.function()" string
    # and two differently-planted passes could share a cache key.
    if isinstance(obj, (types.FunctionType, types.MethodType,
                        types.BuiltinFunctionType, types.ModuleType,
                        np.ndarray)):
        raise Uncacheable(f"cannot canonicalise {type(obj).__name__}")
    # Plain config-style objects (e.g. compiler passes): class identity
    # plus instance attributes.  Anything exotic — closures, modules,
    # arrays — is refused rather than guessed at.
    d = getattr(obj, "__dict__", None)
    if d is not None:
        cls = type(obj)
        body = ",".join(
            f"{k}={_canon(v, depth + 1)}" for k, v in sorted(d.items())
            if not k.startswith("_")
        )
        return f"{cls.__module__}.{cls.__qualname__}({body})"
    raise Uncacheable(f"cannot canonicalise {type(obj).__name__}")


# ---------------------------------------------------------------------------
# Kernel structural fingerprint
# ---------------------------------------------------------------------------


class _RegNumbering:
    """First-occurrence register slots — the alpha-renaming quotient."""

    def __init__(self) -> None:
        self._slots: Dict[int, str] = {}

    def ref(self, reg) -> str:
        if reg is None:
            return "_"
        key = id(reg)
        slot = self._slots.get(key)
        if slot is None:
            slot = f"%{len(self._slots)}:{reg.dtype.value}"
            self._slots[key] = slot
        return slot


def _fp_body(body: Sequence, regs: _RegNumbering, out: List[str], depth: int = 0) -> None:
    if depth > 64:
        raise Uncacheable("statement nesting too deep")
    r = regs.ref
    for stmt in body:
        cls = stmt.__class__
        if cls is Alu:
            out.append(f"alu.{stmt.op} {r(stmt.dst)},{r(stmt.a)},{r(stmt.b)}")
        elif cls is Cmp:
            out.append(f"cmp.{stmt.op} {r(stmt.dst)},{r(stmt.a)},{r(stmt.b)}")
        elif cls is Const:
            out.append(f"const {r(stmt.dst)},{_canon(stmt.value)}")
        elif cls is LoadParam:
            out.append(f"param {r(stmt.dst)},{stmt.param.name}")
        elif cls is SpecialId:
            out.append(f"sid.{stmt.kind}.{stmt.dim} {r(stmt.dst)}")
        elif cls is PredOp:
            out.append(f"pred.{stmt.op} {r(stmt.dst)},{r(stmt.a)},{r(stmt.b)}")
        elif cls is Select:
            out.append(
                f"select {r(stmt.dst)},{r(stmt.pred)},{r(stmt.a)},{r(stmt.b)}"
            )
        elif cls is Swizzle:
            out.append(
                f"swz.{stmt.and_mask}.{stmt.or_mask}.{stmt.xor_mask} "
                f"{r(stmt.dst)},{r(stmt.src)}"
            )
        elif cls is LoadGlobal:
            out.append(f"ldg {r(stmt.dst)},{stmt.buf.name}[{r(stmt.index)}]")
        elif cls is StoreGlobal:
            out.append(f"stg {stmt.buf.name}[{r(stmt.index)}],{r(stmt.value)}")
        elif cls is LoadLocal:
            out.append(f"ldl {r(stmt.dst)},{stmt.lds.name}[{r(stmt.index)}]")
        elif cls is StoreLocal:
            out.append(f"stl {stmt.lds.name}[{r(stmt.index)}],{r(stmt.value)}")
        elif cls is AtomicGlobal:
            out.append(
                f"atomic.{stmt.op} {r(stmt.dst)},{stmt.buf.name}"
                f"[{r(stmt.index)}],{r(stmt.value)},{r(stmt.compare)}"
            )
        elif cls is Barrier:
            out.append("barrier")
        elif cls is ReportError:
            out.append(f"err.{stmt.code}")
        elif cls is If:
            out.append(f"if {r(stmt.cond)} {{")
            _fp_body(stmt.then_body, regs, out, depth + 1)
            out.append("} else {")
            _fp_body(stmt.else_body, regs, out, depth + 1)
            out.append("}")
        elif cls is While:
            out.append("while {")
            _fp_body(stmt.cond_block, regs, out, depth + 1)
            out.append(f"}} cond {r(stmt.cond)} {{")
            _fp_body(stmt.body, regs, out, depth + 1)
            out.append("}")
        else:
            raise Uncacheable(f"unknown statement {type(stmt).__name__}")


def kernel_fingerprint(kernel: Kernel) -> str:
    """Stable structural hash of one kernel (hex digest).

    Invariant under virtual-register renaming; sensitive to any change
    in opcodes, operand structure, dtypes, parameter/LDS names, constant
    values, control flow, or metadata.
    """
    regs = _RegNumbering()
    lines: List[str] = [f"kernel {kernel.name}"]
    for p in kernel.params:
        lines.append(f"p {type(p).__name__}:{p.name}:{p.dtype.value}")
    for a in kernel.locals:
        lines.append(f"l {a.name}:{a.dtype.value}:{a.nelems}")
    lines.append(f"meta {_canon(kernel.metadata)}")
    _fp_body(kernel.body, regs, lines)
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def pass_fingerprint(p) -> str:
    """Canonical identity of a compiler pass (class + configuration)."""
    if p is None:
        return "none"
    return _canon(p)


def compile_key(
    kernel: Kernel,
    variant: str,
    communication: bool,
    verify: bool,
    optimize: bool,
    lint: bool,
    validate: bool,
    rmt_pass=None,
    extra_passes: Sequence = (),
) -> Optional[str]:
    """Cache key for one ``compile_kernel`` call, or None if uncacheable.

    ``validate`` must already be resolved (the pipeline's ``None``
    default maps to ``lint and verify`` before keying) so that spellings
    requesting identical work share an entry.
    """
    try:
        parts = [
            "v1",
            kernel_fingerprint(kernel),
            f"variant={variant}",
            f"comm={communication}",
            f"verify={verify}",
            f"optimize={optimize}",
            f"lint={lint}",
            f"validate={validate}",
            f"rmt_pass={pass_fingerprint(rmt_pass)}",
            f"extra={[pass_fingerprint(q) for q in extra_passes]}",
        ]
    except Uncacheable:
        return None
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------


@dataclass
class CacheStats:
    mem_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    disk_errors: int = 0
    uncacheable: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class CompileCache:
    """Two-tier (memory + optional disk) compile cache."""

    def __init__(self, disk_dir: Optional[str] = None, max_entries: int = 512):
        self._mem: Dict[str, object] = {}
        self._order: List[str] = []
        self.max_entries = max_entries
        self.disk_dir = disk_dir
        self.stats = CacheStats()
        if disk_dir:
            os.makedirs(disk_dir, exist_ok=True)

    # -- lookup / store ---------------------------------------------------

    def lookup(self, key: str, annotate: Callable[[Kernel, str], object]):
        """Return a cached CompiledKernel for ``key``, or None.

        ``annotate`` rebuilds the process-local backend annotations for
        a disk hit (uniformity/resources/SoR sets are ``id()``-based and
        do not survive pickling).
        """
        hit = self._mem.get(key)
        if hit is not None:
            self.stats.mem_hits += 1
            return hit
        rec = self._disk_load(key)
        if rec is not None:
            kernel, variant = rec
            try:
                compiled = annotate(kernel, variant)
            except Exception:
                # A corrupt-but-unpicklable entry: forget it, recompile.
                self.stats.disk_errors += 1
                self._disk_drop(key)
                self.stats.misses += 1
                return None
            self.stats.disk_hits += 1
            self._mem_put(key, compiled)
            return compiled
        self.stats.misses += 1
        return None

    def store(self, key: str, compiled) -> None:
        self.stats.stores += 1
        self._mem_put(key, compiled)
        self._disk_store(key, compiled)

    def clear(self) -> None:
        self._mem.clear()
        self._order.clear()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._mem)

    # -- memory tier ------------------------------------------------------

    def _mem_put(self, key: str, compiled) -> None:
        if key not in self._mem and len(self._order) >= self.max_entries:
            oldest = self._order.pop(0)
            self._mem.pop(oldest, None)
        if key not in self._mem:
            self._order.append(key)
        self._mem[key] = compiled

    # -- disk tier --------------------------------------------------------

    def _disk_path(self, key: str) -> str:
        return os.path.join(self.disk_dir, f"{key}.pkl")

    def _disk_store(self, key: str, compiled) -> None:
        if not self.disk_dir:
            return
        kernel = compiled.kernel
        # The lowered fused program and the vectorized block closures
        # hold exec()-generated functions that cannot (and need not) be
        # pickled; they are re-lowered / re-generated on load.
        fused_prog = kernel.__dict__.pop("_fused_program", None)
        vec_fns = kernel.__dict__.pop("_vec_fns", None)
        try:
            payload = pickle.dumps(
                {"schema": 1, "variant": compiled.variant, "kernel": kernel},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception:
            self.stats.disk_errors += 1
            return
        finally:
            if fused_prog is not None:
                kernel._fused_program = fused_prog
            if vec_fns is not None:
                kernel._vec_fns = vec_fns
        # Atomic publish so a concurrent reader never sees a torn file.
        try:
            fd, tmp = tempfile.mkstemp(dir=self.disk_dir, suffix=".tmp")
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, self._disk_path(key))
        except OSError:
            self.stats.disk_errors += 1

    def _disk_load(self, key: str) -> Optional[Tuple[Kernel, str]]:
        if not self.disk_dir:
            return None
        path = self._disk_path(key)
        try:
            with open(path, "rb") as fh:
                rec = pickle.load(fh)
            if rec.get("schema") != 1:
                raise ValueError("unknown cache schema")
            kernel = rec["kernel"]
            variant = rec["variant"]
            if not isinstance(kernel, Kernel) or not isinstance(variant, str):
                raise TypeError("malformed cache record")
            return kernel, variant
        except FileNotFoundError:
            return None
        except Exception:
            # Truncated write, bit rot, stale schema, hostile file — all
            # degrade to a recompile, never a crash.
            self.stats.disk_errors += 1
            self._disk_drop(key)
            return None

    def _disk_drop(self, key: str) -> None:
        if not self.disk_dir:
            return
        try:
            os.unlink(self._disk_path(key))
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Process-wide default
# ---------------------------------------------------------------------------

_default_cache: Optional[CompileCache] = None
_initialised = False


def default_cache() -> Optional[CompileCache]:
    """The process-wide cache per ``REPRO_COMPILE_CACHE`` (None = off)."""
    global _default_cache, _initialised
    if not _initialised:
        _initialised = True
        spec = os.environ.get("REPRO_COMPILE_CACHE", "")
        if spec.lower() in ("0", "off", "false"):
            _default_cache = None
        elif spec in ("", "1", "on", "true", "mem", "memory"):
            _default_cache = CompileCache()
        else:
            _default_cache = CompileCache(disk_dir=spec)
    return _default_cache


def set_default_cache(cache: Optional[CompileCache]) -> None:
    """Install (or disable, with None) the process-wide cache."""
    global _default_cache, _initialised
    _default_cache = cache
    _initialised = True


def resolve_cache(cache) -> Optional[CompileCache]:
    """Map ``compile_kernel``'s cache argument to a cache instance.

    ``None`` (the default) selects the process-wide cache, ``False``
    bypasses caching for this compile, and a :class:`CompileCache`
    instance is used as-is.
    """
    if cache is None:
        return default_cache()
    if cache is False:
        return None
    return cache
