"""Intra-Group RMT transformation (Section 6 of the paper).

Duplicates computation *inside* each work-group: the host doubles the
work-group size along dimension 0, and this pass pairs adjacent
work-items into producer/consumer duplicates by splitting the low bit of
the global ID.  Because the pair occupies adjacent lanes of one
wavefront, it executes in lockstep — communication needs no barriers —
and the SIMD lanes and vector registers it uses are fully replicated.

Two flavors (Table 2):

* **+LDS**: every LDS allocation is doubled and redundant accesses are
  remapped into private halves, pulling the LDS inside the SoR; output
  comparisons guard global stores only.
* **−LDS**: LDS allocations stay shared, so local stores also exit the
  SoR and receive output comparisons.

With ``fast_comm`` the producer→consumer exchange uses the register-level
``swizzle`` cross-lane move (Section 8 / Figure 8) instead of an LDS
communication buffer, trading two LDS round-trips for VALU packing ops
and freeing the buffer's LDS footprint.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...ir.builder import KernelBuilder
from ...ir.core import (
    Alu,
    AtomicGlobal,
    Instr,
    Kernel,
    LoadLocal,
    LocalAlloc,
    Stmt,
    StoreGlobal,
    StoreLocal,
    VReg,
)
from ...ir.types import DType
from ..pass_manager import Pass, clone_kernel
from .rmt_common import (
    INTRA_COMM_ADDR,
    INTRA_COMM_VAL,
    RmtOptions,
    flat_size,
    remap_special_ids,
    required_local_size,
    rewrite_stmts,
)


class IntraGroupRmtPass(Pass):
    """Compiler pass implementing Intra-Group RMT (±LDS, ±fast-comm)."""

    def __init__(self, options: RmtOptions = RmtOptions()):
        self.options = options
        lds_tag = "+lds" if options.include_lds else "-lds"
        fast_tag = "_fast" if options.fast_comm else ""
        self.name = f"rmt-intra{lds_tag}{fast_tag}"

    def run(self, kernel: Kernel) -> Kernel:
        opts = self.options
        local_size = required_local_size(kernel)
        orig_flat_local = flat_size(local_size)

        kernel.metadata["rmt"] = {
            "flavor": "intra",
            "include_lds": opts.include_lds,
            "communication": opts.communication,
            "fast_comm": opts.fast_comm,
            "ndrange": "double_local_dim0",
            "original_name": kernel.name,
        }
        kernel.metadata["local_size"] = (
            local_size[0] * 2, local_size[1], local_size[2]
        )
        gs = kernel.metadata.get("global_size")
        if gs is not None:
            gs = (tuple(gs) + (1, 1))[:3] if not isinstance(gs, int) else (gs, 1, 1)
            kernel.metadata["global_size"] = (gs[0] * 2, gs[1], gs[2])
        kernel.name = kernel.name + self._name_suffix()

        original_locals = list(kernel.locals)
        original_body = kernel.body
        kernel.body = []

        # ---- prologue: ID remapping (Section 6.2) ------------------------
        eb = KernelBuilder.attach(kernel, kernel.body)
        raw_gid0 = eb.global_id(0)
        flag_u = eb.and_(raw_gid0, 1)
        # Odd lanes produce, even lanes consume (Figure 8's swizzle moves
        # odd-lane values into even lanes).
        is_producer = eb.ne(flag_u, 0)
        is_consumer = eb.eq(flag_u, 0)
        new_gid0 = eb.shr(raw_gid0, 1)
        new_lid0 = eb.shr(eb.local_id(0), 1)
        new_lsz0 = eb.shr(eb.local_size(0), 1)
        new_gsz0 = eb.shr(eb.global_size(0), 1)

        id_map: Dict[Tuple[str, int], VReg] = {
            ("global_id", 0): new_gid0,
            ("local_id", 0): new_lid0,
            ("local_size", 0): new_lsz0,
            ("global_size", 0): new_gsz0,
        }

        # Flat pair slot inside the (original) work-group, for the LDS
        # communication buffer.
        pair_slot = new_lid0
        if local_size[1] > 1 or local_size[2] > 1:
            lid1 = eb.local_id(1)
            pair_slot = eb.add(pair_slot, eb.mul(lid1, new_lsz0))
            if local_size[2] > 1:
                lid2 = eb.local_id(2)
                stride = eb.mul(new_lsz0, eb.local_size(1))
                pair_slot = eb.add(pair_slot, eb.mul(lid2, stride))

        # ---- LDS duplication (+LDS flavor) --------------------------------
        lds_map: Dict[str, LocalAlloc] = {}
        lds_offsets: Dict[str, VReg] = {}
        if opts.include_lds:
            kernel.locals = []
            for alloc in original_locals:
                doubled = LocalAlloc(alloc.name, alloc.dtype, alloc.nelems * 2)
                kernel.locals.append(doubled)
                lds_map[alloc.name] = doubled
                lds_offsets[alloc.name] = eb.mul(flag_u, alloc.nelems)

        # ---- LDS communication buffers -------------------------------------
        comm_addr = comm_val = None
        if opts.communication and not opts.fast_comm:
            comm_addr = kernel.add_local(INTRA_COMM_ADDR, DType.U32, orig_flat_local)
            comm_val = kernel.add_local(INTRA_COMM_VAL, DType.U32, orig_flat_local)

        rewriter = self._make_rewriter(
            kernel=kernel,
            options=opts,
            is_producer=is_producer,
            is_consumer=is_consumer,
            pair_slot=pair_slot,
            lds_map=lds_map,
            lds_offsets=lds_offsets,
            comm_addr=comm_addr,
            comm_val=comm_val,
        )
        body = remap_special_ids(original_body, id_map)
        body = rewrite_stmts(body, rewriter.rewrite)
        kernel.body.extend(body)
        return kernel

    # -- subclass hooks -----------------------------------------------------

    def _name_suffix(self) -> str:
        opts = self.options
        suffix = "_rmt_intra" + ("_lds" if opts.include_lds else "_nolds")
        if opts.fast_comm:
            suffix += "_fast"
        return suffix

    def _make_rewriter(self, **context) -> "_IntraRewriter":
        """Rewriter factory; the selective-RMT subclass overrides this."""
        return _IntraRewriter(**context)


class _IntraRewriter:
    """Per-instruction rewriting rules for the Intra-Group pass."""

    def __init__(self, kernel, options, is_producer, is_consumer, pair_slot,
                 lds_map, lds_offsets, comm_addr, comm_val):
        self.kernel = kernel
        self.options = options
        self.is_producer = is_producer
        self.is_consumer = is_consumer
        self.pair_slot = pair_slot
        self.lds_map = lds_map
        self.lds_offsets = lds_offsets
        self.comm_addr = comm_addr
        self.comm_val = comm_val

    def rewrite(self, instr: Instr) -> Optional[List[Stmt]]:
        opts = self.options
        if isinstance(instr, StoreGlobal):
            return self._guarded_store(
                instr, index=instr.index, value=instr.value,
                emit_store=lambda sb: sb._emit(instr),
            )
        if isinstance(instr, AtomicGlobal):
            return self._guarded_atomic(instr)
        if isinstance(instr, StoreLocal):
            if opts.include_lds:
                return self._remap_lds_access(instr, is_store=True)
            # −LDS: local stores exit the SoR.
            return self._guarded_store(
                instr, index=instr.index, value=instr.value,
                emit_store=lambda sb: sb._emit(instr),
            )
        if isinstance(instr, LoadLocal) and opts.include_lds:
            return self._remap_lds_access(instr, is_store=False)
        return None

    # -- LDS remapping for the +LDS flavor --------------------------------

    def _remap_lds_access(self, instr, is_store: bool) -> List[Stmt]:
        out: List[Stmt] = []
        sb = KernelBuilder.attach(self.kernel, out)
        offset = self.lds_offsets[instr.lds.name]
        new_alloc = self.lds_map[instr.lds.name]
        new_idx = sb.add(instr.index, offset)
        if is_store:
            sb._emit(StoreLocal(new_alloc, new_idx, instr.value))
        else:
            sb._emit(LoadLocal(instr.dst, new_alloc, new_idx))
        return out

    # -- output comparison -------------------------------------------------

    def _guarded_store(self, instr, index, value, emit_store) -> List[Stmt]:
        """Wrap an SoR-exiting store in producer→consumer comparison."""
        opts = self.options
        out: List[Stmt] = []
        sb = KernelBuilder.attach(self.kernel, out)

        if not opts.communication:
            # Component isolation: redundant computation without output
            # comparison — the consumer stores unchecked.
            with sb.if_(self.is_consumer):
                emit_store(sb)
            return out

        idx_u = sb.as_u32(index)
        val_u = sb.as_u32(value)
        got_a, got_v = self._exchange(sb, idx_u, val_u)

        with sb.if_(self.is_consumer):
            ok = sb.pand(sb.eq(got_a, idx_u), sb.eq(got_v, val_u))
            with sb.if_(sb.pnot(ok)):
                sb.report_error()
            emit_store(sb)
        return out

    def _exchange(self, sb: KernelBuilder, a_u: VReg, b_u: VReg):
        """One producer→consumer round over the communication channel."""
        if self.options.fast_comm:
            # Register-level exchange (Section 8): each even (consumer)
            # lane reads its odd (producer) partner's lane.  The extra
            # moves model the packing the paper attributes FAST's small
            # regressions to.
            packed_a = sb.mov(a_u)
            packed_v = sb.mov(b_u)
            got_a = sb.swizzle(packed_a, or_mask=1)
            got_b = sb.swizzle(packed_v, or_mask=1)
        else:
            with sb.if_(self.is_producer):
                sb.store_local(self.comm_addr, self.pair_slot, a_u)
                sb.store_local(self.comm_val, self.pair_slot, b_u)
            got_a = sb.load_local(self.comm_addr, self.pair_slot)
            got_b = sb.load_local(self.comm_val, self.pair_slot)
        return got_a, got_b

    # -- atomics -----------------------------------------------------------

    def _guarded_atomic(self, instr: AtomicGlobal) -> List[Stmt]:
        """Execute a global atomic once per redundant pair.

        Global atomics exit the SoR exactly like stores — and, left
        unrewritten, *both* replicas would perform the read-modify-write,
        doubling its architectural effect (an atomic add would count
        every work-item twice).  The consumer compares the producer's
        operands, performs the atomic alone, and (when the old value is
        consumed) hands the result back across the channel so both
        replicas continue with identical state.
        """
        opts = self.options
        out: List[Stmt] = []
        sb = KernelBuilder.attach(self.kernel, out)

        # Pre-defined landing register so the result dominates later uses
        # in both replicas.
        old_u = sb.const(0, DType.U32) if instr.dst is not None else None

        def emit_atomic(sb_inner: KernelBuilder) -> None:
            tmp = (
                None if instr.dst is None
                else self.kernel.new_reg(instr.dst.dtype, hint="old")
            )
            sb_inner._emit(AtomicGlobal(
                instr.op, tmp, instr.buf, instr.index, instr.value,
                instr.compare,
            ))
            if tmp is not None:
                sb_inner.set(old_u, sb_inner.as_u32(tmp))

        if not opts.communication:
            # Component isolation: unchecked consumer-side execution.
            # The producer's copy of the old value stays 0 — acceptable
            # only because isolation mode never compares outputs.
            with sb.if_(self.is_consumer):
                emit_atomic(sb)
        else:
            idx_u = sb.as_u32(instr.index)
            val_u = sb.as_u32(instr.value)
            got_a, got_v = self._exchange(sb, idx_u, val_u)
            cmp_pairs = [(got_a, idx_u), (got_v, val_u)]
            if instr.compare is not None:
                cmp_u = sb.as_u32(instr.compare)
                got_c, _ = self._exchange(sb, cmp_u, cmp_u)
                cmp_pairs.append((got_c, cmp_u))

            with sb.if_(self.is_consumer):
                ok = sb.eq(*cmp_pairs[0])
                for got, mine in cmp_pairs[1:]:
                    ok = sb.pand(ok, sb.eq(got, mine))
                with sb.if_(sb.pnot(ok)):
                    sb.report_error()
                emit_atomic(sb)

            if old_u is not None:
                # Broadcast the old value consumer→producer (the reverse
                # direction of the usual exchange).
                if opts.fast_comm:
                    packed = sb.mov(old_u)
                    got = sb.swizzle(packed, and_mask=~1)
                else:
                    with sb.if_(self.is_consumer):
                        sb.store_local(self.comm_val, self.pair_slot, old_u)
                    got = sb.load_local(self.comm_val, self.pair_slot)
                old_u = got

        if instr.dst is not None:
            op = {
                DType.U32: "mov", DType.I32: "bitcast_i32",
                DType.F32: "bitcast_f32",
            }[instr.dst.dtype]
            sb._emit(Alu(op, instr.dst, old_u))
        return out
