"""Selective (vulnerability-driven) Intra-Group RMT.

The paper's transformations are all-or-nothing: every sphere-of-
replication exit receives an output comparison.  This pass instead
spends the duplication budget where the static ACE/AVF analysis
(:mod:`repro.compiler.analysis.vulnerability`) says faults actually
propagate: only exits carrying enough protection-priority mass — or
exits inside explicit builder ``protect()`` regions — get the full
producer→consumer compare; the rest execute once, consumer-side,
unchecked.

The resulting kernel declares its coverage in
``metadata["rmt"]["partial"]`` — the *partial sphere of replication
contract* consumed by the SoR-coverage lint, the ``sor`` analysis and
translation validation, so a selective build is certified against what
it claims to protect rather than silently passing as fully protected.

A follow-up sinking step moves computation feeding *only* an
unprotected exit into that exit's consumer guard, so unprotected
regions are genuinely executed once instead of merely skipping the
comparison.  Translation validation accepts those single-replica
definitions precisely because the partial contract proves every use
stays inside the same consumer guard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ...ir.builder import KernelBuilder
from ...ir.core import (
    Alu,
    AtomicGlobal,
    Cmp,
    Const,
    If,
    Instr,
    Kernel,
    LoadParam,
    PredOp,
    Select,
    Stmt,
    While,
)
from ...ir.types import DType
from ..analysis.vulnerability import (
    analyze_vulnerability,
    exit_sites,
    protected_ordinals_for_regions,
    protected_ordinals_for_threshold,
)
from .rmt_common import RmtOptions
from .rmt_intra import IntraGroupRmtPass, _IntraRewriter

_SOURCES = ("auto", "regions", "priority")


@dataclass(frozen=True)
class SelectiveOptions:
    """Protection policy of the selective pass.

    ``threshold`` is the fraction of total exit priority mass to cover
    when selecting by priority (1.0 degenerates to full protection,
    0.0 to none).  ``source`` picks where the protected set comes from:
    ``"regions"`` uses builder ``protect()`` annotations, ``"priority"``
    the static ranking, and ``"auto"`` prefers regions when the kernel
    declares any and falls back to the ranking otherwise.  ``sink``
    enables the single-replica sinking of computation that feeds only
    unprotected exits.
    """

    threshold: float = 1.0
    source: str = "auto"
    sink: bool = True
    fast_comm: bool = False

    def __post_init__(self):
        if self.source not in _SOURCES:
            raise ValueError(
                f"SelectiveOptions.source must be one of {_SOURCES}, "
                f"got {self.source!r}")
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(
                f"SelectiveOptions.threshold must be in [0, 1], "
                f"got {self.threshold!r}")


class SelectiveRmtPass(IntraGroupRmtPass):
    """Intra-Group RMT that duplicates only high-priority SoR exits."""

    def __init__(self, selective: SelectiveOptions = SelectiveOptions()):
        super().__init__(RmtOptions(
            include_lds=True, communication=True,
            fast_comm=selective.fast_comm,
        ))
        self.selective = selective
        self.name = "rmt-selective"

    def run(self, kernel: Kernel) -> Kernel:
        sel = self.selective
        total = len(exit_sites(kernel))
        regions = (kernel.metadata.get("protect") or {}).get("regions") or []
        if sel.source == "regions" or (sel.source == "auto" and regions):
            protected = protected_ordinals_for_regions(kernel)
            source = "regions"
        else:
            report = analyze_vulnerability(kernel)
            protected = protected_ordinals_for_threshold(report, sel.threshold)
            source = "priority"
        self._protected: Set[int] = set(protected)
        self._rewriter: Optional[_SelectiveRewriter] = None

        out = super().run(kernel)

        out.metadata["rmt"]["partial"] = {
            "protected": sorted(self._protected),
            "unprotected": sorted(set(range(total)) - self._protected),
            "total": total,
            "source": source,
            "threshold": sel.threshold,
        }
        if sel.sink and self._rewriter is not None:
            sink_unprotected(out, self._rewriter.unprotected_ifs)
        return out

    # -- subclass hooks ------------------------------------------------------

    def _name_suffix(self) -> str:
        return "_rmt_selective"

    def _make_rewriter(self, **context) -> "_SelectiveRewriter":
        self._rewriter = _SelectiveRewriter(
            protected=self._protected, **context)
        return self._rewriter


class _SelectiveRewriter(_IntraRewriter):
    """Intra rewriter that checks each exit ordinal against the policy.

    Ordinals count non-``__rmt_`` global stores/atomics in the
    ``rewrite_stmts`` visit order, which is the same DFS order
    :func:`~repro.compiler.analysis.vulnerability.exit_sites` and the
    SoR-coverage lint use — the three agree on numbering by contract.
    """

    def __init__(self, protected: Set[int], **context):
        super().__init__(**context)
        self.protected = protected
        self.unprotected_ifs: List[If] = []
        self._ordinal = 0

    def _next_ordinal(self) -> int:
        ordinal = self._ordinal
        self._ordinal += 1
        return ordinal

    def _guarded_store(self, instr, index, value, emit_store) -> List[Stmt]:
        if self._next_ordinal() in self.protected:
            return super()._guarded_store(instr, index, value, emit_store)
        out: List[Stmt] = []
        sb = KernelBuilder.attach(self.kernel, out)
        with sb.if_(self.is_consumer):
            emit_store(sb)
        self.unprotected_ifs.append(out[-1])
        return out

    def _guarded_atomic(self, instr: AtomicGlobal) -> List[Stmt]:
        if self._next_ordinal() in self.protected:
            return super()._guarded_atomic(instr)

        out: List[Stmt] = []
        sb = KernelBuilder.attach(self.kernel, out)
        old_u = sb.const(0, DType.U32) if instr.dst is not None else None

        with sb.if_(self.is_consumer):
            tmp = (
                None if instr.dst is None
                else self.kernel.new_reg(instr.dst.dtype, hint="old")
            )
            sb._emit(AtomicGlobal(
                instr.op, tmp, instr.buf, instr.index, instr.value,
                instr.compare,
            ))
            if tmp is not None:
                sb.set(old_u, sb.as_u32(tmp))
        self.unprotected_ifs.append(out[-1])

        if old_u is not None:
            # The old value is still broadcast consumer→producer so both
            # replicas continue with identical downstream state — only
            # the operand *comparison* is elided for unprotected exits.
            if self.options.fast_comm:
                packed = sb.mov(old_u)
                old_u = sb.swizzle(packed, and_mask=~1)
            else:
                with sb.if_(self.is_consumer):
                    sb.store_local(self.comm_val, self.pair_slot, old_u)
                old_u = sb.load_local(self.comm_val, self.pair_slot)

        if instr.dst is not None:
            op = {
                DType.U32: "mov", DType.I32: "bitcast_i32",
                DType.F32: "bitcast_f32",
            }[instr.dst.dtype]
            sb._emit(Alu(op, instr.dst, old_u))
        return out


# ---------------------------------------------------------------------------
# Sinking: single-replica execution of unprotected-only computation
# ---------------------------------------------------------------------------

#: Instruction kinds safe to execute under a divergence guard: no memory
#: effects, no cross-lane semantics, no error reporting.
_PURE = (Const, LoadParam, Alu, Cmp, PredOp, Select)


def sink_unprotected(kernel: Kernel, guards: Sequence[If]) -> int:
    """Move computation feeding only an unprotected consumer guard into it.

    For each unprotected-exit guard, the contiguous run of pure
    instructions immediately preceding it in its parent block is sunk
    into the guard's then-body when (a) every destination register has
    that single definition in the whole kernel and (b) every use of it
    lies inside the moved run or the guard's subtree.  Returns the
    number of instructions moved.
    """
    if not guards:
        return 0
    guard_ids = {id(g) for g in guards}

    # Whole-kernel def counts and use sites (conditions included).
    def_count: Dict[int, int] = {}
    use_sites: Dict[int, List[int]] = {}
    parent: Dict[int, List[Stmt]] = {}

    def walk(block: List[Stmt]) -> None:
        for stmt in block:
            parent[id(stmt)] = block
            if isinstance(stmt, If):
                use_sites.setdefault(id(stmt.cond), []).append(id(stmt))
                walk(stmt.then_body)
                walk(stmt.else_body)
            elif isinstance(stmt, While):
                use_sites.setdefault(id(stmt.cond), []).append(id(stmt))
                walk(stmt.cond_block)
                walk(stmt.body)
            else:
                for d in stmt.dests():
                    def_count[id(d)] = def_count.get(id(d), 0) + 1
                for s in stmt.sources():
                    use_sites.setdefault(id(s), []).append(id(stmt))

    walk(kernel.body)

    moved_total = 0
    for guard in guards:
        block = parent.get(id(guard))
        if block is None or id(guard) not in guard_ids:
            continue
        pos = next(i for i, s in enumerate(block) if s is guard)
        # Everything inside the guard's subtree may keep using sunk values.
        allowed: Set[int] = {id(guard)}
        for inner in _subtree(guard):
            allowed.add(id(inner))

        moved: List[Instr] = []
        p = pos - 1
        while p >= 0:
            cand = block[p]
            if not isinstance(cand, _PURE):
                break
            ok = True
            for d in cand.dests():
                if def_count.get(id(d), 0) != 1:
                    ok = False
                    break
                for user in use_sites.get(id(d), ()):
                    if user not in allowed:
                        ok = False
                        break
                if not ok:
                    break
            if not ok:
                break
            moved.append(cand)
            allowed.add(id(cand))
            p -= 1

        if not moved:
            continue
        moved.reverse()
        del block[p + 1:pos]
        guard.then_body[:0] = moved
        moved_total += len(moved)
    return moved_total


def _subtree(guard: If):
    stack: List[Stmt] = list(guard.then_body) + list(guard.else_body)
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(stmt, If):
            stack.extend(stmt.then_body)
            stack.extend(stmt.else_body)
        elif isinstance(stmt, While):
            stack.extend(stmt.cond_block)
            stack.extend(stmt.body)
